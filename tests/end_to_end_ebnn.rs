//! End-to-end eBNN integration: host reference, DPU pipeline, transfers
//! and the LUT rewrite must all agree across crates.

use dpu_sim::DpuId;
use ebnn::mapping::BnPlacement;
use ebnn::{EbnnModel, EbnnPipeline, ModelConfig, SynthMnist};
use pim_host::{DpuSet, HostError};

fn model() -> EbnnModel {
    EbnnModel::generate(ModelConfig::default())
}

#[test]
fn pipeline_matches_host_reference_over_dataset() {
    let m = model();
    let ds = SynthMnist::generate(4); // 40 images over 3 DPUs
    let pipe = EbnnPipeline::new(m.clone());
    let report = pipe.infer(&ds.images).expect("inference");
    assert_eq!(report.predictions.len(), ds.len());
    assert_eq!(report.dpus_used, 3);
    for (img, &pred) in ds.images.iter().zip(&report.predictions) {
        assert_eq!(pred, m.predict(&m.binarize(&img.pixels)), "label {}", img.label);
    }
}

#[test]
fn lut_and_float_agree_bitwise_over_dataset() {
    let m = model();
    let ds = SynthMnist::generate(2);
    let lut = EbnnPipeline::new(m.clone()).infer(&ds.images).expect("lut");
    let float = EbnnPipeline::new(m)
        .with_placement(BnPlacement::DpuFloat)
        .infer(&ds.images)
        .expect("float");
    assert_eq!(lut.predictions, float.predictions);
    // Same functional result, different cost.
    assert!(float.makespan_cycles > lut.makespan_cycles);
}

#[test]
fn accuracy_beats_chance_comfortably() {
    let m = model();
    let ds = SynthMnist::generate(10); // 100 jittered digits
    let report = EbnnPipeline::new(m).infer(&ds.images).expect("inference");
    let correct =
        ds.images.iter().zip(&report.predictions).filter(|(img, &p)| img.label == p).count();
    assert!(
        correct * 100 / ds.len() >= 50,
        "prototype classifier should beat 50%: {correct}/{}",
        ds.len()
    );
}

#[test]
fn batch_count_determines_dpu_count() {
    let m = model();
    for (n, dpus) in [(1usize, 1usize), (16, 1), (17, 2), (64, 4)] {
        let ds = SynthMnist::generate(n.div_ceil(10).max(1));
        let images = &ds.images[..n];
        let report = EbnnPipeline::new(m.clone()).infer(images).expect("inference");
        assert_eq!(report.dpus_used, dpus, "n={n}");
    }
}

#[test]
fn deterministic_end_to_end() {
    let m = model();
    let ds = SynthMnist::generate(2);
    let a = EbnnPipeline::new(m.clone()).infer(&ds.images).expect("a");
    let b = EbnnPipeline::new(m).infer(&ds.images).expect("b");
    assert_eq!(a.predictions, b.predictions);
    assert_eq!(a.makespan_cycles, b.makespan_cycles);
}

#[test]
fn host_transfer_rule_is_enforced_end_to_end() {
    // The pipeline's buffers are all 8-byte aligned by construction; verify
    // the rule actually bites by sending a raw unaligned buffer.
    let mut set = DpuSet::allocate(1).expect("alloc");
    set.define_symbol("x", 16).expect("symbol");
    let err = set.copy_to("x", 0, &[0u8; 10]).unwrap_err();
    assert!(matches!(err, HostError::Alignment { .. }));
    // Padded, it goes through, and the padding arrives zeroed.
    let padded = pim_host::PaddedBuf::new(&[7u8; 10]);
    set.copy_to("x", 0, &padded.data).expect("padded transfer");
    let mut back = [0u8; 16];
    set.copy_from_dpu(DpuId(0), "x", 0, &mut back).expect("read");
    assert_eq!(&back[..10], &[7u8; 10]);
    assert_eq!(&back[10..16], &[0u8; 6]);
}

#[test]
fn images_per_dpu_respects_dma_cap() {
    // 16 image slots (128 B each) exactly fill one 2048-byte DMA — the
    // constraint the paper derives the batch size from; a 17th image would
    // overflow the transfer.
    let bytes = ebnn::IMAGES_PER_DPU * ebnn::IMAGE_SLOT_BYTES;
    assert_eq!(bytes, dpu_sim::params::DMA_MAX_TRANSFER_BYTES);
    let packed_image = ebnn::IMAGE_DIM * 4;
    assert!(ebnn::IMAGE_SLOT_BYTES >= packed_image, "slot holds a packed image");
}

#[test]
fn single_image_latency_magnitude() {
    // Paper §4.3.1: 1.48 ms per image on one DPU. The simulator lands in
    // the same order of magnitude (EXPERIMENTS.md records the exact gap).
    let m = model();
    let one = vec![ebnn::mnist::synth_digit(3, 0)];
    let report = EbnnPipeline::new(m).infer(&one).expect("single");
    assert!(
        report.dpu_seconds > 1.0e-4 && report.dpu_seconds < 1.0e-1,
        "latency {} s outside plausible band",
        report.dpu_seconds
    );
}
