//! Validate the Tier-2 kernel cycle model against the Tier-1 interpreter.
//!
//! The CNN pipelines charge cycles through `dpu_sim::cost::CycleModel`
//! (closed form); the interpreter executes instruction streams through the
//! exact event-driven pipeline. These tests run *matched* workloads through
//! both and require agreement, which is what licenses the Tier-2 numbers
//! quoted in `EXPERIMENTS.md`.

use dpu_sim::asm::assemble;
use dpu_sim::cost::{CycleModel, OpCounts, OptLevel};
use dpu_sim::{DpuParams, Machine};

/// A pure-ALU loop: every tasklet runs `iters` iterations of
/// 3 ALU ops + 1 branch.
fn alu_loop_program(iters: u32) -> dpu_sim::Program {
    assemble(&format!(
        "movi r1, {iters}\n\
         movi r2, 0\n\
         loop: add r2, r2, r1\n\
         xor r3, r2, r1\n\
         addi r1, r1, -1\n\
         bne r1, r0, loop\n\
         halt\n"
    ))
    .expect("program assembles")
}

fn alu_loop_counts(iters: u64) -> OpCounts {
    // Matching tally: 2 setup ALU + per-iteration (3 ALU + 1 branch as a
    // loop slot... the branch is the loop overhead at O3 = 1 slot) + halt.
    OpCounts {
        alu: 2 + 3 * iters + 1, // setup + body + halt slot
        loops: iters,
        ..OpCounts::default()
    }
}

#[test]
fn tier2_matches_interpreter_single_tasklet() {
    let iters = 500u32;
    let mut m = Machine::default();
    let sim = m.run(&alu_loop_program(iters), 1).expect("runs");

    let model = CycleModel::new(DpuParams::default(), OptLevel::O3);
    let est = model.estimate(&[alu_loop_counts(u64::from(iters))]);

    let err = (sim.cycles as f64 - est.cycles as f64).abs() / sim.cycles as f64;
    assert!(err < 0.01, "sim {} vs est {} ({:.2}% off)", sim.cycles, est.cycles, err * 100.0);
}

#[test]
fn tier2_matches_interpreter_across_tasklet_counts() {
    let iters = 300u32;
    let model = CycleModel::new(DpuParams::default(), OptLevel::O3);
    for tasklets in [1usize, 2, 4, 8, 11, 16, 24] {
        let mut m = Machine::default();
        let sim = m.run(&alu_loop_program(iters), tasklets).expect("runs");
        let counts = vec![alu_loop_counts(u64::from(iters)); tasklets];
        let est = model.estimate(&counts);
        let err = (sim.cycles as f64 - est.cycles as f64).abs() / sim.cycles as f64;
        assert!(
            err < 0.02,
            "tasklets={tasklets}: sim {} vs est {} ({:.2}% off)",
            sim.cycles,
            est.cycles,
            err * 100.0
        );
    }
}

#[test]
fn tier2_matches_interpreter_with_subroutines() {
    // A loop whose body calls __mulsi3: subroutine slots dominate.
    let iters = 50u32;
    let program = assemble(&format!(
        "movi r1, {iters}\n\
         movi r2, 3\n\
         loop: call __mulsi3 r3, r2, r1\n\
         addi r1, r1, -1\n\
         bne r1, r0, loop\n\
         halt\n"
    ))
    .expect("assembles");
    let mut m = Machine::default();
    let sim = m.run(&program, 4).expect("runs");

    let per_tasklet = OpCounts {
        alu: 2 + u64::from(iters) + 1, // setup + addi + halt
        mul32: u64::from(iters),
        loops: u64::from(iters), // the bne
        ..OpCounts::default()
    };
    let model = CycleModel::new(DpuParams::default(), OptLevel::O3);
    let est = model.estimate(&vec![per_tasklet; 4]);
    let err = (sim.cycles as f64 - est.cycles as f64).abs() / sim.cycles as f64;
    assert!(err < 0.03, "sim {} vs est {} ({:.2}%)", sim.cycles, est.cycles, err * 100.0);
}

#[test]
fn tier2_matches_interpreter_with_interleaved_dma() {
    // The CNN kernels' access pattern: per loop iteration a small DMA plus
    // some compute. Streams from different tasklets interleave, which is
    // the regime the closed form models tightly.
    let program = assemble(
        "me r1\n\
         lsli r2, r1, 10     ; private mram region = id * 1024\n\
         movi r3, 64         ; transfer size\n\
         movi r4, 0          ; wram slot\n\
         movi r5, 50         ; iterations\n\
         loop:\n\
         mram.read r4, r2, r3\n\
         movi r6, 10\n\
         inner: add r7, r7, r6\n\
         addi r6, r6, -1\n\
         bne r6, r0, inner\n\
         addi r5, r5, -1\n\
         bne r5, r0, loop\n\
         halt\n",
    )
    .expect("assembles");
    for tasklets in [1usize, 4, 11] {
        let mut m = Machine::default();
        let sim = m.run(&program, tasklets).expect("runs");
        let per_tasklet = OpCounts {
            alu: 5 + 50 * (1 + 2 * 10) + 1, // setup + per-iter movi/inner + halt
            loops: 50 * 10 + 50,            // inner bne + outer addi/bne pair
            mram_transfers: 50,
            mram_bytes: 50 * 64,
            ..OpCounts::default()
        };
        let model = CycleModel::new(DpuParams::default(), OptLevel::O3);
        let est = model.estimate(&vec![per_tasklet; tasklets]);
        let err = (sim.cycles as f64 - est.cycles as f64).abs() / sim.cycles as f64;
        assert!(
            err < 0.10,
            "tasklets={tasklets}: sim {} vs est {} ({:.2}%)",
            sim.cycles,
            est.cycles,
            err * 100.0
        );
    }
}

#[test]
fn tier2_is_a_lower_bound_for_bulk_phase_workloads() {
    // Bulk pattern: one big DMA, then a long compute phase. The serialized
    // stream delays the last tasklet's compute phase, which a roofline
    // cannot see — the estimate must stay a (reasonably tight) lower bound.
    let program = assemble(
        "me r1\n\
         lsli r2, r1, 11\n\
         movi r3, 2048\n\
         movi r4, 0\n\
         mram.read r4, r2, r3\n\
         movi r5, 100\n\
         loop: addi r5, r5, -1\n\
         bne r5, r0, loop\n\
         halt\n",
    )
    .expect("assembles");
    let per_tasklet = OpCounts {
        alu: 5 + 100 + 1,
        loops: 100,
        mram_transfers: 1,
        mram_bytes: 2048,
        ..OpCounts::default()
    };
    let model = CycleModel::new(DpuParams::default(), OptLevel::O3);
    for tasklets in [1usize, 4, 11] {
        let mut m = Machine::default();
        let sim = m.run(&program, tasklets).expect("runs");
        let est = model.estimate(&vec![per_tasklet; tasklets]);
        assert!(
            est.cycles <= sim.cycles + sim.cycles / 20,
            "tasklets={tasklets}: roofline {} must not exceed sim {}",
            est.cycles,
            sim.cycles
        );
        // The gap is bounded by one serialized stream plus the trailing
        // compute phase of the last tasklet.
        let slack = est.cycles + 2048 / 2 * tasklets as u64 + 11 * per_tasklet.alu;
        assert!(
            sim.cycles <= slack,
            "tasklets={tasklets}: sim {} beyond explained slack {slack}",
            sim.cycles
        );
    }
}

#[test]
fn imbalanced_tasklets_bound_by_slowest() {
    // Tasklet 0 loops 10x longer than the rest; the interpreter and the
    // model must both track the straggler.
    let program = assemble(
        "me r1\n\
         movi r2, 100\n\
         beq r1, r0, straggler\n\
         jmp loop\n\
         straggler: movi r2, 1000\n\
         loop: addi r2, r2, -1\n\
         bne r2, r0, loop\n\
         halt\n",
    )
    .expect("assembles");
    let mut m = Machine::default();
    let sim = m.run(&program, 8).expect("runs");

    let model = CycleModel::new(DpuParams::default(), OptLevel::O3);
    let mut counts = vec![OpCounts { alu: 4 + 100 + 1, loops: 100, ..OpCounts::default() }; 8];
    counts[0] = OpCounts { alu: 4 + 1000 + 1, loops: 1000, ..OpCounts::default() };
    let est = model.estimate(&counts);
    let err = (sim.cycles as f64 - est.cycles as f64).abs() / sim.cycles as f64;
    assert!(err < 0.03, "sim {} vs est {} ({:.2}%)", sim.cycles, est.cycles, err * 100.0);
    assert!(est.latency_bound > est.issue_bound, "straggler sets the bound");
}
