//! Cross-crate property tests: invariants that hold across the host
//! runtime, the simulator, and the CNN pipelines for arbitrary inputs.

use dpu_sim::DpuId;
use pim_host::{pad_to_8, padded_len, DpuSet, PaddedBuf, XferBatch};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any byte buffer survives a padded round trip through a DPU's MRAM.
    #[test]
    fn mram_round_trip_any_buffer(data in proptest::collection::vec(any::<u8>(), 1..512)) {
        let mut set = DpuSet::allocate(1).unwrap();
        set.define_symbol("buf", padded_len(data.len())).unwrap();
        let padded = PaddedBuf::new(&data);
        set.copy_to("buf", 0, &padded.data).unwrap();
        let mut back = vec![0u8; padded.data.len()];
        set.copy_from_dpu(DpuId(0), "buf", 0, &mut back).unwrap();
        prop_assert_eq!(&back[..data.len()], &data[..]);
    }

    /// Scatter/gather is the identity on per-DPU buffers.
    #[test]
    fn scatter_gather_identity(
        n_dpus in 1usize..6,
        len8 in 1usize..16,
        seed in any::<u64>(),
    ) {
        let len = len8 * 8;
        let mut set = DpuSet::allocate(n_dpus).unwrap();
        set.define_symbol("row", len).unwrap();
        let buffers: Vec<Vec<u8>> = (0..n_dpus)
            .map(|d| (0..len).map(|i| ((seed as usize + d * 31 + i * 7) % 256) as u8).collect())
            .collect();
        let mut batch = XferBatch::new();
        for b in &buffers {
            batch.prepare(b.clone());
        }
        batch.push(&mut set, "row", 0, len).unwrap();
        let gathered = XferBatch::gather(&set, "row", 0, len).unwrap();
        prop_assert_eq!(gathered, buffers);
    }

    /// Padding never loses or alters payload bytes and always reaches a
    /// multiple of 8.
    #[test]
    fn padding_is_lossless(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let p = pad_to_8(&data);
        prop_assert_eq!(p.len() % 8, 0);
        prop_assert_eq!(&p[..data.len()], &data[..]);
        prop_assert!(p[data.len()..].iter().all(|&b| b == 0));
    }

    /// The eBNN DPU kernel agrees with the host reference for arbitrary
    /// images under both BN back-ends.
    #[test]
    fn ebnn_kernel_matches_reference_for_random_images(
        pixels in proptest::collection::vec(any::<u8>(), 28 * 28),
    ) {
        use dpu_sim::cost::OpCounts;
        use dpu_sim::Profiler;
        let model = ebnn::EbnnModel::generate(ebnn::ModelConfig {
            filters: 3,
            ..ebnn::ModelConfig::default()
        });
        let img = model.binarize(&pixels);
        let expected = model.features(&img);
        let lut = ebnn::BnLut::for_conv3x3(&model.bn);
        for mode in [ebnn::BnMode::Float(&model.bn), ebnn::BnMode::Lut(&lut)] {
            let mut tally = OpCounts::default();
            let mut prof = Profiler::new();
            let out = ebnn::conv_pool_block(&img, &model.filters, mode, &mut tally, &mut prof);
            prop_assert_eq!(&out.features, &expected);
        }
    }

    /// GEMM row decomposition (the Fig. 4.6 mapping) equals the monolithic
    /// GEMM through simulated MRAM for arbitrary small matrices.
    #[test]
    fn mapped_gemm_equals_host_gemm(
        m in 1usize..4,
        n in 1usize..12,
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        use yolo_pim::{gemm, GemmDims, GemmMapping};
        let dims = GemmDims { m, n, k };
        let next = |state: &mut u64| {
            *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((*state >> 33) % 201) as i16 - 100
        };
        let mut state = seed;
        let a: Vec<i16> = (0..m * k).map(|_| next(&mut state)).collect();
        let b: Vec<i16> = (0..k * n).map(|_| next(&mut state)).collect();
        let mut host = vec![0i16; m * n];
        gemm(dims, 1, &a, &b, &mut host);
        let (dpu, report) = GemmMapping::default().run_layer(dims, 1, &a, &b).unwrap();
        prop_assert_eq!(dpu, host);
        prop_assert_eq!(report.dpus, m);
    }

    /// Tier-2 cycle estimates are monotone: more work never costs fewer
    /// cycles, at any tasklet count.
    #[test]
    fn cycle_estimates_monotone_in_work(
        base in 1u64..10_000,
        extra in 1u64..10_000,
        tasklets in 1usize..24,
    ) {
        use dpu_sim::cost::{CycleModel, OpCounts};
        let model = CycleModel::default();
        let mk = |alu: u64| OpCounts { alu, ..OpCounts::default() };
        let small = model.estimate_items(&mk(1), base, tasklets);
        let large = model.estimate_items(&mk(1), base + extra, tasklets);
        prop_assert!(large.cycles >= small.cycles);
    }

    /// The Chapter-5 computation model is monotone in TOPs and antitone in
    /// PEs for every architecture and operand width.
    #[test]
    fn analytic_model_monotonicity(
        tops in 1.0e3f64..1.0e9,
        factor in 1.1f64..10.0,
    ) {
        use pim_model::{OperandBits, Workload};
        for a in pim_model::arch::table_5_4_lineup() {
            if a.name == "UPMEM" { continue; }
            for x in OperandBits::ALL {
                let small = a.latency_nominal(&Workload::custom("s", tops), x);
                let large = a.latency_nominal(&Workload::custom("l", tops * factor), x);
                prop_assert!(large > small, "{} at {:?}", a.name, x);
            }
        }
    }
}
