//! Identity tests for the interpreter hot-path overhaul: the pre-decoded
//! execution form, the array-indexed opcode histogram, the incremental
//! barrier accounting and the work-stealing launch path must all be
//! *observationally invisible*. These tests pin exact `RunResult` and
//! trace-buffer figures from the eBNN and YOLO Tier-1 pipelines (recorded
//! on the pre-overhaul interpreter) and cross-check every launch pathway
//! against every other.

use ebnn::{EbnnModel, ModelConfig};
use pim_trace::TraceBuffer;
use yolo_pim::gemm::GemmDims;

/// A compact, order-sensitive fingerprint of a trace buffer.
fn fingerprint(buf: &TraceBuffer) -> (usize, u64, u64) {
    (buf.events().len(), buf.dma_bytes(), buf.max_end_cycle())
}

// Golden figures for the current Tier-1 kernel; any drift means an
// engine overhaul changed observable behaviour. Re-recorded when the
// kernel ABI itself changes (last: the params record grew to 16 bytes
// carrying the image/feature MRAM bases for double buffering, +8 DMA
// bytes and +4 cycles per DPU).
const GOLDEN_EBNN_INSTRS_0: u64 = 990_629;
const GOLDEN_EBNN_INSTRS_1: u64 = 990_777;
const GOLDEN_EBNN_INSTRS_2: u64 = 495_365;
const GOLDEN_EBNN_HIST_TOTAL: u64 = 989_093;
const GOLDEN_EBNN_TRACE: [(usize, u64, u64); 3] =
    [(85, 8_408, 993_098), (85, 8_408, 993_643), (53, 4_248, 682_723)];

#[test]
fn ebnn_multi_dpu_pipeline_is_bit_identical_to_seed() {
    // 40 images over 3 DPUs (16 + 16 + 8): unequal chunks exercise the
    // skew the work-stealing scheduler must keep invisible.
    let model = EbnnModel::generate(ModelConfig { filters: 2, ..ModelConfig::default() });
    let images: Vec<_> = (0..40).map(|i| ebnn::mnist::synth_digit(i % 10, i as u64)).collect();

    let (features, launch) =
        ebnn::codegen::run_tier1_batch_multi_dpu(&model, &images).expect("untraced run");
    let traced =
        ebnn::codegen::run_tier1_batch_multi_dpu_traced(&model, &images).expect("traced run");

    // Tracing and scheduling must not perturb results.
    assert_eq!(features, traced.features);
    assert_eq!(launch, traced.launch);

    // Golden figures for the current kernel (see the constants above).
    assert_eq!(launch.per_dpu.len(), 3);
    let cycles: Vec<u64> = launch.per_dpu.iter().map(|r| r.cycles).collect();
    let instrs: Vec<u64> = launch.per_dpu.iter().map(|r| r.instructions).collect();
    assert_eq!(cycles, vec![993_098, 993_643, 682_723], "per-DPU cycles drifted");
    assert_eq!(instrs, vec![GOLDEN_EBNN_INSTRS_0, GOLDEN_EBNN_INSTRS_1, GOLDEN_EBNN_INSTRS_2]);
    assert_eq!(launch.makespan_cycles(), 993_643, "makespan drifted");
    let prints: Vec<(usize, u64, u64)> = traced.dpu_traces.iter().map(fingerprint).collect();
    assert_eq!(prints, GOLDEN_EBNN_TRACE, "trace buffers drifted");

    // The histogram fold must reproduce the exact per-mnemonic counts.
    let h = &launch.per_dpu[0].op_histogram;
    assert_eq!(h.values().sum::<u64>(), GOLDEN_EBNN_HIST_TOTAL);
}

#[test]
fn yolo_tier1_layer_is_bit_identical_to_seed() {
    // 6 DPUs (>= the parallel threshold), 3 tasklets, deterministic data.
    let dims = GemmDims { m: 6, n: 24, k: 18 };
    let a: Vec<i16> = (0..dims.m * dims.k).map(|i| ((i * 7 % 13) as i16) - 6).collect();
    let b: Vec<i16> = (0..dims.k * dims.n).map(|i| ((i * 5 % 11) as i16) - 5).collect();

    let (c, launch) = yolo_pim::codegen::run_tier1_layer(dims, 1, &a, &b, 3).expect("untraced run");
    let traced = yolo_pim::codegen::run_tier1_layer_traced(dims, 1, &a, &b, 3).expect("traced run");
    assert_eq!(c, traced.c);
    assert_eq!(launch, traced.launch);

    // Functional check against the reference GEMM (Algorithm 2).
    let mut expect = vec![0i16; dims.m * dims.n];
    yolo_pim::gemm::gemm(dims, 1, &a, &b, &mut expect);
    assert_eq!(c, expect);

    // Golden figures recorded from the seed interpreter (PR 1 state).
    let cycles: Vec<u64> = launch.per_dpu.iter().map(|r| r.cycles).collect();
    assert_eq!(cycles, vec![264_648; 6], "per-DPU cycles drifted");
    assert_eq!(launch.total_instructions(), 428_988, "total instructions drifted");
    let prints: Vec<(usize, u64, u64)> = traced.dpu_traces.iter().map(fingerprint).collect();
    assert_eq!(prints, vec![(1_763, 968, 264_648); 6], "trace buffers drifted");
}

/// Every engine tier pinned through the host API (`DpuSet::set_engine`)
/// reproduces the identical launch: the golden YOLO layer figures cannot
/// depend on whether the reference loop, the superblock engine, or the
/// compiled threaded-code tier retired the instructions.
#[test]
fn pinned_engine_tiers_reproduce_identical_launches() {
    use dpu_sim::Engine;

    let dims = GemmDims { m: 6, n: 24, k: 18 };
    let a: Vec<i16> = (0..dims.m * dims.k).map(|i| ((i * 7 % 13) as i16) - 6).collect();
    let b: Vec<i16> = (0..dims.k * dims.n).map(|i| ((i * 5 % 11) as i16) - 5).collect();
    let mut runs = Vec::new();
    for engine in [Engine::Reference, Engine::Superblock, Engine::Compiled] {
        let (c, launch) =
            yolo_pim::codegen::run_tier1_layer_with_engine(dims, 1, &a, &b, 3, engine)
                .expect("tiered run");
        let cycles: Vec<u64> = launch.per_dpu.iter().map(|r| r.cycles).collect();
        assert_eq!(cycles, vec![264_648; 6], "{engine:?} drifted from the golden figures");
        runs.push((c, launch));
    }
    assert!(runs.windows(2).all(|w| w[0] == w[1]), "tiers disagree");
}

/// The fault-tolerant launch path with faults disabled must reproduce the
/// same golden figures as the plain path: the retry/quarantine machinery
/// (snapshots, arming, watchdog) must be completely inert on the zero-fault
/// fast path.
#[test]
fn zero_fault_resilient_pipelines_reproduce_the_golden_figures() {
    use pim_host::ResilientLaunchPolicy;

    // eBNN: 40 images over 3 DPUs, default (fault-free) policy.
    let model = EbnnModel::generate(ModelConfig { filters: 2, ..ModelConfig::default() });
    let images: Vec<_> = (0..40).map(|i| ebnn::mnist::synth_digit(i % 10, i as u64)).collect();
    let batch = ebnn::run_tier1_batch_multi_dpu_resilient(
        &model,
        &images,
        &ResilientLaunchPolicy::default(),
    )
    .expect("resilient run");
    let launch = batch.report.to_launch_result().expect("fully served");
    let cycles: Vec<u64> = launch.per_dpu.iter().map(|r| r.cycles).collect();
    assert_eq!(cycles, vec![993_098, 993_643, 682_723], "resilient eBNN cycles drifted");
    assert_eq!(launch.makespan_cycles(), 993_643);
    assert_eq!(batch.report.makespan_cycles(), 993_643);
    assert!(batch.report.quarantined.is_empty() && batch.redispatched_images.is_empty());

    // YOLO: 6 DPUs, 3 tasklets, same deterministic data as above.
    let dims = GemmDims { m: 6, n: 24, k: 18 };
    let a: Vec<i16> = (0..dims.m * dims.k).map(|i| ((i * 7 % 13) as i16) - 6).collect();
    let b: Vec<i16> = (0..dims.k * dims.n).map(|i| ((i * 5 % 11) as i16) - 5).collect();
    let (c_plain, _) = yolo_pim::codegen::run_tier1_layer(dims, 1, &a, &b, 3).expect("plain run");
    let layer =
        yolo_pim::run_tier1_layer_resilient(dims, 1, &a, &b, 3, &ResilientLaunchPolicy::default())
            .expect("resilient run");
    assert_eq!(layer.c, c_plain);
    let yl = layer.report.to_launch_result().expect("fully served");
    let ycycles: Vec<u64> = yl.per_dpu.iter().map(|r| r.cycles).collect();
    assert_eq!(ycycles, vec![264_648; 6], "resilient YOLO cycles drifted");
    assert_eq!(yl.total_instructions(), 428_988);
}
