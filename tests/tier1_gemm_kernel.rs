//! Tier-1 validation of the YOLOv3 GEMM row kernel: Algorithm 2's inner
//! loops written in DPU assembly, executed on the interpreter, must match
//! `yolo_pim::gemm::gemm_row` exactly — including the sign handling of the
//! `/32` rescale and the ±32767 clamp.

use dpu_sim::asm::assemble;
use dpu_sim::Machine;
use yolo_pim::gemm::gemm_row;
use yolo_pim::GemmDims;

/// WRAM layout.
const A_BASE: u32 = 0x100; // K i16 values (one weight row)
const C_BASE: u32 = 0x400; // N i16 outputs
/// MRAM layout.
const B_BASE: u32 = 0x1000; // K×N i16 values (the whole input matrix)

/// The row kernel: one tasklet computes every output column serially
/// (the tasklet-strided variant differs only in loop bounds).
fn gemm_row_program(k: usize, n: usize, alpha: i32) -> dpu_sim::Program {
    assemble(&format!(
        "\
        movi r14, {alpha}\n\
        movi r15, {k}\n\
        movi r16, {n}\n\
        movi r2, 0            ; j (column)\n\
        jloop:\n\
        movi r3, 0            ; acc\n\
        movi r1, 0            ; kk\n\
        kloop:\n\
        ; A[kk] from WRAM, sign-extended i16\n\
        lsli r4, r1, 1\n\
        addi r4, r4, {a_base}\n\
        lh r5, r4, 0\n\
        lsli r5, r5, 16\n\
        asri r5, r5, 16\n\
        ; APART = ALPHA * A[kk]\n\
        call __mulsi3 r5, r5, r14\n\
        ; B[kk*N + j] via a 2-byte DMA from MRAM\n\
        call __mulsi3 r6, r1, r16\n\
        add r6, r6, r2\n\
        lsli r6, r6, 1\n\
        addi r6, r6, {b_base}\n\
        movi r7, 0x800        ; wram staging slot\n\
        movi r8, 2\n\
        mram.read r7, r6, r8\n\
        lh r9, r7, 0\n\
        lsli r9, r9, 16\n\
        asri r9, r9, 16\n\
        ; acc += APART * B\n\
        call __mulsi3 r9, r9, r5\n\
        add r3, r3, r9\n\
        addi r1, r1, 1\n\
        bne r1, r15, kloop\n\
        ; C[j] = absolutemax(acc / 32, 32767): truncating divide + clamp\n\
        movi r10, 32\n\
        call __divsi3 r3, r3, r10\n\
        movi r11, 32767\n\
        blt r3, r11, no_hi\n\
        mov r3, r11\n\
        no_hi:\n\
        movi r12, -32767\n\
        bge r3, r12, no_lo\n\
        mov r3, r12\n\
        no_lo:\n\
        lsli r4, r2, 1\n\
        addi r4, r4, {c_base}\n\
        sh r4, 0, r3\n\
        addi r2, r2, 1\n\
        bne r2, r16, jloop\n\
        halt\n",
        a_base = A_BASE,
        b_base = B_BASE,
        c_base = C_BASE,
    ))
    .expect("gemm row kernel assembles")
}

fn run_kernel(dims: GemmDims, alpha: i32, a_row: &[i16], b: &[i16]) -> Vec<i16> {
    let program = gemm_row_program(dims.k, dims.n, alpha);
    let mut m = Machine::default();
    for (i, &v) in a_row.iter().enumerate() {
        m.wram.write_u16(A_BASE as usize + 2 * i, v as u16 as u32).expect("A");
    }
    for (i, &v) in b.iter().enumerate() {
        m.mram.write_u16(B_BASE as usize + 2 * i, v as u16 as u32).expect("B");
    }
    m.run(&program, 1).expect("kernel runs");
    (0..dims.n)
        .map(|j| m.wram.read_u16(C_BASE as usize + 2 * j).expect("C") as u16 as i16)
        .collect()
}

fn gemm_row_reference(dims: GemmDims, alpha: i32, a_row: &[i16], b: &[i16]) -> Vec<i16> {
    let mut c = vec![0i16; dims.n];
    gemm_row(dims, alpha, a_row, b, &mut c);
    c
}

fn pseudo(seed: &mut u64) -> i16 {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    ((*seed >> 33) % 2001) as i16 - 1000
}

#[test]
fn assembly_gemm_row_matches_rust_kernel() {
    let dims = GemmDims { m: 1, n: 12, k: 7 };
    let mut s = 99u64;
    let a_row: Vec<i16> = (0..dims.k).map(|_| pseudo(&mut s)).collect();
    let b: Vec<i16> = (0..dims.k * dims.n).map(|_| pseudo(&mut s)).collect();
    for alpha in [1i32, 2, -3] {
        let got = run_kernel(dims, alpha, &a_row, &b);
        let want = gemm_row_reference(dims, alpha, &a_row, &b);
        assert_eq!(got, want, "alpha {alpha}");
    }
}

#[test]
fn assembly_gemm_row_clamps_like_algorithm_2() {
    // Force saturation in both directions.
    let dims = GemmDims { m: 1, n: 4, k: 2 };
    let a_row = vec![30000i16, 30000];
    let b = vec![
        30000i16, -30000, 1, -1, // row k=0
        30000, -30000, 1, -1, // row k=1
    ];
    let got = run_kernel(dims, 1, &a_row, &b);
    let want = gemm_row_reference(dims, 1, &a_row, &b);
    assert_eq!(got, want);
    assert_eq!(got[0], 32767);
    assert_eq!(got[1], -32767);
}

#[test]
fn assembly_gemm_row_handles_negative_truncation() {
    // acc = -33 must rescale to -1 (truncation toward zero), not -2
    // (floor) — the subtle sign behaviour the `asr`-based shortcut gets
    // wrong and `__divsi3` gets right.
    let dims = GemmDims { m: 1, n: 1, k: 1 };
    let got = run_kernel(dims, 1, &[-33], &[1]);
    assert_eq!(got[0], -1);
    let want = gemm_row_reference(dims, 1, &[-33], &[1]);
    assert_eq!(got, want);
}
