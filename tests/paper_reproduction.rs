//! The master reproduction test: one assertion block per table/figure of
//! the paper, checking measured-vs-paper values at documented tolerances.
//! `EXPERIMENTS.md` is the human-readable companion of this file.

use cpu_baseline::XeonModel;
use ebnn::{EbnnModel, ModelConfig};
use pim_core::experiments as exp;
use pim_model::{ModelReport, OperandBits, Workload};

fn model() -> EbnnModel {
    EbnnModel::generate(ModelConfig::default())
}

fn close(measured: f64, paper: f64, tol: f64) -> bool {
    (measured - paper).abs() / paper.abs() < tol
}

#[test]
fn eq_3_4_mram_access_cycles() {
    // Paper worked example: 2048 bytes -> 1049 cycles.
    let rows = exp::eq_3_4(&[2048]);
    assert_eq!(rows[0].1, 1049);
}

#[test]
fn table_3_1_all_rows_within_2_percent() {
    for row in exp::table_3_1() {
        assert!(
            row.rel_error() < 0.02,
            "{}: paper {} vs measured {}",
            row.op,
            row.paper_cycles,
            row.measured_cycles
        );
    }
}

#[test]
fn table_3_1_ratios_match_paper_statements() {
    // §3.3.1's comparative statements.
    let rows = exp::table_3_1();
    let get = |label: &str| rows.iter().find(|r| r.op == label).unwrap().measured_cycles as f64;
    // "32-bit fixed multiplication is about x2.9 slower than addition".
    assert!(close(get("32-bit mul") / get("fixed add"), 2.9, 0.05));
    // "32-bit float addition is about x3.3 slower than fixed addition".
    assert!(close(get("float add") / get("fixed add"), 3.3, 0.05));
    // "float multiplication about x3.2 slower than fixed multiplication".
    assert!(close(get("float mul") / get("32-bit mul"), 3.2, 0.05));
    // "float mul about x2.3 slower than float add".
    assert!(close(get("float mul") / get("float add"), 2.3, 0.25));
    // Float division is the worst of everything.
    assert!(rows.iter().all(|r| get("float div") >= r.measured_cycles as f64));
}

#[test]
fn fig_4_3_subroutine_reduction() {
    // "reduced from 11+ subroutines to 2 subroutines".
    let f = exp::fig_4_3(&model());
    assert!(f.float_profile.distinct >= 11);
    assert_eq!(f.lut_profile.distinct, 2);
    // "only the mulsi3 subroutine is left".
    assert!(f.lut_profile.occ.iter().any(|(s, _)| s == "__mulsi3"));
    assert!(f.lut_profile.occ.iter().all(|(s, _)| !s.contains("sf") && !s.contains("df")));
}

#[test]
fn fig_4_4_lut_speedup() {
    // Paper: 1.4x. Accept the 1.2-2.5 band (our conv kernel is more
    // optimized than eBNN's generic bit-slice C, which shifts the ratio).
    let f = exp::fig_4_4(&model());
    let s = f.speedup();
    assert!(s > 1.2 && s < 2.5, "LUT speedup {s:.2} (paper 1.4)");
}

#[test]
fn fig_4_7a_tasklet_scaling_shapes() {
    let pts = exp::fig_4_7a(&model(), &[1, 4, 8, 10, 11, 12, 16, 24]);
    let by = |t: usize| pts.iter().find(|p| p.tasklets == t).unwrap();
    // eBNN: monotone to 8, plateau 8..11 ("drop at 11"), jump at 16
    // ("the number of threads match the number of images").
    assert!(by(4).ebnn_speedup > 3.0);
    assert!(close(by(11).ebnn_speedup, by(8).ebnn_speedup, 0.05));
    assert!(by(16).ebnn_speedup > by(11).ebnn_speedup * 1.2);
    // YOLO: "saturates at 11 tasklets because there are 11 stages".
    assert!(by(11).yolo_speedup > 6.0);
    assert!(by(16).yolo_speedup < by(11).yolo_speedup * 1.3);
    assert!(by(24).yolo_speedup < by(11).yolo_speedup * 1.35);
}

#[test]
fn fig_4_7b_optimization_grid() {
    let rows = exp::fig_4_7b();
    let get = |opt: &str, t: usize| {
        rows.iter().find(|r| r.opt == opt && r.tasklets == t).unwrap().seconds
    };
    // "relatively poorest performance for O0 + no multi-threading"; best
    // for O3 + threading; "the biggest jump is seen when multi-threading
    // is used but using compiler optimization helps as well".
    assert!(get("O0", 1) > get("O0", 11));
    assert!(get("O0", 1) > get("O3", 1));
    assert!(get("O3", 11) < get("O0", 11));
    assert!(get("O3", 11) < get("O3", 1));
    let threading_gain = get("O0", 1) / get("O0", 11);
    let opt_gain = get("O0", 1) / get("O3", 1);
    assert!(threading_gain > opt_gain);
}

#[test]
fn fig_4_7c_linear_scaling() {
    let pts = exp::fig_4_7c(&model(), &XeonModel::default(), &[1, 16, 256, 2560]);
    let s1 = pts[0].1;
    for &(d, s) in &pts {
        assert!(close(s, s1 * d as f64, 1e-9), "nonlinear at {d} DPUs");
    }
    // "maximum speedup at the maximum number of DPUs".
    assert_eq!(pts.last().unwrap().0, 2560);
    assert!(pts.last().unwrap().1 > pts[0].1 * 2000.0);
}

#[test]
fn section_4_3_1_headline_latencies() {
    let l = exp::measured_latencies(&model());
    // eBNN per image: paper 1.48 ms; the simulator lands within 20 %.
    assert!(
        close(l.ebnn_per_image, 1.48e-3, 0.2),
        "eBNN per image {} s (paper 1.48e-3)",
        l.ebnn_per_image
    );
    assert!(l.ebnn_single_image > l.ebnn_per_image, "1-image launch wastes tasklets");
    assert!(close(l.yolo_frame, 65.0, 0.5), "YOLO frame {} s", l.yolo_frame);
    assert!(close(l.yolo_mean_layer, 0.9, 0.5), "mean layer {} s", l.yolo_mean_layer);
    assert!(l.yolo_max_layer > l.yolo_mean_layer * 2.0);
    // The structural contrast: YOLO per frame is >1000x eBNN per frame.
    assert!(l.yolo_frame / l.ebnn_single_image > 1000.0);
}

#[test]
fn table_5_1_walkthrough() {
    let t = ModelReport::table_5_1();
    assert_eq!(t[0].cop, 8); // pPIM
    assert_eq!(t[1].cop, 211); // DRISA
    assert_eq!(t[2].cop, 88); // UPMEM
    assert!(close(t[0].tcomp_tops, 6.48e-2, 0.01));
    assert!(close(t[1].tcomp_tops, 1.40e-1, 0.01));
    assert!(close(t[2].tcomp_tops, 2.54e-1, 0.01));
}

#[test]
fn table_5_2_multiplication_costs() {
    let t = ModelReport::table_5_2();
    assert_eq!(t[0].1, [1, 6, 124, 1016]);
    assert_eq!(t[1].1, [110, 200, 380, 740]);
    // UPMEM: paper stars 370/570; ours derive from calibrated subroutines.
    assert_eq!(t[2].1[0], 44);
    assert_eq!(t[2].1[1], 44);
    assert!(close(t[2].1[2] as f64, 370.0, 0.02));
    assert!(close(t[2].1[3] as f64, 570.0, 0.01));
}

#[test]
fn table_5_3_memory_model() {
    let rows = ModelReport::table_5_3();
    let get = |n: &str| rows.iter().find(|r| r.0 == n).unwrap();
    let p = get("pPIM");
    assert_eq!((p.2, p.3), (16, 4096));
    assert!(close(p.4, 4.24e-3, 0.01));
    let d = get("DRISA-3T1C");
    assert_eq!((d.2, d.3), (65536, 2_147_483_648));
    assert!(close(d.4, 1.8e-7, 0.01));
    let u = get("UPMEM");
    assert_eq!((u.2, u.3), (32000, 81_920_000));
    assert!(close(u.4, 3.07e-3, 0.01));
}

#[test]
fn section_5_3_1_totals() {
    let totals = ModelReport::alexnet_totals();
    let get = |n: &str| totals.iter().find(|r| r.0 == n).unwrap().1;
    assert!(close(get("pPIM"), 6.90e-2, 0.01));
    assert!(close(get("DRISA-3T1C"), 1.40e-1, 0.01));
    assert!(close(get("UPMEM"), 2.57e-1, 0.01));
}

#[test]
fn table_5_4_full_benchmark() {
    let rows = ModelReport::table_5_4(None);
    let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
    // Latency row (paper values).
    assert!(close(get("pPIM").ebnn_latency, 3.80e-7, 0.01));
    assert!(close(get("DRISA-3T1C").yolo_latency, 1.47, 0.01));
    assert!(close(get("SCOPE-H2d").ebnn_latency, 4.64e-8, 0.01));
    // Throughput/power row.
    assert!(close(get("UPMEM").ebnn_tp_power, 5.63e3, 0.01));
    assert!(close(get("pPIM").ebnn_tp_power, 7.52e5, 0.02));
    assert!(close(get("LACC").yolo_tp_power, 4.91e-1, 0.02));
    // Throughput/area row.
    assert!(close(get("UPMEM").ebnn_tp_area, 1.80e2, 0.01));
    assert!(close(get("SCOPE-Vanilla").yolo_tp_area, 1.57e-1, 0.02));
    assert!(close(get("UPMEM").yolo_tp_power, 1.25e-4, 0.02));
    assert!(close(get("UPMEM").yolo_tp_area, 1.10e-5, 0.05));
}

#[test]
fn fig_5_6_operand_width_crossover() {
    // "as input precision increases ... bitwise and pipelined-CPU designs
    // overtake LUT designs" (§6): pPIM best at 8/16 bits, UPMEM best at 32.
    let rows = ModelReport::fig_5_6();
    let get = |n: &str| rows.iter().find(|r| r.0 == n).unwrap().1;
    let (p, d, u) = (get("pPIM"), get("DRISA-3T1C"), get("UPMEM"));
    assert!(p[1] < d[1].min(u[1]));
    assert!(p[2] < d[2].min(u[2]));
    assert!(u[3] < p[3].min(d[3]));
}

#[test]
fn measured_upmem_row_preserves_fig_5_7_conclusions() {
    // Replace the UPMEM row with this repository's measured latencies: the
    // paper's qualitative conclusions must survive (UPMEM is low-power but
    // its throughput/power and /area are far below the analytic PIMs).
    let rows = exp::table_5_4_with_measured(&model());
    let u = rows.iter().find(|r| r.name == "UPMEM").unwrap();
    for r in rows.iter().filter(|r| r.name != "UPMEM") {
        assert!(u.power_w < r.power_w, "UPMEM is the lowest-power chip");
        assert!(u.yolo_tp_power < r.yolo_tp_power, "vs {}", r.name);
        assert!(u.yolo_tp_area < r.yolo_tp_area, "vs {}", r.name);
    }
}

#[test]
fn ebnn_workload_constant_is_consistent() {
    // The back-solved eBNN op count must reproduce the uniform YOLO/eBNN
    // latency ratio visible across every analytic Table 5.4 row.
    let ratio = Workload::yolov3().ops / Workload::ebnn().ops;
    for a in pim_model::arch::table_5_4_lineup() {
        if a.name == "UPMEM" {
            continue;
        }
        let r = a.latency_nominal(&Workload::yolov3(), OperandBits::B8)
            / a.latency_nominal(&Workload::ebnn(), OperandBits::B8);
        assert!(close(r, ratio, 0.02), "{}: ratio {r}", a.name);
    }
}
