//! Fault injection: every failure mode the runtime can hit must surface as
//! a typed error — never a panic, never silent corruption.

use dpu_sim::asm::assemble;
use dpu_sim::{DpuId, Error as DpuError, FaultConfig, FaultPlan, Machine};
use pim_host::{DpuSet, HostError, ResilientLaunchPolicy};
use proptest::prelude::*;

#[test]
fn division_by_zero_on_one_dpu_fails_the_launch() {
    // The same program on every DPU; the divisor comes from MRAM and one
    // DPU is seeded with zero.
    let program = assemble(
        "movi r1, 0\n\
         movi r2, 0\n\
         movi r3, 8\n\
         mram.read r1, r2, r3\n\
         lw r4, r1, 0\n\
         movi r5, 100\n\
         call __divsi3 r6, r5, r4\n\
         halt\n",
    )
    .unwrap();
    let mut set = DpuSet::allocate(3).unwrap();
    set.define_symbol("divisor", 8).unwrap();
    set.copy_scalar_to("divisor", 4).unwrap();
    set.copy_to_dpu(DpuId(1), "divisor", 0, &0u64.to_le_bytes()).unwrap();
    let err = set.launch(&program, 1).unwrap_err();
    assert!(matches!(err, HostError::Dpu(DpuError::DivisionByZero { .. })));
}

#[test]
fn runaway_program_hits_the_cycle_budget() {
    let program = assemble("loop: jmp loop\n").unwrap();
    let mut m = Machine::default();
    let err = m.run_with_budget(&program, 4, 100_000).unwrap_err();
    assert!(matches!(err, DpuError::CycleBudgetExceeded { budget: 100_000 }));
}

#[test]
fn wild_wram_store_is_caught() {
    let program = assemble(
        "movi r1, 0x7fffff00\n\
         sw r1, 0, r1\n\
         halt\n",
    )
    .unwrap();
    let mut m = Machine::default();
    let err = m.run(&program, 1).unwrap_err();
    assert!(matches!(err, DpuError::OutOfBounds { kind: "WRAM", .. }));
}

#[test]
fn dma_beyond_mram_is_caught() {
    let program = assemble(
        "movi r1, 0\n\
         movi r2, 0x7ffffff8   ; near the 64 MB MRAM end... far beyond it\n\
         movi r3, 64\n\
         mram.read r1, r2, r3\n\
         halt\n",
    )
    .unwrap();
    let mut m = Machine::default();
    let err = m.run(&program, 1).unwrap_err();
    assert!(matches!(err, DpuError::OutOfBounds { kind: "MRAM", .. }));
}

#[test]
fn oversized_dma_is_caught() {
    let program = assemble(
        "movi r1, 0\n\
         movi r2, 0\n\
         movi r3, 4096        ; above the 2048-byte transfer cap\n\
         mram.read r1, r2, r3\n\
         halt\n",
    )
    .unwrap();
    let mut m = Machine::default();
    let err = m.run(&program, 1).unwrap_err();
    assert!(matches!(err, DpuError::DmaTooLarge { requested: 4096, limit: 2048 }));
}

#[test]
fn launch_rejects_invalid_control_flow_before_running() {
    let mut set = DpuSet::allocate(2).unwrap();
    let bad = dpu_sim::Program::new(vec![dpu_sim::Instr::Jump { target: 42 }]);
    let err = set.launch(&bad, 1).unwrap_err();
    assert!(matches!(err, HostError::Dpu(DpuError::PcOutOfRange { pc: 42, .. })));
}

#[test]
fn symbol_overflow_reports_the_symbol() {
    let mut set = DpuSet::allocate(1).unwrap();
    set.define_symbol("small", 16).unwrap();
    let err = set.copy_to("small", 8, &[0u8; 16]).unwrap_err();
    match err {
        HostError::SymbolOverflow { name, requested, capacity } => {
            assert_eq!(name, "small");
            assert_eq!((requested, capacity), (24, 16));
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn errors_carry_displayable_context_end_to_end() {
    // Every error in the chain renders with enough context to debug.
    let mut set = DpuSet::allocate(1).unwrap();
    set.define_symbol("x", 8).unwrap();
    let e = set.copy_to("x", 0, &[0u8; 3]).unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("8-byte"), "{msg}");
    let e2 = set.copy_to("nope", 0, &[0u8; 8]).unwrap_err();
    assert!(e2.to_string().contains("nope"));
}

/// The ISSUE acceptance scenario: a seeded plan knocks a whole DPU offline
/// in a multi-image eBNN run; the launch must complete with correct
/// features for *every* image (the dead DPU's 16-image chunk recomputed on
/// a survivor) and report the quarantined DPU.
#[test]
fn ebnn_batch_survives_a_whole_dpu_fault_via_redispatch() {
    let m =
        ebnn::EbnnModel::generate(ebnn::ModelConfig { filters: 2, ..ebnn::ModelConfig::default() });
    let imgs: Vec<_> = (0..40).map(|i| ebnn::synth_digit(i % 10, (i / 10) as u64)).collect();
    let plan = FaultPlan::new(FaultConfig { forced_offline: vec![1], ..FaultConfig::default() });
    let policy =
        ResilientLaunchPolicy { max_retries: 1, ..ResilientLaunchPolicy::with_faults(plan) };
    let batch = ebnn::run_tier1_batch_multi_dpu_resilient(&m, &imgs, &policy).unwrap();

    assert_eq!(batch.report.quarantined, vec![DpuId(1)]);
    assert!(batch.report.fully_served());
    assert_eq!(batch.report.degraded.len(), 1);
    assert_eq!(batch.redispatched_images, (16..32).collect::<Vec<_>>());
    // Every image classifies from the correct features — including the 16
    // that lived on the dead DPU.
    for (i, img) in imgs.iter().enumerate() {
        assert_eq!(batch.features[i], m.features(&m.binarize(&img.pixels)), "image {i}");
    }
    let metrics = batch.report.metrics();
    assert_eq!(metrics.counter("resilient.quarantined"), 1);
    assert_eq!(metrics.counter("faults.dpu_offline"), 2); // both attempts
}

/// Zero-fault resilient eBNN batch is observationally identical to the
/// plain multi-DPU path.
#[test]
fn ebnn_resilient_batch_with_no_faults_matches_plain_batch() {
    let m =
        ebnn::EbnnModel::generate(ebnn::ModelConfig { filters: 2, ..ebnn::ModelConfig::default() });
    let imgs: Vec<_> = (0..24).map(|i| ebnn::synth_digit(i % 10, (i / 10) as u64)).collect();
    let (plain_features, plain_launch) =
        ebnn::codegen::run_tier1_batch_multi_dpu(&m, &imgs).unwrap();
    let batch =
        ebnn::run_tier1_batch_multi_dpu_resilient(&m, &imgs, &ResilientLaunchPolicy::default())
            .unwrap();
    assert_eq!(batch.features, plain_features);
    assert_eq!(batch.report.to_launch_result().unwrap(), plain_launch);
    assert!(batch.redispatched_images.is_empty());
}

/// YOLO row-per-DPU GEMM survives multiple simultaneous whole-DPU faults.
#[test]
fn yolo_layer_survives_dpu_faults_with_redispatch() {
    let dims = yolo_pim::GemmDims { m: 6, n: 10, k: 8 };
    let mut seed = 11u64;
    let mut pseudo = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((seed >> 33) % 401) as i16 - 200
    };
    let a: Vec<i16> = (0..dims.m * dims.k).map(|_| pseudo()).collect();
    let b: Vec<i16> = (0..dims.k * dims.n).map(|_| pseudo()).collect();
    let mut want = vec![0i16; dims.m * dims.n];
    yolo_pim::gemm(dims, 2, &a, &b, &mut want);

    let plan = FaultPlan::new(FaultConfig { forced_offline: vec![0, 3], ..FaultConfig::default() });
    let policy =
        ResilientLaunchPolicy { max_retries: 0, ..ResilientLaunchPolicy::with_faults(plan) };
    let layer = yolo_pim::run_tier1_layer_resilient(dims, 2, &a, &b, 3, &policy).unwrap();
    assert_eq!(layer.c, want, "every output row correct despite two dead DPUs");
    assert_eq!(layer.redispatched_rows, vec![0, 3]);
    assert_eq!(
        layer.report.quarantined,
        vec![DpuId(0), DpuId(3)],
        "{:?}",
        layer.report.quarantined
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary garbage read back from MRAM never panics the eBNN feature
    /// decode + classifier path (robust gather).
    #[test]
    fn garbage_feature_wire_never_panics(bytes in proptest::collection::vec(any::<u8>(), 200)) {
        let features = 8 * 14 * 14;
        let wire_len = ebnn::KernelOutput::wire_bytes(features);
        let mut wire = bytes;
        wire.resize(wire_len, 0);
        let out = ebnn::KernelOutput::from_wire(&wire, features);
        let model = ebnn::EbnnModel::generate(ebnn::ModelConfig::default());
        let pred = model.classifier.predict(&out.features);
        prop_assert!(pred < ebnn::CLASSES);
    }

    /// Random (valid-register) branchless instruction sequences never panic
    /// the interpreter — they either halt or exhaust the budget with a
    /// typed error.
    #[test]
    fn random_straightline_programs_never_panic(
        ops in proptest::collection::vec((0u8..8, 0u8..16, 0u8..16, 0u8..16), 1..64),
    ) {
        use dpu_sim::{Instr, Reg};
        let mut instrs: Vec<Instr> = ops
            .into_iter()
            .map(|(op, a, b, c)| {
                let (rd, ra, rb) = (Reg(a), Reg(b), Reg(c));
                match op {
                    0 => Instr::Add { rd, ra, rb },
                    1 => Instr::Sub { rd, ra, rb },
                    2 => Instr::Xor { rd, ra, rb },
                    3 => Instr::Mul8 { rd, ra, rb },
                    4 => Instr::Popcount { rd, ra },
                    5 => Instr::Movi { rd, imm: i32::from(b) * 7 - 50 },
                    6 => Instr::Lsl { rd, ra, rb },
                    _ => Instr::Mov { rd, ra },
                }
            })
            .collect();
        instrs.push(Instr::Halt);
        let program = dpu_sim::Program::new(instrs);
        let mut m = Machine::default();
        let res = m.run_with_budget(&program, 3, 1_000_000);
        prop_assert!(res.is_ok());
    }
}
