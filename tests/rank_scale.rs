//! Rank-scale simulation: the eBNN tier-1 conv kernel launched across
//! hundreds-to-thousands of DPUs, with the COW MRAM arena keeping the
//! footprint bounded (broadcast weight pages stored once) and whole-set
//! snapshots replaying bit-identically.
//!
//! The paper's system is 2,560 DPUs over 40 ranks; the `#[ignore]`d smoke
//! test runs that full shape under a peak-RSS ceiling (CI runs it in the
//! `rank-scale` job with `--release -- --ignored`). The 256-DPU variant
//! runs in the normal suite.

use dpu_sim::asm::assemble;
use dpu_sim::{DpuId, MRAM_PAGE_BYTES};
use ebnn::bconv::{conv3x3_packed, BinaryFilter, BinaryImage};
use ebnn::IMAGE_DIM;
use pim_host::DpuSet;

const IMG_BASE: u32 = 0x100;
const FILTER_BASE: u32 = 0x200;
const OUT_BASE: i32 = 0x300;
const OUT_BYTES: usize = IMAGE_DIM * IMAGE_DIM;

/// The tier-1 eBNN conv kernel (see `tier1_ebnn_kernel.rs`), staged
/// through MRAM: DMA the packed image and filter in, convolve, DMA the
/// 784-byte output map back out.
fn conv_program(in_addr: usize, out_addr: usize) -> dpu_sim::Program {
    assemble(&format!(
        "\
        movi r1, {IMG_BASE}\n\
        movi r2, {in_addr}\n\
        movi r3, 112\n\
        mram.read r1, r2, r3\n\
        movi r1, {FILTER_BASE}\n\
        movi r2, {filter_addr}\n\
        movi r3, 16\n\
        mram.read r1, r2, r3\n\
        movi r9, {FILTER_BASE}\n\
        lw r20, r9, 0\n\
        lw r21, r9, 4\n\
        lw r22, r9, 8\n\
        movi r23, 7\n\
        movi r12, {dim}\n\
        movi r1, 0\n\
        rowloop:\n\
        movi r2, 0\n\
        colloop:\n\
        movi r3, 0\n\
        lsli r4, r1, 2\n\
        addi r4, r4, {img_minus4}\n\
        lw r5, r4, 0\n\
        lsli r5, r5, 1\n\
        lsr r6, r5, r2\n\
        xor r6, r6, r20\n\
        xor r6, r6, r23\n\
        and r6, r6, r23\n\
        popcount r7, r6\n\
        add r3, r3, r7\n\
        lw r5, r4, 4\n\
        lsli r5, r5, 1\n\
        lsr r6, r5, r2\n\
        xor r6, r6, r21\n\
        xor r6, r6, r23\n\
        and r6, r6, r23\n\
        popcount r7, r6\n\
        add r3, r3, r7\n\
        lw r5, r4, 8\n\
        lsli r5, r5, 1\n\
        lsr r6, r5, r2\n\
        xor r6, r6, r22\n\
        xor r6, r6, r23\n\
        and r6, r6, r23\n\
        popcount r7, r6\n\
        add r3, r3, r7\n\
        lsli r3, r3, 1\n\
        addi r3, r3, -9\n\
        lsli r10, r1, 5\n\
        lsli r11, r1, 2\n\
        sub r10, r10, r11\n\
        add r10, r10, r2\n\
        sb r10, {out}, r3\n\
        addi r2, r2, 1\n\
        bne r2, r12, colloop\n\
        addi r1, r1, 1\n\
        bne r1, r12, rowloop\n\
        movi r1, {out}\n\
        movi r2, {out_addr}\n\
        movi r3, {out_len}\n\
        mram.write r1, r2, r3\n\
        halt\n",
        dim = IMAGE_DIM,
        img_minus4 = IMG_BASE - 4,
        out = OUT_BASE,
        filter_addr = in_addr + 112,
        out_len = crate_align8(OUT_BYTES),
    ))
    .expect("conv kernel assembles")
}

fn crate_align8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

fn test_image(seed: u32) -> BinaryImage {
    let px: Vec<u8> = (0..IMAGE_DIM * IMAGE_DIM)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed.wrapping_mul(97));
            (h >> 24) as u8
        })
        .collect();
    BinaryImage::from_gray(&px, IMAGE_DIM, IMAGE_DIM, 128)
}

/// Build the broadcast block: image rows + filter at the front, then
/// synthetic weight filler out to a whole number of MRAM pages — the
/// shape of an eBNN deep model's resident weights.
fn broadcast_block(img: &BinaryImage, filter: &BinaryFilter, pages: usize) -> Vec<u8> {
    let mut blk = vec![0u8; pages * MRAM_PAGE_BYTES];
    for (r, &word) in img.rows.iter().enumerate() {
        blk[4 * r..4 * r + 4].copy_from_slice(&word.to_le_bytes());
    }
    for (r, &row) in filter.rows.iter().enumerate() {
        blk[112 + 4 * r..112 + 4 * r + 4].copy_from_slice(&u32::from(row).to_le_bytes());
    }
    for (i, b) in blk.iter_mut().enumerate().skip(128) {
        *b = (i % 253) as u8;
    }
    blk
}

/// Stage, launch, and verify the kernel across `n` DPUs. Returns the set
/// (post-launch) and the number of broadcast pages.
fn launch_at_scale(n: usize) -> (DpuSet, usize) {
    const WEIGHT_PAGES: usize = 16; // 1 MiB of broadcast-resident weights
    let img = test_image(11);
    let filter = BinaryFilter::from_u16(0b101_010_101);
    let mut set = DpuSet::allocate(n).expect("alloc");
    let blk = set.define_symbol("blk", WEIGHT_PAGES * MRAM_PAGE_BYTES).expect("blk");
    let out = set.define_symbol("out", crate_align8(OUT_BYTES)).expect("out");
    set.copy_to("blk", 0, &broadcast_block(&img, &filter, WEIGHT_PAGES)).expect("broadcast");

    let program = conv_program(blk.offset, out.offset);
    set.launch(&program, 1).expect("launch");

    // Spot-check DPUs across the set against the host reference kernel.
    let stride = (n / 7).max(1);
    for d in (0..n).step_by(stride).chain([n - 1]) {
        let mut wire = vec![0u8; crate_align8(OUT_BYTES)];
        set.copy_from_dpu(DpuId(d as u32), "out", 0, &mut wire).expect("gather");
        for (row, col) in [(0usize, 0usize), (13, 13), (27, 27), (5, 21)] {
            let got = wire[row * IMAGE_DIM + col] as i8;
            assert_eq!(got, conv3x3_packed(&img, &filter, row, col), "DPU {d} ({row},{col})");
        }
    }
    (set, WEIGHT_PAGES)
}

fn peak_rss_bytes() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: usize = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[test]
fn rank_256_launch_is_correct_bounded_and_replayable() {
    let n = 256;
    let (mut set, weight_pages) = launch_at_scale(n);
    assert_eq!(set.system().ranks().len(), 4, "256 DPUs = 4 ranks");

    // The broadcast weight image is stored once; per-DPU private state is
    // a page or two (the output landing page), not 64 MiB.
    let res = set.system().mram_residency();
    assert_eq!(res.logical_bytes, n * 64 * 1024 * 1024);
    assert!(
        res.distinct_pages <= weight_pages + 2 * n,
        "{} distinct pages for {n} DPUs",
        res.distinct_pages
    );
    assert!(
        res.distinct_bytes <= res.logical_bytes / 100,
        "arena {} B should be <1% of dense {} B",
        res.distinct_bytes,
        res.logical_bytes
    );
    assert!(res.shared_savings_bytes() > 0, "broadcast pages are shared");

    // Whole-set snapshot, clobber everywhere, restore: bit-identical.
    let snap = set.snapshot();
    let mut first = vec![0u8; crate_align8(OUT_BYTES)];
    set.copy_from_dpu(DpuId(17), "out", 0, &mut first).unwrap();
    set.copy_to("out", 0, &[0u8; 8]).unwrap();
    set.restore(&snap).unwrap();
    let mut replay = vec![0u8; crate_align8(OUT_BYTES)];
    set.copy_from_dpu(DpuId(17), "out", 0, &mut replay).unwrap();
    assert_eq!(first, replay, "snapshot restore preserves results");

    // Rank-granular rollback: restoring rank 2 from its pre-zero snapshot
    // leaves the other ranks untouched.
    let rank2 = set.snapshot_rank(2).unwrap();
    set.copy_to_dpu(DpuId(130), "out", 0, &[0u8; 8]).unwrap();
    set.restore_rank(&rank2).unwrap();
    let mut back = vec![0u8; crate_align8(OUT_BYTES)];
    set.copy_from_dpu(DpuId(130), "out", 0, &mut back).unwrap();
    assert_eq!(back, first, "rank restore rolled DPU 130 back");
}

/// The paper's full machine: 2,560 DPUs over 40 ranks. Run by the CI
/// `rank-scale` job (`cargo test --release --test rank_scale -- --ignored`);
/// ignored in the default suite for time.
#[test]
#[ignore = "full-scale smoke: run with --release -- --ignored"]
fn rank_2560_smoke_under_memory_ceiling() {
    let n = 2560;
    let (set, weight_pages) = launch_at_scale(n);
    assert_eq!(set.system().ranks().len(), 40, "2,560 DPUs = 40 ranks");

    let res = set.system().mram_residency();
    assert_eq!(res.logical_bytes, n * 64 * 1024 * 1024); // 160 GiB dense
    assert!(
        res.distinct_pages <= weight_pages + 2 * n,
        "{} distinct pages for {n} DPUs",
        res.distinct_pages
    );
    // The arena holds <0.3% of the dense footprint.
    assert!(
        res.distinct_bytes <= 512 * 1024 * 1024,
        "arena footprint {} B exceeds 512 MiB",
        res.distinct_bytes
    );

    // Whole-process ceiling: well below dense 160 GiB — and below 2 GiB
    // absolute, which bounds WRAM + arena + pool + harness.
    if let Some(rss) = peak_rss_bytes() {
        assert!(rss < 2 * 1024 * 1024 * 1024, "peak RSS {} B exceeds 2 GiB", rss);
    }
}
