//! Tier-1 validation of the eBNN convolution: the binary 3×3 convolution
//! written in actual DPU assembly, executed instruction-by-instruction on
//! the interpreter, must produce bit-identical results to the Rust kernel
//! the Tier-2 pipeline uses — and its cycle count grounds the Tier-2
//! charge model for the conv portion.

use dpu_sim::asm::assemble;
use dpu_sim::Machine;
use ebnn::bconv::{conv3x3_packed, BinaryFilter, BinaryImage};
use ebnn::IMAGE_DIM;

/// WRAM layout used by the kernel.
const IMG_BASE: u32 = 0x100; // 28 packed u32 rows (zero guard words around)
const FILTER_BASE: u32 = 0x200; // 3 u32 words, low 3 bits each
const OUT_BASE: i32 = 0x300; // 28*28 output bytes (conv value as i8)

/// The conv kernel in DPU assembly: one filter over the whole image,
/// SAME padding via zero guard words above and below the row array.
fn conv_program() -> dpu_sim::Program {
    assemble(&format!(
        "\
        movi r9, {FILTER_BASE}\n\
        lw r20, r9, 0        ; filter row 0\n\
        lw r21, r9, 4        ; filter row 1\n\
        lw r22, r9, 8        ; filter row 2\n\
        movi r23, 7          ; 3-bit mask\n\
        movi r12, {dim}\n\
        movi r1, 0           ; row\n\
        rowloop:\n\
        movi r2, 0           ; col\n\
        colloop:\n\
        movi r3, 0           ; matches\n\
        lsli r4, r1, 2\n\
        addi r4, r4, {img_minus4} ; &rows[row-1] (guard word when row=0)\n\
        lw r5, r4, 0         ; fr = 0\n\
        lsli r5, r5, 1\n\
        lsr r6, r5, r2\n\
        xor r6, r6, r20\n\
        xor r6, r6, r23\n\
        and r6, r6, r23\n\
        popcount r7, r6\n\
        add r3, r3, r7\n\
        lw r5, r4, 4         ; fr = 1\n\
        lsli r5, r5, 1\n\
        lsr r6, r5, r2\n\
        xor r6, r6, r21\n\
        xor r6, r6, r23\n\
        and r6, r6, r23\n\
        popcount r7, r6\n\
        add r3, r3, r7\n\
        lw r5, r4, 8         ; fr = 2\n\
        lsli r5, r5, 1\n\
        lsr r6, r5, r2\n\
        xor r6, r6, r22\n\
        xor r6, r6, r23\n\
        and r6, r6, r23\n\
        popcount r7, r6\n\
        add r3, r3, r7\n\
        lsli r3, r3, 1       ; v = 2*matches - 9\n\
        addi r3, r3, -9\n\
        lsli r10, r1, 5      ; out index = row*28 + col\n\
        lsli r11, r1, 2\n\
        sub r10, r10, r11\n\
        add r10, r10, r2\n\
        sb r10, {out}, r3\n\
        addi r2, r2, 1\n\
        bne r2, r12, colloop\n\
        addi r1, r1, 1\n\
        bne r1, r12, rowloop\n\
        halt\n",
        dim = IMAGE_DIM,
        img_minus4 = IMG_BASE - 4,
        out = OUT_BASE,
    ))
    .expect("conv kernel assembles")
}

fn load_inputs(m: &mut Machine, img: &BinaryImage, filter: &BinaryFilter) {
    for (r, &word) in img.rows.iter().enumerate() {
        m.wram.write_u32(IMG_BASE as usize + 4 * r, word).expect("image row");
    }
    for (r, &row) in filter.rows.iter().enumerate() {
        m.wram.write_u32(FILTER_BASE as usize + 4 * r, u32::from(row)).expect("filter row");
    }
}

fn test_image(seed: u32) -> BinaryImage {
    let px: Vec<u8> = (0..IMAGE_DIM * IMAGE_DIM)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(seed.wrapping_mul(97));
            (h >> 24) as u8
        })
        .collect();
    BinaryImage::from_gray(&px, IMAGE_DIM, IMAGE_DIM, 128)
}

#[test]
fn assembly_conv_matches_rust_kernel_bitwise() {
    for (seed, fbits) in [(1u32, 0b101_010_101u16), (7, 0b111_000_111), (42, 0b001_110_100)] {
        let img = test_image(seed);
        let filter = BinaryFilter::from_u16(fbits);
        let program = conv_program();
        let mut m = Machine::default();
        load_inputs(&mut m, &img, &filter);
        m.run(&program, 1).expect("kernel runs");
        for row in 0..IMAGE_DIM {
            for col in 0..IMAGE_DIM {
                let got = m.wram.read_u8(OUT_BASE as usize + row * IMAGE_DIM + col).unwrap() as i8;
                let want = conv3x3_packed(&img, &filter, row, col);
                assert_eq!(got, want, "seed {seed} pixel ({row},{col})");
            }
        }
    }
}

#[test]
fn assembly_conv_cycles_ground_the_tier2_charges() {
    // The Tier-2 eBNN kernel charges ~17 ALU + 3 loads + 1 store +
    // addressing per conv output pixel. The real assembly kernel runs 35
    // instructions per pixel — the Tier-2 charge (with -O0 overhead
    // applied) must agree within 2x, which bounds how far the end-to-end
    // eBNN latency can drift.
    let img = test_image(3);
    let filter = BinaryFilter::from_u16(0b010_101_010);
    let program = conv_program();
    let mut m = Machine::default();
    load_inputs(&mut m, &img, &filter);
    let res = m.run(&program, 1).expect("kernel runs");
    let pixels = (IMAGE_DIM * IMAGE_DIM) as u64;
    let instr_per_pixel = res.instructions / pixels;
    assert!(
        (30..=40).contains(&instr_per_pixel),
        "assembly kernel runs {instr_per_pixel} instructions/pixel"
    );
    // Single tasklet: cycles ≈ 11 × instructions.
    let cyc_per_pixel = res.cycles / pixels;
    assert!(
        (instr_per_pixel * 11).abs_diff(cyc_per_pixel) <= 11,
        "cycles/pixel {cyc_per_pixel} vs 11x instructions {instr_per_pixel}"
    );
}

#[test]
fn assembly_conv_scales_with_tasklets() {
    // Run the same kernel with each tasklet handling the whole image into
    // a disjoint output region is unnecessary — here we simply verify the
    // kernel is reentrant across tasklets (all compute the same output)
    // and that 11 tasklets do not change the functional result.
    let img = test_image(5);
    let filter = BinaryFilter::from_u16(0b100_010_001);
    let program = conv_program();
    let mut m = Machine::default();
    load_inputs(&mut m, &img, &filter);
    let res11 = m.run(&program, 11).expect("kernel runs");
    for row in [0usize, 13, 27] {
        for col in [0usize, 13, 27] {
            let got = m.wram.read_u8(OUT_BASE as usize + row * IMAGE_DIM + col).unwrap() as i8;
            assert_eq!(got, conv3x3_packed(&img, &filter, row, col));
        }
    }
    // 11 tasklets doing 11x the work take about as long as 1 tasklet doing
    // it once: the pipeline fills.
    let mut m1 = Machine::default();
    load_inputs(&mut m1, &img, &filter);
    let res1 = m1.run(&program, 1).expect("kernel runs");
    let ratio = res11.cycles as f64 / res1.cycles as f64;
    assert!(ratio < 1.15, "11 tasklets / 1 tasklet cycle ratio {ratio}");
}

#[test]
fn generated_full_program_matches_model_and_tier2_costs() {
    // The generated Tier-1 eBNN program (ebnn::codegen) is the strongest
    // calibration cross-check: functionally identical to the model, and
    // its measured cycles bracket the Tier-2 estimates the way compiler
    // optimization levels should — the O3 estimate within ~20 %, the O0
    // estimate ~2x higher (stack-traffic overhead the generated assembly
    // doesn't have).
    use ebnn::{EbnnModel, EbnnPipeline, ModelConfig};
    let model = EbnnModel::generate(ModelConfig::default()); // 8 filters
    let imgs: Vec<_> = (0..16).map(|i| ebnn::mnist::synth_digit(i % 10, i as u64)).collect();

    let (features, tier1) = ebnn::codegen::run_tier1_batch(&model, &imgs).unwrap();
    for (i, img) in imgs.iter().enumerate() {
        assert_eq!(features[i], model.features(&model.binarize(&img.pixels)), "image {i}");
    }

    let t1 = tier1.makespan_cycles();
    let t2_o0 = EbnnPipeline::new(model.clone()).infer(&imgs).unwrap().makespan_cycles;
    let t2_o3 = EbnnPipeline::new(model)
        .with_opt(pim_host::OptLevel::O3)
        .infer(&imgs)
        .unwrap()
        .makespan_cycles;
    let r_o3 = t2_o3 as f64 / t1 as f64;
    let r_o0 = t2_o0 as f64 / t1 as f64;
    assert!((0.6..=1.4).contains(&r_o3), "O3 estimate / tier1 = {r_o3:.2}");
    assert!((1.5..=3.5).contains(&r_o0), "O0 estimate / tier1 = {r_o0:.2}");
}
