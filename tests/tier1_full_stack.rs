//! Full-stack Tier-1 integration: the complete §4.1 flow at instruction
//! level — host pads and transfers a binarized image into MRAM, the DPU
//! program DMAs it to WRAM, runs the binary convolution, writes the result
//! back to MRAM, and the host gathers and classifies. Every byte crosses
//! every boundary the real system has.

use dpu_sim::asm::assemble;
use dpu_sim::{DpuId, Program};
use ebnn::bconv::{conv3x3_packed, BinaryFilter, BinaryImage};
use ebnn::IMAGE_DIM;
use pim_host::DpuSet;

/// MRAM symbol layout (defined through the host symbol table):
///   image:  112 bytes of packed rows
///   filter: 8 bytes (u32 per filter row, first 3 used... 3 u32 = 12 → 16)
///   result: 784 bytes of conv outputs (i8)
/// WRAM layout inside the program:
///   0x100 image rows (with guard words), 0x200 filter, 0x300 results.
fn full_stack_program() -> Program {
    assemble(&format!(
        "\
        ; --- phase 1: DMA inputs MRAM -> WRAM ---\n\
        movi r1, 0x100       ; wram image base\n\
        movi r2, 0           ; mram offset of `image`\n\
        movi r3, 112\n\
        mram.read r1, r2, r3\n\
        movi r1, 0x200       ; wram filter base\n\
        movi r2, 112         ; mram offset of `filter` (16-byte aligned region)\n\
        movi r3, 16\n\
        mram.read r1, r2, r3\n\
        ; --- phase 2: the convolution (same kernel as tier1_ebnn_kernel) ---\n\
        movi r9, 0x200\n\
        lw r20, r9, 0\n\
        lw r21, r9, 4\n\
        lw r22, r9, 8\n\
        movi r23, 7\n\
        movi r12, {dim}\n\
        movi r1, 0\n\
        rowloop:\n\
        movi r2, 0\n\
        colloop:\n\
        movi r3, 0\n\
        lsli r4, r1, 2\n\
        addi r4, r4, 252\n\
        lw r5, r4, 0\n\
        lsli r5, r5, 1\n\
        lsr r6, r5, r2\n\
        xor r6, r6, r20\n\
        xor r6, r6, r23\n\
        and r6, r6, r23\n\
        popcount r7, r6\n\
        add r3, r3, r7\n\
        lw r5, r4, 4\n\
        lsli r5, r5, 1\n\
        lsr r6, r5, r2\n\
        xor r6, r6, r21\n\
        xor r6, r6, r23\n\
        and r6, r6, r23\n\
        popcount r7, r6\n\
        add r3, r3, r7\n\
        lw r5, r4, 8\n\
        lsli r5, r5, 1\n\
        lsr r6, r5, r2\n\
        xor r6, r6, r22\n\
        xor r6, r6, r23\n\
        and r6, r6, r23\n\
        popcount r7, r6\n\
        add r3, r3, r7\n\
        lsli r3, r3, 1\n\
        addi r3, r3, -9\n\
        lsli r10, r1, 5\n\
        lsli r11, r1, 2\n\
        sub r10, r10, r11\n\
        add r10, r10, r2\n\
        sb r10, 0x300, r3\n\
        addi r2, r2, 1\n\
        bne r2, r12, colloop\n\
        addi r1, r1, 1\n\
        bne r1, r12, rowloop\n\
        ; --- phase 3: DMA result WRAM -> MRAM ---\n\
        movi r1, 0x300\n\
        movi r2, 128         ; mram offset of `result`\n\
        movi r3, 784\n\
        mram.write r1, r2, r3\n\
        trace r12            ; completion marker in the DPU log\n\
        halt\n",
        dim = IMAGE_DIM,
    ))
    .expect("full-stack program assembles")
}

#[test]
fn full_stack_conv_through_host_runtime() {
    // Two DPUs, different images: verifies per-DPU isolation end to end.
    let mut set = DpuSet::allocate(2).expect("alloc");
    set.define_symbol("image", 112).expect("image");
    set.define_symbol("filter", 16).expect("filter");
    set.define_symbol("result", 784).expect("result");

    let filter = BinaryFilter::from_u16(0b110_001_011);
    let mut filter_wire = Vec::new();
    for &row in &filter.rows {
        filter_wire.extend_from_slice(&u32::from(row).to_le_bytes());
    }
    filter_wire.resize(16, 0);
    set.copy_to("filter", 0, &filter_wire).expect("filter xfer");

    let images: Vec<BinaryImage> = (0..2u64)
        .map(|d| {
            let digit = ebnn::mnist::synth_digit((d as usize) * 3 + 1, d);
            BinaryImage::from_gray(&digit.pixels, IMAGE_DIM, IMAGE_DIM, 128)
        })
        .collect();
    for (d, img) in images.iter().enumerate() {
        set.copy_to_dpu(DpuId(d as u32), "image", 0, &img.to_bytes()).expect("image xfer");
    }

    let result = set.launch(&full_stack_program(), 1).expect("launch");
    // The trace marker proves both DPUs reached phase 3.
    for r in &result.per_dpu {
        assert_eq!(r.trace, vec![(0, IMAGE_DIM as u32)]);
        assert_eq!(r.dma_transfers, 3); // image in, filter in, result out
    }

    for (d, img) in images.iter().enumerate() {
        let mut out = vec![0u8; 784];
        set.copy_from_dpu(DpuId(d as u32), "result", 0, &mut out).expect("gather");
        for row in 0..IMAGE_DIM {
            for col in 0..IMAGE_DIM {
                let got = out[row * IMAGE_DIM + col] as i8;
                let want = conv3x3_packed(img, &filter, row, col);
                assert_eq!(got, want, "dpu {d} pixel ({row},{col})");
            }
        }
    }
}

#[test]
fn full_stack_timing_is_dma_plus_compute() {
    let mut set = DpuSet::allocate(1).expect("alloc");
    set.define_symbol("image", 112).expect("image");
    set.define_symbol("filter", 16).expect("filter");
    set.define_symbol("result", 784).expect("result");
    let img = BinaryImage::from_gray(&vec![200u8; 784], IMAGE_DIM, IMAGE_DIM, 128);
    set.copy_to("image", 0, &img.to_bytes()).expect("xfer");
    let result = set.launch(&full_stack_program(), 1).expect("launch");
    let r = &result.per_dpu[0];
    // DMA: 112 + 16 in, 784 out -> (25+56) + (25+8) + (25+392) = 531 cycles.
    assert_eq!(r.dma_cycles, 531);
    assert_eq!(r.dma_bytes, 912);
    // Compute dominates: ~28k instructions at 11 cycles each.
    assert!(r.instructions > 25_000);
    assert!(r.cycles > r.instructions * 10);
}
