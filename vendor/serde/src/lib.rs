//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so the real serde cannot
//! be fetched. This shim keeps the workspace's `#[derive(Serialize,
//! Deserialize)]` / `serde_json` surface working with a much simpler
//! architecture: instead of serde's visitor machinery, both traits convert
//! through an owned JSON-like [`Value`] tree. The derive macros (from the
//! sibling `serde_derive` stub) generate externally-tagged representations
//! compatible with what `serde_json` would emit for the same types.

#![forbid(unsafe_code)]

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{DeError, Number, Value};

/// Types convertible into a [`Value`] tree (the stand-in for
/// `serde::Serialize`).
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree (the stand-in for
/// `serde::Deserialize`).
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    ///
    /// # Errors
    /// [`DeError`] describing the first mismatch encountered.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// `serde::ser` compatibility alias module.
pub mod ser {
    pub use crate::Serialize;
}

/// `serde::de` compatibility alias module.
pub mod de {
    pub use crate::{DeError, Deserialize};
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::U64(*self as u64)) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            // Non-negative signed values normalize to the unsigned form,
            // like real serde_json, so Number equality is structural.
            fn to_value(&self) -> Value {
                let v = *self as i64;
                Value::Number(if v >= 0 {
                    Number::U64(v as u64)
                } else {
                    Number::I64(v)
                })
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Map keys must render as strings in the JSON model.
pub trait SerializeKey {
    /// String form of the key.
    fn key_string(&self) -> String;
}

impl SerializeKey for String {
    fn key_string(&self) -> String {
        self.clone()
    }
}

impl SerializeKey for str {
    fn key_string(&self) -> String {
        self.to_owned()
    }
}

impl<K: SerializeKey + ?Sized> SerializeKey for &K {
    fn key_string(&self) -> String {
        (**self).key_string()
    }
}

macro_rules! key_via_display {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn key_string(&self) -> String { self.to_string() }
        }
    )*};
}
key_via_display!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, char);

impl<K: SerializeKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.key_string(), v.to_value())).collect())
    }
}

impl<K: SerializeKey, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.key_string(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_number().ok_or_else(|| DeError::expected("number", v))?;
                let wide = n.as_i128();
                <$t>::try_from(wide).map_err(|_| {
                    DeError::new(format!("{wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_number().map(Number::as_f64).ok_or_else(|| DeError::expected("number", v))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::expected(
                        concat!("array of length ", $len), other)),
                }
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => {
                entries.iter().map(|(k, val)| Ok((k.clone(), V::from_value(val)?))).collect()
            }
            other => Err(DeError::expected("object", other)),
        }
    }
}

// Real serde borrows `&str` from the deserializer input; this stub's
// `Value` tree owns its strings, so `&'static str` fields (used in the
// workspace's constant layer tables) are satisfied by leaking. These
// tables are tiny and deserialized at most a handful of times per
// process, so the leak is bounded and acceptable.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let vec: Vec<T> = Deserialize::from_value(v)?;
        let len = vec.len();
        vec.try_into()
            .map_err(|_| DeError::new(format!("expected array of {N} elements, got {len}")))
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => {
                entries.iter().map(|(k, val)| Ok((k.clone(), V::from_value(val)?))).collect()
            }
            other => Err(DeError::expected("object", other)),
        }
    }
}

/// Helpers used by the generated derive code; not public API.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Fetch and deserialize a required struct field.
    ///
    /// # Errors
    /// Missing field or inner mismatch.
    pub fn field<T: Deserialize>(v: &Value, strukt: &str, name: &str) -> Result<T, DeError> {
        match v.get(name) {
            Some(inner) => {
                T::from_value(inner).map_err(|e| DeError::new(format!("{strukt}.{name}: {e}")))
            }
            None => {
                // Tolerate absent Option fields (serde's `default` would).
                T::from_value(&Value::Null)
                    .map_err(|_| DeError::new(format!("{strukt}: missing field `{name}`")))
            }
        }
    }
}
