//! The JSON-like value tree both stub traits convert through.

use std::fmt;

/// A JSON number preserving integer fidelity (cycle counts are `u64` and
/// exceed `f64`'s 53-bit integer range in long simulations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative (or any signed) integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// Widest signed integer view (lossy for `F64`: truncates).
    #[must_use]
    pub fn as_i128(self) -> i128 {
        match self {
            Number::U64(u) => i128::from(u),
            Number::I64(i) => i128::from(i),
            Number::F64(f) => f as i128,
        }
    }

    /// Float view.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(u) => u as f64,
            Number::I64(i) => i as f64,
            Number::F64(f) => f,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::U64(u) => write!(f, "{u}"),
            Number::I64(i) => write!(f, "{i}"),
            Number::F64(x) => {
                if x.is_finite() {
                    // Emit a decimal point for round floats so the value
                    // re-parses as a float (serde_json does the same).
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no NaN/inf; null is serde_json's behavior.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An owned JSON value. Objects preserve insertion order (readability of
/// exported traces beats key sorting).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` elsewhere.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number view.
    #[must_use]
    pub fn as_number(&self) -> Option<Number> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// `u64` view of a number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self.as_number() {
            Some(Number::U64(u)) => Some(u),
            Some(Number::I64(i)) => u64::try_from(i).ok(),
            Some(Number::F64(f)) if f >= 0.0 && f.fract() == 0.0 => Some(f as u64),
            _ => None,
        }
    }

    /// `i64` view of a number.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        self.as_number().and_then(|n| i64::try_from(n.as_i128()).ok())
    }

    /// `f64` view of a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        self.as_number().map(Number::as_f64)
    }

    /// Array view.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view (slice of insertion-ordered entries).
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// One-word description of the variant, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error (stand-in for `serde::de::Error` implementors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// An error with the given message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X, found Y" error.
    #[must_use]
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}
