//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used in this workspace; since Rust
//! 1.63 the standard library's `std::thread::scope` provides the same
//! borrow-friendly scoped spawning, so this shim simply adapts the
//! crossbeam calling convention (spawn closures receive the scope, and
//! `scope` returns a `Result`) onto std.

#![forbid(unsafe_code)]

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    /// Handle passed to `scope` closures; `spawn` mirrors crossbeam's
    /// signature where the spawned closure receives the scope again.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The result is intentionally discarded:
        /// panics propagate when the scope joins, as with crossbeam.
        pub fn spawn<F, T>(&self, f: F)
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            });
        }
    }

    /// Run `f` with a thread scope; all spawned threads join before this
    /// returns. Errors never occur in this shim (panics propagate instead),
    /// so the `Result` exists purely for crossbeam signature compatibility.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_spawn_borrows_and_joins() {
        let mut slots = vec![0u32; 8];
        super::thread::scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move |_| {
                    *slot = i as u32 + 1;
                });
            }
        })
        .unwrap();
        assert_eq!(slots, (1..=8).collect::<Vec<u32>>());
    }
}
