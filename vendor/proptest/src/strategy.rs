//! Value-generation strategies: the core [`Strategy`] trait plus the
//! combinators the workspace uses (`Just`, ranges, tuples, `prop_map`,
//! `prop_oneof!`'s [`OneOf`]).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Produces random values of `Self::Value` from a seeded generator.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among boxed alternatives; built by `prop_oneof!`.
pub struct OneOf<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Wrap a non-empty list of alternatives.
    ///
    /// # Panics
    /// When `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
