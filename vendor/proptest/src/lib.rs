//! Offline stand-in for the `proptest` crate.
//!
//! Runs each property over `ProptestConfig::cases` deterministic random
//! inputs (seeded from the test's name, so failures reproduce across runs)
//! and panics on the first counterexample. Shrinking is intentionally
//! omitted — the workspace's properties are cheap enough to debug from the
//! raw failing case, and shrinking is the bulk of real proptest's
//! complexity. Supported surface: range/tuple/`Just`/`any` strategies,
//! `prop_map`, `prop_oneof!`, `collection::vec`, `proptest!` with an
//! optional `proptest_config`, and `prop_assert!`/`prop_assert_eq!`.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Alias module mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests.
///
/// ```text
/// use proptest::prelude::*;
/// proptest! {
///     #[test]
///     fn add_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::deterministic_rng(stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat), &mut __rng);
                    )+
                    // The body runs in a Result-returning closure so
                    // `return Ok(())` works for early case discards, as
                    // in real proptest.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(__msg) = __outcome {
                        panic!("proptest case failed: {__msg}");
                    }
                }
            }
        )*
    };
}

/// Assert within a property body (maps to `assert!`; real proptest's
/// early-return-error form is unnecessary without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniformly choose among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( ::std::boxed::Box::new($arm)
               as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>> ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..50, y in -4i32..=4, f in 0.5f32..2.0) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn vec_respects_size_range(v in crate::collection::vec(any::<u8>(), 3..9)) {
            prop_assert!((3..9).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![Just(0u32), (1u32..10).prop_map(|x| x * 100),];
        let mut rng = crate::test_runner::deterministic_rng("oneof");
        let mut saw_just = false;
        let mut saw_mapped = false;
        for _ in 0..100 {
            let v: u32 = Strategy::generate(&strat, &mut rng);
            if v == 0 {
                saw_just = true;
            } else {
                assert_eq!(v % 100, 0);
                saw_mapped = true;
            }
        }
        assert!(saw_just && saw_mapped);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::deterministic_rng("same-name");
        let mut b = crate::test_runner::deterministic_rng("same-name");
        let s = 0u64..1_000_000;
        for _ in 0..50 {
            assert_eq!(Strategy::generate(&s, &mut a), Strategy::generate(&s, &mut b));
        }
    }
}
