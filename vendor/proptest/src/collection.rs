//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Accepted length specifications for [`vec`]: an exact `usize` or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range {r:?}");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range {r:?}");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec<T>` strategy: length drawn from `size`, elements from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
