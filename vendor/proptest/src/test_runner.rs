//! Test-execution configuration and deterministic seeding.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The generator threaded through strategies.
pub type TestRng = StdRng;

/// How a `proptest!` block runs (only the case count is configurable).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest's default; properties in this workspace that need
        // fewer cases override via `ProptestConfig::with_cases`.
        ProptestConfig { cases: 256 }
    }
}

/// RNG seeded from the test's name (FNV-1a), so every run of a given
/// property sees the same case sequence and failures reproduce exactly.
#[must_use]
pub fn deterministic_rng(test_name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}
