//! `any::<T>()` — full-range strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Strategy over every value of `T` (floats are kept finite).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

// Finite floats only: NaN/inf values would make nearly every numeric
// property vacuously fail for reasons unrelated to the code under test.
impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_range(-1.0e9f64..1.0e9)
    }
}
