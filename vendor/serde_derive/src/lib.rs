//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` without
//! `syn`/`quote` (neither is available offline) by walking the raw
//! `proc_macro::TokenStream`. Supported shapes — which cover every derived
//! type in this workspace — are non-generic structs (named, tuple, unit)
//! and enums whose variants are unit, newtype, tuple, or struct-like.
//! The generated representation is externally tagged, matching what real
//! serde + serde_json produce for the same types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derive the value-tree `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derive the value-tree `Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor { tokens: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip any number of `#[...]` attributes.
    fn skip_attrs(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.pos += 1;
                }
                other => panic!("expected [...] after # in attribute, got {other:?}"),
            }
        }
    }

    /// Skip `pub`, `pub(...)`, `crate`.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected identifier, got {other:?}"),
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kw = c.expect_ident();
    let name = c.expect_ident();
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type `{name}` is not supported");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("unexpected enum body {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde stub derive supports struct/enum only, got `{other}`"),
    }
}

/// Field names of a `{ ... }` field list.
fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(ts);
    let mut names = Vec::new();
    loop {
        c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        c.skip_vis();
        names.push(c.expect_ident());
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        skip_type_until_comma(&mut c);
    }
    names
}

/// Number of fields in a `( ... )` tuple field list.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut c = Cursor::new(ts);
    let mut count = 0;
    loop {
        c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        c.skip_vis();
        count += 1;
        skip_type_until_comma(&mut c);
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                c.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        skip_type_until_comma(&mut c);
        variants.push(Variant { name, fields });
    }
    variants
}

/// Consume tokens up to and including the next comma that sits outside any
/// `<...>` nesting (groups are single trees, so only angle brackets need
/// explicit depth tracking).
fn skip_type_until_comma(c: &mut Cursor) {
    let mut angle: i32 = 0;
    while let Some(t) = c.peek() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' if angle > 0 => angle -= 1,
                ',' if angle == 0 => {
                    c.pos += 1;
                    return;
                }
                _ => {}
            }
        }
        c.pos += 1;
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, ser_struct_body(name, fields)),
        Item::Enum { name, variants } => (name, ser_enum_body(name, variants)),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_struct_body(_name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_owned(),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Fields::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
    }
}

fn ser_enum_body(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => {
                    format!("{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string())")
                }
                Fields::Tuple(1) => format!(
                    "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                     ::serde::Serialize::to_value(__f0))])"
                ),
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!(
                        "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                         ::serde::Value::Array(vec![{}]))])",
                        binds.join(", "),
                        items.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let binds = fs.join(", ");
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![\
                         (\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))])",
                        entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!("match self {{ {} }}", arms.join(",\n"))
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, de_struct_body(name, fields)),
        Item::Enum { name, variants } => (name, de_enum_body(name, variants)),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn de_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("{{ let _ = __v; Ok({name}) }}"),
        Fields::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Array(__items) if __items.len() == {n} => \
                 Ok({name}({})),\n\
                 __other => Err(::serde::DeError::expected(\
                 \"array of length {n} for {name}\", __other)),\n\
                 }}",
                items.join(", ")
            )
        }
        Fields::Named(fs) => {
            let inits: Vec<String> = fs
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(__v, \"{name}\", \"{f}\")?"))
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Object(_) => Ok({name} {{ {} }}),\n\
                 __other => Err(::serde::DeError::expected(\
                 \"object for struct {name}\", __other)),\n\
                 }}",
                inits.join(", ")
            )
        }
    }
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| format!("\"{0}\" => Ok({name}::{0})", v.name))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.fields, Fields::Unit))
        .map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => unreachable!(),
                Fields::Tuple(1) => format!(
                    "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "\"{vn}\" => match __inner {{\n\
                         ::serde::Value::Array(__items) if __items.len() == {n} => \
                         Ok({name}::{vn}({})),\n\
                         __other => Err(::serde::DeError::expected(\
                         \"array of length {n} for {name}::{vn}\", __other)),\n\
                         }}",
                        items.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let inits: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::__private::field(__inner, \"{name}::{vn}\", \"{f}\")?"
                            )
                        })
                        .collect();
                    format!("\"{vn}\" => Ok({name}::{vn} {{ {} }})", inits.join(", "))
                }
            }
        })
        .collect();

    format!(
        "match __v {{\n\
         ::serde::Value::String(__s) => match __s.as_str() {{\n\
         {units}\n\
         __other => Err(::serde::DeError::new(format!(\
         \"unknown {name} variant `{{__other}}`\"))),\n\
         }},\n\
         ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
         let (__tag, __inner) = &__entries[0];\n\
         match __tag.as_str() {{\n\
         {tagged}\n\
         __other => Err(::serde::DeError::new(format!(\
         \"unknown {name} variant `{{__other}}`\"))),\n\
         }}\n\
         }},\n\
         __other => Err(::serde::DeError::expected(\"{name} variant\", __other)),\n\
         }}",
        units = if unit_arms.is_empty() {
            String::new()
        } else {
            format!("{},", unit_arms.join(",\n"))
        },
        tagged = if tagged_arms.is_empty() {
            String::new()
        } else {
            format!("{},", tagged_arms.join(",\n"))
        },
    )
}
