//! Offline stand-in for `serde_json`.
//!
//! Provides JSON text output (`to_string`, `to_string_pretty`), parsing
//! (`from_str`), value construction (`json!`, [`to_value`]) over the stub
//! `serde` crate's [`Value`] tree. The emitted text is real JSON — the
//! Chrome trace files written through this shim load in Perfetto and
//! `chrome://tracing` unchanged.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::{Number, Value};

mod parse;
mod write;

/// Any serde_json error (parse or data-shape mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub(crate) String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to compact JSON text.
///
/// # Errors
/// Never fails in this shim (the signature matches serde_json).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::compact(&value.to_value()))
}

/// Serialize `value` to human-indented JSON text.
///
/// # Errors
/// Never fails in this shim.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::pretty(&value.to_value()))
}

/// Convert any serializable value into a [`Value`] tree.
#[must_use]
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parse JSON text into any deserializable type.
///
/// # Errors
/// Parse errors (with byte offsets) or shape mismatches.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse::parse(s)?;
    T::from_value(&v).map_err(|e| Error(e.to_string()))
}

/// Build a [`Value`] in place.
///
/// Supports `null`, array literals, object literals with string-literal
/// keys, and arbitrary serializable expressions in value position. Nested
/// arrays/objects recurse through the macro; element/value splitting is
/// done by token-tree munching so multi-token expressions work.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::__json_array!(@elems [] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::__json_object!(@entries [] $($tt)*) };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Array-literal muncher for [`json!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_array {
    (@elems [$($done:expr),*]) => {
        $crate::Value::Array(vec![$($done),*])
    };
    (@elems [$($done:expr),*] null $(, $($rest:tt)*)?) => {
        $crate::__json_array!(@elems [$($done,)* $crate::Value::Null] $($($rest)*)?)
    };
    (@elems [$($done:expr),*] {$($obj:tt)*} $(, $($rest:tt)*)?) => {
        $crate::__json_array!(
            @elems [$($done,)* $crate::json!({$($obj)*})] $($($rest)*)?)
    };
    (@elems [$($done:expr),*] [$($arr:tt)*] $(, $($rest:tt)*)?) => {
        $crate::__json_array!(
            @elems [$($done,)* $crate::json!([$($arr)*])] $($($rest)*)?)
    };
    (@elems [$($done:expr),*] $e:expr $(, $($rest:tt)*)?) => {
        $crate::__json_array!(
            @elems [$($done,)* $crate::to_value(&$e)] $($($rest)*)?)
    };
}

/// Object-literal muncher for [`json!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    (@entries [$($done:expr),*]) => {
        $crate::Value::Object(vec![$($done),*])
    };
    (@entries [$($done:expr),*] $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::__json_object!(
            @entries [$($done,)* ($key.to_string(), $crate::Value::Null)]
            $($($rest)*)?)
    };
    (@entries [$($done:expr),*] $key:literal : {$($obj:tt)*} $(, $($rest:tt)*)?) => {
        $crate::__json_object!(
            @entries [$($done,)* ($key.to_string(), $crate::json!({$($obj)*}))]
            $($($rest)*)?)
    };
    (@entries [$($done:expr),*] $key:literal : [$($arr:tt)*] $(, $($rest:tt)*)?) => {
        $crate::__json_object!(
            @entries [$($done,)* ($key.to_string(), $crate::json!([$($arr)*]))]
            $($($rest)*)?)
    };
    (@entries [$($done:expr),*] $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $crate::__json_object!(
            @entries [$($done,)* ($key.to_string(), $crate::to_value(&$val))]
            $($($rest)*)?)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = json!({
            "name": "dpu",
            "cycles": 18446744073709551615u64,
            "ratio": 0.5,
            "tags": [1, 2, 3],
            "nested": {"ok": true, "nothing": null},
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("cycles").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn pretty_output_is_indented_json() {
        let v = json!({"a": [1, 2], "b": "x"});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"a\": ["));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = json!({"s": "line\nquote\"backslash\\tab\tunicode\u{1F600}"});
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{unquoted: 1}").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let v: Value = from_str("[-3, -2.5, 1e3, 2.5e-2]").unwrap();
        let a = v.as_array().unwrap();
        assert_eq!(a[0].as_i64(), Some(-3));
        assert!((a[1].as_f64().unwrap() + 2.5).abs() < 1e-12);
        assert!((a[2].as_f64().unwrap() - 1000.0).abs() < 1e-9);
        assert!((a[3].as_f64().unwrap() - 0.025).abs() < 1e-12);
    }
}
