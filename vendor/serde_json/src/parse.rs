//! A small recursive-descent JSON parser producing the stub `Value` tree.

use crate::Error;
use serde::{Number, Value};

pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(ch);
                            continue; // hex4 advanced pos itself
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number chars");
        if text.is_empty() || text == "-" {
            return Err(self.err("malformed number"));
        }
        let n = if is_float {
            Number::F64(text.parse().map_err(|_| self.err("malformed number"))?)
        } else if text.starts_with('-') {
            // "-0" normalizes to the unsigned form, matching Serialize.
            let v: i64 = text.parse().map_err(|_| self.err("malformed number"))?;
            if v >= 0 {
                Number::U64(v as u64)
            } else {
                Number::I64(v)
            }
        } else {
            Number::U64(text.parse().map_err(|_| self.err("malformed number"))?)
        };
        Ok(Value::Number(n))
    }
}
