//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `black_box` — with a
//! simple mean/min wall-clock report instead of the real crate's
//! statistical machinery. Good enough to keep `cargo bench` runnable and
//! the bench files compiling offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration inputs produced by `iter_batched` setup are grouped.
/// The stub runs one setup per timed iteration regardless of variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: setup per iteration is cheap.
    SmallInput,
    /// Large inputs: the real crate batches these differently; we don't.
    LargeInput,
    /// One setup per iteration (identical to this stub's behavior anyway).
    PerIteration,
}

/// Entry point handed to each benchmark target function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Set the default iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accept (and ignore) CLI arguments, mirroring the real API shape.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, f);
        self
    }

    /// No-op terminal report, mirroring the real API shape.
    pub fn final_summary(&self) {}
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the iteration count for subsequent `bench_function` calls.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// End the group (drop would do; kept for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { iters: sample_size as u64, samples: Vec::new() };
    f(&mut b);
    let samples = b.samples;
    if samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / u32::try_from(samples.len()).unwrap_or(u32::MAX);
    let min = samples.iter().min().expect("non-empty");
    println!("{label}: mean {:>12.3?}  min {:>12.3?}  ({} iters)", mean, min, samples.len());
}

/// Times the benchmark routine; handed to the closure by `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` with a fresh untimed `setup` input per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundle benchmark target functions into a named runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce `fn main` running one or more `criterion_group!` runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(5);
        g.bench_function("iter", |b| b.iter(|| black_box(2 + 2)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
        g.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn group_runs_and_times() {
        benches();
    }

    #[test]
    fn ungrouped_bench_function() {
        Criterion::default().sample_size(3).bench_function("plain", |b| b.iter(|| black_box(1)));
    }
}
