//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the real `rand` cannot be fetched. This vendored crate implements the
//! (small) API surface the workspace actually uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `Rng::gen_bool` — on top of a deterministic xoshiro256++
//! generator. Streams differ from the real crate's, which is fine: every
//! in-repo use seeds explicitly and asserts statistical, not golden,
//! properties.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive, int or float).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// When `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding interface (only the `seed_from_u64` entry point is used here).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;

    /// Construct from OS entropy — stubbed to a fixed seed so builds stay
    /// deterministic offline.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9e37_79b9_7f4a_7c15)
    }
}

/// Map a `u64` to `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range (or other distribution source) that can produce `T` samples.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range {:?}", self);
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = rng.next_u64() % span;
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = rng.next_u64() % (span + 1);
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range {:?}", self);
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// splitmix64 (deterministic, high-quality, tiny).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix(&mut state);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [a, b, c, d] = self.s;
            let result = a.wrapping_add(d).rotate_left(23).wrapping_add(a);
            let t = b << 17;
            let mut s = [a, b, c, d];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// A convenience thread-local-style generator (fixed-seeded: offline builds
/// must be reproducible).
#[must_use]
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::seed_from_u64(0x5eed_5eed_5eed_5eed)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i32 = r.gen_range(-50..50);
            assert!((-50..50).contains(&x));
            let y: f32 = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&y));
            let z: i32 = r.gen_range(-2..=2);
            assert!((-2..=2).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
