//! # pim-repro — reproduction of *"Implementation and Evaluation of Deep
//! Neural Networks in Commercially Available Processing in Memory
//! Hardware"* (Das, 2022)
//!
//! This umbrella crate re-exports the workspace members and hosts the
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`). The library surface lives in the member crates:
//!
//! | crate | role |
//! |---|---|
//! | [`dpu_sim`] | UPMEM DPU simulator (ISA, pipeline, memories, DMA) |
//! | [`pim_host`] | host runtime (DPU sets, symbols, transfers, launch) |
//! | [`ebnn`] | binary CNN + LUT rewrite + multi-image-per-DPU mapping |
//! | [`yolo_pim`] | quantized YOLOv3 + row-per-DPU GEMM mapping |
//! | [`pim_model`] | Chapter-5 analytical PIM model |
//! | [`cpu_baseline`] | Intel Xeon comparison point |
//! | [`pim_core`] | deployment framework + experiment drivers |
//!
//! Start with `examples/quickstart.rs`, then `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for paper-vs-measured numbers.

#![forbid(unsafe_code)]
// The README's code blocks compile and run as doctests of this crate.
#![doc = include_str!("../README.md")]

/// The guided tour (`docs/TUTORIAL.md`), included here so its code
/// snippets compile and run as doctests.
#[doc = include_str!("../docs/TUTORIAL.md")]
pub mod tutorial {}

pub use cpu_baseline;
pub use dpu_sim;
pub use ebnn;
pub use pim_core;
pub use pim_host;
pub use pim_model;
pub use yolo_pim;
