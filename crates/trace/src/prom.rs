//! Prometheus text-exposition export for a [`MetricsRegistry`].
//!
//! Renders the standard text format (version 0.0.4) that Prometheus,
//! VictoriaMetrics, and `promtool` ingest: counters and gauges as single
//! samples, histograms as summaries with `quantile` labels plus `_sum`
//! and `_count` series. Metric names are sanitized (`.` and any other
//! non-`[a-zA-Z0-9_:]` byte become `_`), and output order follows the
//! registry's sorted keys, so the exposition is deterministic and
//! diffable just like the JSON snapshot.

use std::fmt::Write as _;

use crate::metrics::MetricsRegistry;

/// Quantiles exported for every histogram, matching the JSON snapshot.
const QUANTILES: [(f64, &str); 4] =
    [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

/// Sanitize a registry key into a legal Prometheus metric name.
/// Dots (our namespace separator) map to underscores; a leading digit
/// gets an underscore prefix.
#[must_use]
pub fn prometheus_name(key: &str) -> String {
    let mut out = String::with_capacity(key.len() + 1);
    for (i, c) in key.chars().enumerate() {
        let legal =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if legal {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Format an f64 sample the way Prometheus expects (no exponent needed
/// for our value ranges; integral values print without a trailing `.0`
/// only when they came from a counter).
fn sample(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

/// Render the registry in the Prometheus text exposition format.
///
/// Counters become `# TYPE <name> counter`, gauges `gauge`, histograms
/// `summary` (quantile-labelled samples plus `_sum`/`_count`).
#[must_use]
pub fn prometheus_text(metrics: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (key, v) in metrics.counters() {
        let name = prometheus_name(key);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (key, v) in metrics.gauges() {
        let name = prometheus_name(key);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", sample(v));
    }
    for (key, h) in metrics.histograms() {
        let name = prometheus_name(key);
        let _ = writeln!(out, "# TYPE {name} summary");
        for (q, label) in QUANTILES {
            let value = h.quantile(q).unwrap_or(0.0);
            let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", sample(value));
        }
        let _ = writeln!(out, "{name}_sum {}", sample(h.sum()));
        let _ = writeln!(out, "{name}_count {}", h.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitized() {
        assert_eq!(prometheus_name("launch.dma.bytes"), "launch_dma_bytes");
        assert_eq!(prometheus_name("obs.p99"), "obs_p99");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("a-b c"), "a_b_c");
    }

    #[test]
    fn exposition_covers_all_kinds_in_order() {
        let mut m = MetricsRegistry::new();
        m.counter_add("launch.instructions", 1000);
        m.gauge_set("launch.ipc", 0.75);
        for c in [100.0, 200.0, 300.0] {
            m.observe("dpu.cycles", c);
        }
        let text = prometheus_text(&m);
        assert!(text.contains("# TYPE launch_instructions counter\nlaunch_instructions 1000\n"));
        assert!(text.contains("# TYPE launch_ipc gauge\nlaunch_ipc 0.75\n"));
        assert!(text.contains("# TYPE dpu_cycles summary\n"));
        assert!(text.contains("dpu_cycles{quantile=\"0.5\"}"));
        assert!(text.contains("dpu_cycles{quantile=\"0.999\"}"));
        assert!(text.contains("dpu_cycles_sum 600\n"));
        assert!(text.contains("dpu_cycles_count 3\n"));
        // Counters come first, then gauges, then summaries.
        let ci = text.find("launch_instructions").unwrap();
        let gi = text.find("launch_ipc").unwrap();
        let hi = text.find("dpu_cycles").unwrap();
        assert!(ci < gi && gi < hi);
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(prometheus_text(&MetricsRegistry::new()), "");
    }
}
