//! Chrome trace-event JSON export.
//!
//! Produces the `{"traceEvents": [...]}` object format understood by
//! Perfetto and `chrome://tracing`. Timestamps are DPU cycles reported in
//! the `ts`/`dur` microsecond fields — the absolute unit is wrong but the
//! relative timeline is exact, which is what the viewers visualize.
//!
//! Track layout: one process (`pid`) per DPU, thread (`tid`) 0 is the
//! kernel span, thread `t + 1` is tasklet `t`. Host transfers land in one
//! extra process after the DPUs, ordered by their sequence number.

use crate::event::TraceEvent;
use crate::sink::TraceBuffer;
use serde_json::{json, Value};

/// Thread id used for the whole-kernel span on each DPU track.
const KERNEL_TID: u64 = 0;

/// Build the Chrome trace-event JSON for a set of per-DPU buffers
/// (`buffers[d]` holds DPU `d`'s events) plus optional host-side events.
#[must_use]
pub fn chrome_trace(buffers: &[TraceBuffer], host: Option<&TraceBuffer>) -> Value {
    let mut events: Vec<Value> = Vec::new();
    for (dpu, buffer) in buffers.iter().enumerate() {
        let pid = dpu as u64;
        events.push(metadata(pid, None, "process_name", &format!("DPU {dpu}")));
        events.push(sort_index(pid, None, "process_sort_index", pid));
        events.push(metadata(pid, Some(KERNEL_TID), "thread_name", "kernel"));
        events.push(sort_index(pid, Some(KERNEL_TID), "thread_sort_index", KERNEL_TID));
        let mut named_tasklets = std::collections::BTreeSet::new();
        for event in buffer.events() {
            if let Some(t) = event.tasklet() {
                if named_tasklets.insert(t) {
                    events.push(metadata(
                        pid,
                        Some(tasklet_tid(t)),
                        "thread_name",
                        &format!("tasklet {t}"),
                    ));
                    events.push(sort_index(
                        pid,
                        Some(tasklet_tid(t)),
                        "thread_sort_index",
                        tasklet_tid(t),
                    ));
                }
            }
            push_dpu_event(&mut events, pid, event);
        }
    }
    if let Some(host_buffer) = host {
        let pid = buffers.len() as u64;
        if !host_buffer.is_empty() {
            events.push(metadata(pid, None, "process_name", "host"));
            events.push(sort_index(pid, None, "process_sort_index", pid));
            events.push(metadata(pid, Some(0), "thread_name", "transfers"));
        }
        for event in host_buffer.events() {
            push_host_event(&mut events, pid, event);
        }
    }
    json!({
        "traceEvents": Value::Array(events),
        "displayTimeUnit": "ns",
        "otherData": {"clock": "dpu-cycles"},
    })
}

/// Serialize [`chrome_trace`]'s output as a compact JSON string.
#[must_use]
pub fn chrome_trace_string(buffers: &[TraceBuffer], host: Option<&TraceBuffer>) -> String {
    serde_json::to_string(&chrome_trace(buffers, host)).expect("trace JSON")
}

fn tasklet_tid(tasklet: u8) -> u64 {
    u64::from(tasklet) + 1
}

fn metadata(pid: u64, tid: Option<u64>, kind: &str, name: &str) -> Value {
    json!({
        "ph": "M",
        "pid": pid,
        "tid": tid.unwrap_or(0),
        "name": kind,
        "args": {"name": name},
    })
}

fn sort_index(pid: u64, tid: Option<u64>, kind: &str, index: u64) -> Value {
    json!({
        "ph": "M",
        "pid": pid,
        "tid": tid.unwrap_or(0),
        "name": kind,
        "args": {"sort_index": index},
    })
}

/// Build a Chrome counter event (`ph: "C"`): a stacked series sampled at
/// cycle `ts`. Viewers draw one area chart per counter `name`, stacking
/// the `series` values. Used by the cycle-attribution profiler to plot
/// per-superblock cycle budgets next to the span tracks.
#[must_use]
pub fn counter_event(pid: u64, name: &str, ts: u64, series: &[(&str, f64)]) -> Value {
    let args =
        Value::Object(series.iter().map(|(label, v)| ((*label).to_string(), json!(*v))).collect());
    json!({
        "ph": "C",
        "pid": pid,
        "tid": KERNEL_TID,
        "name": name,
        "ts": ts,
        "args": args,
    })
}

fn span(pid: u64, tid: u64, name: &str, ts: u64, dur: u64, args: Value) -> Value {
    json!({
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "name": name,
        "ts": ts,
        "dur": dur,
        "args": args,
    })
}

fn push_dpu_event(out: &mut Vec<Value>, pid: u64, event: &TraceEvent) {
    match event {
        TraceEvent::KernelLaunch { tasklets, cycle } => {
            out.push(json!({
                "ph": "B",
                "pid": pid,
                "tid": KERNEL_TID,
                "name": "KernelLaunch",
                "ts": *cycle,
                "args": {"tasklets": *tasklets},
            }));
        }
        TraceEvent::KernelComplete { cycle, instructions } => {
            out.push(json!({
                "ph": "E",
                "pid": pid,
                "tid": KERNEL_TID,
                "name": "KernelLaunch",
                "ts": *cycle,
                "args": {"instructions": *instructions},
            }));
        }
        TraceEvent::DmaTransfer { tasklet, direction, bytes, start_cycle, cycles } => {
            out.push(span(
                pid,
                tasklet_tid(*tasklet),
                &format!("DmaTransfer {} {bytes}B", direction.arrow()),
                *start_cycle,
                *cycles,
                json!({"bytes": *bytes, "direction": direction.arrow()}),
            ));
        }
        TraceEvent::SubroutineEnter { tasklet, symbol, cycle, instructions } => {
            out.push(span(
                pid,
                tasklet_tid(*tasklet),
                symbol,
                *cycle,
                u64::from(*instructions),
                json!({"instructions": *instructions}),
            ));
        }
        TraceEvent::TaskletBarrier { tasklet, cycle, released } => {
            out.push(json!({
                "ph": "i",
                "pid": pid,
                "tid": tasklet_tid(*tasklet),
                "name": if *released { "barrier (release)" } else { "barrier" },
                "ts": *cycle,
                "s": "t",
            }));
        }
        TraceEvent::FaultInjected { kind, addr, cycle, attempt } => {
            out.push(json!({
                "ph": "i",
                "pid": pid,
                "tid": KERNEL_TID,
                "name": format!("fault {kind}"),
                "ts": *cycle,
                "s": "p",
                "args": {"kind": *kind, "addr": *addr, "attempt": *attempt},
            }));
        }
        TraceEvent::HostTransfer { .. } => {
            // Host events belong on the host track; ignore if one leaked
            // into a DPU buffer.
        }
    }
}

fn push_host_event(out: &mut Vec<Value>, pid: u64, event: &TraceEvent) {
    if let TraceEvent::HostTransfer { direction, symbol, bytes, dpu, seq } = event {
        let target = match dpu {
            Some(d) => format!("dpu {d}"),
            None => "broadcast".to_string(),
        };
        out.push(span(
            pid,
            0,
            &format!("HostTransfer {} {symbol}", direction.arrow()),
            *seq,
            1,
            json!({
                "bytes": *bytes,
                "symbol": symbol.as_str(),
                "target": target.as_str(),
            }),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DmaDirection, HostDirection};
    use crate::sink::TraceSink;

    fn sample_buffer() -> TraceBuffer {
        let mut b = TraceBuffer::new();
        b.record(TraceEvent::KernelLaunch { tasklets: 2, cycle: 0 });
        b.record(TraceEvent::DmaTransfer {
            tasklet: 0,
            direction: DmaDirection::MramToWram,
            bytes: 64,
            start_cycle: 10,
            cycles: 57,
        });
        b.record(TraceEvent::TaskletBarrier { tasklet: 1, cycle: 80, released: true });
        b.record(TraceEvent::KernelComplete { cycle: 120, instructions: 90 });
        b
    }

    #[test]
    fn trace_has_per_dpu_tracks_and_round_trips_as_json() {
        let buffers = vec![sample_buffer(), sample_buffer()];
        let text = chrome_trace_string(&buffers, None);
        let parsed: Value = serde_json::from_str(&text).expect("valid JSON");
        let events =
            parsed.get("traceEvents").and_then(Value::as_array).expect("traceEvents array");
        // Two DPU tracks: process_name metadata for pid 0 and pid 1.
        for pid in 0..2u64 {
            assert!(
                events.iter().any(|e| {
                    e.get("ph").and_then(Value::as_str) == Some("M")
                        && e.get("pid").and_then(Value::as_u64) == Some(pid)
                }),
                "missing metadata for pid {pid}"
            );
            assert!(
                events.iter().any(|e| {
                    e.get("pid").and_then(Value::as_u64) == Some(pid)
                        && e.get("name")
                            .and_then(Value::as_str)
                            .is_some_and(|n| n.starts_with("DmaTransfer"))
                }),
                "missing DmaTransfer span for pid {pid}"
            );
        }
    }

    #[test]
    fn dma_span_keeps_cycle_timestamps() {
        let buffers = vec![sample_buffer()];
        let trace = chrome_trace(&buffers, None);
        let events = trace.get("traceEvents").and_then(Value::as_array).expect("array");
        let dma = events
            .iter()
            .find(|e| {
                e.get("name").and_then(Value::as_str).is_some_and(|n| n.starts_with("DmaTransfer"))
            })
            .expect("dma span");
        assert_eq!(dma.get("ts").and_then(Value::as_u64), Some(10));
        assert_eq!(dma.get("dur").and_then(Value::as_u64), Some(57));
        assert_eq!(dma.get("tid").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn tracks_carry_names_and_sort_indexes() {
        let buffers = vec![sample_buffer()];
        let trace = chrome_trace(&buffers, None);
        let events = trace.get("traceEvents").and_then(Value::as_array).expect("array");
        let meta = |kind: &str, tid: u64| {
            events.iter().find(|e| {
                e.get("ph").and_then(Value::as_str) == Some("M")
                    && e.get("name").and_then(Value::as_str) == Some(kind)
                    && e.get("tid").and_then(Value::as_u64) == Some(tid)
            })
        };
        assert!(meta("process_sort_index", 0).is_some());
        let kernel = meta("thread_sort_index", KERNEL_TID).expect("kernel sort index");
        assert_eq!(
            kernel.get("args").and_then(|a| a.get("sort_index")).and_then(Value::as_u64),
            Some(KERNEL_TID)
        );
        // Tasklet 0 emitted events, so its row is named and ordered.
        let t0 = meta("thread_name", tasklet_tid(0)).expect("tasklet name");
        assert_eq!(
            t0.get("args").and_then(|a| a.get("name")).and_then(Value::as_str),
            Some("tasklet 0")
        );
        assert!(meta("thread_sort_index", tasklet_tid(0)).is_some());
    }

    #[test]
    fn counter_event_stacks_series() {
        let e = counter_event(3, "superblock cycles", 40, &[("block_0_8", 120.0), ("other", 7.5)]);
        assert_eq!(e.get("ph").and_then(Value::as_str), Some("C"));
        assert_eq!(e.get("pid").and_then(Value::as_u64), Some(3));
        assert_eq!(e.get("ts").and_then(Value::as_u64), Some(40));
        let args = e.get("args").expect("args");
        assert_eq!(args.get("block_0_8").and_then(Value::as_f64), Some(120.0));
        assert_eq!(args.get("other").and_then(Value::as_f64), Some(7.5));
    }

    #[test]
    fn host_track_appended_after_dpus() {
        let mut host = TraceBuffer::new();
        host.record(TraceEvent::HostTransfer {
            direction: HostDirection::HostToMram,
            symbol: "weights".to_string(),
            bytes: 4096,
            dpu: None,
            seq: 0,
        });
        let buffers = vec![sample_buffer()];
        let trace = chrome_trace(&buffers, Some(&host));
        let events = trace.get("traceEvents").and_then(Value::as_array).expect("array");
        assert!(events.iter().any(|e| {
            e.get("pid").and_then(Value::as_u64) == Some(1)
                && e.get("name").and_then(Value::as_str).is_some_and(|n| n.contains("weights"))
        }));
    }
}
