//! Structured trace events emitted by the simulator and host runtime.
//!
//! Every simulator-side event is stamped with the DPU-clock cycle at which
//! it occurred. Events do not carry a DPU id — the host collects one
//! buffer per DPU, and the buffer's position identifies the DPU.

use serde::Serialize;

/// Direction of an intra-DPU DMA transfer over the MRAM↔WRAM port
/// (costed by Eq. 3.4: `25 + bytes/2` cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DmaDirection {
    /// MRAM → WRAM load (`mram_read`).
    MramToWram,
    /// WRAM → MRAM store (`mram_write`).
    WramToMram,
}

impl DmaDirection {
    /// Short human-readable arrow form for labels.
    #[must_use]
    pub fn arrow(self) -> &'static str {
        match self {
            DmaDirection::MramToWram => "mram\u{2192}wram",
            DmaDirection::WramToMram => "wram\u{2192}mram",
        }
    }
}

/// Direction of a host↔MRAM bulk transfer (`dpu_copy_to`/`dpu_copy_from`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum HostDirection {
    /// Host buffer → DPU MRAM.
    HostToMram,
    /// DPU MRAM → host buffer.
    MramToHost,
}

impl HostDirection {
    /// Short human-readable arrow form for labels.
    #[must_use]
    pub fn arrow(self) -> &'static str {
        match self {
            HostDirection::HostToMram => "host\u{2192}mram",
            HostDirection::MramToHost => "mram\u{2192}host",
        }
    }
}

/// One cycle-stamped observation from the simulator or host runtime.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TraceEvent {
    /// A kernel began executing on a DPU.
    KernelLaunch {
        /// Number of tasklets the kernel was launched with.
        tasklets: u8,
        /// Cycle at which execution began (0 for a fresh machine).
        cycle: u64,
    },
    /// The kernel on a DPU ran to completion.
    KernelComplete {
        /// Final pipeline-drained cycle count (the kernel's makespan).
        cycle: u64,
        /// Instructions issued over the whole run.
        instructions: u64,
    },
    /// One MRAM↔WRAM DMA transfer.
    DmaTransfer {
        /// Issuing tasklet.
        tasklet: u8,
        /// Transfer direction.
        direction: DmaDirection,
        /// Payload size in bytes.
        bytes: u32,
        /// Cycle at which the transfer started streaming (after any wait
        /// for the shared DMA port).
        start_cycle: u64,
        /// Cycles the transfer occupied the port (setup + streaming).
        cycles: u64,
    },
    /// A software-subroutine call (e.g. `__mulsi3`) began.
    SubroutineEnter {
        /// Calling tasklet.
        tasklet: u8,
        /// Subroutine symbol name.
        symbol: &'static str,
        /// Cycle at which the call issued.
        cycle: u64,
        /// Instructions the subroutine body executes.
        instructions: u32,
    },
    /// A tasklet arrived at a barrier.
    TaskletBarrier {
        /// Arriving tasklet.
        tasklet: u8,
        /// Cycle of arrival.
        cycle: u64,
        /// Whether this arrival released the barrier (last tasklet in).
        released: bool,
    },
    /// An injected fault fired on this DPU (see `dpu_sim::faults`).
    /// Recorded by the host's resilient launch path after each run
    /// attempt, so fault campaigns are visible in exported traces.
    FaultInjected {
        /// Machine-readable fault class ("dma_fail", "wram_bit_flip",
        /// "mram_bit_flip", "tasklet_hang", "dpu_offline").
        kind: &'static str,
        /// Affected byte address for bit flips, 0 otherwise.
        addr: u64,
        /// DPU cycle at which the fault took effect (0 for launch-time
        /// offline faults).
        cycle: u64,
        /// Retry attempt during which it fired (0 = first try).
        attempt: u32,
    },
    /// A host↔MRAM bulk transfer (not cycle-stamped: host-side time is
    /// wall clock, not DPU cycles; `seq` preserves ordering).
    HostTransfer {
        /// Transfer direction.
        direction: HostDirection,
        /// Destination/source MRAM symbol name.
        symbol: String,
        /// Payload size in bytes.
        bytes: u64,
        /// Target DPU, or `None` for a broadcast to every DPU.
        dpu: Option<u32>,
        /// Host-side sequence number (monotonic per run).
        seq: u64,
    },
}

impl TraceEvent {
    /// The cycle at which this event *ends* (for spans, start + duration),
    /// or `None` for events without a DPU-clock stamp.
    #[must_use]
    pub fn end_cycle(&self) -> Option<u64> {
        match self {
            TraceEvent::KernelLaunch { cycle, .. }
            | TraceEvent::KernelComplete { cycle, .. }
            | TraceEvent::TaskletBarrier { cycle, .. }
            | TraceEvent::FaultInjected { cycle, .. } => Some(*cycle),
            TraceEvent::DmaTransfer { start_cycle, cycles, .. } => Some(start_cycle + cycles),
            TraceEvent::SubroutineEnter { cycle, instructions, .. } => {
                Some(cycle + u64::from(*instructions))
            }
            TraceEvent::HostTransfer { .. } => None,
        }
    }

    /// The tasklet this event belongs to, if any.
    #[must_use]
    pub fn tasklet(&self) -> Option<u8> {
        match self {
            TraceEvent::DmaTransfer { tasklet, .. }
            | TraceEvent::SubroutineEnter { tasklet, .. }
            | TraceEvent::TaskletBarrier { tasklet, .. } => Some(*tasklet),
            _ => None,
        }
    }
}
