//! Cycle-stamped tracing and metrics for the PIM simulator stack.
//!
//! The simulator (`dpu-sim`) and host runtime (`pim-host`) emit structured
//! [`TraceEvent`]s into a [`TraceSink`] as they execute. Two sinks ship:
//!
//! * [`NullSink`] — the default; discards every event and reports itself
//!   disabled so instrumentation sites can skip building event payloads.
//!   A run through `NullSink` is cycle-for-cycle identical to an
//!   uninstrumented run: tracing only *observes* the machine.
//! * [`TraceBuffer`] — records events in order. The host collects one
//!   buffer per DPU (buffer index = DPU id).
//!
//! Recorded buffers feed two exporters:
//!
//! * [`chrome`] — Chrome trace-event JSON (loadable in Perfetto or
//!   `chrome://tracing`), one process track per DPU, one thread row per
//!   tasklet plus a `kernel` row.
//! * [`text`] — a plain-text per-phase cycle breakdown table.
//!
//! Scalar observations (instruction counts, IPC, DMA bytes, tasklet
//! occupancy, makespan) aggregate in a [`MetricsRegistry`], which
//! snapshots to machine-readable JSON for `report --json`. Histograms
//! are log-bucketed (HDR-style), so snapshots carry p50/p90/p99/p999
//! estimates and merge exactly across DPUs and launches. The same
//! registry also renders to the Prometheus text exposition format via
//! [`prom::prometheus_text`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
mod event;
pub mod keys;
mod metrics;
pub mod prom;
mod sink;
pub mod text;

pub use chrome::{chrome_trace, chrome_trace_string, counter_event};
pub use event::{DmaDirection, HostDirection, TraceEvent};
pub use metrics::{Histogram, MetricsRegistry, SUB_BUCKETS};
pub use prom::{prometheus_name, prometheus_text};
pub use serde_json::Value;
pub use sink::{NullSink, TraceBuffer, TraceSink};
pub use text::{cycle_breakdown, PhaseBreakdown};
