//! A small metrics registry: named counters, gauges, and histograms.
//!
//! Populated by the host runtime after launches (instructions, IPC, DMA
//! traffic, tasklet occupancy, makespan, …) and snapshotted to JSON for
//! `report --json`. Keys are sorted (`BTreeMap`), so snapshots are
//! deterministic and diffable.

use std::collections::BTreeMap;

use serde_json::{json, Value};

/// Running summary of an observed distribution (no buckets: the
/// consumers here want count/sum/min/max/mean, not quantiles).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new() -> Self {
        Histogram { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (`None` before the first record).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` before the first record).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (`None` before the first record).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    fn to_json(&self) -> Value {
        json!({
            "count": self.count,
            "sum": self.sum,
            "min": self.min().unwrap_or(0.0),
            "max": self.max().unwrap_or(0.0),
            "mean": self.mean().unwrap_or(0.0),
        })
    }
}

/// Named counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// New empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to the named monotonic counter (created at 0).
    pub fn counter_add(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set the named gauge to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record one observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_string()).or_insert_with(Histogram::new).record(value);
    }

    /// Current value of a counter (0 if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merge another registry into this one: counters add, gauges take the
    /// other's value, histograms concatenate.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            let mine = self.histograms.entry(k.clone()).or_insert_with(Histogram::new);
            mine.count += h.count;
            mine.sum += h.sum;
            mine.min = mine.min.min(h.min);
            mine.max = mine.max.max(h.max);
        }
    }

    /// Machine-readable snapshot: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: {count, sum, min, max, mean}}}`.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let counters =
            Value::Object(self.counters.iter().map(|(k, v)| (k.clone(), json!(*v))).collect());
        let gauges =
            Value::Object(self.gauges.iter().map(|(k, v)| (k.clone(), json!(*v))).collect());
        let histograms =
            Value::Object(self.histograms.iter().map(|(k, h)| (k.clone(), h.to_json())).collect());
        json!({
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        m.counter_add("dma.bytes", 64);
        m.counter_add("dma.bytes", 36);
        assert_eq!(m.counter("dma.bytes"), 100);
        assert_eq!(m.counter("untouched"), 0);
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut m = MetricsRegistry::new();
        for v in [2.0, 4.0, 6.0] {
            m.observe("ipc", v);
        }
        let h = m.histogram("ipc").expect("recorded");
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(2.0));
        assert_eq!(h.max(), Some(6.0));
        assert_eq!(h.mean(), Some(4.0));
        assert!(m.histogram("missing").is_none());
    }

    #[test]
    fn merge_combines_all_kinds() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        a.gauge_set("g", 1.0);
        a.observe("h", 1.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 2);
        b.gauge_set("g", 9.0);
        b.observe("h", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(9.0));
        let h = a.histogram("h").expect("merged");
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Some(2.0));
    }

    #[test]
    fn json_snapshot_is_sorted_and_complete() {
        let mut m = MetricsRegistry::new();
        m.counter_add("z.last", 1);
        m.counter_add("a.first", 2);
        m.gauge_set("makespan", 123.0);
        m.observe("occ", 0.5);
        let v = m.to_json();
        let counters = v.get("counters").and_then(Value::as_object).expect("counters");
        assert_eq!(counters[0].0, "a.first");
        assert_eq!(counters[1].0, "z.last");
        assert_eq!(
            v.get("gauges").and_then(|g| g.get("makespan")).and_then(Value::as_f64),
            Some(123.0)
        );
        let occ = v.get("histograms").and_then(|h| h.get("occ")).expect("occ");
        assert_eq!(occ.get("count").and_then(Value::as_u64), Some(1));
    }
}
