//! A small metrics registry: named counters, gauges, and histograms.
//!
//! Populated by the host runtime after launches (instructions, IPC, DMA
//! traffic, tasklet occupancy, makespan, …) and snapshotted to JSON for
//! `report --json`. Keys are sorted (`BTreeMap`), so snapshots are
//! deterministic and diffable.
//!
//! Histograms are log-bucketed (HDR-style): alongside exact
//! count/sum/min/max they keep a sparse map of geometric buckets with
//! [`SUB_BUCKETS`] subdivisions per octave, giving quantile estimates
//! (p50/p90/p99/p999) with ≤ ~1.1% relative error at any scale. Buckets
//! are integer-keyed, so histograms merge exactly across DPUs and
//! launches without losing counts.

use std::collections::BTreeMap;

use serde_json::{json, Value};

/// Log-bucket subdivisions per octave (power of two). 32 sub-buckets
/// give a bucket width of `2^(1/32) ≈ 2.2%`, so the geometric-midpoint
/// quantile estimate is within ~1.1% of the true value.
pub const SUB_BUCKETS: i64 = 32;

/// Bucket key reserved for non-positive observations (zero and negative
/// values have no logarithm; they sort before every real bucket).
const NON_POSITIVE_BUCKET: i64 = i64::MIN;

/// Log-bucketed summary of an observed distribution: exact
/// count/sum/min/max plus sparse geometric buckets for quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: BTreeMap<i64, u64>,
}

/// Bucket index for a positive, finite value.
#[allow(clippy::cast_possible_truncation, clippy::cast_precision_loss)]
fn bucket_of(v: f64) -> i64 {
    if v <= 0.0 {
        return NON_POSITIVE_BUCKET;
    }
    (v.log2() * SUB_BUCKETS as f64).floor() as i64
}

/// Geometric midpoint of a bucket: `2^((i + 0.5) / SUB_BUCKETS)`.
#[allow(clippy::cast_precision_loss)]
fn bucket_mid(i: i64) -> f64 {
    if i == NON_POSITIVE_BUCKET {
        return 0.0;
    }
    ((i as f64 + 0.5) / SUB_BUCKETS as f64).exp2()
}

impl Default for Histogram {
    /// Same as [`Histogram::new`]: the empty min/max sentinels are
    /// `±inf`, not the zeros a derived `Default` would produce.
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: BTreeMap::new(),
        }
    }

    /// Record one observation. Non-finite values (NaN, ±∞) are ignored:
    /// they would poison min/max/mean forever and have no meaningful
    /// bucket.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        *self.buckets.entry(bucket_of(v)).or_insert(0) += 1;
    }

    /// Merge another histogram into this one without losing counts:
    /// buckets are integer-keyed, so per-DPU histograms combine exactly.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (k, n) in &other.buckets {
            *self.buckets.entry(*k).or_insert(0) += n;
        }
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation (`None` before the first record).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` before the first record).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (`None` before the first record).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), or `None` before the
    /// first record. Walks the cumulative bucket counts to the target
    /// rank and returns the bucket's geometric midpoint, clamped to the
    /// exact observed `[min, max]` — so `quantile(0.0) == min` and
    /// `quantile(1.0) == max` exactly.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extreme order statistics are tracked exactly; this also
        // makes `quantile(0.0) == min` and `quantile(1.0) == max`.
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                // The non-positive bucket has no geometric midpoint;
                // answer with the exact observed minimum.
                if *i == NON_POSITIVE_BUCKET {
                    return Some(self.min);
                }
                return Some(bucket_mid(*i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median estimate (see [`Histogram::quantile`]).
    #[must_use]
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    #[must_use]
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    #[must_use]
    pub fn p999(&self) -> Option<f64> {
        self.quantile(0.999)
    }

    fn to_json(&self) -> Value {
        json!({
            "count": self.count,
            "sum": self.sum,
            "min": self.min().unwrap_or(0.0),
            "max": self.max().unwrap_or(0.0),
            "mean": self.mean().unwrap_or(0.0),
            "p50": self.p50().unwrap_or(0.0),
            "p90": self.p90().unwrap_or(0.0),
            "p99": self.p99().unwrap_or(0.0),
            "p999": self.p999().unwrap_or(0.0),
        })
    }
}

/// Named counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// New empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to the named monotonic counter (created at 0).
    pub fn counter_add(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set the named gauge to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record one observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_string()).or_default().record(value);
    }

    /// Current value of a counter (0 if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in sorted key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges in sorted key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms in sorted key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merge another registry into this one: counters add, gauges take the
    /// other's value, histograms merge bucket-exactly.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Machine-readable snapshot: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: {count, sum, min, max, mean, p50, p90, p99,
    /// p999}}}`.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let counters =
            Value::Object(self.counters.iter().map(|(k, v)| (k.clone(), json!(*v))).collect());
        let gauges =
            Value::Object(self.gauges.iter().map(|(k, v)| (k.clone(), json!(*v))).collect());
        let histograms =
            Value::Object(self.histograms.iter().map(|(k, h)| (k.clone(), h.to_json())).collect());
        json!({
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        m.counter_add("dma.bytes", 64);
        m.counter_add("dma.bytes", 36);
        assert_eq!(m.counter("dma.bytes"), 100);
        assert_eq!(m.counter("untouched"), 0);
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut m = MetricsRegistry::new();
        for v in [2.0, 4.0, 6.0] {
            m.observe("ipc", v);
        }
        let h = m.histogram("ipc").expect("recorded");
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(2.0));
        assert_eq!(h.max(), Some(6.0));
        assert_eq!(h.mean(), Some(4.0));
        assert!(m.histogram("missing").is_none());
    }

    #[test]
    fn record_ignores_non_finite_observations() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.count(), 0);
        assert!(h.min().is_none());
        h.record(5.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), Some(5.0));
    }

    #[test]
    fn quantiles_are_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=1000 {
            h.record(f64::from(v));
        }
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(1000.0));
        let p50 = h.p50().expect("recorded");
        assert!((p50 - 500.0).abs() / 500.0 < 0.03, "p50 {p50}");
        let p99 = h.p99().expect("recorded");
        assert!((p99 - 990.0).abs() / 990.0 < 0.03, "p99 {p99}");
        let p999 = h.p999().expect("recorded");
        assert!((p999 - 999.0).abs() / 999.0 < 0.03, "p999 {p999}");
    }

    #[test]
    fn quantiles_handle_zero_and_negative_values() {
        let mut h = Histogram::new();
        h.record(-3.0);
        h.record(0.0);
        h.record(10.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(-3.0));
        // Non-positive bucket sorts first, clamped to exact min.
        assert_eq!(h.quantile(0.1), Some(-3.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
    }

    #[test]
    fn single_observation_has_exact_quantiles() {
        let mut h = Histogram::new();
        h.record(42.0);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(42.0));
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 1..=100 {
            let v = f64::from(v) * 3.5;
            if v < 180.0 {
                a.record(v)
            } else {
                b.record(v)
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.p99(), both.p99());
    }

    #[test]
    fn merge_combines_all_kinds() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        a.gauge_set("g", 1.0);
        a.observe("h", 1.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 2);
        b.gauge_set("g", 9.0);
        b.observe("h", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(9.0));
        let h = a.histogram("h").expect("merged");
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Some(2.0));
    }

    #[test]
    fn json_snapshot_is_sorted_and_complete() {
        let mut m = MetricsRegistry::new();
        m.counter_add("z.last", 1);
        m.counter_add("a.first", 2);
        m.gauge_set("makespan", 123.0);
        m.observe("occ", 0.5);
        let v = m.to_json();
        let counters = v.get("counters").and_then(Value::as_object).expect("counters");
        assert_eq!(counters[0].0, "a.first");
        assert_eq!(counters[1].0, "z.last");
        assert_eq!(
            v.get("gauges").and_then(|g| g.get("makespan")).and_then(Value::as_f64),
            Some(123.0)
        );
        let occ = v.get("histograms").and_then(|h| h.get("occ")).expect("occ");
        assert_eq!(occ.get("count").and_then(Value::as_u64), Some(1));
        for p in ["p50", "p90", "p99", "p999"] {
            assert!(occ.get(p).and_then(Value::as_f64).is_some(), "missing {p}");
        }
    }
}
