//! Stable metric-key names for the serving runtime (`serve.*`).
//!
//! `pim-serve` records its per-run statistics into a [`crate::MetricsRegistry`]
//! under these keys; dashboards, the CI `serve-smoke` job, and the perfgate
//! `serve` scenario all read them by name, so they are part of the public
//! contract and pinned by a stability test (like the `obs.*` family in
//! `pim-host`). Counters count events, histograms are recorded in simulated
//! cycles (or items, where noted), gauges are end-of-run scalars.

/// Requests that arrived at the admission queue.
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Work items (eBNN images / GEMM rows) across all arrived requests.
pub const SERVE_ITEMS: &str = "serve.items";
/// Requests admitted into the queue.
pub const SERVE_ACCEPTED: &str = "serve.accepted";
/// Requests shed with a typed `Overloaded` rejection (queue full).
pub const SERVE_REJECTED: &str = "serve.rejected";
/// Requests fully served (every item's result gathered).
pub const SERVE_COMPLETED: &str = "serve.completed";
/// Requests that lost at least one item to an unserved (quarantined,
/// un-redispatched) DPU chunk.
pub const SERVE_FAILED: &str = "serve.failed";
/// Rank batches launched.
pub const SERVE_BATCHES: &str = "serve.batches";
/// Requests split across more than one batch (larger than a rank's worth).
pub const SERVE_SPLITS: &str = "serve.splits";
/// Batch cuts because the batch filled to capacity.
pub const SERVE_CUTS_FULL: &str = "serve.cuts.full";
/// Batch cuts because the head-of-line deadline (`max_batch_delay`) hit.
pub const SERVE_CUTS_DEADLINE: &str = "serve.cuts.deadline";
/// Batch cuts made while draining at shutdown.
pub const SERVE_CUTS_DRAIN: &str = "serve.cuts.drain";
/// Items recomputed on a survivor DPU after their home was quarantined.
pub const SERVE_REDISPATCHED_ITEMS: &str = "serve.redispatched_items";
/// Profile-guided `recompile_hot` recompilations performed after warmup.
pub const SERVE_PGO_RECOMPILES: &str = "serve.pgo_recompiles";
/// DPU quarantine events across all launched batches.
pub const SERVE_QUARANTINED_DPUS: &str = "serve.quarantined_dpus";
/// DPU serves classified healthy-after-repair (retries consumed or
/// single-bit errors corrected by ECC scrub / DMA verify-on-read).
pub const SERVE_REPAIRED_DPUS: &str = "serve.repaired_dpus";
/// Circuit-breaker rank ejections (including re-trips out of probation).
pub const SERVE_BREAKER_TRIPS: &str = "serve.breaker.trips";
/// Circuit-breaker cooldown→probation transitions (probe launches).
pub const SERVE_BREAKER_PROBES: &str = "serve.breaker.probes";
/// Circuit-breaker probation→closed re-admissions after a clean probe.
pub const SERVE_BREAKER_READMITS: &str = "serve.breaker.readmits";

/// Histogram: request latency (arrival → last result read back), cycles.
pub const SERVE_LATENCY_CYCLES: &str = "serve.latency_cycles";
/// Histogram: items per launched batch.
pub const SERVE_BATCH_FILL: &str = "serve.batch_fill";
/// Histogram: queue depth sampled at each admission.
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
/// Histogram: per-batch MRAM staging time on the host link, cycles.
pub const SERVE_STAGE_CYCLES: &str = "serve.stage_cycles";
/// Histogram: per-batch DPU compute makespan, cycles.
pub const SERVE_COMPUTE_CYCLES: &str = "serve.compute_cycles";
/// Histogram: per-batch result readback time on the host link, cycles.
pub const SERVE_READBACK_CYCLES: &str = "serve.readback_cycles";

/// Gauge: goodput in items per second of simulated time.
pub const SERVE_GOODPUT_IPS: &str = "serve.goodput_ips";
/// Gauge: total simulated time from first arrival to last readback, cycles.
pub const SERVE_VTIME_CYCLES: &str = "serve.vtime_cycles";
/// Gauge: DPUs in the serving set.
pub const SERVE_DPUS: &str = "serve.dpus";
/// Gauge: items one rank batch can hold.
pub const SERVE_CAPACITY_ITEMS: &str = "serve.capacity_items";
/// Gauge: circuit-breaker rank groups in the serving set (0 = breaker
/// disabled).
pub const SERVE_BREAKER_RANKS: &str = "serve.breaker.ranks";
/// Gauge: ranks still ejected (`Open`) at end of run.
pub const SERVE_BREAKER_OPEN_RANKS: &str = "serve.breaker.open_ranks";

/// Every `serve.*` key, for exhaustive stability tests.
pub const ALL_SERVE_KEYS: &[&str] = &[
    SERVE_REQUESTS,
    SERVE_ITEMS,
    SERVE_ACCEPTED,
    SERVE_REJECTED,
    SERVE_COMPLETED,
    SERVE_FAILED,
    SERVE_BATCHES,
    SERVE_SPLITS,
    SERVE_CUTS_FULL,
    SERVE_CUTS_DEADLINE,
    SERVE_CUTS_DRAIN,
    SERVE_REDISPATCHED_ITEMS,
    SERVE_PGO_RECOMPILES,
    SERVE_QUARANTINED_DPUS,
    SERVE_REPAIRED_DPUS,
    SERVE_BREAKER_TRIPS,
    SERVE_BREAKER_PROBES,
    SERVE_BREAKER_READMITS,
    SERVE_LATENCY_CYCLES,
    SERVE_BATCH_FILL,
    SERVE_QUEUE_DEPTH,
    SERVE_STAGE_CYCLES,
    SERVE_COMPUTE_CYCLES,
    SERVE_READBACK_CYCLES,
    SERVE_GOODPUT_IPS,
    SERVE_VTIME_CYCLES,
    SERVE_DPUS,
    SERVE_CAPACITY_ITEMS,
    SERVE_BREAKER_RANKS,
    SERVE_BREAKER_OPEN_RANKS,
];

#[cfg(test)]
mod tests {
    use super::*;

    /// The serve key names are a public contract (CI smoke, perfgate,
    /// dashboards): renaming one is a breaking change this test makes
    /// deliberate.
    #[test]
    fn serve_keys_are_stable() {
        let expect = [
            "serve.requests",
            "serve.items",
            "serve.accepted",
            "serve.rejected",
            "serve.completed",
            "serve.failed",
            "serve.batches",
            "serve.splits",
            "serve.cuts.full",
            "serve.cuts.deadline",
            "serve.cuts.drain",
            "serve.redispatched_items",
            "serve.pgo_recompiles",
            "serve.quarantined_dpus",
            "serve.repaired_dpus",
            "serve.breaker.trips",
            "serve.breaker.probes",
            "serve.breaker.readmits",
            "serve.latency_cycles",
            "serve.batch_fill",
            "serve.queue_depth",
            "serve.stage_cycles",
            "serve.compute_cycles",
            "serve.readback_cycles",
            "serve.goodput_ips",
            "serve.vtime_cycles",
            "serve.dpus",
            "serve.capacity_items",
            "serve.breaker.ranks",
            "serve.breaker.open_ranks",
        ];
        assert_eq!(ALL_SERVE_KEYS, &expect);
        for k in ALL_SERVE_KEYS {
            assert!(k.starts_with("serve."), "{k}");
            assert!(crate::prometheus_name(k).starts_with("serve_"), "{k}");
        }
    }
}
