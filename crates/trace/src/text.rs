//! Plain-text per-phase cycle breakdown of recorded traces.

use crate::event::TraceEvent;
use crate::sink::TraceBuffer;
use std::fmt::Write as _;

/// Per-DPU cycle totals derived from one trace buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Kernel makespan (cycle stamp of `KernelComplete`).
    pub total_cycles: u64,
    /// Cycles spent issuing instructions (one per instruction).
    pub issue_cycles: u64,
    /// Cycles the MRAM↔WRAM DMA port was occupied.
    pub dma_cycles: u64,
    /// Remaining cycles: pipeline latency, stalls, barrier waits.
    pub other_cycles: u64,
    /// DMA payload bytes moved.
    pub dma_bytes: u64,
    /// Number of DMA transfers.
    pub dma_transfers: u64,
    /// Number of software-subroutine calls.
    pub subroutine_calls: u64,
    /// Number of barrier arrivals.
    pub barrier_arrivals: u64,
}

impl PhaseBreakdown {
    /// Derive the breakdown from one DPU's recorded events.
    #[must_use]
    pub fn from_buffer(buffer: &TraceBuffer) -> Self {
        let mut b = PhaseBreakdown::default();
        for event in buffer.events() {
            match event {
                TraceEvent::KernelComplete { cycle, instructions } => {
                    b.total_cycles = b.total_cycles.max(*cycle);
                    b.issue_cycles += instructions;
                }
                TraceEvent::DmaTransfer { bytes, cycles, .. } => {
                    b.dma_cycles += cycles;
                    b.dma_bytes += u64::from(*bytes);
                    b.dma_transfers += 1;
                }
                TraceEvent::SubroutineEnter { .. } => b.subroutine_calls += 1,
                TraceEvent::TaskletBarrier { .. } => b.barrier_arrivals += 1,
                _ => {}
            }
        }
        b.other_cycles = b.total_cycles.saturating_sub(b.issue_cycles).saturating_sub(b.dma_cycles);
        b
    }
}

/// Render a per-DPU, per-phase cycle table plus a totals row.
///
/// Columns: total cycles, then how they split across instruction issue,
/// DMA port occupancy, and everything else (pipeline latency, stalls,
/// barrier waits), plus DMA traffic and event counts.
#[must_use]
pub fn cycle_breakdown(buffers: &[TraceBuffer]) -> String {
    let rows: Vec<PhaseBreakdown> = buffers.iter().map(PhaseBreakdown::from_buffer).collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>6} {:>6} {:>6}",
        "dpu", "cycles", "issue", "dma", "other", "dma_bytes", "xfers", "subs", "barr"
    );
    for (dpu, b) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "{dpu:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>6} {:>6} {:>6}",
            b.total_cycles,
            b.issue_cycles,
            b.dma_cycles,
            b.other_cycles,
            b.dma_bytes,
            b.dma_transfers,
            b.subroutine_calls,
            b.barrier_arrivals,
        );
    }
    if rows.len() > 1 {
        let makespan = rows.iter().map(|b| b.total_cycles).max().unwrap_or(0);
        let _ = writeln!(
            out,
            "{:>5} {makespan:>12} {:>12} {:>12} {:>12} {:>12} {:>6} {:>6} {:>6}",
            "all",
            rows.iter().map(|b| b.issue_cycles).sum::<u64>(),
            rows.iter().map(|b| b.dma_cycles).sum::<u64>(),
            rows.iter().map(|b| b.other_cycles).sum::<u64>(),
            rows.iter().map(|b| b.dma_bytes).sum::<u64>(),
            rows.iter().map(|b| b.dma_transfers).sum::<u64>(),
            rows.iter().map(|b| b.subroutine_calls).sum::<u64>(),
            rows.iter().map(|b| b.barrier_arrivals).sum::<u64>(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DmaDirection;
    use crate::sink::TraceSink;

    #[test]
    fn breakdown_partitions_total_cycles() {
        let mut buf = TraceBuffer::new();
        buf.record(TraceEvent::KernelLaunch { tasklets: 1, cycle: 0 });
        buf.record(TraceEvent::DmaTransfer {
            tasklet: 0,
            direction: DmaDirection::MramToWram,
            bytes: 100,
            start_cycle: 5,
            cycles: 75,
        });
        buf.record(TraceEvent::KernelComplete { cycle: 200, instructions: 40 });
        let b = PhaseBreakdown::from_buffer(&buf);
        assert_eq!(b.total_cycles, 200);
        assert_eq!(b.issue_cycles, 40);
        assert_eq!(b.dma_cycles, 75);
        assert_eq!(b.other_cycles, 200 - 40 - 75);
        assert_eq!(b.issue_cycles + b.dma_cycles + b.other_cycles, b.total_cycles);
    }

    #[test]
    fn table_has_header_and_one_row_per_dpu() {
        let mut buf = TraceBuffer::new();
        buf.record(TraceEvent::KernelComplete { cycle: 10, instructions: 5 });
        let text = cycle_breakdown(&[buf.clone(), buf]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "header + 2 DPUs + totals:\n{text}");
        assert!(lines[0].contains("cycles"));
        assert!(lines[3].trim_start().starts_with("all"));
    }
}
