//! Trace sinks: where instrumentation sites send their events.

use crate::event::TraceEvent;

/// Receiver for [`TraceEvent`]s.
///
/// Instrumentation sites call [`TraceSink::is_enabled`] before building
/// event payloads that allocate (e.g. symbol strings), so the disabled
/// path costs one virtual call and no allocation.
pub trait TraceSink {
    /// Record one event.
    fn record(&mut self, event: TraceEvent);

    /// Whether this sink keeps events. Sites may (but need not) skip
    /// `record` entirely when this is `false`.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The default sink: discards everything.
///
/// Running a kernel with a `NullSink` produces bit-identical cycle counts
/// to an uninstrumented run — tracing never feeds back into simulation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// A sink that records events in arrival order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// New empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// All recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drop all recorded events, keeping the allocation.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Largest end-cycle over every cycle-stamped event, or 0 when none.
    ///
    /// For a buffer recorded from one kernel run this equals the kernel's
    /// makespan: the `KernelComplete` stamp dominates every span.
    #[must_use]
    pub fn max_end_cycle(&self) -> u64 {
        self.events.iter().filter_map(TraceEvent::end_cycle).max().unwrap_or(0)
    }

    /// Count of events matching `pred`.
    pub fn count_matching(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// Total bytes moved by `DmaTransfer` events.
    #[must_use]
    pub fn dma_bytes(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::DmaTransfer { bytes, .. } => u64::from(*bytes),
                _ => 0,
            })
            .sum()
    }

    /// Total cycles the DMA port was occupied.
    #[must_use]
    pub fn dma_cycles(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::DmaTransfer { cycles, .. } => *cycles,
                _ => 0,
            })
            .sum()
    }
}

impl TraceSink for TraceBuffer {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}
