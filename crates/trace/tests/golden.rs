//! Golden-file stability test for the Chrome trace exporter.
//!
//! The export is consumed by external tools (Perfetto, `chrome://tracing`)
//! and diffed in CI, so its exact byte form is part of the contract:
//! field order, number formatting and track layout must not drift
//! silently. If an intentional exporter change lands, regenerate with
//! `BLESS_GOLDEN=1 cargo test -p pim-trace --test golden`.

use pim_trace::{
    chrome_trace_string, DmaDirection, HostDirection, TraceBuffer, TraceEvent, TraceSink,
};

/// A small deterministic two-DPU trace exercising every event kind.
fn fixture() -> (Vec<TraceBuffer>, TraceBuffer) {
    let mut dpu0 = TraceBuffer::new();
    dpu0.record(TraceEvent::KernelLaunch { tasklets: 2, cycle: 0 });
    dpu0.record(TraceEvent::DmaTransfer {
        tasklet: 0,
        direction: DmaDirection::MramToWram,
        bytes: 64,
        start_cycle: 11,
        cycles: 57,
    });
    dpu0.record(TraceEvent::SubroutineEnter {
        tasklet: 1,
        symbol: "__mulsi3",
        cycle: 30,
        instructions: 28,
    });
    dpu0.record(TraceEvent::TaskletBarrier { tasklet: 0, cycle: 80, released: false });
    dpu0.record(TraceEvent::TaskletBarrier { tasklet: 1, cycle: 91, released: true });
    dpu0.record(TraceEvent::DmaTransfer {
        tasklet: 1,
        direction: DmaDirection::WramToMram,
        bytes: 32,
        start_cycle: 100,
        cycles: 41,
    });
    dpu0.record(TraceEvent::KernelComplete { cycle: 160, instructions: 45 });

    let mut dpu1 = TraceBuffer::new();
    dpu1.record(TraceEvent::KernelLaunch { tasklets: 1, cycle: 0 });
    dpu1.record(TraceEvent::KernelComplete { cycle: 120, instructions: 12 });

    let mut host = TraceBuffer::new();
    host.record(TraceEvent::HostTransfer {
        direction: HostDirection::HostToMram,
        symbol: "images".to_owned(),
        bytes: 256,
        dpu: None,
        seq: 0,
    });
    host.record(TraceEvent::HostTransfer {
        direction: HostDirection::MramToHost,
        symbol: "features".to_owned(),
        bytes: 64,
        dpu: Some(1),
        seq: 1,
    });

    (vec![dpu0, dpu1], host)
}

#[test]
fn chrome_export_is_byte_stable() {
    let (bufs, host) = fixture();
    let got = chrome_trace_string(&bufs, Some(&host));
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_chrome.json");
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(golden_path, &got).expect("bless golden file");
        return;
    }
    let want = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run `BLESS_GOLDEN=1 cargo test -p pim-trace --test golden`");
    assert_eq!(got, want, "Chrome trace export drifted from the golden file");
}

#[test]
fn golden_file_is_valid_json_with_expected_tracks() {
    let (bufs, host) = fixture();
    let got = chrome_trace_string(&bufs, Some(&host));
    let v: serde_json::Value = serde_json::from_str(&got).expect("exporter emits valid JSON");
    let events =
        v.get("traceEvents").and_then(serde_json::Value::as_array).expect("traceEvents array");
    // 2 DPU tracks + 1 host track.
    let mut pids: Vec<u64> =
        events.iter().filter_map(|e| e.get("pid").and_then(serde_json::Value::as_u64)).collect();
    pids.sort_unstable();
    pids.dedup();
    assert_eq!(pids, vec![0, 1, 2]);
}
