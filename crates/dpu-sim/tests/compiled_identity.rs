//! Identity tests dedicated to the compiled threaded-code tier: compiled
//! execution interleaved with forced deoptimization at arbitrary block
//! boundaries (`ExecProgram::recompile_filtered`) must stay bit-identical
//! to the per-instruction reference loop — same `RunResult` (instructions,
//! cycles, perf counter reads, DPU trace log, histograms), same WRAM/MRAM
//! image, same error at the same point — on random programs, on the bench
//! kernels the tier is meant to accelerate, across budget cutoffs that
//! exhaust mid-chain, and under armed fault injection (where the tier
//! deoptimizes wholesale to the superblock engine).

use dpu_sim::exec::ExecProgram;
use dpu_sim::isa::{Cond, Instr, Program, Reg, Width};
use dpu_sim::{Engine, FaultConfig, FaultPlan, Machine, RunResult};
use proptest::prelude::*;

const TEST_BUDGET: u64 = 300_000;

fn r(i: u8) -> Reg {
    Reg(i)
}

/// A fresh machine with deterministic non-zero MRAM so loads observe real
/// data.
fn seeded_machine() -> Machine {
    let mut m = Machine::default();
    for (i, b) in (0..4096u32).enumerate() {
        m.mram.write_u8(i, b.wrapping_mul(53) & 0xff).unwrap();
    }
    m
}

/// Run `exec` on the compiled tier and assert complete observable equality
/// with the reference loop on the same program.
fn assert_compiled_matches_reference(
    exec: &ExecProgram,
    tasklets: usize,
    budget: u64,
    label: &str,
) -> Result<RunResult, dpu_sim::Error> {
    let mut ref_machine = seeded_machine();
    let reference = ref_machine.run_exec_reference_with_budget(exec, tasklets, budget);
    let mut machine = seeded_machine();
    let outcome = machine.run_exec_engine_with_budget(exec, tasklets, budget, Engine::Compiled);
    assert_eq!(outcome, reference, "{label}: compiled tier diverged");
    let wram_len = machine.params.wram_bytes;
    assert_eq!(
        machine.wram.slice(0, wram_len).unwrap(),
        ref_machine.wram.slice(0, wram_len).unwrap(),
        "{label}: WRAM images diverged"
    );
    assert_eq!(machine.mram, ref_machine.mram, "{label}: MRAM images diverged");
    reference
}

/// Instruction mix biased toward compilable ALU runs with register-visible
/// effects (`trace` emits register values into the RunResult, stores pin
/// them into WRAM) plus the control flow, sync and DMA that force deopts.
fn instr_strategy(len: u32) -> impl Strategy<Value = Instr> {
    let reg = || (0u8..8).prop_map(Reg);
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        (0u8..8, -100i32..100).prop_map(|(rd, imm)| Instr::Movi { rd: Reg(rd), imm }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instr::Add { rd, ra, rb }),
        (reg(), reg(), -50i32..50).prop_map(|(rd, ra, imm)| Instr::Addi { rd, ra, imm }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instr::Sub { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instr::Xor { rd, ra, rb }),
        (reg(), reg(), 0u8..31).prop_map(|(rd, ra, sh)| Instr::Lsli { rd, ra, sh }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instr::Mul8 { rd, ra, rb }),
        reg().prop_map(|rd| Instr::TaskletId { rd }),
        (reg(), reg(), 0i32..128).prop_map(|(rd, ra, off)| Instr::Load {
            width: Width::W,
            rd,
            ra,
            off: off * 4,
        }),
        (reg(), 0i32..128, reg()).prop_map(|(ra, off, rs)| Instr::Store {
            width: Width::W,
            ra,
            off: off * 4,
            rs,
        }),
        (reg(), reg(), 0u32..len).prop_map(|(ra, rb, target)| Instr::Branch {
            cond: Cond::Ne,
            ra,
            rb,
            target,
        }),
        (0u32..len).prop_map(|target| Instr::Jump { target }),
        (reg(), 0u32..len).prop_map(|(rd, target)| Instr::Jal { rd, target }),
        reg().prop_map(|ra| Instr::Trace { ra }),
        Just(Instr::Barrier),
        (0u8..2).prop_map(|id| Instr::MutexLock { id }),
        (0u8..2).prop_map(|id| Instr::MutexUnlock { id }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole identity with deopt interleaving: a random subset of
    /// blocks stays compiled while the rest force a deopt onto the
    /// superblock engine at the block boundary — every mask (including
    /// keep-none = full deopt and keep-all = full compilation) must be
    /// bit-identical to the reference loop.
    #[test]
    fn forced_deopt_interleavings_match_reference(
        instrs in prop::collection::vec(instr_strategy(32), 1..32),
        tasklets in 1usize..17,
        mask in any::<u64>(),
    ) {
        let program = Program::new(instrs);
        for keep in [0u64, mask, u64::MAX] {
            let mut exec = ExecProgram::decode(&program);
            exec.recompile_filtered(|start| (keep >> (start % 64)) & 1 == 1);
            let label = format!("mask {keep:#x}");
            let _outcome =
                assert_compiled_matches_reference(&exec, tasklets, TEST_BUDGET, &label);
        }
    }

    /// Fault-armed compiled runs deoptimize wholesale; the injected faults
    /// and everything downstream of them must match a reference run armed
    /// with the identical per-attempt plan.
    #[test]
    fn fault_armed_compiled_runs_match_fault_armed_reference(
        instrs in prop::collection::vec(instr_strategy(24), 1..24),
        tasklets in 1usize..9,
        seed in 0u64..64,
    ) {
        let program = Program::new(instrs);
        let exec = ExecProgram::decode(&program);
        let plan = FaultPlan::new(FaultConfig {
            seed,
            dma_fail_prob: 0.3,
            bit_flip_prob: 0.3,
            hang_prob: 0.2,
            ..FaultConfig::default()
        });
        let run = |engine: Engine| {
            let mut m = seeded_machine();
            m.arm_faults(plan.attempt(0, 0));
            let outcome = m.run_exec_engine_with_budget(&exec, tasklets, TEST_BUDGET, engine);
            let log = m.disarm_faults().expect("armed");
            let wram = m.params.wram_bytes;
            let image = m.wram.slice(0, wram).unwrap().to_vec();
            (outcome, log.injected().to_vec(), image)
        };
        let reference = run(Engine::Reference);
        let compiled = run(Engine::Compiled);
        prop_assert_eq!(compiled, reference);
    }
}

/// The `alu_loop` bench kernel — the shape the compiled tier exists to
/// accelerate (one self-chaining branch block covering the whole run) —
/// at the bench tasklet counts plus the divergence-prone 16.
#[test]
fn alu_loop_matches_reference_at_bench_shapes() {
    let program = Program::new(vec![
        Instr::Movi { rd: r(1), imm: 30_000 },
        Instr::Movi { rd: r(2), imm: 0 },
        Instr::Addi { rd: r(2), ra: r(2), imm: 3 },
        Instr::Addi { rd: r(1), ra: r(1), imm: -1 },
        Instr::Branch { cond: Cond::Ne, ra: r(1), rb: r(0), target: 2 },
        Instr::Trace { ra: r(2) },
        Instr::Halt,
    ]);
    let exec = ExecProgram::decode(&program);
    for tasklets in [1usize, 11, 16] {
        let result =
            assert_compiled_matches_reference(&exec, tasklets, u64::MAX, "alu_loop").unwrap();
        assert_eq!(result.trace.len(), tasklets);
        assert!(result.trace.iter().all(|&(_, v)| v == 90_000));
    }
}

/// TaskletId inside the hot loop: lockstep replication must stop at the
/// tasklet-sensitive block and still agree with the reference, with each
/// tasklet retiring its own divergent value.
#[test]
fn tasklet_divergent_loops_match_reference() {
    let program = Program::new(vec![
        Instr::Movi { rd: r(1), imm: 500 },
        Instr::Movi { rd: r(2), imm: 0 },
        Instr::TaskletId { rd: r(3) },
        Instr::Add { rd: r(2), ra: r(2), rb: r(3) },
        Instr::Addi { rd: r(2), ra: r(2), imm: 1 },
        Instr::Addi { rd: r(1), ra: r(1), imm: -1 },
        Instr::Branch { cond: Cond::Ne, ra: r(1), rb: r(0), target: 2 },
        Instr::Trace { ra: r(2) },
        Instr::Halt,
    ]);
    let exec = ExecProgram::decode(&program);
    for tasklets in [2usize, 11] {
        let result =
            assert_compiled_matches_reference(&exec, tasklets, u64::MAX, "divergent").unwrap();
        for &(t, v) in &result.trace {
            assert_eq!(v, 500 * (t as u32) + 500, "tasklet {t} retired the wrong sum");
        }
    }
}

/// Computed control flow: `jal` records the return pc and `jr` re-enters
/// compiled chains at a register-carried target, which the compiled tier
/// resolves through `link_of` at run time.
#[test]
fn jal_jr_computed_jumps_match_reference() {
    let program = Program::new(vec![
        Instr::Movi { rd: r(5), imm: 10 },
        // call the "subroutine" at 6; it returns via jr r7.
        Instr::Jal { rd: r(7), target: 6 },
        Instr::Addi { rd: r(5), ra: r(5), imm: -1 },
        Instr::Branch { cond: Cond::Ne, ra: r(5), rb: r(0), target: 1 },
        Instr::Trace { ra: r(6) },
        Instr::Halt,
        // subroutine body: a compilable block ending in a computed return.
        Instr::Addi { rd: r(6), ra: r(6), imm: 7 },
        Instr::Xor { rd: r(6), ra: r(6), rb: r(5) },
        Instr::Jr { ra: r(7) },
    ]);
    let exec = ExecProgram::decode(&program);
    for tasklets in [1usize, 3, 11] {
        let _ = assert_compiled_matches_reference(&exec, tasklets, u64::MAX, "jal/jr").unwrap();
    }
}

/// Budget sweeps crossing mid-chain exhaustion: every cutoff from "fails
/// at the first pick" to "completes" must surface at the identical pick,
/// including cutoffs landing inside a compiled chain (the chain caps its
/// slot count before running, so exhaustion happens at block granularity
/// exactly where the reference loop stops).
#[test]
fn budget_exhaustion_inside_chains_matches_reference() {
    let program = Program::new(vec![
        Instr::Movi { rd: r(1), imm: 40 },
        Instr::Addi { rd: r(2), ra: r(2), imm: 3 },
        Instr::Xor { rd: r(3), ra: r(3), rb: r(2) },
        Instr::Addi { rd: r(1), ra: r(1), imm: -1 },
        Instr::Branch { cond: Cond::Ne, ra: r(1), rb: r(0), target: 1 },
        Instr::Store { width: Width::W, ra: r(0), off: 64, rs: r(3) },
        Instr::Halt,
    ]);
    let exec = ExecProgram::decode(&program);
    for tasklets in [1usize, 11] {
        let full = assert_compiled_matches_reference(&exec, tasklets, u64::MAX, "full")
            .expect("completes");
        for budget in (0..full.cycles + 12).step_by(11) {
            let label = format!("budget {budget}");
            let _outcome = assert_compiled_matches_reference(&exec, tasklets, budget, &label);
        }
    }
}

/// Profile-guided recompilation: `recompile_hot` keeps only blocks whose
/// profiled entry count meets the threshold, and the resulting partial
/// compilation stays bit-identical to the reference.
#[test]
fn hot_recompilation_from_attribution_matches_reference() {
    let program = Program::new(vec![
        Instr::Movi { rd: r(1), imm: 100 },
        Instr::Addi { rd: r(2), ra: r(2), imm: 1 },
        Instr::Addi { rd: r(1), ra: r(1), imm: -1 },
        Instr::Branch { cond: Cond::Ne, ra: r(1), rb: r(0), target: 1 },
        Instr::Trace { ra: r(2) },
        Instr::Halt,
    ]);
    let mut exec = ExecProgram::decode(&program);
    let mut attr = dpu_sim::CycleAttribution::new();
    let mut profiling = seeded_machine();
    profiling.run_exec_profiled(&exec, 2, &mut attr).expect("profiled run completes");
    for threshold in [1u64, 50, 1_000_000] {
        exec.recompile_hot(&attr, threshold);
        let label = format!("hot threshold {threshold}");
        let result =
            assert_compiled_matches_reference(&exec, 2, u64::MAX, &label).expect("completes");
        assert_eq!(result.trace, vec![(0, 100), (1, 100)]);
    }
    // An over-threshold recompile keeps nothing compiled.
    assert!(exec.compiled().is_empty(), "1M entries should exceed every counter");
}
