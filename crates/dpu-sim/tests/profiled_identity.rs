//! Identity tests for the cycle-attribution profiler: a profiled run
//! (`Machine::run_exec_profiled`) must be purely observational — same
//! `RunResult` bit-for-bit, same memory image, same error — as an
//! unprofiled run, and the attributed cycles must sum exactly to the
//! run's cycle count.

use dpu_sim::exec::ExecProgram;
use dpu_sim::isa::{Cond, Instr, Program, Reg, Width};
use dpu_sim::{CycleAttribution, Machine, RunResult, Subroutine};
use proptest::prelude::*;

const TEST_BUDGET: u64 = 300_000;

fn r(i: u8) -> Reg {
    Reg(i)
}

/// Run `program` profiled and unprofiled from identical fresh machines,
/// assert complete observable equality, and return the outcome plus the
/// attribution.
fn assert_profiled_identical(
    program: &Program,
    tasklets: usize,
    budget: u64,
) -> (Result<RunResult, dpu_sim::Error>, CycleAttribution) {
    let exec = ExecProgram::decode(program);
    let mut plain_machine = Machine::default();
    let mut prof_machine = Machine::default();
    for (i, b) in (0..4096u32).enumerate() {
        plain_machine.mram.write_u8(i, b.wrapping_mul(41) & 0xff).unwrap();
        prof_machine.mram.write_u8(i, b.wrapping_mul(41) & 0xff).unwrap();
    }
    let plain = plain_machine.run_exec_with_budget(&exec, tasklets, budget);
    let mut attr = CycleAttribution::new();
    let profiled = prof_machine.run_exec_profiled_with_budget(&exec, tasklets, budget, &mut attr);
    assert_eq!(plain, profiled, "profiling changed the run on {program:?}");
    let wram_len = plain_machine.params.wram_bytes;
    assert_eq!(
        plain_machine.wram.slice(0, wram_len).unwrap(),
        prof_machine.wram.slice(0, wram_len).unwrap(),
        "WRAM images diverged under profiling"
    );
    (profiled, attr)
}

/// A kernel exercising every attribution path: DMA transfers, subroutine
/// bursts, a barrier, a mutex-guarded section and a countdown loop.
fn mixed_program() -> Program {
    Program::new(vec![
        Instr::TaskletId { rd: r(0) },
        Instr::Movi { rd: r(1), imm: 64 },
        Instr::Movi { rd: r(2), imm: 0 },
        // DMA: read 64 bytes of MRAM into WRAM at 0.
        Instr::MramRead { wram: r(2), mram: r(2), len: r(1) },
        Instr::Load { width: Width::W, rd: r(3), ra: r(2), off: 0 },
        // Software multiply (burst) on the loaded word.
        Instr::CallSub { sub: Subroutine::Mulsi3, rd: r(4), ra: r(3), rb: r(1) },
        Instr::Barrier,
        // Mutex-guarded accumulate into WRAM[128].
        Instr::MutexLock { id: 0 },
        Instr::Movi { rd: r(5), imm: 128 },
        Instr::Load { width: Width::W, rd: r(6), ra: r(5), off: 0 },
        Instr::Add { rd: r(6), ra: r(6), rb: r(4) },
        Instr::Store { width: Width::W, ra: r(5), off: 0, rs: r(6) },
        Instr::MutexUnlock { id: 0 },
        // Countdown loop: a reusable superblock body.
        Instr::Movi { rd: r(7), imm: 20 },
        Instr::Addi { rd: r(7), ra: r(7), imm: -1 },
        Instr::Branch { cond: Cond::Ne, ra: r(7), rb: r(2), target: 14 },
        Instr::MramWrite { wram: r(2), mram: r(2), len: r(1) },
        Instr::Halt,
    ])
}

#[test]
fn profiled_run_is_bit_identical_and_cycles_sum_exactly() {
    for tasklets in [1usize, 2, 4, 11] {
        let (outcome, attr) = assert_profiled_identical(&mixed_program(), tasklets, TEST_BUDGET);
        let result = outcome.expect("mixed program completes");
        assert_eq!(
            attr.total_cycles(),
            result.cycles,
            "attribution must partition the makespan exactly (tasklets={tasklets})"
        );
        let block_cycles: u64 = attr.blocks().iter().map(|b| b.cycles).sum();
        let sub_cycles: u64 = attr.subroutines().map(|(_, _, s)| s.cycles).sum();
        assert_eq!(block_cycles + sub_cycles, result.cycles);
        let block_slots: u64 = attr.blocks().iter().map(|b| b.slots).sum();
        let sub_slots: u64 = attr.subroutines().map(|(_, _, s)| s.slots).sum();
        assert_eq!(block_slots + sub_slots, result.instructions);
        // The multiply burst is attributed to __mulsi3 at its call site.
        let mul = attr
            .subroutines()
            .find(|(_, symbol, _)| *symbol == "__mulsi3")
            .expect("__mulsi3 attributed");
        assert_eq!(mul.2.calls, tasklets as u64);
        assert!(mul.2.cycles > 0);
    }
}

#[test]
fn folded_stacks_and_top_blocks_are_consistent() {
    let (outcome, attr) = assert_profiled_identical(&mixed_program(), 4, TEST_BUDGET);
    let result = outcome.expect("completes");
    let folded = attr.folded("dpu0");
    // Every line: "dpu0;block_<start>_<len>[;<symbol>] <count>", counts
    // summing to the makespan.
    let mut folded_total = 0u64;
    for line in folded.lines() {
        let (frames, count) = line.rsplit_once(' ').expect("count field");
        assert!(frames.starts_with("dpu0;block_"), "bad frame path {line:?}");
        folded_total += count.parse::<u64>().expect("numeric count");
    }
    assert_eq!(folded_total, result.cycles);
    assert!(folded.contains(";__mulsi3 "), "subroutine frame missing:\n{folded}");
    // Hot blocks rank by cycles, include subroutine bursts, and cap at n.
    let top = attr.top_blocks(3);
    assert!(top.len() <= 3);
    assert!(top.windows(2).all(|w| w[0].cycles >= w[1].cycles), "not sorted: {top:?}");
    let hottest_total: u64 = attr.top_blocks(usize::MAX).iter().map(|b| b.cycles).sum();
    assert_eq!(hottest_total, result.cycles);
}

#[test]
fn attribution_accumulates_across_runs_and_merges() {
    let exec = ExecProgram::decode(&mixed_program());
    // Two separate runs into one attribution…
    let mut accumulated = CycleAttribution::new();
    let mut m1 = Machine::default();
    let r1 = m1.run_exec_profiled(&exec, 2, &mut accumulated).expect("run 1");
    let mut m2 = Machine::default();
    let r2 = m2.run_exec_profiled(&exec, 11, &mut accumulated).expect("run 2");
    assert_eq!(accumulated.total_cycles(), r1.cycles + r2.cycles);
    assert_eq!(accumulated.runs(), 2);
    // …equal one attribution per run merged afterwards.
    let mut a1 = CycleAttribution::new();
    let mut a2 = CycleAttribution::new();
    Machine::default().run_exec_profiled(&exec, 2, &mut a1).expect("run 1 again");
    Machine::default().run_exec_profiled(&exec, 11, &mut a2).expect("run 2 again");
    a1.merge(&a2);
    assert_eq!(a1, accumulated);
    // Merging an empty attribution is a no-op in either direction.
    let mut empty = CycleAttribution::new();
    empty.merge(&a1);
    assert_eq!(empty, a1);
    a1.merge(&CycleAttribution::new());
    assert_eq!(a1, empty);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Profiling is observationally invisible on random programs, and
    /// whenever a run completes its attribution partitions the makespan.
    #[test]
    fn profiled_identity_on_random_programs(
        instrs in prop::collection::vec(random_instr(24), 1..24),
        tasklets in 1usize..13,
    ) {
        let program = Program::new(instrs);
        let (outcome, attr) = assert_profiled_identical(&program, tasklets, TEST_BUDGET);
        if let Ok(result) = outcome {
            prop_assert_eq!(attr.total_cycles(), result.cycles);
        }
    }
}

/// Random instruction mix biased toward the paths attribution must cover
/// (branches, subroutine bursts, sync); targets stay in-range so programs
/// loop rather than fault.
fn random_instr(len: u32) -> impl Strategy<Value = Instr> {
    let reg = || (0u8..6).prop_map(Reg);
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        (0u8..6, -40i32..40).prop_map(|(rd, imm)| Instr::Movi { rd: Reg(rd), imm }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instr::Add { rd, ra, rb }),
        (reg(), reg(), -20i32..20).prop_map(|(rd, ra, imm)| Instr::Addi { rd, ra, imm }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instr::CallSub {
            sub: Subroutine::Mulsi3,
            rd,
            ra,
            rb,
        }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instr::CallSub {
            sub: Subroutine::Addsf3,
            rd,
            ra,
            rb,
        }),
        (reg(), reg(), 0u32..len).prop_map(|(ra, rb, target)| Instr::Branch {
            cond: Cond::Ne,
            ra,
            rb,
            target,
        }),
        (0u32..len).prop_map(|target| Instr::Jump { target }),
        reg().prop_map(|rd| Instr::TaskletId { rd }),
        Just(Instr::Barrier),
        (0u8..2).prop_map(|id| Instr::MutexLock { id }),
        (0u8..2).prop_map(|id| Instr::MutexUnlock { id }),
    ]
}
