//! Property tests for the SEC-DED ECC layer: the word codec corrects
//! every single-bit flip position and never miscorrects double flips,
//! and the page-level sidecar (scrub + snapshot/restore) round-trips
//! bit-identically.

use dpu_sim::ecc::{decode_word, encode_word, Decode, WORD_BYTES};
use dpu_sim::{CowMemory, MRAM_PAGE_BYTES};
use proptest::prelude::*;

/// Flip every one of the 72 codeword bit positions of `w` in turn and
/// check the decode outcome names the flipped position.
fn check_all_single_flips(w: u64) {
    let code = encode_word(w);
    assert_eq!(decode_word(w, code), Decode::Clean, "clean word misdecoded: {w:#x}");
    for bit in 0..64u8 {
        assert_eq!(
            decode_word(w ^ (1u64 << bit), code),
            Decode::CorrectedData(bit),
            "data bit {bit} of {w:#x} not corrected"
        );
    }
    for bit in 0..8u8 {
        assert_eq!(
            decode_word(w, code ^ (1u8 << bit)),
            Decode::CorrectedCode,
            "code bit {bit} over {w:#x} not corrected"
        );
    }
}

/// Deterministic backstop: exhaustive positions over a fixed word set,
/// independent of the proptest case budget.
#[test]
fn codec_corrects_every_position_on_fixed_words() {
    for w in [
        0u64,
        u64::MAX,
        0xAAAA_AAAA_AAAA_AAAA,
        0x5555_5555_5555_5555,
        0x0123_4567_89AB_CDEF,
        1,
        1 << 63,
    ] {
        check_all_single_flips(w);
    }
}

/// A fresh arena with `data` written at offset 0 and ECC armed, plus a
/// copy of the pristine logical content.
fn armed_memory(data: &[u8]) -> (CowMemory, Vec<u8>) {
    let mut mem = CowMemory::new("MRAM", 2 * MRAM_PAGE_BYTES);
    mem.write(0, data).unwrap();
    mem.set_ecc(true);
    let mut pristine = vec![0u8; data.len()];
    mem.read(0, &mut pristine).unwrap();
    (mem, pristine)
}

fn read_back(mem: &CowMemory, len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    mem.read(0, &mut buf).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary words, every single-bit flip — all 64 data
    /// positions and all 8 sidecar positions — is corrected, with the
    /// exact bit index reported for data flips.
    #[test]
    fn codec_corrects_every_single_bit_position(w in any::<u64>()) {
        check_all_single_flips(w);
    }

    /// Double data-bit flips within one word are detected, never
    /// miscorrected: decode says [`Decode::Uncorrectable`] rather than
    /// naming some third bit. `delta` keeps the two positions distinct.
    #[test]
    fn codec_never_miscorrects_double_flips(
        w in any::<u64>(),
        a in 0u8..64,
        delta in 1u8..64,
    ) {
        let b = (a + delta) % 64;
        let code = encode_word(w);
        let corrupt = w ^ (1u64 << a) ^ (1u64 << b);
        prop_assert_eq!(decode_word(corrupt, code), Decode::Uncorrectable);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A raw storage flip at *any* byte/bit position of a resident page
    /// is repaired by the next scrub, restoring the page bit-identical
    /// to the pristine content without any uncorrectable report.
    #[test]
    fn scrub_corrects_any_single_bit_flip_position(
        data in proptest::collection::vec(any::<u8>(), 64..4096),
        addr_raw in 0usize..1 << 20,
        bit in 0u8..8,
    ) {
        let (mut mem, pristine) = armed_memory(&data);
        let addr = addr_raw % data.len();
        mem.flip_bit_raw(addr, bit).unwrap();
        prop_assert!(read_back(&mem, data.len()) != pristine);

        let rep = mem.scrub();
        prop_assert_eq!(rep.corrected_data, 1);
        prop_assert_eq!(rep.corrected_code, 0);
        prop_assert!(rep.uncorrectable.is_empty());
        prop_assert_eq!(read_back(&mem, data.len()), pristine.clone());

        // And the page really is clean again: a second sweep is a no-op.
        prop_assert!(mem.scrub().clean());
    }

    /// Two distinct raw flips inside the same 8-byte word are surfaced
    /// as uncorrectable at that word's address, and scrub leaves the
    /// (detectably bad) data exactly as injected — no miscorrection
    /// toward some third value.
    #[test]
    fn scrub_surfaces_same_word_double_flips_without_miscorrecting(
        data in proptest::collection::vec(any::<u8>(), 64..4096),
        word_raw in 0usize..1 << 20,
        a in 0u8..64,
        delta in 1u8..64,
    ) {
        let b = (a + delta) % 64;
        let (mut mem, _) = armed_memory(&data);
        let word_base = (word_raw % (data.len() / WORD_BYTES)) * WORD_BYTES;
        for bit in [a, b] {
            mem.flip_bit_raw(word_base + (bit / 8) as usize, bit % 8).unwrap();
        }
        let corrupted = read_back(&mem, data.len());

        let rep = mem.scrub();
        prop_assert_eq!(rep.corrected_data, 0);
        prop_assert_eq!(rep.uncorrectable, vec![word_base]);
        prop_assert_eq!(read_back(&mem, data.len()), corrupted);
    }

    /// Scrub → snapshot → restore on clean pages is bit-identical in
    /// both data and sidecar: the restored arena scrubs clean and reads
    /// back the pristine content.
    #[test]
    fn scrub_restore_round_trips_bit_identical_on_clean_pages(
        data in proptest::collection::vec(any::<u8>(), 64..4096),
        scribbles in proptest::collection::vec((0usize..1 << 20, any::<u8>()), 1..16),
    ) {
        let (mut mem, pristine) = armed_memory(&data);
        prop_assert!(mem.scrub().clean());
        let snap = mem.snapshot();

        // Legitimate writes move the sidecar along; raw flips corrupt it.
        for (raw, byte) in &scribbles {
            let addr = raw % data.len();
            mem.write(addr, &[*byte]).unwrap();
            mem.flip_bit_raw(addr, byte % 8).unwrap();
        }

        mem.restore(&snap).unwrap();
        prop_assert!(mem.ecc_enabled());
        prop_assert_eq!(read_back(&mem, data.len()), pristine.clone());
        let rep = mem.scrub();
        prop_assert!(rep.clean(), "restored arena not clean: {rep:?}");
        prop_assert!(rep.pages >= 1);
    }
}
