//! Identity tests for the fast engines: the superblock engine and the
//! compiled threaded-code tier (and whatever the ambient `Machine::run_exec`
//! selection resolves to, including a `PIM_SIM_ENGINE` override) must all
//! match the per-instruction reference loop
//! (`Machine::run_exec_reference_with_budget`) bit-for-bit — same
//! `RunResult`, same error at the same point, same final memory image —
//! on random programs, on DMA-stall-heavy kernels, and on the
//! mutex/barrier-heavy shape the `sync_heavy_16t` bench measures.

use dpu_sim::exec::{is_superblock_op, ExecProgram};
use dpu_sim::isa::{Cond, Instr, Program, Reg, Width};
use dpu_sim::{Engine, Machine, RunResult};
use proptest::prelude::*;

/// Budget small enough to terminate the infinite loops random control flow
/// produces, large enough that most random programs complete.
const TEST_BUDGET: u64 = 300_000;

/// A fresh machine with deterministic non-zero MRAM so loads observe real
/// data.
fn seeded_machine() -> Machine {
    let mut m = Machine::default();
    for (i, b) in (0..4096u32).enumerate() {
        m.mram.write_u8(i, b.wrapping_mul(37) & 0xff).unwrap();
    }
    m
}

/// Run `program` on every engine tier from identical fresh machines and
/// assert complete observable equality with the reference loop.
fn assert_engines_agree(
    program: &Program,
    tasklets: usize,
    budget: u64,
) -> Result<RunResult, dpu_sim::Error> {
    let exec = ExecProgram::decode(program);
    let mut ref_machine = seeded_machine();
    let reference = ref_machine.run_exec_reference_with_budget(&exec, tasklets, budget);
    let check =
        |label: &str, f: &mut dyn FnMut(&mut Machine) -> Result<RunResult, dpu_sim::Error>| {
            let mut machine = seeded_machine();
            let outcome = f(&mut machine);
            assert_eq!(outcome, reference, "{label} diverged on {program:?}");
            let wram_len = machine.params.wram_bytes;
            assert_eq!(
                machine.wram.slice(0, wram_len).unwrap(),
                ref_machine.wram.slice(0, wram_len).unwrap(),
                "{label}: WRAM images diverged"
            );
            assert_eq!(machine.mram, ref_machine.mram, "{label}: MRAM images diverged");
        };
    check("superblock engine", &mut |m| {
        m.run_exec_engine_with_budget(&exec, tasklets, budget, Engine::Superblock)
    });
    check("compiled tier", &mut |m| {
        m.run_exec_engine_with_budget(&exec, tasklets, budget, Engine::Compiled)
    });
    // The ambient selection (`PIM_SIM_ENGINE` or the default): what every
    // normal launch runs, and what the CI engine matrix forces per tier.
    check("ambient engine", &mut |m| m.run_exec_with_budget(&exec, tasklets, budget));
    reference
}

/// A strategy over instructions, weighted toward superblock ALU runs with
/// enough control flow, memory traffic, sync and DMA mixed in to exercise
/// every fast-path bailout. Branch targets land in `0..len` (valid) so
/// random programs loop and re-enter blocks mid-way.
fn instr_strategy(len: u32) -> impl Strategy<Value = Instr> {
    let reg = || (0u8..8).prop_map(Reg);
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        (0u8..8, -100i32..100).prop_map(|(r, imm)| Instr::Movi { rd: Reg(r), imm }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instr::Add { rd, ra, rb }),
        (reg(), reg(), -50i32..50).prop_map(|(rd, ra, imm)| Instr::Addi { rd, ra, imm }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instr::Sub { rd, ra, rb }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instr::Xor { rd, ra, rb }),
        (reg(), reg(), 0u8..31).prop_map(|(rd, ra, sh)| Instr::Lsri { rd, ra, sh }),
        (reg(), reg(), reg()).prop_map(|(rd, ra, rb)| Instr::Mul8 { rd, ra, rb }),
        (reg(), reg()).prop_map(|(rd, ra)| Instr::Popcount { rd, ra }),
        reg().prop_map(|rd| Instr::TaskletId { rd }),
        (reg(), reg(), 0i32..256).prop_map(|(rd, ra, off)| Instr::Load {
            width: Width::W,
            rd,
            ra,
            off: off * 4,
        }),
        (reg(), 0i32..256, reg()).prop_map(|(ra, off, rs)| Instr::Store {
            width: Width::W,
            ra,
            off: off * 4,
            rs,
        }),
        (reg(), reg(), reg(), 0u32..len).prop_map(|(ra, rb, _rd, target)| Instr::Branch {
            cond: Cond::Ne,
            ra,
            rb,
            target,
        }),
        (0u32..len).prop_map(|target| Instr::Jump { target }),
        (reg(), 0u32..len).prop_map(|(rd, target)| Instr::Jal { rd, target }),
        reg().prop_map(|ra| Instr::Trace { ra }),
        Just(Instr::Barrier),
        (0u8..2).prop_map(|id| Instr::MutexLock { id }),
        (0u8..2).prop_map(|id| Instr::MutexUnlock { id }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole identity: superblock execution matches per-instruction
    /// `run_exec` bit-for-bit on random programs — results, errors,
    /// partial memory state at an error, everything.
    #[test]
    fn fast_engine_matches_reference_on_random_programs(
        instrs in prop::collection::vec(instr_strategy(40), 1..40),
        tasklets in 1usize..17,
    ) {
        let program = Program::new(instrs);
        let _outcome = assert_engines_agree(&program, tasklets, TEST_BUDGET);
    }

    /// Superblock partitioning round-trips: the partition pieces are
    /// contiguous, cover the instruction stream exactly, pure pieces
    /// contain only superblock ops, and every memoized head matches its
    /// piece.
    #[test]
    fn superblock_partition_round_trips(
        instrs in prop::collection::vec(instr_strategy(40), 1..60),
    ) {
        let program = Program::new(instrs.clone());
        let exec = ExecProgram::decode(&program);
        let sb = exec.superblocks();
        let parts = sb.partition();
        let mut next = 0u32;
        for &(start, len) in &parts {
            prop_assert_eq!(start, next, "pieces must be contiguous");
            prop_assert!(len >= 1);
            let all_pure =
                instrs[start as usize..(start + len) as usize].iter().all(is_superblock_op);
            if len > 1 {
                prop_assert!(all_pure, "multi-instruction pieces are superblocks");
            }
            prop_assert_eq!(all_pure, sb.len_at(start as usize) > 0);
            next = start + len;
        }
        prop_assert_eq!(next as usize, instrs.len(), "pieces must cover the stream");
        for meta in sb.blocks() {
            let total: u32 = meta.op_counts.iter().map(|&(_, c)| c).sum();
            prop_assert_eq!(total, meta.len, "memoized histogram covers the block");
        }
    }
}

/// DMA-stall-heavy kernel: every tasklet streams 1 KiB MRAM chunks
/// back-to-back, serializing on the shared streaming port, with an ALU
/// block between transfers. Cycle skipping must preserve exact
/// `idle_cycles` and DMA statistics.
#[test]
fn cycle_skipping_preserves_idle_cycles_and_dma_stats() {
    let chunk: i32 = 1024;
    let iters: i32 = 20;
    let mut instrs = vec![
        // r1 = wram base (tasklet id * chunk), r2 = mram addr, r3 = len.
        Instr::TaskletId { rd: Reg(1) },
        Instr::Lsli { rd: Reg(1), ra: Reg(1), sh: 10 },
        Instr::Movi { rd: Reg(2), imm: 0 },
        Instr::Movi { rd: Reg(3), imm: chunk },
        Instr::Movi { rd: Reg(5), imm: iters },
    ];
    let loop_head = instrs.len() as u32;
    instrs.extend([
        Instr::MramRead { wram: Reg(1), mram: Reg(2), len: Reg(3) },
        // A small superblock between transfers.
        Instr::Addi { rd: Reg(2), ra: Reg(2), imm: chunk },
        Instr::Addi { rd: Reg(5), ra: Reg(5), imm: -1 },
        Instr::Xor { rd: Reg(6), ra: Reg(6), rb: Reg(5) },
        Instr::Branch { cond: Cond::Ne, ra: Reg(5), rb: Reg(0), target: loop_head },
        Instr::MramWrite { wram: Reg(1), mram: Reg(2), len: Reg(3) },
        Instr::Halt,
    ]);
    let program = Program::new(instrs);

    for tasklets in [1usize, 2, 4, 8] {
        let result = assert_engines_agree(&program, tasklets, u64::MAX).expect("run completes");
        // Sanity: the run is genuinely DMA-heavy and leaves the pipeline
        // idle waiting on the streaming port.
        let transfers = tasklets as u64 * (iters as u64 + 1);
        assert_eq!(result.dma_transfers, transfers);
        assert_eq!(result.dma_bytes, transfers * chunk as u64);
        assert!(result.dma_cycles > result.instructions, "DMA dominates");
        assert!(result.idle_cycles > 0, "stalls must leave idle issue slots");
    }
}

/// The `sync_heavy_16t` bench shape: a mutex-guarded WRAM counter bumped
/// in a loop by 16 tasklets, then a barrier. Sole-runnable fast-forwarding
/// (most of this kernel's life has exactly one unblocked tasklet) must be
/// invisible.
#[test]
fn sync_heavy_16_tasklets_matches_reference() {
    let iters: i32 = 200;
    let mut instrs = vec![Instr::Movi { rd: Reg(5), imm: iters }];
    let loop_head = instrs.len() as u32;
    instrs.extend([
        Instr::MutexLock { id: 1 },
        Instr::Load { width: Width::W, rd: Reg(2), ra: Reg(0), off: 64 },
        Instr::Addi { rd: Reg(2), ra: Reg(2), imm: 1 },
        Instr::Store { width: Width::W, ra: Reg(0), off: 64, rs: Reg(2) },
        Instr::MutexUnlock { id: 1 },
        Instr::Addi { rd: Reg(5), ra: Reg(5), imm: -1 },
        Instr::Branch { cond: Cond::Ne, ra: Reg(5), rb: Reg(0), target: loop_head },
        Instr::Barrier,
        Instr::Halt,
    ]);
    let program = Program::new(instrs);
    let tasklets = 16;
    let result = assert_engines_agree(&program, tasklets, u64::MAX).expect("run completes");
    assert_eq!(result.trace, vec![]);
    // The counter saw every increment exactly once.
    let mut machine = Machine::default();
    let exec = ExecProgram::decode(&program);
    machine.run_exec(&exec, tasklets).unwrap();
    assert_eq!(
        machine.wram.read_u32(64).unwrap(),
        (iters as u32) * tasklets as u32,
        "mutex must serialize the read-modify-write"
    );
}

/// Subroutine bursts fast-forward in sole mode; budget exhaustion inside
/// a burst must surface at the identical pick on both engines.
#[test]
fn subroutine_bursts_and_budget_exhaustion_match_reference() {
    use dpu_sim::subroutines::Subroutine;
    let program = Program::new(vec![
        Instr::Movi { rd: Reg(1), imm: 1000 },
        Instr::Movi { rd: Reg(2), imm: 37 },
        Instr::CallSub { sub: Subroutine::Divsi3, rd: Reg(3), ra: Reg(1), rb: Reg(2) },
        Instr::CallSub { sub: Subroutine::Mulsi3, rd: Reg(4), ra: Reg(3), rb: Reg(2) },
        Instr::Trace { ra: Reg(4) },
        Instr::Halt,
    ]);
    // Exercise every budget from "fails at the first pick" to "completes":
    // the two engines must agree at each cutoff.
    let full = assert_engines_agree(&program, 1, u64::MAX).expect("run completes");
    for budget in (0..full.cycles + 12).step_by(7) {
        let _outcome = assert_engines_agree(&program, 1, budget);
    }
    assert_eq!(full.trace, vec![(0, (1000 / 37) * 37)]);
}

/// Deadlock accounting (at_barrier / on_mutex populations) is identical
/// when the fast engine detects the deadlock after fast-forwarded work.
#[test]
fn deadlock_accounting_matches_reference() {
    // Tasklet 0 takes the mutex and parks at a barrier still holding it;
    // the others run an ALU block then try to lock: classic deadlock.
    let program = Program::new(vec![
        Instr::TaskletId { rd: Reg(1) },
        Instr::Branch { cond: Cond::Ne, ra: Reg(1), rb: Reg(0), target: 4 },
        Instr::MutexLock { id: 0 },
        Instr::Barrier,
        // others: a superblock, then block on the mutex.
        Instr::Addi { rd: Reg(2), ra: Reg(2), imm: 5 },
        Instr::Xor { rd: Reg(3), ra: Reg(3), rb: Reg(2) },
        Instr::MutexLock { id: 0 },
        Instr::Barrier,
        Instr::Halt,
    ]);
    for tasklets in [2usize, 5, 12] {
        let err = assert_engines_agree(&program, tasklets, u64::MAX)
            .expect_err("mutex held across barrier deadlocks");
        assert_eq!(
            err,
            dpu_sim::Error::Deadlock { at_barrier: 1, on_mutex: tasklets - 1 },
            "tasklets={tasklets}"
        );
    }
}
