//! Architectural parameters of the simulated UPMEM system.
//!
//! The default values mirror Table 2.1 of the paper ("UPMEM PIM Attributes").

use serde::{Deserialize, Serialize};

/// Number of pipeline stages in the DPU core.
///
/// The revolver dispatcher requires at least this many cycles between two
/// instructions of the same tasklet, which is why per-DPU speedup saturates
/// at 11 tasklets (paper §4.3.1).
pub const PIPELINE_STAGES: u32 = 11;

/// Maximum number of hardware threads (tasklets) per DPU.
pub const MAX_TASKLETS: usize = 24;

/// General-purpose registers per tasklet.
pub const REGS_PER_TASKLET: usize = 32;

/// WRAM capacity in bytes (64 KiB).
pub const WRAM_BYTES: usize = 64 * 1024;

/// IRAM capacity in bytes (24 KiB).
pub const IRAM_BYTES: usize = 24 * 1024;

/// MRAM capacity in bytes (64 MiB).
pub const MRAM_BYTES: usize = 64 * 1024 * 1024;

/// Fixed DMA setup penalty in cycles for any MRAM<->WRAM transfer (Eq. 3.4).
pub const DMA_SETUP_CYCLES: u64 = 25;

/// Bytes moved per DMA cycle after setup (Eq. 3.4: one cycle per 2 bytes).
pub const DMA_BYTES_PER_CYCLE: u64 = 2;

/// Maximum bytes per single DMA transfer; the paper's eBNN mapping is limited
/// to 16 images per batch because image transfers are capped at 2048 bytes
/// (§4.1.3).
pub const DMA_MAX_TRANSFER_BYTES: usize = 2048;

/// Host<->DPU transfers must be 8-byte aligned and sized (paper §3.2).
pub const HOST_TRANSFER_ALIGN: usize = 8;

/// DPU clock frequency in Hz as shipped (350 MHz; the white paper originally
/// announced 600 MHz — see [`DpuParams::announced`]).
pub const DPU_FREQ_HZ: u64 = 350_000_000;

/// Number of DPUs in the full evaluated system (20 DIMMs).
pub const SYSTEM_DPUS: usize = 2560;

/// DPUs per DIMM.
pub const DPUS_PER_DIMM: usize = 128;

/// DPUs per DRAM chip.
pub const DPUS_PER_CHIP: usize = 8;

/// Ranks per DIMM in the simulated topology.
pub const RANKS_PER_DIMM: usize = 2;

/// Per-DPU silicon area in mm² (65 nm node; Table 2.1).
pub const DPU_AREA_MM2: f64 = 3.75;

/// Per-DPU power consumption in watts (Table 2.1).
pub const DPU_POWER_W: f64 = 0.120;

/// Tunable parameter set describing one DPU.
///
/// [`DpuParams::default`] reproduces the commercial device measured in the
/// paper; [`DpuParams::announced`] models the originally announced 600 MHz
/// part, used by the paper's "Improvements" discussion (§4.3.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpuParams {
    /// Clock frequency in Hz.
    pub freq_hz: u64,
    /// Pipeline depth (issue distance of a single tasklet).
    pub pipeline_stages: u32,
    /// Maximum tasklets supported by the scheduler.
    pub max_tasklets: usize,
    /// WRAM size in bytes.
    pub wram_bytes: usize,
    /// IRAM size in bytes.
    pub iram_bytes: usize,
    /// MRAM size in bytes.
    pub mram_bytes: usize,
    /// DMA setup cost in cycles.
    pub dma_setup_cycles: u64,
    /// Bytes per DMA streaming cycle.
    pub dma_bytes_per_cycle: u64,
}

impl Default for DpuParams {
    fn default() -> Self {
        Self {
            freq_hz: DPU_FREQ_HZ,
            pipeline_stages: PIPELINE_STAGES,
            max_tasklets: MAX_TASKLETS,
            wram_bytes: WRAM_BYTES,
            iram_bytes: IRAM_BYTES,
            mram_bytes: MRAM_BYTES,
            dma_setup_cycles: DMA_SETUP_CYCLES,
            dma_bytes_per_cycle: DMA_BYTES_PER_CYCLE,
        }
    }
}

impl DpuParams {
    /// Parameters of the 600 MHz device announced in UPMEM's white paper.
    #[must_use]
    pub fn announced() -> Self {
        Self { freq_hz: 600_000_000, ..Self::default() }
    }

    /// Cycle cost of one MRAM<->WRAM DMA transfer of `bytes` bytes (Eq. 3.4).
    ///
    /// ```
    /// use dpu_sim::DpuParams;
    /// assert_eq!(DpuParams::default().dma_cycles(2048), 1049);
    /// ```
    #[must_use]
    pub fn dma_cycles(&self, bytes: usize) -> u64 {
        self.dma_setup_cycles + (bytes as u64).div_ceil(self.dma_bytes_per_cycle)
    }

    /// Convert a cycle count into seconds at this device's frequency.
    #[must_use]
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz as f64
    }

    /// Maximum per-tasklet stack size in bytes when running `tasklets`
    /// threads, assuming the whole WRAM is split evenly (paper §4.3.4 quotes
    /// 5.8 KiB for 11 tasklets).
    #[must_use]
    pub fn max_stack_bytes(&self, tasklets: usize) -> usize {
        assert!(tasklets > 0, "tasklet count must be positive");
        self.wram_bytes / tasklets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_cost_matches_eq_3_4() {
        let p = DpuParams::default();
        assert_eq!(p.dma_cycles(2048), 1049);
        assert_eq!(p.dma_cycles(8), 29);
        assert_eq!(p.dma_cycles(0), 25);
        // Odd byte counts round the streaming portion up.
        assert_eq!(p.dma_cycles(3), 27);
    }

    #[test]
    fn announced_device_is_600mhz() {
        assert_eq!(DpuParams::announced().freq_hz, 600_000_000);
        assert_eq!(DpuParams::announced().pipeline_stages, DpuParams::default().pipeline_stages);
    }

    #[test]
    fn stack_budget_matches_paper() {
        // 64 KiB / 11 tasklets = 5957 B ≈ the 5.8 KiB the paper quotes.
        let bytes = DpuParams::default().max_stack_bytes(11);
        assert!((5800..6100).contains(&bytes), "got {bytes}");
    }

    #[test]
    fn cycles_to_seconds_uses_frequency() {
        let p = DpuParams::default();
        let t = p.cycles_to_seconds(350_000_000);
        assert!((t - 1.0).abs() < 1e-12);
    }
}
