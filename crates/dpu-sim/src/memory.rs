//! The three DPU memories and the MRAM DMA engine.
//!
//! * **WRAM** — 64 KiB working RAM inside the core; loads and stores cost a
//!   single cycle (one pipeline slot). Dense storage ([`LinearMemory`]).
//! * **IRAM** — 24 KiB instruction RAM; the simulator stores the decoded
//!   [`crate::isa::Program`] and only checks the byte footprint.
//! * **MRAM** — 64 MiB DRAM bank outside the core; reachable exclusively via
//!   the DMA engine, which costs `25 + bytes/2` cycles per transfer
//!   (Eq. 3.4 of the paper). Backed by [`CowMemory`]: 64 KiB copy-on-write
//!   pages, so a 2,560-DPU system does not materialize 2,560 × 64 MiB.
//!
//! ## The MRAM arena
//!
//! A real rank's worth of MRAM (40 ranks × 64 DPUs × 64 MiB = 160 GiB)
//! cannot live as dense `Vec<u8>`s. [`CowMemory`] stores MRAM as a page
//! table of `Option<Arc<Vec<u8>>>`:
//!
//! * `None` is the **zero page** — untouched regions cost nothing and read
//!   as zeros, exactly like the dense representation after allocation;
//! * broadcast transfers install **one shared page** into every DPU of a
//!   set (weight/LUT images are stored once per system, not per DPU);
//! * writes go through [`Arc::make_mut`]: a page shared with a broadcast,
//!   a snapshot, or another DPU is copied the first time one owner writes
//!   it — O(dirty pages) isolation with no explicit bookkeeping;
//! * [`CowMemory::snapshot`] / [`CowMemory::restore`] clone the page
//!   *table* (pointer bumps), making whole-MRAM snapshots O(pages) instead
//!   of O(capacity) — the resilient retry path leans on this.

use crate::ecc;
use crate::error::{Error, Result};
use crate::params;
use std::sync::Arc;

/// Byte-addressed little-endian memory with bounds checking.
///
/// Dense storage used for WRAM (always fully resident, hot in the
/// interpreter loop).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearMemory {
    kind: &'static str,
    data: Vec<u8>,
}

impl LinearMemory {
    /// Create a zeroed memory of `size` bytes labelled `kind` for error
    /// messages.
    #[must_use]
    pub fn new(kind: &'static str, size: usize) -> Self {
        Self { kind, data: vec![0; size] }
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the capacity is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn check(&self, addr: usize, len: usize) -> Result<()> {
        if addr.checked_add(len).is_none_or(|end| end > self.data.len()) {
            return Err(Error::OutOfBounds { kind: self.kind, addr, len, size: self.data.len() });
        }
        Ok(())
    }

    /// Read `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when the range exceeds capacity.
    pub fn read(&self, addr: usize, buf: &mut [u8]) -> Result<()> {
        self.check(addr, buf.len())?;
        buf.copy_from_slice(&self.data[addr..addr + buf.len()]);
        Ok(())
    }

    /// Write `buf` starting at `addr`.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when the range exceeds capacity.
    pub fn write(&mut self, addr: usize, buf: &[u8]) -> Result<()> {
        self.check(addr, buf.len())?;
        self.data[addr..addr + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    /// Read one byte, zero-extended.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when out of range.
    pub fn read_u8(&self, addr: usize) -> Result<u32> {
        self.check(addr, 1)?;
        Ok(u32::from(self.data[addr]))
    }

    /// Read a little-endian halfword, zero-extended.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when out of range.
    pub fn read_u16(&self, addr: usize) -> Result<u32> {
        self.check(addr, 2)?;
        Ok(u32::from(u16::from_le_bytes([self.data[addr], self.data[addr + 1]])))
    }

    /// Read a little-endian word.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when out of range.
    pub fn read_u32(&self, addr: usize) -> Result<u32> {
        self.check(addr, 4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.data[addr..addr + 4]);
        Ok(u32::from_le_bytes(b))
    }

    /// Write one byte (low 8 bits of `val`).
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when out of range.
    pub fn write_u8(&mut self, addr: usize, val: u32) -> Result<()> {
        self.check(addr, 1)?;
        self.data[addr] = val as u8;
        Ok(())
    }

    /// Write a little-endian halfword (low 16 bits of `val`).
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when out of range.
    pub fn write_u16(&mut self, addr: usize, val: u32) -> Result<()> {
        self.check(addr, 2)?;
        self.data[addr..addr + 2].copy_from_slice(&(val as u16).to_le_bytes());
        Ok(())
    }

    /// Write a little-endian word.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when out of range.
    pub fn write_u32(&mut self, addr: usize, val: u32) -> Result<()> {
        self.check(addr, 4)?;
        self.data[addr..addr + 4].copy_from_slice(&val.to_le_bytes());
        Ok(())
    }

    /// Borrow a byte range.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when the range exceeds capacity.
    pub fn slice(&self, addr: usize, len: usize) -> Result<&[u8]> {
        self.check(addr, len)?;
        Ok(&self.data[addr..addr + len])
    }

    /// Mutably borrow a byte range (the DMA engine lands MRAM reads
    /// directly in WRAM through this, with no intermediate buffer).
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when the range exceeds capacity.
    pub fn slice_mut(&mut self, addr: usize, len: usize) -> Result<&mut [u8]> {
        self.check(addr, len)?;
        Ok(&mut self.data[addr..addr + len])
    }

    /// Zero the whole memory.
    pub fn clear(&mut self) {
        self.data.fill(0);
    }
}

/// Page size of the copy-on-write MRAM arena.
///
/// 64 KiB balances sharing granularity against page-table size: a 64 MiB
/// MRAM is 1,024 table entries (8 KiB per DPU at `Option<Arc>` niche
/// size), and one broadcast weight image spans whole pages after the
/// first, so rank-wide broadcasts share all but the boundary pages.
pub const MRAM_PAGE_BYTES: usize = 64 * 1024;

/// Byte-addressed little-endian memory backed by chunked copy-on-write
/// pages.
///
/// Reads treat unmaterialized pages as zeros; writes materialize (or
/// privatize, via [`Arc::make_mut`]) only the touched pages. Cloning —
/// and [`CowMemory::snapshot`] — copies the page table, not the data, so
/// both cost O(pages) and subsequent writes on either side un-share
/// pages lazily.
#[derive(Debug, Clone)]
pub struct CowMemory {
    kind: &'static str,
    len: usize,
    pages: Vec<Option<Arc<Vec<u8>>>>,
    /// SEC-DED sidecar: one code byte per aligned 8-byte data word,
    /// stored page-parallel and COW-shared exactly like the data pages
    /// (a broadcast page installed into 2,560 DPUs shares one sidecar).
    /// `None` is the all-zero sidecar, which is correct for the zero
    /// page ([`ecc::encode_word`] maps 0 to 0). Empty when ECC is off.
    codes: Vec<Option<Arc<Vec<u8>>>>,
    /// Whether writes maintain the SEC-DED sidecar. Off by default: the
    /// sidecar costs one encode per written word, gated ≤2% by bench.
    ecc: bool,
}

/// What one integrity sweep over a [`CowMemory`] found and repaired.
///
/// Produced by [`CowMemory::scrub`]: every resident page's words are
/// checked against the SEC-DED sidecar, single-bit errors (in data or
/// sidecar) are repaired in place, and multi-bit errors are reported by
/// address — never silently "fixed".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Resident pages swept.
    pub pages: usize,
    /// Words checked across those pages.
    pub words: u64,
    /// Data bits flipped back (storage errors corrected).
    pub corrected_data: u64,
    /// Sidecar bytes rewritten (errors confined to the code).
    pub corrected_code: u64,
    /// Byte addresses of words with uncorrectable (multi-bit) errors.
    pub uncorrectable: Vec<usize>,
}

impl ScrubReport {
    /// Total single-bit corrections (data plus sidecar).
    #[must_use]
    pub fn corrected(&self) -> u64 {
        self.corrected_data + self.corrected_code
    }

    /// True when the sweep found nothing to repair or report.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.corrected() == 0 && self.uncorrectable.is_empty()
    }

    /// Fold another report into this one (for multi-DPU aggregation).
    pub fn merge(&mut self, other: &ScrubReport) {
        self.pages += other.pages;
        self.words += other.words;
        self.corrected_data += other.corrected_data;
        self.corrected_code += other.corrected_code;
        self.uncorrectable.extend_from_slice(&other.uncorrectable);
    }
}

/// O(pages) image of a [`CowMemory`] taken by [`CowMemory::snapshot`].
///
/// Holds the snapshotted pages alive by reference count; the live memory
/// copies-on-write away from them, so a snapshot stays bit-exact no
/// matter what happens to the memory afterwards.
#[derive(Debug, Clone)]
pub struct MemorySnapshot {
    len: usize,
    pages: Vec<Option<Arc<Vec<u8>>>>,
    codes: Vec<Option<Arc<Vec<u8>>>>,
    ecc: bool,
}

impl MemorySnapshot {
    /// Capacity of the snapshotted memory in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the snapshotted memory had zero capacity.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Materialized pages the snapshot pins (the rest are zero pages).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }
}

impl CowMemory {
    /// Create a zeroed memory of `size` bytes labelled `kind` for error
    /// messages. Nothing is materialized: a fresh 64 MiB MRAM costs one
    /// page-table allocation.
    #[must_use]
    pub fn new(kind: &'static str, size: usize) -> Self {
        let table = size.div_ceil(MRAM_PAGE_BYTES);
        Self { kind, len: size, pages: vec![None; table], codes: vec![None; table], ecc: false }
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the capacity is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages in the page table.
    #[must_use]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Byte length of page `page` (the last page of a non-multiple
    /// capacity is short).
    fn page_len(&self, page: usize) -> usize {
        MRAM_PAGE_BYTES.min(self.len - page * MRAM_PAGE_BYTES)
    }

    /// Bounds-check a byte range without touching it.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when the range exceeds capacity.
    pub fn check_range(&self, addr: usize, len: usize) -> Result<()> {
        if addr.checked_add(len).is_none_or(|end| end > self.len) {
            return Err(Error::OutOfBounds { kind: self.kind, addr, len, size: self.len });
        }
        Ok(())
    }

    /// Materialize (and privatize) page `page` for writing.
    fn page_mut(&mut self, page: usize) -> &mut Vec<u8> {
        let len = self.page_len(page);
        let slot = &mut self.pages[page];
        Arc::make_mut(slot.get_or_insert_with(|| Arc::new(vec![0u8; len])))
    }

    /// Read `buf.len()` bytes starting at `addr`. Zero pages read as
    /// zeros.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when the range exceeds capacity.
    pub fn read(&self, addr: usize, buf: &mut [u8]) -> Result<()> {
        self.check_range(addr, buf.len())?;
        let mut done = 0;
        while done < buf.len() {
            let at = addr + done;
            let (page, off) = (at / MRAM_PAGE_BYTES, at % MRAM_PAGE_BYTES);
            let take = (self.page_len(page) - off).min(buf.len() - done);
            match &self.pages[page] {
                Some(data) => buf[done..done + take].copy_from_slice(&data[off..off + take]),
                None => buf[done..done + take].fill(0),
            }
            done += take;
        }
        Ok(())
    }

    /// Write `buf` starting at `addr`, materializing or privatizing the
    /// touched pages.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when the range exceeds capacity.
    pub fn write(&mut self, addr: usize, buf: &[u8]) -> Result<()> {
        self.check_range(addr, buf.len())?;
        let mut done = 0;
        while done < buf.len() {
            let at = addr + done;
            let (page, off) = (at / MRAM_PAGE_BYTES, at % MRAM_PAGE_BYTES);
            let take = (self.page_len(page) - off).min(buf.len() - done);
            self.page_mut(page)[off..off + take].copy_from_slice(&buf[done..done + take]);
            if self.ecc {
                self.refresh_codes(page, off, take);
            }
            done += take;
        }
        Ok(())
    }

    /// Re-encode the sidecar for every word overlapping `[off, off+len)`
    /// of page `page` (which must already be materialized). The write
    /// path calls this after each legitimate store so the sidecar always
    /// reflects the intended data.
    fn refresh_codes(&mut self, page: usize, off: usize, len: usize) {
        let words = self.page_len(page).div_ceil(ecc::WORD_BYTES);
        let w0 = off / ecc::WORD_BYTES;
        let w1 = (off + len).div_ceil(ecc::WORD_BYTES).min(words);
        let (pages, codes) = (&self.pages, &mut self.codes);
        let data = pages[page].as_deref().expect("data page materialized before code refresh");
        let code = Arc::make_mut(codes[page].get_or_insert_with(|| Arc::new(vec![0u8; words])));
        for (i, c) in code[w0..w1].iter_mut().enumerate() {
            *c = ecc::encode_word(ecc::word_at(data, (w0 + i) * ecc::WORD_BYTES));
        }
    }

    /// Copy a byte range out into a fresh vector (the paged replacement
    /// for `slice().to_vec()` — pages are not contiguous, so there is no
    /// borrowed whole-range view).
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when the range exceeds capacity.
    pub fn to_vec(&self, addr: usize, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.read(addr, &mut buf)?;
        Ok(buf)
    }

    /// Read one byte, zero-extended.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when out of range.
    pub fn read_u8(&self, addr: usize) -> Result<u32> {
        self.check_range(addr, 1)?;
        Ok(match &self.pages[addr / MRAM_PAGE_BYTES] {
            Some(data) => u32::from(data[addr % MRAM_PAGE_BYTES]),
            None => 0,
        })
    }

    /// Read a little-endian halfword, zero-extended.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when out of range.
    pub fn read_u16(&self, addr: usize) -> Result<u32> {
        let mut b = [0u8; 2];
        self.read(addr, &mut b)?;
        Ok(u32::from(u16::from_le_bytes(b)))
    }

    /// Read a little-endian word.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when out of range.
    pub fn read_u32(&self, addr: usize) -> Result<u32> {
        let mut b = [0u8; 4];
        self.read(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Write one byte (low 8 bits of `val`).
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when out of range.
    pub fn write_u8(&mut self, addr: usize, val: u32) -> Result<()> {
        self.check_range(addr, 1)?;
        let (page, off) = (addr / MRAM_PAGE_BYTES, addr % MRAM_PAGE_BYTES);
        self.page_mut(page)[off] = val as u8;
        if self.ecc {
            self.refresh_codes(page, off, 1);
        }
        Ok(())
    }

    /// Invert one **stored** bit without maintaining the SEC-DED
    /// sidecar — the model of a storage-cell error (and the injector's
    /// entry point). The touched page is privatized first, so a flip on
    /// a COW-shared broadcast page corrupts only this memory's mapping,
    /// never the other DPUs sharing the storage.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when `addr` is out of range.
    pub fn flip_bit_raw(&mut self, addr: usize, bit: u8) -> Result<()> {
        self.check_range(addr, 1)?;
        let off = addr % MRAM_PAGE_BYTES;
        self.page_mut(addr / MRAM_PAGE_BYTES)[off] ^= 1 << (bit & 7);
        Ok(())
    }

    /// Write a little-endian halfword (low 16 bits of `val`).
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when out of range.
    pub fn write_u16(&mut self, addr: usize, val: u32) -> Result<()> {
        self.write(addr, &(val as u16).to_le_bytes())
    }

    /// Write a little-endian word.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when out of range.
    pub fn write_u32(&mut self, addr: usize, val: u32) -> Result<()> {
        self.write(addr, &val.to_le_bytes())
    }

    /// Zero the whole memory by dropping every page back to the zero
    /// page — O(pages), and frees (or un-shares) the storage.
    pub fn clear(&mut self) {
        self.pages.fill(None);
        self.codes.fill(None);
    }

    /// Take an O(pages) snapshot: clones the page table (and the ECC
    /// sidecar table), bumping each materialized page's reference count.
    /// Writes after the snapshot copy-on-write away from it.
    #[must_use]
    pub fn snapshot(&self) -> MemorySnapshot {
        MemorySnapshot {
            len: self.len,
            pages: self.pages.clone(),
            codes: self.codes.clone(),
            ecc: self.ecc,
        }
    }

    /// Restore the exact image captured by [`CowMemory::snapshot`] —
    /// O(pages) pointer assignments, regardless of how much was written
    /// since.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when the snapshot came from a memory of a
    /// different capacity.
    pub fn restore(&mut self, snap: &MemorySnapshot) -> Result<()> {
        if snap.len != self.len {
            return Err(Error::OutOfBounds {
                kind: self.kind,
                addr: 0,
                len: snap.len,
                size: self.len,
            });
        }
        self.pages.clone_from(&snap.pages);
        self.codes.clone_from(&snap.codes);
        self.ecc = snap.ecc;
        Ok(())
    }

    /// Install `data` as page `page`, sharing it by reference.
    ///
    /// This is the broadcast fast path: the host builds one page and
    /// installs it into every DPU of a set, so a rank-wide weight image
    /// is stored once. A later write through any DPU privatizes only that
    /// DPU's copy.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when `page` is outside the table or `data`
    /// is not exactly the page's length.
    pub fn install_page(&mut self, page: usize, data: &Arc<Vec<u8>>) -> Result<()> {
        if page >= self.pages.len() || data.len() != self.page_len(page) {
            return Err(Error::OutOfBounds {
                kind: self.kind,
                addr: page * MRAM_PAGE_BYTES,
                len: data.len(),
                size: self.len,
            });
        }
        self.pages[page] = Some(Arc::clone(data));
        if self.ecc {
            self.codes[page] = Some(Arc::new(ecc::encode_page(data)));
        }
        Ok(())
    }

    /// [`CowMemory::install_page`] with a pre-computed SEC-DED sidecar,
    /// shared by reference like the data page. The broadcast fast path
    /// uses this so a rank-wide weight image carries **one** sidecar,
    /// encoded once on the host, instead of re-encoding per DPU.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when `page` is outside the table, `data`
    /// is not exactly the page's length, or `code` is not one byte per
    /// 8-byte word of `data`.
    pub fn install_page_with_code(
        &mut self,
        page: usize,
        data: &Arc<Vec<u8>>,
        code: &Arc<Vec<u8>>,
    ) -> Result<()> {
        if code.len() != data.len().div_ceil(ecc::WORD_BYTES) {
            return Err(Error::OutOfBounds {
                kind: self.kind,
                addr: page * MRAM_PAGE_BYTES,
                len: code.len(),
                size: self.len,
            });
        }
        self.install_page(page, data)?;
        if self.ecc {
            self.codes[page] = Some(Arc::clone(code));
        }
        Ok(())
    }

    /// Whether the SEC-DED sidecar is being maintained.
    #[must_use]
    pub fn ecc_enabled(&self) -> bool {
        self.ecc
    }

    /// Turn the SEC-DED sidecar on or off. Enabling encodes every
    /// resident page (a one-time O(resident bytes) sweep); disabling
    /// drops the sidecar storage.
    pub fn set_ecc(&mut self, on: bool) {
        if on == self.ecc {
            return;
        }
        self.ecc = on;
        if on {
            for page in 0..self.pages.len() {
                if let Some(data) = &self.pages[page] {
                    self.codes[page] = Some(Arc::new(ecc::encode_page(data)));
                }
            }
        } else {
            self.codes.fill(None);
        }
    }

    /// Bytes of materialized sidecar storage (shared sidecars counted at
    /// full size, mirroring [`CowMemory::resident_bytes`]).
    #[must_use]
    pub fn ecc_resident_bytes(&self) -> usize {
        self.codes.iter().flatten().map(|p| p.len()).sum()
    }

    /// The stored sidecar byte for the word containing `addr`, if ECC is
    /// on (missing sidecar pages read as zero codes).
    #[must_use]
    pub fn code_at(&self, addr: usize) -> Option<u8> {
        if !self.ecc || addr >= self.len {
            return None;
        }
        let (page, off) = (addr / MRAM_PAGE_BYTES, addr % MRAM_PAGE_BYTES);
        Some(self.codes[page].as_ref().map_or(0, |c| c[off / ecc::WORD_BYTES]))
    }

    /// Check every word overlapping `[addr, addr+len)` against the
    /// sidecar, repairing single-bit errors (data or code) in place.
    /// Returns the number of corrections. No-op when ECC is off.
    ///
    /// The DMA engine calls this on the source range of every
    /// MRAM→WRAM read, so storage errors are caught *before* the kernel
    /// consumes them.
    ///
    /// # Errors
    /// [`Error::EccUncorrectable`] on the first multi-bit word error;
    /// [`Error::OutOfBounds`] when the range exceeds capacity.
    pub fn verify_range(&mut self, addr: usize, len: usize) -> Result<u64> {
        if !self.ecc || len == 0 {
            return Ok(0);
        }
        self.check_range(addr, len)?;
        let mut corrected = 0u64;
        let first_word = addr / ecc::WORD_BYTES;
        let last_word = (addr + len - 1) / ecc::WORD_BYTES;
        let mut w = first_word;
        while w <= last_word {
            let at = w * ecc::WORD_BYTES;
            let page = at / MRAM_PAGE_BYTES;
            if self.pages[page].is_none() {
                // Zero page: sidecar is the (implicit) zero sidecar.
                w = ((page + 1) * MRAM_PAGE_BYTES) / ecc::WORD_BYTES;
                continue;
            }
            corrected += self.verify_word(at)?;
            w += 1;
        }
        Ok(corrected)
    }

    /// Decode one word against its sidecar byte, repairing in place.
    fn verify_word(&mut self, at: usize) -> Result<u64> {
        let (page, off) = (at / MRAM_PAGE_BYTES, at % MRAM_PAGE_BYTES);
        let w = off / ecc::WORD_BYTES;
        let data = self.pages[page].as_deref().expect("resident page");
        let word = ecc::word_at(data, off);
        let code = self.codes[page].as_ref().map_or(0, |c| c[w]);
        match ecc::decode_word(word, code) {
            ecc::Decode::Clean => Ok(0),
            ecc::Decode::CorrectedData(bit) => {
                let byte = off + (bit / 8) as usize;
                if byte >= data.len() {
                    // A ≥3-bit error aliased onto a padded tail position:
                    // not actually correctable.
                    return Err(Error::EccUncorrectable { addr: at });
                }
                self.page_mut(page)[byte] ^= 1 << (bit % 8);
                Ok(1)
            }
            ecc::Decode::CorrectedCode => {
                let words = self.page_len(page).div_ceil(ecc::WORD_BYTES);
                let code =
                    Arc::make_mut(self.codes[page].get_or_insert_with(|| Arc::new(vec![0; words])));
                code[w] = ecc::encode_word(word);
                Ok(1)
            }
            ecc::Decode::Uncorrectable => Err(Error::EccUncorrectable { addr: at }),
        }
    }

    /// Sweep every resident page, repairing single-bit errors and
    /// reporting multi-bit ones. The scrubber's core: the host runs this
    /// between launches (and the resilient path after each fault-armed
    /// attempt) so storage errors are swept up without consuming a
    /// retry. No-op when ECC is off.
    pub fn scrub(&mut self) -> ScrubReport {
        let mut rep = ScrubReport::default();
        if !self.ecc {
            return rep;
        }
        for page in 0..self.pages.len() {
            let Some(data) = self.pages[page].as_deref() else { continue };
            rep.pages += 1;
            let words = data.len().div_ceil(ecc::WORD_BYTES);
            rep.words += words as u64;
            let code = self.codes[page].as_deref();
            let mut fixes: Vec<(usize, ecc::Decode)> = Vec::new();
            for w in 0..words {
                let word = ecc::word_at(data, w * ecc::WORD_BYTES);
                let stored = code.map_or(0, |c| c[w]);
                match ecc::decode_word(word, stored) {
                    ecc::Decode::Clean => {}
                    d => fixes.push((w, d)),
                }
            }
            for (w, d) in fixes {
                let at = page * MRAM_PAGE_BYTES + w * ecc::WORD_BYTES;
                match d {
                    ecc::Decode::Clean => {}
                    ecc::Decode::CorrectedData(bit) => {
                        let off = w * ecc::WORD_BYTES + (bit / 8) as usize;
                        if off >= self.page_len(page) {
                            rep.uncorrectable.push(at);
                            continue;
                        }
                        self.page_mut(page)[off] ^= 1 << (bit % 8);
                        rep.corrected_data += 1;
                    }
                    ecc::Decode::CorrectedCode => {
                        let word = ecc::word_at(
                            self.pages[page].as_deref().expect("resident page"),
                            w * ecc::WORD_BYTES,
                        );
                        let code = Arc::make_mut(
                            self.codes[page].get_or_insert_with(|| Arc::new(vec![0; words])),
                        );
                        code[w] = ecc::encode_word(word);
                        rep.corrected_code += 1;
                    }
                    ecc::Decode::Uncorrectable => rep.uncorrectable.push(at),
                }
            }
        }
        rep
    }

    /// Materialized pages (zero pages cost nothing).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Bytes of materialized page storage reachable from this memory,
    /// counting shared pages at full size (see
    /// [`crate::PimSystem::mram_residency`] for the deduplicated
    /// system-wide figure).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.pages.iter().flatten().map(|p| p.len()).sum()
    }

    /// Stable identities of the materialized pages (the page storage's
    /// address), for deduplicated accounting across DPUs that share
    /// broadcast or snapshot pages.
    pub fn page_ids(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.pages.iter().flatten().map(|p| (std::sync::Arc::as_ptr(p) as usize, p.len()))
    }
}

/// Logical content equality: a zero page equals a materialized page of
/// zeros, and shared pages short-circuit by pointer.
impl PartialEq for CowMemory {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self.pages.iter().zip(&other.pages).all(|(a, b)| match (a, b) {
                (None, None) => true,
                (Some(x), Some(y)) => Arc::ptr_eq(x, y) || x == y,
                (Some(x), None) | (None, Some(x)) => x.iter().all(|&byte| byte == 0),
            })
    }
}

impl Eq for CowMemory {}

/// Cadenced background scrubber: sweeps a [`CowMemory`]'s resident pages
/// every `interval` launches, correcting single-bit upsets before they
/// can accumulate into uncorrectable double faults.
///
/// The serving layer drives one of these per DPU between batches; lower
/// intervals trade more sweep work for a smaller window in which a second
/// upset can land on an already-damaged word.
#[derive(Debug, Clone)]
pub struct Scrubber {
    interval: u64,
    since: u64,
    sweeps: u64,
    total: ScrubReport,
}

impl Scrubber {
    /// A scrubber that sweeps every `interval` launches. An interval of 0
    /// is clamped to 1 (sweep after every launch).
    #[must_use]
    pub fn new(interval: u64) -> Self {
        Self { interval: interval.max(1), since: 0, sweeps: 0, total: ScrubReport::default() }
    }

    /// Configured sweep cadence in launches.
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of full sweeps performed so far.
    #[must_use]
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Accumulated totals across every sweep this scrubber has run.
    #[must_use]
    pub fn total(&self) -> &ScrubReport {
        &self.total
    }

    /// Record one completed launch; when the cadence fires, sweep `mram`
    /// and return that sweep's report. Off-cadence launches return `None`
    /// and cost nothing.
    pub fn on_launch(&mut self, mram: &mut CowMemory) -> Option<ScrubReport> {
        self.since += 1;
        if self.since < self.interval {
            return None;
        }
        Some(self.force(mram))
    }

    /// Sweep immediately regardless of cadence, resetting the since-last
    /// counter.
    pub fn force(&mut self, mram: &mut CowMemory) -> ScrubReport {
        self.since = 0;
        self.sweeps += 1;
        let report = mram.scrub();
        self.total.merge(&report);
        report
    }
}

/// 64 KiB working RAM (single-cycle access from the pipeline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wram(pub LinearMemory);

impl Wram {
    /// A WRAM of the default 64 KiB capacity.
    #[must_use]
    pub fn new(bytes: usize) -> Self {
        Self(LinearMemory::new("WRAM", bytes))
    }
}

impl Default for Wram {
    fn default() -> Self {
        Self::new(params::WRAM_BYTES)
    }
}

impl std::ops::Deref for Wram {
    type Target = LinearMemory;
    fn deref(&self) -> &Self::Target {
        &self.0
    }
}

impl std::ops::DerefMut for Wram {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.0
    }
}

/// 64 MiB main RAM, reachable only via [`DmaEngine`] from the DPU side and
/// via host transfers from the CPU side. Paged copy-on-write storage —
/// see [`CowMemory`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mram(pub CowMemory);

impl Mram {
    /// An MRAM of the given capacity.
    #[must_use]
    pub fn new(bytes: usize) -> Self {
        Self(CowMemory::new("MRAM", bytes))
    }
}

impl Default for Mram {
    fn default() -> Self {
        Self::new(params::MRAM_BYTES)
    }
}

impl std::ops::Deref for Mram {
    type Target = CowMemory;
    fn deref(&self) -> &Self::Target {
        &self.0
    }
}

impl std::ops::DerefMut for Mram {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.0
    }
}

/// The DMA engine connecting MRAM and WRAM.
///
/// Every transfer is charged `setup + ceil(bytes / bytes_per_cycle)` cycles
/// (Eq. 3.4: 25 + bytes/2 with the default parameters) and is limited to
/// [`params::DMA_MAX_TRANSFER_BYTES`] bytes, which is what caps the paper's
/// eBNN batches at 16 images (§4.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaEngine {
    setup_cycles: u64,
    bytes_per_cycle: u64,
    max_transfer: usize,
    /// Total cycles spent in DMA so far (statistics).
    pub total_cycles: u64,
    /// Total bytes moved so far (statistics).
    pub total_bytes: u64,
    /// Number of transfers issued (statistics).
    pub transfers: u64,
}

impl DmaEngine {
    /// Engine with the given setup cost and streaming rate.
    #[must_use]
    pub fn new(setup_cycles: u64, bytes_per_cycle: u64, max_transfer: usize) -> Self {
        Self {
            setup_cycles,
            bytes_per_cycle,
            max_transfer,
            total_cycles: 0,
            total_bytes: 0,
            transfers: 0,
        }
    }

    /// Cycle cost of a transfer of `bytes` bytes (Eq. 3.4).
    #[must_use]
    pub fn cycles_for(&self, bytes: usize) -> u64 {
        self.setup_cycles + (bytes as u64).div_ceil(self.bytes_per_cycle)
    }

    /// Move `len` bytes MRAM→WRAM, returning the cycle cost. The bytes
    /// land directly in the WRAM slice — no intermediate buffer.
    ///
    /// # Errors
    /// [`Error::DmaTooLarge`] beyond the transfer limit, or
    /// [`Error::OutOfBounds`] from either memory.
    pub fn read(
        &mut self,
        mram: &Mram,
        wram: &mut Wram,
        mram_addr: usize,
        wram_addr: usize,
        len: usize,
    ) -> Result<u64> {
        self.check_len(len)?;
        mram.check_range(mram_addr, len)?;
        mram.read(mram_addr, wram.slice_mut(wram_addr, len)?)?;
        Ok(self.account(len))
    }

    /// Move `len` bytes WRAM→MRAM, returning the cycle cost. The bytes
    /// come straight out of the WRAM slice — no intermediate buffer.
    ///
    /// # Errors
    /// [`Error::DmaTooLarge`] beyond the transfer limit, or
    /// [`Error::OutOfBounds`] from either memory.
    pub fn write(
        &mut self,
        mram: &mut Mram,
        wram: &Wram,
        mram_addr: usize,
        wram_addr: usize,
        len: usize,
    ) -> Result<u64> {
        self.check_len(len)?;
        mram.write(mram_addr, wram.slice(wram_addr, len)?)?;
        Ok(self.account(len))
    }

    fn check_len(&self, len: usize) -> Result<()> {
        if len > self.max_transfer {
            return Err(Error::DmaTooLarge { requested: len, limit: self.max_transfer });
        }
        Ok(())
    }

    fn account(&mut self, len: usize) -> u64 {
        let cycles = self.cycles_for(len);
        self.total_cycles += cycles;
        self.total_bytes += len as u64;
        self.transfers += 1;
        cycles
    }
}

impl Default for DmaEngine {
    fn default() -> Self {
        Self::new(
            params::DMA_SETUP_CYCLES,
            params::DMA_BYTES_PER_CYCLE,
            params::DMA_MAX_TRANSFER_BYTES,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_round_trip_all_widths() {
        let mut m = LinearMemory::new("WRAM", 64);
        m.write_u32(0, 0xdead_beef).unwrap();
        assert_eq!(m.read_u32(0).unwrap(), 0xdead_beef);
        assert_eq!(m.read_u16(0).unwrap(), 0xbeef);
        assert_eq!(m.read_u8(3).unwrap(), 0xde);
        m.write_u16(8, 0x1234_5678).unwrap();
        assert_eq!(m.read_u16(8).unwrap(), 0x5678);
        m.write_u8(10, 0xAB).unwrap();
        assert_eq!(m.read_u8(10).unwrap(), 0xAB);
    }

    #[test]
    fn cow_rw_round_trip_all_widths() {
        let mut m = CowMemory::new("MRAM", MRAM_PAGE_BYTES * 2);
        m.write_u32(0, 0xdead_beef).unwrap();
        assert_eq!(m.read_u32(0).unwrap(), 0xdead_beef);
        assert_eq!(m.read_u16(0).unwrap(), 0xbeef);
        assert_eq!(m.read_u8(3).unwrap(), 0xde);
        m.write_u16(8, 0x1234_5678).unwrap();
        assert_eq!(m.read_u16(8).unwrap(), 0x5678);
        m.write_u8(10, 0xAB).unwrap();
        assert_eq!(m.read_u8(10).unwrap(), 0xAB);
    }

    #[test]
    fn bounds_are_enforced() {
        let m = LinearMemory::new("MRAM", 16);
        assert!(matches!(m.read_u32(13), Err(Error::OutOfBounds { .. })));
        assert!(matches!(m.read_u32(usize::MAX), Err(Error::OutOfBounds { .. })));
        let mut m2 = LinearMemory::new("MRAM", 16);
        assert!(m2.write(12, &[0; 8]).is_err());
        assert!(m2.write(12, &[0; 4]).is_ok());
    }

    #[test]
    fn cow_bounds_are_enforced() {
        let m = CowMemory::new("MRAM", 16);
        assert!(matches!(m.read_u32(13), Err(Error::OutOfBounds { .. })));
        assert!(matches!(m.read_u32(usize::MAX), Err(Error::OutOfBounds { .. })));
        let mut m2 = CowMemory::new("MRAM", 16);
        assert!(m2.write(12, &[0; 8]).is_err());
        assert!(m2.write(12, &[0; 4]).is_ok());
    }

    #[test]
    fn cow_zero_pages_read_as_zeros_without_materializing() {
        let m = CowMemory::new("MRAM", params::MRAM_BYTES);
        assert_eq!(m.resident_pages(), 0);
        assert_eq!(m.read_u32(63 * 1024 * 1024).unwrap(), 0);
        let mut buf = [7u8; 32];
        m.read(params::MRAM_BYTES - 32, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 32]);
        assert_eq!(m.resident_pages(), 0);
        assert_eq!(m.resident_bytes(), 0);
    }

    #[test]
    fn cow_writes_materialize_only_touched_pages() {
        let mut m = CowMemory::new("MRAM", params::MRAM_BYTES);
        m.write(3 * MRAM_PAGE_BYTES + 17, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.resident_pages(), 1);
        assert_eq!(m.resident_bytes(), MRAM_PAGE_BYTES);
        // Spanning a page boundary touches both pages.
        m.write(MRAM_PAGE_BYTES - 2, &[9; 8]).unwrap();
        assert_eq!(m.resident_pages(), 3);
        assert_eq!(m.read_u8(MRAM_PAGE_BYTES - 1).unwrap(), 9);
        assert_eq!(m.read_u8(MRAM_PAGE_BYTES + 5).unwrap(), 9);
        assert_eq!(m.read_u8(MRAM_PAGE_BYTES + 6).unwrap(), 0);
    }

    #[test]
    fn cow_cross_page_round_trip() {
        let mut m = CowMemory::new("MRAM", MRAM_PAGE_BYTES * 3);
        let data: Vec<u8> = (0..(MRAM_PAGE_BYTES + 100)).map(|i| (i % 251) as u8).collect();
        m.write(MRAM_PAGE_BYTES - 50, &data).unwrap();
        assert_eq!(m.to_vec(MRAM_PAGE_BYTES - 50, data.len()).unwrap(), data);
    }

    #[test]
    fn cow_short_last_page() {
        let mut m = CowMemory::new("MRAM", MRAM_PAGE_BYTES + 10);
        m.write(MRAM_PAGE_BYTES + 2, &[5; 8]).unwrap();
        assert_eq!(m.read_u8(MRAM_PAGE_BYTES + 9).unwrap(), 5);
        assert!(m.write(MRAM_PAGE_BYTES + 3, &[5; 8]).is_err());
        assert_eq!(m.resident_bytes(), 10);
    }

    #[test]
    fn cow_snapshot_restores_exact_image_in_o_pages() {
        let mut m = CowMemory::new("MRAM", MRAM_PAGE_BYTES * 4);
        m.write(10, b"original").unwrap();
        m.write(2 * MRAM_PAGE_BYTES, &[3; 64]).unwrap();
        let before = m.to_vec(0, m.len()).unwrap();
        let snap = m.snapshot();
        assert_eq!(snap.resident_pages(), 2);
        m.write(10, b"clobber!").unwrap();
        m.write(3 * MRAM_PAGE_BYTES, &[8; 16]).unwrap();
        m.restore(&snap).unwrap();
        assert_eq!(m.to_vec(0, m.len()).unwrap(), before);
        // Restoring did not rematerialize anything beyond the snapshot.
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn cow_snapshot_is_immune_to_later_writes() {
        let mut m = CowMemory::new("MRAM", MRAM_PAGE_BYTES);
        m.write(0, &[1; 8]).unwrap();
        let snap = m.snapshot();
        m.write(0, &[2; 8]).unwrap(); // must copy-on-write, not mutate the snapshot
        m.restore(&snap).unwrap();
        assert_eq!(m.to_vec(0, 8).unwrap(), vec![1; 8]);
    }

    #[test]
    fn cow_restore_rejects_capacity_mismatch() {
        let small = CowMemory::new("MRAM", 16);
        let mut big = CowMemory::new("MRAM", 32);
        assert!(big.restore(&small.snapshot()).is_err());
    }

    #[test]
    fn cow_install_page_shares_storage_until_written() {
        let page = Arc::new(vec![0xCD; MRAM_PAGE_BYTES]);
        let mut a = CowMemory::new("MRAM", MRAM_PAGE_BYTES * 2);
        let mut b = CowMemory::new("MRAM", MRAM_PAGE_BYTES * 2);
        a.install_page(0, &page).unwrap();
        b.install_page(0, &page).unwrap();
        let a_ids: Vec<_> = a.page_ids().collect();
        let b_ids: Vec<_> = b.page_ids().collect();
        assert_eq!(a_ids, b_ids, "one storage backs both DPUs");
        // Writing through one memory privatizes its copy only.
        a.write_u8(5, 0x11).unwrap();
        assert_eq!(a.read_u8(5).unwrap(), 0x11);
        assert_eq!(b.read_u8(5).unwrap(), 0xCD);
        assert_ne!(a.page_ids().next(), b.page_ids().next());
        // Wrong-sized installs are rejected.
        let short = Arc::new(vec![0u8; 100]);
        assert!(a.install_page(1, &short).is_err());
        assert!(a.install_page(7, &page).is_err());
    }

    #[test]
    fn cow_logical_equality_ignores_representation() {
        let mut a = CowMemory::new("MRAM", MRAM_PAGE_BYTES * 2);
        let b = CowMemory::new("MRAM", MRAM_PAGE_BYTES * 2);
        assert_eq!(a, b);
        // A materialized page of zeros still equals the zero page.
        a.write_u8(0, 7).unwrap();
        a.write_u8(0, 0).unwrap();
        assert_eq!(a.resident_pages(), 1);
        assert_eq!(a, b);
        a.write_u8(1, 1).unwrap();
        assert_ne!(a, b);
        assert_ne!(a, CowMemory::new("MRAM", MRAM_PAGE_BYTES));
    }

    #[test]
    fn cow_clear_drops_to_zero_pages() {
        let mut m = CowMemory::new("MRAM", MRAM_PAGE_BYTES * 2);
        m.write(100, &[1; 64]).unwrap();
        m.clear();
        assert_eq!(m.resident_pages(), 0);
        assert_eq!(m.read_u32(100).unwrap(), 0);
    }

    #[test]
    fn dma_cost_and_stats() {
        let mut dma = DmaEngine::default();
        let mram = Mram::new(4096);
        let mut wram = Wram::new(4096);
        let cycles = dma.read(&mram, &mut wram, 0, 0, 2048).unwrap();
        assert_eq!(cycles, 1049); // Eq. 3.4 worked example
        assert_eq!(dma.total_bytes, 2048);
        assert_eq!(dma.transfers, 1);
    }

    #[test]
    fn dma_transfer_limit() {
        let mut dma = DmaEngine::default();
        let mram = Mram::new(8192);
        let mut wram = Wram::new(8192);
        let err = dma.read(&mram, &mut wram, 0, 0, 4096).unwrap_err();
        assert!(matches!(err, Error::DmaTooLarge { requested: 4096, limit: 2048 }));
    }

    #[test]
    fn dma_moves_data_both_ways() {
        let mut dma = DmaEngine::default();
        let mut mram = Mram::new(1024);
        let mut wram = Wram::new(1024);
        mram.write(100, b"hello dpu").unwrap();
        dma.read(&mram, &mut wram, 100, 0, 9).unwrap();
        assert_eq!(wram.slice(0, 9).unwrap(), b"hello dpu");
        wram.write(16, b"back atcha").unwrap();
        dma.write(&mut mram, &wram, 200, 16, 10).unwrap();
        assert_eq!(mram.to_vec(200, 10).unwrap(), b"back atcha");
    }

    #[test]
    fn dma_bounds_report_the_failing_memory() {
        let mut dma = DmaEngine::default();
        let mut mram = Mram::new(64);
        let mut wram = Wram::new(64);
        // MRAM range bad: the error names MRAM even though WRAM is fine.
        let err = dma.read(&mram, &mut wram, 60, 0, 16).unwrap_err();
        assert!(matches!(err, Error::OutOfBounds { kind: "MRAM", .. }));
        // WRAM range bad on a read.
        let err = dma.read(&mram, &mut wram, 0, 60, 16).unwrap_err();
        assert!(matches!(err, Error::OutOfBounds { kind: "WRAM", .. }));
        // WRAM range bad on a write.
        let err = dma.write(&mut mram, &wram, 0, 60, 16).unwrap_err();
        assert!(matches!(err, Error::OutOfBounds { kind: "WRAM", .. }));
    }

    #[test]
    fn clear_zeroes() {
        let mut w = Wram::new(32);
        w.write_u32(4, 77).unwrap();
        w.clear();
        assert_eq!(w.read_u32(4).unwrap(), 0);
    }

    #[test]
    fn ecc_scrub_corrects_single_bit_storage_errors() {
        let mut m = CowMemory::new("MRAM", MRAM_PAGE_BYTES * 2);
        m.set_ecc(true);
        let data: Vec<u8> = (0..256u32).map(|i| (i % 251) as u8).collect();
        m.write(100, &data).unwrap();
        let before = m.to_vec(0, m.len()).unwrap();
        // Storage errors: raw flips that bypass the sidecar.
        m.flip_bit_raw(120, 3).unwrap();
        m.flip_bit_raw(MRAM_PAGE_BYTES + 8, 6).unwrap();
        assert_ne!(m.to_vec(0, m.len()).unwrap(), before);
        let rep = m.scrub();
        assert_eq!(rep.corrected_data, 2);
        assert!(rep.uncorrectable.is_empty());
        assert_eq!(m.to_vec(0, m.len()).unwrap(), before, "scrub restored the exact image");
        // A second sweep finds nothing.
        assert!(m.scrub().clean());
    }

    #[test]
    fn ecc_scrub_surfaces_double_bit_errors_without_miscorrecting() {
        let mut m = CowMemory::new("MRAM", MRAM_PAGE_BYTES);
        m.set_ecc(true);
        m.write(0, &[0xAB; 64]).unwrap();
        m.flip_bit_raw(16, 1).unwrap();
        m.flip_bit_raw(17, 5).unwrap(); // same 8-byte word as addr 16
        let corrupted = m.to_vec(0, 64).unwrap();
        let rep = m.scrub();
        assert_eq!(rep.corrected(), 0);
        assert_eq!(rep.uncorrectable, vec![16], "word base address of the bad word");
        assert_eq!(m.to_vec(0, 64).unwrap(), corrupted, "no silent 'fix' was applied");
    }

    #[test]
    fn ecc_verify_range_repairs_reads_and_rejects_double_errors() {
        let mut m = CowMemory::new("MRAM", MRAM_PAGE_BYTES);
        m.set_ecc(true);
        m.write(0, &[0x5A; 128]).unwrap();
        m.flip_bit_raw(40, 2).unwrap();
        assert_eq!(m.verify_range(32, 64).unwrap(), 1);
        assert_eq!(m.to_vec(0, 128).unwrap(), vec![0x5A; 128]);
        m.flip_bit_raw(64, 0).unwrap();
        m.flip_bit_raw(65, 7).unwrap();
        let err = m.verify_range(0, 128).unwrap_err();
        assert!(matches!(err, Error::EccUncorrectable { addr: 64 }), "{err:?}");
    }

    #[test]
    fn ecc_sidecar_follows_legitimate_writes() {
        let mut m = CowMemory::new("MRAM", MRAM_PAGE_BYTES);
        m.set_ecc(true);
        m.write(0, &[1; 32]).unwrap();
        m.write(8, &[2; 8]).unwrap(); // overwrite a word: code must follow
        m.write_u8(20, 0x7F).unwrap();
        assert!(m.scrub().clean(), "writes keep data and sidecar consistent");
        // Enabling on a populated memory back-fills codes.
        let mut late = CowMemory::new("MRAM", MRAM_PAGE_BYTES);
        late.write(64, &[9; 40]).unwrap();
        late.set_ecc(true);
        assert!(late.scrub().clean());
    }

    #[test]
    fn ecc_snapshot_restore_round_trips_sidecar() {
        let mut m = CowMemory::new("MRAM", MRAM_PAGE_BYTES);
        m.set_ecc(true);
        m.write(0, &[3; 64]).unwrap();
        let snap = m.snapshot();
        m.flip_bit_raw(10, 4).unwrap();
        m.write(128, &[4; 16]).unwrap();
        m.restore(&snap).unwrap();
        assert!(m.ecc_enabled());
        assert!(m.scrub().clean(), "restored sidecar matches restored data");
        assert_eq!(m.to_vec(0, 64).unwrap(), vec![3; 64]);
    }

    #[test]
    fn scrubber_sweeps_on_cadence_and_accumulates_totals() {
        let mut m = CowMemory::new("MRAM", MRAM_PAGE_BYTES);
        m.set_ecc(true);
        m.write(0, &[0x11; 64]).unwrap();
        let golden = m.to_vec(0, 64).unwrap();
        let mut s = Scrubber::new(3);
        assert_eq!(s.interval(), 3);
        // Launches 1 and 2 are off-cadence: no sweep, a latent flip survives.
        m.flip_bit_raw(8, 5).unwrap();
        assert!(s.on_launch(&mut m).is_none());
        assert!(s.on_launch(&mut m).is_none());
        assert_ne!(m.to_vec(0, 64).unwrap(), golden);
        // Launch 3 fires the cadence and repairs it.
        let rep = s.on_launch(&mut m).expect("cadence fires on the third launch");
        assert_eq!(rep.corrected_data, 1);
        assert_eq!(m.to_vec(0, 64).unwrap(), golden);
        assert_eq!(s.sweeps(), 1);
        // The counter reset: the next two launches are off-cadence again.
        assert!(s.on_launch(&mut m).is_none());
        assert!(s.on_launch(&mut m).is_none());
        let rep = s.on_launch(&mut m).expect("second cadence");
        assert!(rep.clean());
        assert_eq!(s.sweeps(), 2);
        assert_eq!(s.total().corrected_data, 1, "totals accumulate across sweeps");
    }

    #[test]
    fn scrubber_force_resets_cadence_and_interval_zero_clamps() {
        let mut m = CowMemory::new("MRAM", MRAM_PAGE_BYTES);
        m.set_ecc(true);
        m.write(0, &[0x42; 32]).unwrap();
        let mut s = Scrubber::new(2);
        assert!(s.on_launch(&mut m).is_none());
        m.flip_bit_raw(4, 1).unwrap();
        let rep = s.force(&mut m);
        assert_eq!(rep.corrected_data, 1);
        // Forcing reset the since-counter, so the next launch is off-cadence.
        assert!(s.on_launch(&mut m).is_none());
        assert!(s.on_launch(&mut m).is_some());
        // Interval 0 clamps to sweep-every-launch.
        let mut every = Scrubber::new(0);
        assert_eq!(every.interval(), 1);
        assert!(every.on_launch(&mut m).is_some());
        assert!(every.on_launch(&mut m).is_some());
    }

    #[test]
    fn raw_flip_on_shared_page_privatizes_before_corrupting() {
        // Satellite regression: an injected storage flip on a broadcast
        // page must corrupt only the faulted DPU's mapping.
        let page = Arc::new(vec![0x33; MRAM_PAGE_BYTES]);
        let mut a = CowMemory::new("MRAM", MRAM_PAGE_BYTES);
        let mut b = CowMemory::new("MRAM", MRAM_PAGE_BYTES);
        a.install_page(0, &page).unwrap();
        b.install_page(0, &page).unwrap();
        assert_eq!(a.page_ids().next(), b.page_ids().next(), "shared before the fault");
        a.flip_bit_raw(7, 0).unwrap();
        assert_eq!(a.read_u8(7).unwrap(), 0x32);
        assert_eq!(b.read_u8(7).unwrap(), 0x33, "sibling mapping untouched");
        assert_eq!(page[7], 0x33, "shared storage untouched");
        assert_ne!(a.page_ids().next(), b.page_ids().next(), "COW broke on the flip");
    }

    #[test]
    fn ecc_shared_sidecar_install_and_accounting() {
        let data = Arc::new(vec![0xC4; MRAM_PAGE_BYTES]);
        let code = Arc::new(crate::ecc::encode_page(&data));
        let mut a = CowMemory::new("MRAM", MRAM_PAGE_BYTES);
        let mut b = CowMemory::new("MRAM", MRAM_PAGE_BYTES);
        a.set_ecc(true);
        b.set_ecc(true);
        a.install_page_with_code(0, &data, &code).unwrap();
        b.install_page_with_code(0, &data, &code).unwrap();
        assert!(a.scrub().clean() && b.scrub().clean());
        assert_eq!(a.ecc_resident_bytes(), MRAM_PAGE_BYTES / 8);
        // Wrong-sized sidecars are rejected.
        let short = Arc::new(vec![0u8; 3]);
        assert!(a.install_page_with_code(0, &data, &short).is_err());
        // ECC off: no sidecar storage, scrub is a no-op.
        a.set_ecc(false);
        assert_eq!(a.ecc_resident_bytes(), 0);
        assert!(a.scrub().clean());
    }
}
