//! The three DPU memories and the MRAM DMA engine.
//!
//! * **WRAM** — 64 KiB working RAM inside the core; loads and stores cost a
//!   single cycle (one pipeline slot).
//! * **IRAM** — 24 KiB instruction RAM; the simulator stores the decoded
//!   [`crate::isa::Program`] and only checks the byte footprint.
//! * **MRAM** — 64 MiB DRAM bank outside the core; reachable exclusively via
//!   the DMA engine, which costs `25 + bytes/2` cycles per transfer
//!   (Eq. 3.4 of the paper).

use crate::error::{Error, Result};
use crate::params;

/// Byte-addressed little-endian memory with bounds checking.
///
/// Shared implementation behind [`Wram`] and [`Mram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearMemory {
    kind: &'static str,
    data: Vec<u8>,
}

impl LinearMemory {
    /// Create a zeroed memory of `size` bytes labelled `kind` for error
    /// messages.
    #[must_use]
    pub fn new(kind: &'static str, size: usize) -> Self {
        Self { kind, data: vec![0; size] }
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the capacity is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn check(&self, addr: usize, len: usize) -> Result<()> {
        if addr.checked_add(len).is_none_or(|end| end > self.data.len()) {
            return Err(Error::OutOfBounds { kind: self.kind, addr, len, size: self.data.len() });
        }
        Ok(())
    }

    /// Read `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when the range exceeds capacity.
    pub fn read(&self, addr: usize, buf: &mut [u8]) -> Result<()> {
        self.check(addr, buf.len())?;
        buf.copy_from_slice(&self.data[addr..addr + buf.len()]);
        Ok(())
    }

    /// Write `buf` starting at `addr`.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when the range exceeds capacity.
    pub fn write(&mut self, addr: usize, buf: &[u8]) -> Result<()> {
        self.check(addr, buf.len())?;
        self.data[addr..addr + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    /// Read one byte, zero-extended.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when out of range.
    pub fn read_u8(&self, addr: usize) -> Result<u32> {
        self.check(addr, 1)?;
        Ok(u32::from(self.data[addr]))
    }

    /// Read a little-endian halfword, zero-extended.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when out of range.
    pub fn read_u16(&self, addr: usize) -> Result<u32> {
        self.check(addr, 2)?;
        Ok(u32::from(u16::from_le_bytes([self.data[addr], self.data[addr + 1]])))
    }

    /// Read a little-endian word.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when out of range.
    pub fn read_u32(&self, addr: usize) -> Result<u32> {
        self.check(addr, 4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.data[addr..addr + 4]);
        Ok(u32::from_le_bytes(b))
    }

    /// Write one byte (low 8 bits of `val`).
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when out of range.
    pub fn write_u8(&mut self, addr: usize, val: u32) -> Result<()> {
        self.check(addr, 1)?;
        self.data[addr] = val as u8;
        Ok(())
    }

    /// Write a little-endian halfword (low 16 bits of `val`).
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when out of range.
    pub fn write_u16(&mut self, addr: usize, val: u32) -> Result<()> {
        self.check(addr, 2)?;
        self.data[addr..addr + 2].copy_from_slice(&(val as u16).to_le_bytes());
        Ok(())
    }

    /// Write a little-endian word.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when out of range.
    pub fn write_u32(&mut self, addr: usize, val: u32) -> Result<()> {
        self.check(addr, 4)?;
        self.data[addr..addr + 4].copy_from_slice(&val.to_le_bytes());
        Ok(())
    }

    /// Borrow a byte range.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when the range exceeds capacity.
    pub fn slice(&self, addr: usize, len: usize) -> Result<&[u8]> {
        self.check(addr, len)?;
        Ok(&self.data[addr..addr + len])
    }

    /// Zero the whole memory.
    pub fn clear(&mut self) {
        self.data.fill(0);
    }
}

/// 64 KiB working RAM (single-cycle access from the pipeline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wram(pub LinearMemory);

impl Wram {
    /// A WRAM of the default 64 KiB capacity.
    #[must_use]
    pub fn new(bytes: usize) -> Self {
        Self(LinearMemory::new("WRAM", bytes))
    }
}

impl Default for Wram {
    fn default() -> Self {
        Self::new(params::WRAM_BYTES)
    }
}

impl std::ops::Deref for Wram {
    type Target = LinearMemory;
    fn deref(&self) -> &Self::Target {
        &self.0
    }
}

impl std::ops::DerefMut for Wram {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.0
    }
}

/// 64 MiB main RAM, reachable only via [`DmaEngine`] from the DPU side and
/// via host transfers from the CPU side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mram(pub LinearMemory);

impl Mram {
    /// An MRAM of the given capacity.
    #[must_use]
    pub fn new(bytes: usize) -> Self {
        Self(LinearMemory::new("MRAM", bytes))
    }
}

impl Default for Mram {
    fn default() -> Self {
        Self::new(params::MRAM_BYTES)
    }
}

impl std::ops::Deref for Mram {
    type Target = LinearMemory;
    fn deref(&self) -> &Self::Target {
        &self.0
    }
}

impl std::ops::DerefMut for Mram {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.0
    }
}

/// The DMA engine connecting MRAM and WRAM.
///
/// Every transfer is charged `setup + ceil(bytes / bytes_per_cycle)` cycles
/// (Eq. 3.4: 25 + bytes/2 with the default parameters) and is limited to
/// [`params::DMA_MAX_TRANSFER_BYTES`] bytes, which is what caps the paper's
/// eBNN batches at 16 images (§4.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaEngine {
    setup_cycles: u64,
    bytes_per_cycle: u64,
    max_transfer: usize,
    /// Total cycles spent in DMA so far (statistics).
    pub total_cycles: u64,
    /// Total bytes moved so far (statistics).
    pub total_bytes: u64,
    /// Number of transfers issued (statistics).
    pub transfers: u64,
}

impl DmaEngine {
    /// Engine with the given setup cost and streaming rate.
    #[must_use]
    pub fn new(setup_cycles: u64, bytes_per_cycle: u64, max_transfer: usize) -> Self {
        Self {
            setup_cycles,
            bytes_per_cycle,
            max_transfer,
            total_cycles: 0,
            total_bytes: 0,
            transfers: 0,
        }
    }

    /// Cycle cost of a transfer of `bytes` bytes (Eq. 3.4).
    #[must_use]
    pub fn cycles_for(&self, bytes: usize) -> u64 {
        self.setup_cycles + (bytes as u64).div_ceil(self.bytes_per_cycle)
    }

    /// Move `len` bytes MRAM→WRAM, returning the cycle cost.
    ///
    /// # Errors
    /// [`Error::DmaTooLarge`] beyond the transfer limit, or
    /// [`Error::OutOfBounds`] from either memory.
    pub fn read(
        &mut self,
        mram: &Mram,
        wram: &mut Wram,
        mram_addr: usize,
        wram_addr: usize,
        len: usize,
    ) -> Result<u64> {
        self.check_len(len)?;
        let src = mram.slice(mram_addr, len)?.to_vec();
        wram.write(wram_addr, &src)?;
        Ok(self.account(len))
    }

    /// Move `len` bytes WRAM→MRAM, returning the cycle cost.
    ///
    /// # Errors
    /// [`Error::DmaTooLarge`] beyond the transfer limit, or
    /// [`Error::OutOfBounds`] from either memory.
    pub fn write(
        &mut self,
        mram: &mut Mram,
        wram: &Wram,
        mram_addr: usize,
        wram_addr: usize,
        len: usize,
    ) -> Result<u64> {
        self.check_len(len)?;
        let src = wram.slice(wram_addr, len)?.to_vec();
        mram.write(mram_addr, &src)?;
        Ok(self.account(len))
    }

    fn check_len(&self, len: usize) -> Result<()> {
        if len > self.max_transfer {
            return Err(Error::DmaTooLarge { requested: len, limit: self.max_transfer });
        }
        Ok(())
    }

    fn account(&mut self, len: usize) -> u64 {
        let cycles = self.cycles_for(len);
        self.total_cycles += cycles;
        self.total_bytes += len as u64;
        self.transfers += 1;
        cycles
    }
}

impl Default for DmaEngine {
    fn default() -> Self {
        Self::new(
            params::DMA_SETUP_CYCLES,
            params::DMA_BYTES_PER_CYCLE,
            params::DMA_MAX_TRANSFER_BYTES,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_round_trip_all_widths() {
        let mut m = LinearMemory::new("WRAM", 64);
        m.write_u32(0, 0xdead_beef).unwrap();
        assert_eq!(m.read_u32(0).unwrap(), 0xdead_beef);
        assert_eq!(m.read_u16(0).unwrap(), 0xbeef);
        assert_eq!(m.read_u8(3).unwrap(), 0xde);
        m.write_u16(8, 0x1234_5678).unwrap();
        assert_eq!(m.read_u16(8).unwrap(), 0x5678);
        m.write_u8(10, 0xAB).unwrap();
        assert_eq!(m.read_u8(10).unwrap(), 0xAB);
    }

    #[test]
    fn bounds_are_enforced() {
        let m = LinearMemory::new("MRAM", 16);
        assert!(matches!(m.read_u32(13), Err(Error::OutOfBounds { .. })));
        assert!(matches!(m.read_u32(usize::MAX), Err(Error::OutOfBounds { .. })));
        let mut m2 = LinearMemory::new("MRAM", 16);
        assert!(m2.write(12, &[0; 8]).is_err());
        assert!(m2.write(12, &[0; 4]).is_ok());
    }

    #[test]
    fn dma_cost_and_stats() {
        let mut dma = DmaEngine::default();
        let mram = Mram::new(4096);
        let mut wram = Wram::new(4096);
        let cycles = dma.read(&mram, &mut wram, 0, 0, 2048).unwrap();
        assert_eq!(cycles, 1049); // Eq. 3.4 worked example
        assert_eq!(dma.total_bytes, 2048);
        assert_eq!(dma.transfers, 1);
    }

    #[test]
    fn dma_transfer_limit() {
        let mut dma = DmaEngine::default();
        let mram = Mram::new(8192);
        let mut wram = Wram::new(8192);
        let err = dma.read(&mram, &mut wram, 0, 0, 4096).unwrap_err();
        assert!(matches!(err, Error::DmaTooLarge { requested: 4096, limit: 2048 }));
    }

    #[test]
    fn dma_moves_data_both_ways() {
        let mut dma = DmaEngine::default();
        let mut mram = Mram::new(1024);
        let mut wram = Wram::new(1024);
        mram.write(100, b"hello dpu").unwrap();
        dma.read(&mram, &mut wram, 100, 0, 9).unwrap();
        assert_eq!(wram.slice(0, 9).unwrap(), b"hello dpu");
        wram.write(16, b"back atcha").unwrap();
        dma.write(&mut mram, &wram, 200, 16, 10).unwrap();
        assert_eq!(mram.slice(200, 10).unwrap(), b"back atcha");
    }

    #[test]
    fn clear_zeroes() {
        let mut w = Wram::new(32);
        w.write_u32(4, 77).unwrap();
        w.clear();
        assert_eq!(w.read_u32(4).unwrap(), 0);
    }
}
