//! The compiled execution tier: threaded-code superblocks with deopt
//! fallback.
//!
//! [`CompiledProgram`] translates the superblock decomposition of a
//! decoded program into *threaded code*: one pre-bound Rust closure per
//! block ([`CompiledBlock`]) that applies the block's register effects
//! with no per-instruction fetch, decode or classify, plus a compiled
//! [`Term`]inator whose control-flow targets are resolved to block ids at
//! compile time, so hot chains of blocks execute back to back without
//! returning to the interpreter's dispatch loop. Issue-slot counts and
//! the opcode histogram are folded per block entry, the way
//! [`crate::exec::BlockMeta`] already memoizes them for the superblock
//! engine.
//!
//! Everything the compiled universe cannot express **deoptimizes**: a
//! chain exits with the tasklet's pc parked on the first uncompiled
//! instruction and the superblock engine resumes as if the chain had been
//! interpreted slot by slot. Deopt points are:
//!
//! * **cold blocks** — heads the compile filter skipped (see
//!   [`CompiledProgram::compile_hot`]);
//! * **side exits** — any boundary instruction after a block: loads and
//!   stores, DMA, `trace`, subroutine calls, perfcounter ops, `halt`;
//! * **synchronization** — mutex and barrier instructions;
//! * **computed jumps** (`jr`) whose runtime target is not a compiled
//!   block head (mid-block entries resume via the suffix interpreter);
//! * **budget exhaustion** — the engine caps every chain so the cycle
//!   budget check stays slot-exact;
//! * **armed faults, traced and profiled runs** — the interpreter never
//!   enters compiled code at all (see `Machine::run_code`).
//!
//! The interpreter therefore remains the semantic source of truth; the
//! compiled tier is observationally invisible by construction and pinned
//! bit-for-bit by the `compiled_identity` / `superblock_identity` /
//! `profiled_identity` suites.

use crate::exec::{ExecInstr, Superblocks};
use crate::isa::{Cond, Instr, Reg};
use crate::params::REGS_PER_TASKLET;
use crate::profiler::CycleAttribution;
use std::fmt;

/// A tasklet's register file as the threaded code sees it. The hardwired
/// zero register is preserved by construction: thunks that would write
/// `r0` are folded to no-ops at compile time, so no closure ever stores
/// to index 0.
pub type Regs = [u32; REGS_PER_TASKLET];

/// One pre-bound register-effect closure. The second argument is the
/// executing tasklet's id (only [`Instr::TaskletId`] reads it).
type BlockFn = Box<dyn Fn(&mut Regs, u32) + Send + Sync>;

/// Default execution-count threshold for profile-guided compilation:
/// [`CompiledProgram::compile_hot`] compiles the blocks a
/// [`CycleAttribution`] profile entered at least this many times.
pub const DEFAULT_HOT_THRESHOLD: u64 = 16;

/// Sentinel in the pc → block-id map: this pc is not a compiled head.
const NO_BLOCK: u32 = u32::MAX;

/// Where a compiled chain goes next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Link {
    /// Directly into another compiled block, by block id.
    Block(u32),
    /// Out of compiled code: deoptimize with the tasklet's pc set to this
    /// address and let the superblock engine resume (out-of-range targets
    /// fault at the next fetch, exactly as in the reference).
    Exit(u32),
}

/// Compiled terminator of a block: the single control-flow instruction
/// (if any) following the straight-line body, its targets pre-resolved.
#[derive(Debug, Clone, Copy)]
pub enum Term {
    /// Fall through without consuming an issue slot: the instruction
    /// after the body is either another compiled block (chain directly)
    /// or a deopt point.
    Next(Link),
    /// `jmp` — one issue slot, static target.
    Jump(Link),
    /// `jal` — one issue slot; writes the return address and jumps.
    Jal {
        /// Link register receiving the return address.
        rd: Reg,
        /// The return address (instruction after the `jal`).
        ret: u32,
        /// Pre-resolved static target.
        link: Link,
    },
    /// `jr` — one issue slot; the register-held target resolves to a
    /// block id (or a deopt) at run time via [`CompiledProgram::link_of`].
    Jr {
        /// Register holding the target pc.
        ra: Reg,
    },
    /// Conditional branch — one issue slot, both edges pre-resolved.
    Branch {
        /// Branch condition.
        cond: Cond,
        /// Left operand register.
        ra: Reg,
        /// Right operand register.
        rb: Reg,
        /// Edge taken when the condition holds.
        taken: Link,
        /// Fall-through edge.
        fall: Link,
    },
}

/// One compiled superblock: threaded-code body, compiled terminator, and
/// the accounting the engine folds once per entry.
pub struct CompiledBlock {
    start: u32,
    body_len: u32,
    slots: u32,
    op_counts: Vec<(u8, u32)>,
    tasklet_sensitive: bool,
    body: BlockFn,
    term: Term,
}

impl CompiledBlock {
    /// First instruction of the block (also its deopt re-entry pc).
    #[must_use]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Instructions in the straight-line body.
    #[must_use]
    pub fn body_len(&self) -> u32 {
        self.body_len
    }

    /// Issue slots one entry consumes: the body plus the terminator's
    /// slot when it is a real control-flow instruction.
    #[must_use]
    pub fn slots(&self) -> u32 {
        self.slots
    }

    /// Sparse opcode-id histogram of one entry (body plus terminator).
    #[must_use]
    pub fn op_counts(&self) -> &[(u8, u32)] {
        &self.op_counts
    }

    /// True when the body reads the tasklet id, making its effects differ
    /// across tasklets with identical register files — the one thing that
    /// invalidates the engine's lockstep replication fast path.
    #[must_use]
    pub fn tasklet_sensitive(&self) -> bool {
        self.tasklet_sensitive
    }

    /// The compiled terminator.
    #[must_use]
    pub fn term(&self) -> &Term {
        &self.term
    }

    /// Apply the body's register effects for tasklet `t`.
    #[inline]
    pub fn run(&self, regs: &mut Regs, t: u32) {
        (self.body)(regs, t);
    }
}

impl fmt::Debug for CompiledBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledBlock")
            .field("start", &self.start)
            .field("body_len", &self.body_len)
            .field("slots", &self.slots)
            .field("term", &self.term)
            .finish_non_exhaustive()
    }
}

/// Threaded-code translation of a decoded program's hot superblocks.
pub struct CompiledProgram {
    /// Per-pc: compiled block id, or [`NO_BLOCK`].
    block_of: Vec<u32>,
    blocks: Vec<CompiledBlock>,
}

impl CompiledProgram {
    /// Compile every superblock head. This is the default tier built at
    /// decode time: compilation is one linear pass, a block that never
    /// runs costs only its closure, and programs fit IRAM (≤ 3 K
    /// instructions), so static "everything is hot" is both cheap and the
    /// fastest choice when no profile exists.
    #[must_use]
    pub fn compile_all(code: &[ExecInstr], sb: &Superblocks) -> Self {
        Self::compile_filtered(code, sb, |_| true)
    }

    /// Profile-guided compilation: compile only the blocks a
    /// [`CycleAttribution`] profile entered at least `min_entries` times
    /// (the counters `Machine::run_exec_profiled` accumulates). Cold
    /// blocks stay on the superblock engine; chains into them deoptimize.
    #[must_use]
    pub fn compile_hot(
        code: &[ExecInstr],
        sb: &Superblocks,
        attr: &CycleAttribution,
        min_entries: u64,
    ) -> Self {
        let hot = attr.hot_starts(min_entries);
        Self::compile_filtered(code, sb, |start| hot.binary_search(&start).is_ok())
    }

    /// Compile exactly the superblock heads `keep` accepts. The general
    /// form behind [`CompiledProgram::compile_all`] and
    /// [`CompiledProgram::compile_hot`]; the identity suites also use it
    /// directly to force a deopt at every possible side-exit by
    /// compiling arbitrary block subsets.
    pub fn compile_filtered(
        code: &[ExecInstr],
        sb: &Superblocks,
        mut keep: impl FnMut(u32) -> bool,
    ) -> Self {
        let mut block_of = vec![NO_BLOCK; code.len()];
        let metas: Vec<_> = sb.blocks().iter().filter(|m| keep(m.start)).collect();
        for (id, meta) in metas.iter().enumerate() {
            block_of[meta.start as usize] = id as u32;
        }
        let link_of = |pc: u32| match block_of.get(pc as usize) {
            Some(&id) if id != NO_BLOCK => Link::Block(id),
            _ => Link::Exit(pc),
        };
        let blocks = metas
            .iter()
            .map(|meta| {
                let start = meta.start as usize;
                let body_end = start + meta.len as usize;
                let mut tasklet_sensitive = false;
                let mut thunks: Vec<BlockFn> = Vec::with_capacity(meta.len as usize);
                for slot in &code[start..body_end] {
                    tasklet_sensitive |= matches!(slot.instr, Instr::TaskletId { .. });
                    thunks.push(op_thunk(&slot.instr));
                }
                let (term, term_op) = compile_term(code, body_end as u32, &link_of);
                let mut op_counts = meta.op_counts.clone();
                if let Some(op) = term_op {
                    match op_counts.iter_mut().find(|(o, _)| *o == op) {
                        Some((_, c)) => *c += 1,
                        None => op_counts.push((op, 1)),
                    }
                }
                CompiledBlock {
                    start: meta.start,
                    body_len: meta.len,
                    slots: meta.len + u32::from(term_op.is_some()),
                    op_counts,
                    tasklet_sensitive,
                    body: fuse(thunks),
                    term,
                }
            })
            .collect();
        Self { block_of, blocks }
    }

    /// Compiled block id when `pc` is a compiled head.
    #[inline]
    #[must_use]
    pub fn block_id_at(&self, pc: usize) -> Option<u32> {
        match self.block_of.get(pc) {
            Some(&id) if id != NO_BLOCK => Some(id),
            _ => None,
        }
    }

    /// The compiled block with the given id.
    ///
    /// # Panics
    /// If `id` is not an id returned by this program's lookups.
    #[inline]
    #[must_use]
    pub fn block(&self, id: u32) -> &CompiledBlock {
        &self.blocks[id as usize]
    }

    /// Resolve a runtime pc (a `jr` target) to a chain link.
    #[inline]
    #[must_use]
    pub fn link_of(&self, pc: u32) -> Link {
        match self.block_of.get(pc as usize) {
            Some(&id) if id != NO_BLOCK => Link::Block(id),
            _ => Link::Exit(pc),
        }
    }

    /// Every compiled block, in program order.
    #[must_use]
    pub fn blocks(&self) -> &[CompiledBlock] {
        &self.blocks
    }

    /// True when nothing was compiled (empty program or an all-cold
    /// filter) — the engine then behaves exactly like the superblock tier.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

impl fmt::Debug for CompiledProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledProgram").field("blocks", &self.blocks.len()).finish()
    }
}

/// Compile the instruction at `pc` (the first after a block body) into a
/// terminator, returning its opcode id when it consumes an issue slot.
fn compile_term(code: &[ExecInstr], pc: u32, link_of: &impl Fn(u32) -> Link) -> (Term, Option<u8>) {
    match code.get(pc as usize) {
        Some(&ExecInstr { instr: Instr::Branch { cond, ra, rb, target }, op }) => (
            Term::Branch {
                cond,
                ra,
                rb,
                taken: link_of(target),
                fall: link_of(pc.wrapping_add(1)),
            },
            Some(op),
        ),
        Some(&ExecInstr { instr: Instr::Jump { target }, op }) => {
            (Term::Jump(link_of(target)), Some(op))
        }
        Some(&ExecInstr { instr: Instr::Jal { rd, target }, op }) => {
            (Term::Jal { rd, ret: pc.wrapping_add(1), link: link_of(target) }, Some(op))
        }
        Some(&ExecInstr { instr: Instr::Jr { ra }, op }) => (Term::Jr { ra }, Some(op)),
        // A boundary instruction (or the end of IRAM): fall through and
        // deoptimize — unless the next pc is itself a compiled head, in
        // which case the chain continues for free. `Next` links always
        // move to a strictly larger pc, so zero-slot chains cannot cycle.
        _ => (Term::Next(link_of(pc)), None),
    }
}

/// Compose per-op thunks into the block's single body closure. Small
/// arities are fused without the dispatch loop — most superblocks are
/// short, and the two-op shape is the hot one in the ALU benchmarks.
fn fuse(mut thunks: Vec<BlockFn>) -> BlockFn {
    match thunks.len() {
        0 => Box::new(|_, _| {}),
        1 => thunks.pop().expect("len checked"),
        2 => {
            let f1 = thunks.pop().expect("len checked");
            let f0 = thunks.pop().expect("len checked");
            Box::new(move |r, t| {
                f0(r, t);
                f1(r, t);
            })
        }
        3 => {
            let f2 = thunks.pop().expect("len checked");
            let f1 = thunks.pop().expect("len checked");
            let f0 = thunks.pop().expect("len checked");
            Box::new(move |r, t| {
                f0(r, t);
                f1(r, t);
                f2(r, t);
            })
        }
        _ => Box::new(move |r, t| {
            for f in &thunks {
                f(r, t);
            }
        }),
    }
}

/// A no-effect thunk (nops and architectural writes to `r0`).
fn nop_thunk() -> BlockFn {
    Box::new(|_, _| {})
}

/// Pre-bind one superblock instruction into its register-effect closure.
/// Exactly the semantics of the interpreter's `apply_pure` arms, with
/// operand indices and immediates resolved at compile time.
fn op_thunk(instr: &Instr) -> BlockFn {
    /// A two-source ALU op with pre-bound register indices.
    macro_rules! bin {
        ($rd:expr, $ra:expr, $rb:expr, |$a:ident, $b:ident| $e:expr) => {{
            let d = $rd.index();
            if d == 0 {
                nop_thunk()
            } else {
                let (ia, ib) = ($ra.index(), $rb.index());
                Box::new(move |r: &mut Regs, _| {
                    let ($a, $b) = (r[ia], r[ib]);
                    r[d] = $e;
                })
            }
        }};
    }
    /// A one-source op with a pre-bound immediate (or no source at all).
    macro_rules! un {
        ($rd:expr, $ra:expr, |$a:ident| $e:expr) => {{
            let d = $rd.index();
            if d == 0 {
                nop_thunk()
            } else {
                let ia = $ra.index();
                Box::new(move |r: &mut Regs, _| {
                    let $a = r[ia];
                    r[d] = $e;
                })
            }
        }};
    }
    match *instr {
        Instr::Nop => nop_thunk(),
        Instr::Movi { rd, imm } => {
            let d = rd.index();
            if d == 0 {
                nop_thunk()
            } else {
                let v = imm as u32;
                Box::new(move |r, _| r[d] = v)
            }
        }
        Instr::Mov { rd, ra } => un!(rd, ra, |a| a),
        Instr::Add { rd, ra, rb } => bin!(rd, ra, rb, |a, b| a.wrapping_add(b)),
        Instr::Addi { rd, ra, imm } => {
            let v = imm as u32;
            un!(rd, ra, |a| a.wrapping_add(v))
        }
        Instr::Sub { rd, ra, rb } => bin!(rd, ra, rb, |a, b| a.wrapping_sub(b)),
        Instr::And { rd, ra, rb } => bin!(rd, ra, rb, |a, b| a & b),
        Instr::Or { rd, ra, rb } => bin!(rd, ra, rb, |a, b| a | b),
        Instr::Xor { rd, ra, rb } => bin!(rd, ra, rb, |a, b| a ^ b),
        Instr::Lsl { rd, ra, rb } => bin!(rd, ra, rb, |a, b| a << (b & 31)),
        Instr::Lsr { rd, ra, rb } => bin!(rd, ra, rb, |a, b| a >> (b & 31)),
        Instr::Asr { rd, ra, rb } => bin!(rd, ra, rb, |a, b| ((a as i32) >> (b & 31)) as u32),
        Instr::Lsli { rd, ra, sh } => {
            let s = sh & 31;
            un!(rd, ra, |a| a << s)
        }
        Instr::Lsri { rd, ra, sh } => {
            let s = sh & 31;
            un!(rd, ra, |a| a >> s)
        }
        Instr::Asri { rd, ra, sh } => {
            let s = sh & 31;
            un!(rd, ra, |a| ((a as i32) >> s) as u32)
        }
        Instr::Mul8 { rd, ra, rb } => bin!(rd, ra, rb, |a, b| (a & 0xff) * (b & 0xff)),
        Instr::Popcount { rd, ra } => un!(rd, ra, |a| a.count_ones()),
        Instr::TaskletId { rd } => {
            let d = rd.index();
            if d == 0 {
                nop_thunk()
            } else {
                Box::new(move |r, t| r[d] = t)
            }
        }
        // The superblock classifier guarantees no other variant appears in
        // a block body.
        _ => {
            debug_assert!(false, "non-superblock op {instr:?} compiled into a block body");
            nop_thunk()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{op_id, ExecProgram};
    use crate::isa::{Instr as I, Program};

    fn r(i: u8) -> Reg {
        Reg(i)
    }

    /// The ALU countdown loop the benchmarks use: two compiled blocks, a
    /// branch terminator chaining the loop body back onto itself.
    fn alu_loop() -> Program {
        Program::new(vec![
            I::Movi { rd: r(1), imm: 10 },
            I::Movi { rd: r(2), imm: 0 },
            I::Add { rd: r(2), ra: r(2), rb: r(1) },
            I::Addi { rd: r(1), ra: r(1), imm: -1 },
            I::Branch { cond: Cond::Ne, ra: r(1), rb: r(0), target: 2 },
            I::Store { width: crate::isa::Width::W, ra: r(0), off: 0, rs: r(2) },
            I::Halt,
        ])
    }

    #[test]
    fn alu_loop_compiles_into_a_self_chaining_branch() {
        let exec = ExecProgram::compile(&alu_loop()).unwrap();
        let cp = CompiledProgram::compile_all(exec.code(), exec.superblocks());
        assert_eq!(cp.blocks().len(), 2);

        // Setup block: two movis falling through into the loop block.
        let b0 = cp.block(cp.block_id_at(0).unwrap());
        assert_eq!((b0.start(), b0.body_len(), b0.slots()), (0, 2, 2));
        assert!(matches!(b0.term(), Term::Next(Link::Block(1))));

        // Loop block: add+addi body plus the bne terminator; the taken
        // edge chains straight back to the block itself, the fall edge
        // deoptimizes at the store.
        let b1 = cp.block(cp.block_id_at(2).unwrap());
        assert_eq!((b1.start(), b1.body_len(), b1.slots()), (2, 2, 3));
        match *b1.term() {
            Term::Branch { taken, fall, .. } => {
                assert_eq!(taken, Link::Block(1));
                assert_eq!(fall, Link::Exit(5));
            }
            ref t => panic!("unexpected terminator {t:?}"),
        }
        // Histogram per entry: two `add`-class ops and one branch.
        let add = op_id(&I::Add { rd: r(1), ra: r(1), rb: r(1) });
        let bne = op_id(&I::Branch { cond: Cond::Ne, ra: r(1), rb: r(0), target: 0 });
        let mut counts = b1.op_counts().to_vec();
        counts.sort_unstable();
        assert_eq!(counts, vec![(add, 2), (bne, 1)]);
    }

    #[test]
    fn body_closure_applies_register_effects() {
        let exec = ExecProgram::compile(&alu_loop()).unwrap();
        let cp = CompiledProgram::compile_all(exec.code(), exec.superblocks());
        let b1 = cp.block(cp.block_id_at(2).unwrap());
        let mut regs: Regs = [0; REGS_PER_TASKLET];
        regs[1] = 10;
        b1.run(&mut regs, 0);
        assert_eq!(regs[2], 10, "add r2, r2, r1");
        assert_eq!(regs[1], 9, "addi r1, r1, -1");
    }

    #[test]
    fn writes_to_r0_are_folded_out() {
        let p = Program::new(vec![
            I::Movi { rd: r(0), imm: 42 },
            I::Add { rd: r(0), ra: r(1), rb: r(1) },
            I::Halt,
        ]);
        let exec = ExecProgram::compile(&p).unwrap();
        let cp = CompiledProgram::compile_all(exec.code(), exec.superblocks());
        let b = cp.block(cp.block_id_at(0).unwrap());
        let mut regs: Regs = [7; REGS_PER_TASKLET];
        regs[0] = 0;
        b.run(&mut regs, 3);
        assert_eq!(regs[0], 0, "r0 stays hardwired zero");
    }

    #[test]
    fn tasklet_id_marks_the_block_sensitive() {
        let p = Program::new(vec![
            I::TaskletId { rd: r(1) },
            I::Addi { rd: r(1), ra: r(1), imm: 1 },
            I::Halt,
        ]);
        let exec = ExecProgram::compile(&p).unwrap();
        let cp = CompiledProgram::compile_all(exec.code(), exec.superblocks());
        let b = cp.block(cp.block_id_at(0).unwrap());
        assert!(b.tasklet_sensitive());
        let mut regs: Regs = [0; REGS_PER_TASKLET];
        b.run(&mut regs, 5);
        assert_eq!(regs[1], 6);
    }

    #[test]
    fn filtered_compilation_turns_links_into_deopts() {
        let exec = ExecProgram::compile(&alu_loop()).unwrap();
        // Keep only the setup block: its fall-through must now exit.
        let cp = CompiledProgram::compile_filtered(exec.code(), exec.superblocks(), |s| s == 0);
        assert_eq!(cp.blocks().len(), 1);
        assert!(cp.block_id_at(2).is_none());
        assert!(matches!(cp.block(0).term(), Term::Next(Link::Exit(2))));
        // And the inverse: keep only the loop; its taken edge self-chains.
        let cp = CompiledProgram::compile_filtered(exec.code(), exec.superblocks(), |s| s == 2);
        assert!(matches!(cp.block(0).term(), Term::Branch { taken: Link::Block(0), .. }));
    }

    #[test]
    fn compile_hot_uses_attribution_entries() {
        use crate::machine::Machine;
        let exec = ExecProgram::compile(&alu_loop()).unwrap();
        let mut attr = CycleAttribution::new();
        let mut m = Machine::default();
        m.run_exec_profiled(&exec, 1, &mut attr).unwrap();
        // The loop head is entered 10 times, the setup block once: with a
        // threshold between the two, only the loop compiles.
        let cp = CompiledProgram::compile_hot(exec.code(), exec.superblocks(), &attr, 5);
        assert_eq!(cp.blocks().len(), 1);
        assert_eq!(cp.block(0).start(), 2);
        // Threshold above every count: nothing compiles, pure superblock
        // behavior.
        let none = CompiledProgram::compile_hot(exec.code(), exec.superblocks(), &attr, 1_000);
        assert!(none.is_empty());
    }

    #[test]
    fn empty_program_compiles_to_nothing() {
        let sb = Superblocks::analyze(&[]);
        let cp = CompiledProgram::compile_all(&[], &sb);
        assert!(cp.is_empty());
        assert!(cp.block_id_at(0).is_none());
        assert_eq!(cp.link_of(0), Link::Exit(0));
    }
}
