//! Deterministic, seeded fault injection.
//!
//! Real UPMEM deployments see faulty DPUs, failed DMA transfers and bit
//! errors in MRAM; the SDK masks whole ranks out and the host reissues
//! their work. This module models those failure classes for the simulator
//! so the host runtime's retry/quarantine machinery can be tested
//! reproducibly:
//!
//! * **whole-DPU offline** — the launch fails immediately with
//!   [`crate::Error::DpuOffline`], the simulated analogue of a masked rank;
//! * **DMA transfer failure** — an `mram.read`/`mram.write` aborts with
//!   [`crate::Error::DmaFault`];
//! * **bit flips on DMA completion** — one bit of the transfer's
//!   destination (WRAM for reads, MRAM for writes) is inverted after the
//!   data lands, silently corrupting the run;
//! * **tasklet hang** — the kernel's cycle budget is clamped to a drawn
//!   value, so a run that would finish later surfaces as
//!   [`crate::Error::CycleBudgetExceeded`], the watchdog view of a wedged
//!   tasklet.
//!
//! Every decision is a pure function of `(seed, dpu, attempt, site)` via a
//! splitmix64 mix, so injection is independent of host thread scheduling:
//! the same seed produces the same fault sequence whether DPUs are
//! simulated sequentially or work-stolen across threads, and retries see
//! fresh (but reproducible) draws.

/// One splitmix64 scramble step (public-domain constants).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix a decision site into the plan seed. Each independent decision gets
/// its own `stream` constant so probabilities don't correlate.
fn mix(seed: u64, stream: u64, dpu: u32, attempt: u32, idx: u64) -> u64 {
    let a = splitmix64(seed ^ stream);
    let b = splitmix64(a ^ (u64::from(dpu) << 32 | u64::from(attempt)));
    splitmix64(b ^ idx)
}

/// Map a scrambled word onto `[0, 1)`.
#[allow(clippy::cast_precision_loss)]
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

const STREAM_OFFLINE: u64 = 0x4F46_464C_494E_4531;
const STREAM_HANG: u64 = 0x4841_4E47_0000_0001;
const STREAM_HANG_AT: u64 = 0x4841_4E47_0000_0002;
const STREAM_DMA_FAIL: u64 = 0x444D_4146_4149_4C31;
const STREAM_DMA_FLIP: u64 = 0x464C_4950_0000_0001;
const STREAM_FLIP_SITE: u64 = 0x464C_4950_0000_0002;
const STREAM_DMA_FLIP2: u64 = 0x464C_4950_0000_0003;
const STREAM_FLIP2_SITE: u64 = 0x464C_4950_0000_0004;

/// Earliest cycle at which an injected hang may fire.
const HANG_MIN_CYCLES: u64 = 500;
/// Latest cycle at which an injected hang may fire.
const HANG_MAX_CYCLES: u64 = 50_000;

/// User-facing description of a fault campaign: a seed plus per-class
/// probabilities (all default to zero — no injection).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed driving every draw; same seed, same fault sequence.
    pub seed: u64,
    /// Per-attempt probability that a DPU refuses to launch (rank offline).
    pub dpu_offline_prob: f64,
    /// Per-transfer probability that a DMA aborts with an error.
    pub dma_fail_prob: f64,
    /// Per-transfer probability that one destination bit flips on DMA
    /// completion.
    pub bit_flip_prob: f64,
    /// Per-transfer probability that **two distinct bits of the same
    /// destination byte** flip on DMA completion — the SEC-DED
    /// uncorrectable case (detected, surfaced, never silently fixed).
    pub double_flip_prob: f64,
    /// Per-attempt probability that the run hangs (cycle budget clamped to
    /// a drawn value in `[500, 50_000]`).
    pub hang_prob: f64,
    /// DPUs that are offline on **every** attempt, regardless of
    /// probability draws — the deterministic way to script a dead rank.
    pub forced_offline: Vec<u32>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            dpu_offline_prob: 0.0,
            dma_fail_prob: 0.0,
            bit_flip_prob: 0.0,
            double_flip_prob: 0.0,
            hang_prob: 0.0,
            forced_offline: Vec::new(),
        }
    }
}

/// A compiled fault campaign, cheap to clone and share across host worker
/// threads. Produces one [`AttemptFaults`] per `(dpu, attempt)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    config: FaultConfig,
}

impl FaultPlan {
    /// Compile a configuration into a plan.
    #[must_use]
    pub fn new(config: FaultConfig) -> Self {
        Self { config }
    }

    /// A plan that injects nothing (useful as an explicit "resilience on,
    /// faults off" marker).
    #[must_use]
    pub fn none() -> Self {
        Self::new(FaultConfig::default())
    }

    /// The configuration this plan was built from.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Whether this plan can never inject a fault. Zero plans let the
    /// launch path skip snapshots and arming entirely, keeping the
    /// fault-free resilient path bit-identical to the plain launch.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        let c = &self.config;
        c.dpu_offline_prob == 0.0
            && c.dma_fail_prob == 0.0
            && c.bit_flip_prob == 0.0
            && c.double_flip_prob == 0.0
            && c.hang_prob == 0.0
            && c.forced_offline.is_empty()
    }

    /// Draw the faults for one `(dpu, attempt)` pair. Pure: the same pair
    /// always yields the same decisions, independent of call order.
    #[must_use]
    pub fn attempt(&self, dpu: u32, attempt: u32) -> AttemptFaults {
        let c = &self.config;
        let offline = c.forced_offline.contains(&dpu)
            || (c.dpu_offline_prob > 0.0
                && unit(mix(c.seed, STREAM_OFFLINE, dpu, attempt, 0)) < c.dpu_offline_prob);
        let hang_after = (c.hang_prob > 0.0
            && unit(mix(c.seed, STREAM_HANG, dpu, attempt, 0)) < c.hang_prob)
            .then(|| {
                let span = HANG_MAX_CYCLES - HANG_MIN_CYCLES + 1;
                HANG_MIN_CYCLES + mix(c.seed, STREAM_HANG_AT, dpu, attempt, 0) % span
            });
        AttemptFaults {
            seed: c.seed,
            dpu,
            attempt,
            offline,
            hang_after,
            dma_fail_prob: c.dma_fail_prob,
            bit_flip_prob: c.bit_flip_prob,
            double_flip_prob: c.double_flip_prob,
            dma_seen: 0,
            injected: Vec::new(),
        }
    }
}

/// What an injected DMA decision asks the machine to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaFault {
    /// Abort the transfer with [`crate::Error::DmaFault`].
    Fail,
    /// Complete the transfer, then invert one destination bit.
    FlipBit {
        /// Byte offset within the transfer.
        byte: usize,
        /// Bit index within the byte (0..8).
        bit: u8,
    },
    /// Complete the transfer, then invert two **distinct** bits of one
    /// destination byte — beyond SEC-DED's correction radius, so the
    /// error must surface as [`crate::Error::EccUncorrectable`] instead
    /// of being silently repaired.
    FlipBits2 {
        /// Byte offset within the transfer.
        byte: usize,
        /// First flipped bit index (0..8).
        bit_a: u8,
        /// Second flipped bit index (0..8), different from `bit_a`.
        bit_b: u8,
    },
}

/// The class of one injected fault, with its site parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The whole DPU refused to launch.
    DpuOffline,
    /// A DMA transfer aborted.
    DmaFail,
    /// A WRAM bit flipped on DMA-read completion.
    WramBitFlip {
        /// Absolute WRAM byte address of the flipped bit.
        addr: u32,
        /// Bit index within the byte.
        bit: u8,
    },
    /// An MRAM bit flipped on DMA-write completion.
    MramBitFlip {
        /// Absolute MRAM byte address of the flipped bit.
        addr: u32,
        /// Bit index within the byte.
        bit: u8,
    },
    /// The run's cycle budget was clamped and exhausted (wedged tasklet as
    /// seen by a watchdog).
    TaskletHang {
        /// The clamped budget at which the run was cut off.
        budget: u64,
    },
}

impl FaultKind {
    /// Short machine-readable label (used as the trace-event kind and the
    /// metrics-counter suffix).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::DpuOffline => "dpu_offline",
            FaultKind::DmaFail => "dma_fail",
            FaultKind::WramBitFlip { .. } => "wram_bit_flip",
            FaultKind::MramBitFlip { .. } => "mram_bit_flip",
            FaultKind::TaskletHang { .. } => "tasklet_hang",
        }
    }

    /// Affected byte address for bit flips, 0 otherwise.
    #[must_use]
    pub fn addr(&self) -> u64 {
        match self {
            FaultKind::WramBitFlip { addr, .. } | FaultKind::MramBitFlip { addr, .. } => {
                u64::from(*addr)
            }
            _ => 0,
        }
    }
}

/// One fault that actually fired, with the DPU cycle at which it took
/// effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// What was injected.
    pub kind: FaultKind,
    /// DPU cycle at which the fault took effect (0 for launch-time
    /// offline faults).
    pub cycle: u64,
}

/// The faults armed on a [`crate::Machine`] for one run attempt, plus the
/// log of what actually fired. Obtained from [`FaultPlan::attempt`], armed
/// with [`crate::Machine::arm_faults`], and recovered (with its log) via
/// [`crate::Machine::disarm_faults`].
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptFaults {
    seed: u64,
    dpu: u32,
    attempt: u32,
    offline: bool,
    hang_after: Option<u64>,
    dma_fail_prob: f64,
    bit_flip_prob: f64,
    double_flip_prob: f64,
    /// DMA transfers seen so far this attempt (the per-transfer decision
    /// index — a per-attempt ordinal, so it is deterministic for any
    /// deterministic program).
    dma_seen: u64,
    injected: Vec<InjectedFault>,
}

impl AttemptFaults {
    /// Whether this attempt's DPU is offline.
    #[must_use]
    pub fn offline(&self) -> bool {
        self.offline
    }

    /// The drawn hang cutoff, if this attempt hangs.
    #[must_use]
    pub fn hang_after(&self) -> Option<u64> {
        self.hang_after
    }

    /// The DPU these faults were drawn for.
    #[must_use]
    pub fn dpu(&self) -> u32 {
        self.dpu
    }

    /// The retry attempt these faults were drawn for (0 = first try).
    #[must_use]
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Decide the fate of the next DMA transfer of `len` bytes. Called by
    /// the machine at the (single) DMA execution site; each call consumes
    /// one per-transfer decision index.
    pub fn on_dma(&mut self, len: usize) -> Option<DmaFault> {
        let idx = self.dma_seen;
        self.dma_seen += 1;
        if self.dma_fail_prob > 0.0
            && unit(mix(self.seed, STREAM_DMA_FAIL, self.dpu, self.attempt, idx))
                < self.dma_fail_prob
        {
            return Some(DmaFault::Fail);
        }
        if len > 0
            && self.double_flip_prob > 0.0
            && unit(mix(self.seed, STREAM_DMA_FLIP2, self.dpu, self.attempt, idx))
                < self.double_flip_prob
        {
            let site = mix(self.seed, STREAM_FLIP2_SITE, self.dpu, self.attempt, idx);
            let bit_a = ((site >> 32) % 8) as u8;
            // Second bit drawn from the 7 remaining positions.
            let bit_b = (bit_a + 1 + ((site >> 40) % 7) as u8) % 8;
            return Some(DmaFault::FlipBits2 { byte: (site as usize) % len, bit_a, bit_b });
        }
        if len > 0
            && self.bit_flip_prob > 0.0
            && unit(mix(self.seed, STREAM_DMA_FLIP, self.dpu, self.attempt, idx))
                < self.bit_flip_prob
        {
            let site = mix(self.seed, STREAM_FLIP_SITE, self.dpu, self.attempt, idx);
            return Some(DmaFault::FlipBit {
                byte: (site as usize) % len,
                bit: ((site >> 32) % 8) as u8,
            });
        }
        None
    }

    /// Record that a fault fired at `cycle`.
    pub fn log(&mut self, kind: FaultKind, cycle: u64) {
        self.injected.push(InjectedFault { kind, cycle });
    }

    /// Everything that fired this attempt, in injection order.
    #[must_use]
    pub fn injected(&self) -> &[InjectedFault] {
        &self.injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy_plan(seed: u64) -> FaultPlan {
        FaultPlan::new(FaultConfig {
            seed,
            dpu_offline_prob: 0.3,
            dma_fail_prob: 0.2,
            bit_flip_prob: 0.2,
            hang_prob: 0.3,
            ..Default::default()
        })
    }

    #[test]
    fn zero_plan_is_zero_and_draws_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_zero());
        let mut a = plan.attempt(3, 0);
        assert!(!a.offline());
        assert_eq!(a.hang_after(), None);
        for len in [8usize, 64, 2048] {
            assert_eq!(a.on_dma(len), None);
        }
        assert!(a.injected().is_empty());
    }

    #[test]
    fn same_seed_same_decisions_independent_of_call_order() {
        let plan = lossy_plan(42);
        // Draw (dpu 5, attempt 1) twice, once after other draws, once cold.
        let _ = plan.attempt(0, 0);
        let _ = plan.attempt(9, 3);
        let mut warm = plan.attempt(5, 1);
        let mut cold = lossy_plan(42).attempt(5, 1);
        assert_eq!(warm, cold);
        let w: Vec<_> = (0..32).map(|_| warm.on_dma(64)).collect();
        let c: Vec<_> = (0..32).map(|_| cold.on_dma(64)).collect();
        assert_eq!(w, c);
    }

    #[test]
    fn different_seeds_attempts_and_dpus_decorrelate() {
        let a: Vec<bool> = (0..64).map(|d| lossy_plan(1).attempt(d, 0).offline()).collect();
        let b: Vec<bool> = (0..64).map(|d| lossy_plan(2).attempt(d, 0).offline()).collect();
        assert_ne!(a, b, "seeds 1 and 2 drew identical offline patterns");
        // Retry draws differ from first-attempt draws somewhere.
        let retry: Vec<bool> = (0..64).map(|d| lossy_plan(1).attempt(d, 1).offline()).collect();
        assert_ne!(a, retry, "attempt index does not enter the draw");
    }

    #[test]
    fn forced_offline_fires_on_every_attempt() {
        let plan = FaultPlan::new(FaultConfig { forced_offline: vec![2], ..Default::default() });
        assert!(!plan.is_zero());
        for attempt in 0..4 {
            assert!(plan.attempt(2, attempt).offline(), "attempt {attempt}");
            assert!(!plan.attempt(1, attempt).offline());
        }
    }

    #[test]
    fn hang_cutoff_is_in_documented_range() {
        let plan = FaultPlan::new(FaultConfig { seed: 7, hang_prob: 1.0, ..Default::default() });
        for d in 0..50 {
            let h = plan.attempt(d, 0).hang_after().expect("hang_prob = 1");
            assert!((HANG_MIN_CYCLES..=HANG_MAX_CYCLES).contains(&h), "{h}");
        }
    }

    #[test]
    fn flip_site_is_within_the_transfer() {
        let plan =
            FaultPlan::new(FaultConfig { seed: 3, bit_flip_prob: 1.0, ..Default::default() });
        let mut a = plan.attempt(0, 0);
        for len in [1usize, 8, 63, 2048] {
            match a.on_dma(len) {
                Some(DmaFault::FlipBit { byte, bit }) => {
                    assert!(byte < len, "byte {byte} >= len {len}");
                    assert!(bit < 8);
                }
                other => panic!("expected a flip at prob 1.0, got {other:?}"),
            }
        }
        // Zero-length transfers cannot flip anything.
        assert_eq!(a.on_dma(0), None);
    }

    #[test]
    fn probabilities_roughly_match_observed_rates() {
        let plan =
            FaultPlan::new(FaultConfig { seed: 11, dma_fail_prob: 0.25, ..Default::default() });
        let mut a = plan.attempt(0, 0);
        let fails = (0..4000).filter(|_| a.on_dma(64) == Some(DmaFault::Fail)).count();
        let rate = fails as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "observed DMA-fail rate {rate}");
    }

    #[test]
    fn log_accumulates_in_order() {
        let mut a = FaultPlan::none().attempt(1, 0);
        a.log(FaultKind::DmaFail, 100);
        a.log(FaultKind::WramBitFlip { addr: 0x40, bit: 3 }, 250);
        let kinds: Vec<&str> = a.injected().iter().map(|f| f.kind.label()).collect();
        assert_eq!(kinds, vec!["dma_fail", "wram_bit_flip"]);
        assert_eq!(a.injected()[1].cycle, 250);
        assert_eq!(a.injected()[1].kind.addr(), 0x40);
    }
}
