//! A small two-pass assembler for the simulated DPU ISA, plus the Fig. 3.1
//! profiling-harness generator used to reproduce Table 3.1.
//!
//! The textual syntax mirrors the `Display` form of [`Instr`]:
//!
//! ```text
//! ; sum the first n integers
//!         movi r1, 10
//!         movi r2, 0
//! loop:   add  r2, r2, r1
//!         addi r1, r1, -1
//!         bne  r1, r0, loop
//!         sw   r0, 0, r2
//!         halt
//! ```
//!
//! Loads/stores use the flat three-operand form (`lw rd, ra, off` /
//! `sw ra, off, rs`); branch and jump targets may be labels or absolute
//! instruction indices; `call <symbol> rd, ra, rb` invokes a runtime
//! subroutine by its linker name (e.g. `call __mulsf3 r3, r1, r2`).

use crate::error::{Error, Result};
use crate::isa::{Cond, Instr, Program, Reg, Width};
use crate::subroutines::Subroutine;

/// Assemble source text into a [`Program`].
///
/// # Errors
/// [`Error::Asm`] with a line number and message on any syntax problem or
/// unknown label.
pub fn assemble(src: &str) -> Result<Program> {
    // Pass 1: strip comments, collect labels against instruction indices.
    let mut labels = std::collections::HashMap::new();
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut index = 0u32;
    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let mut text = raw;
        if let Some(p) = text.find(&[';', '#'][..]) {
            text = &text[..p];
        }
        let mut text = text.trim().to_owned();
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(Error::Asm { line: lineno, msg: format!("bad label `{label}`") });
            }
            if labels.insert(label.to_owned(), index).is_some() {
                return Err(Error::Asm { line: lineno, msg: format!("duplicate label `{label}`") });
            }
            text = rest[1..].trim().to_owned();
        }
        if !text.is_empty() {
            lines.push((lineno, text));
            index += 1;
        }
    }

    // Pass 2: encode instructions.
    let mut instrs = Vec::with_capacity(lines.len());
    for (lineno, text) in &lines {
        instrs.push(parse_line(*lineno, text, &labels)?);
    }
    Ok(Program { instrs, labels })
}

fn err(line: usize, msg: impl Into<String>) -> Error {
    Error::Asm { line, msg: msg.into() }
}

fn parse_reg(line: usize, tok: &str) -> Result<Reg> {
    let tok = tok.trim();
    let rest = tok
        .strip_prefix('r')
        .ok_or_else(|| err(line, format!("expected register, got `{tok}`")))?;
    let n: u8 = rest.parse().map_err(|_| err(line, format!("bad register `{tok}`")))?;
    if usize::from(n) >= crate::params::REGS_PER_TASKLET {
        return Err(err(line, format!("register `{tok}` out of range")));
    }
    Ok(Reg(n))
}

fn parse_imm(line: usize, tok: &str) -> Result<i32> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok),
    };
    let v: i64 = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).map_err(|_| err(line, format!("bad immediate `{tok}`")))?
    } else {
        body.parse().map_err(|_| err(line, format!("bad immediate `{tok}`")))?
    };
    let v = if neg { -v } else { v };
    // Allow the full u32 range written as unsigned (e.g. 0xffffffff).
    if v > u32::MAX as i64 || v < i32::MIN as i64 {
        return Err(err(line, format!("immediate `{tok}` out of 32-bit range")));
    }
    Ok(v as i32)
}

fn parse_target(
    line: usize,
    tok: &str,
    labels: &std::collections::HashMap<String, u32>,
) -> Result<u32> {
    let tok = tok.trim();
    if let Ok(n) = tok.parse::<u32>() {
        return Ok(n);
    }
    labels.get(tok).copied().ok_or_else(|| err(line, format!("unknown label `{tok}`")))
}

fn parse_sub(line: usize, tok: &str) -> Result<Subroutine> {
    let tok = tok.trim();
    // `__mulsi3.short` selects the 16-bit-operand cost path through the
    // shared `__mulsi3` symbol (see `Subroutine::Mulsi3Short`).
    if tok == "__mulsi3.short" {
        return Ok(Subroutine::Mulsi3Short);
    }
    Subroutine::ALL
        .iter()
        .find(|s| s.symbol() == tok)
        .copied()
        .ok_or_else(|| err(line, format!("unknown subroutine `{tok}`")))
}

fn parse_line(
    line: usize,
    text: &str,
    labels: &std::collections::HashMap<String, u32>,
) -> Result<Instr> {
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let ops: Vec<&str> =
        if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
    let want = |n: usize| -> Result<()> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(line, format!("`{mnemonic}` expects {n} operands, got {}", ops.len())))
        }
    };

    let i = match mnemonic {
        "nop" => {
            want(0)?;
            Instr::Nop
        }
        "halt" => {
            want(0)?;
            Instr::Halt
        }
        "movi" => {
            want(2)?;
            Instr::Movi { rd: parse_reg(line, ops[0])?, imm: parse_imm(line, ops[1])? }
        }
        "mov" => {
            want(2)?;
            Instr::Mov { rd: parse_reg(line, ops[0])?, ra: parse_reg(line, ops[1])? }
        }
        "add" | "sub" | "and" | "or" | "xor" | "lsl" | "lsr" | "asr" | "mul8" => {
            want(3)?;
            let rd = parse_reg(line, ops[0])?;
            let ra = parse_reg(line, ops[1])?;
            let rb = parse_reg(line, ops[2])?;
            match mnemonic {
                "add" => Instr::Add { rd, ra, rb },
                "sub" => Instr::Sub { rd, ra, rb },
                "and" => Instr::And { rd, ra, rb },
                "or" => Instr::Or { rd, ra, rb },
                "xor" => Instr::Xor { rd, ra, rb },
                "lsl" => Instr::Lsl { rd, ra, rb },
                "lsr" => Instr::Lsr { rd, ra, rb },
                "asr" => Instr::Asr { rd, ra, rb },
                _ => Instr::Mul8 { rd, ra, rb },
            }
        }
        "addi" => {
            want(3)?;
            Instr::Addi {
                rd: parse_reg(line, ops[0])?,
                ra: parse_reg(line, ops[1])?,
                imm: parse_imm(line, ops[2])?,
            }
        }
        "lsli" | "lsri" | "asri" => {
            want(3)?;
            let rd = parse_reg(line, ops[0])?;
            let ra = parse_reg(line, ops[1])?;
            let sh = parse_imm(line, ops[2])?;
            if !(0..32).contains(&sh) {
                return Err(err(line, "shift amount must be 0..32"));
            }
            let sh = sh as u8;
            match mnemonic {
                "lsli" => Instr::Lsli { rd, ra, sh },
                "lsri" => Instr::Lsri { rd, ra, sh },
                _ => Instr::Asri { rd, ra, sh },
            }
        }
        "popcount" => {
            want(2)?;
            Instr::Popcount { rd: parse_reg(line, ops[0])?, ra: parse_reg(line, ops[1])? }
        }
        "lb" | "lh" | "lw" => {
            want(3)?;
            let width = match mnemonic {
                "lb" => Width::B,
                "lh" => Width::H,
                _ => Width::W,
            };
            Instr::Load {
                width,
                rd: parse_reg(line, ops[0])?,
                ra: parse_reg(line, ops[1])?,
                off: parse_imm(line, ops[2])?,
            }
        }
        "sb" | "sh" | "sw" => {
            want(3)?;
            let width = match mnemonic {
                "sb" => Width::B,
                "sh" => Width::H,
                _ => Width::W,
            };
            Instr::Store {
                width,
                ra: parse_reg(line, ops[0])?,
                off: parse_imm(line, ops[1])?,
                rs: parse_reg(line, ops[2])?,
            }
        }
        "mram.read" | "mram.write" => {
            want(3)?;
            let wram = parse_reg(line, ops[0])?;
            let mram = parse_reg(line, ops[1])?;
            let len = parse_reg(line, ops[2])?;
            if mnemonic == "mram.read" {
                Instr::MramRead { wram, mram, len }
            } else {
                Instr::MramWrite { wram, mram, len }
            }
        }
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            want(3)?;
            let cond = match mnemonic {
                "beq" => Cond::Eq,
                "bne" => Cond::Ne,
                "blt" => Cond::Lt,
                "bge" => Cond::Ge,
                "bltu" => Cond::Ltu,
                _ => Cond::Geu,
            };
            Instr::Branch {
                cond,
                ra: parse_reg(line, ops[0])?,
                rb: parse_reg(line, ops[1])?,
                target: parse_target(line, ops[2], labels)?,
            }
        }
        "jmp" => {
            want(1)?;
            Instr::Jump { target: parse_target(line, ops[0], labels)? }
        }
        "jal" => {
            want(2)?;
            Instr::Jal { rd: parse_reg(line, ops[0])?, target: parse_target(line, ops[1], labels)? }
        }
        "jr" => {
            want(1)?;
            Instr::Jr { ra: parse_reg(line, ops[0])? }
        }
        "call" => {
            // `call __mulsf3 rd, ra, rb`: symbol then three registers.
            let (sym, regs) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| err(line, "`call` expects `call <symbol> rd, ra, rb`"))?;
            let regs: Vec<&str> = regs.split(',').map(str::trim).collect();
            if regs.len() != 3 {
                return Err(err(line, "`call` expects three register operands"));
            }
            Instr::CallSub {
                sub: parse_sub(line, sym)?,
                rd: parse_reg(line, regs[0])?,
                ra: parse_reg(line, regs[1])?,
                rb: parse_reg(line, regs[2])?,
            }
        }
        "perf.config" => {
            want(0)?;
            Instr::PerfConfig
        }
        "perf.read" => {
            want(1)?;
            Instr::PerfRead { rd: parse_reg(line, ops[0])? }
        }
        "me" => {
            want(1)?;
            Instr::TaskletId { rd: parse_reg(line, ops[0])? }
        }
        "trace" => {
            want(1)?;
            Instr::Trace { ra: parse_reg(line, ops[0])? }
        }
        "barrier" => {
            want(0)?;
            Instr::Barrier
        }
        "mutex.lock" | "mutex.unlock" => {
            want(1)?;
            let id = parse_imm(line, ops[0])?;
            if !(0..256).contains(&id) {
                return Err(err(line, "mutex id must be 0..=255"));
            }
            if mnemonic == "mutex.lock" {
                Instr::MutexLock { id: id as u8 }
            } else {
                Instr::MutexUnlock { id: id as u8 }
            }
        }
        other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
    };
    Ok(i)
}

/// The operation measured by the Fig. 3.1 harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarnessOp {
    /// Fixed-point addition (any width — the DPU is a 32-bit ALU).
    Add,
    /// Fixed-point subtraction.
    Sub,
    /// 8-bit multiplication (hardware `mul8`).
    Mul8,
    /// 16-bit multiplication (`__mulsi3`, short-operand path).
    Mul16,
    /// 32-bit multiplication (`__mulsi3`).
    Mul32,
    /// Fixed-point division (`__divsi3`).
    Div,
    /// `f32` addition (`__addsf3`).
    FAdd,
    /// `f32` subtraction (`__subsf3`).
    FSub,
    /// `f32` multiplication (`__mulsf3`).
    FMul,
    /// `f32` division (`__divsf3`).
    FDiv,
}

impl HarnessOp {
    /// All harness operations, in Table 3.1 row order.
    pub const ALL: [HarnessOp; 10] = [
        HarnessOp::Add,
        HarnessOp::Sub,
        HarnessOp::Mul8,
        HarnessOp::Mul16,
        HarnessOp::Mul32,
        HarnessOp::Div,
        HarnessOp::FAdd,
        HarnessOp::FSub,
        HarnessOp::FMul,
        HarnessOp::FDiv,
    ];

    /// Human-readable row label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            HarnessOp::Add => "fixed add",
            HarnessOp::Sub => "fixed sub",
            HarnessOp::Mul8 => "8-bit mul",
            HarnessOp::Mul16 => "16-bit mul",
            HarnessOp::Mul32 => "32-bit mul",
            HarnessOp::Div => "fixed div",
            HarnessOp::FAdd => "float add",
            HarnessOp::FSub => "float sub",
            HarnessOp::FMul => "float mul",
            HarnessOp::FDiv => "float div",
        }
    }

    /// The paper's Table 3.1 cycle count for this operation.
    #[must_use]
    pub fn paper_cycles(self) -> u64 {
        match self {
            HarnessOp::Add | HarnessOp::Sub | HarnessOp::Mul8 => 272,
            HarnessOp::Mul16 => 608,
            HarnessOp::Mul32 => 800,
            HarnessOp::Div => 368,
            HarnessOp::FAdd => 896,
            HarnessOp::FSub => 928,
            HarnessOp::FMul => 2528,
            HarnessOp::FDiv => 12064,
        }
    }

    fn op_instr(self) -> Instr {
        let (rd, ra, rb) = (Reg(3), Reg(1), Reg(2));
        match self {
            HarnessOp::Add => Instr::Add { rd, ra, rb },
            HarnessOp::Sub => Instr::Sub { rd, ra, rb },
            HarnessOp::Mul8 => Instr::Mul8 { rd, ra, rb },
            HarnessOp::Mul16 => Instr::CallSub { sub: Subroutine::Mulsi3Short, rd, ra, rb },
            HarnessOp::Mul32 => Instr::CallSub { sub: Subroutine::Mulsi3, rd, ra, rb },
            HarnessOp::Div => Instr::CallSub { sub: Subroutine::Divsi3, rd, ra, rb },
            HarnessOp::FAdd => Instr::CallSub { sub: Subroutine::Addsf3, rd, ra, rb },
            HarnessOp::FSub => Instr::CallSub { sub: Subroutine::Subsf3, rd, ra, rb },
            HarnessOp::FMul => Instr::CallSub { sub: Subroutine::Mulsf3, rd, ra, rb },
            HarnessOp::FDiv => Instr::CallSub { sub: Subroutine::Divsf3, rd, ra, rb },
        }
    }

    /// Maximum-magnitude operands for the measured type, as register bit
    /// patterns (the paper measures "maximum type values").
    #[must_use]
    pub fn max_operands(self) -> (u32, u32) {
        match self {
            HarnessOp::Add | HarnessOp::Sub => (i32::MAX as u32, i32::MAX as u32),
            HarnessOp::Mul8 => (u32::from(u8::MAX), u32::from(u8::MAX)),
            HarnessOp::Mul16 => (u32::from(i16::MAX as u16), u32::from(i16::MAX as u16)),
            HarnessOp::Mul32 | HarnessOp::Div => (i32::MAX as u32, i32::MAX as u32),
            HarnessOp::FAdd | HarnessOp::FSub | HarnessOp::FMul | HarnessOp::FDiv => {
                (f32::MAX.to_bits(), f32::MAX.to_bits())
            }
        }
    }
}

/// Build the Fig. 3.1 profiling harness for one operation.
///
/// The emitted program mirrors what `dpu-clang -O0` produces around a single
/// C statement `c = a <op> b` bracketed by `perfcounter_config()` /
/// `perfcounter_get()`:
///
/// * a function frame is established and the operands spilled to stack slots
///   in WRAM (O0 keeps every value in memory);
/// * `perfcounter_config()` is a real call (`jal` / configure / `jr`);
/// * the operand loads recompute their stack addresses, the sub-32-bit types
///   are masked after loading, the operation executes (one hardware
///   instruction or a runtime subroutine), the result is stored and
///   re-loaded for its next use;
/// * `perfcounter_get()` is again a call, and the measured value lands in a
///   stack slot.
///
/// Between the two perfcounter instructions the harness issues exactly
/// 23 overhead slots plus the operation's slots, so a single tasklet
/// (one issue per 11-cycle rotation) measures `(24 + op_slots) × 11` cycles —
/// within ~1.5 % of every Table 3.1 entry.
#[must_use]
#[allow(clippy::vec_init_then_push)] // sequential program emission
pub fn profile_harness(op: HarnessOp) -> Program {
    use Instr as I;
    let (a, b) = op.max_operands();
    let sp = Reg(29);
    let t0 = Reg(4);
    let mut v = Vec::new();

    // Frame setup and operand spill (before the measured region).
    v.push(I::Movi { rd: sp, imm: 0x100 });
    v.push(I::Movi { rd: Reg(1), imm: a as i32 });
    v.push(I::Store { width: Width::W, ra: sp, off: 0, rs: Reg(1) });
    v.push(I::Movi { rd: Reg(2), imm: b as i32 });
    v.push(I::Store { width: Width::W, ra: sp, off: 4, rs: Reg(2) });

    // perfcounter_config(): call, configure, return. The *config* issue
    // opens the measured window.
    let cfg_target = (v.len() + 2) as u32;
    v.push(I::Jal { rd: Reg(31), target: cfg_target });
    v.push(I::Jump { target: cfg_target + 2 }); // skipped; keeps layout call-like
    v.push(I::PerfConfig);
    v.push(I::Jr { ra: Reg(31) });

    // But Jr returns to pc+1 of the Jal — patch: the Jal stored pc+1 which is
    // the Jump above; that Jump lands after this block. (Layout emulates the
    // call/return overhead with real control flow.)

    // --- measured region: 23 overhead slots + the operation ---
    // O0 address recomputation + loads + masking.
    v.push(I::Addi { rd: t0, ra: sp, imm: 0 }); // 1
    v.push(I::Load { width: Width::W, rd: Reg(1), ra: t0, off: 0 }); // 2
    v.push(I::Addi { rd: t0, ra: sp, imm: 4 }); // 3
    v.push(I::Load { width: Width::W, rd: Reg(2), ra: t0, off: 0 }); // 4
    v.push(I::Movi { rd: Reg(5), imm: -1 }); // 5  type mask lo
    v.push(I::And { rd: Reg(1), ra: Reg(1), rb: Reg(5) }); // 6
    v.push(I::And { rd: Reg(2), ra: Reg(2), rb: Reg(5) }); // 7
    v.push(I::Mov { rd: Reg(6), ra: Reg(1) }); // 8  O0 temporaries
    v.push(I::Mov { rd: Reg(7), ra: Reg(2) }); // 9

    v.push(op.op_instr()); // the operation: 1 or subroutine-many slots

    // Result spill, reload for next use, frame traffic, perfcounter_get call.
    v.push(I::Addi { rd: t0, ra: sp, imm: 8 }); // 10
    v.push(I::Store { width: Width::W, ra: t0, off: 0, rs: Reg(3) }); // 11
    v.push(I::Load { width: Width::W, rd: Reg(8), ra: t0, off: 0 }); // 12
    v.push(I::Mov { rd: Reg(9), ra: Reg(8) }); // 13
    v.push(I::Addi { rd: sp, ra: sp, imm: -16 }); // 14
    v.push(I::Store { width: Width::W, ra: sp, off: 0, rs: Reg(31) }); // 15
    v.push(I::Store { width: Width::W, ra: sp, off: 4, rs: Reg(9) }); // 16
    v.push(I::Nop); // 17  argument marshalling
    v.push(I::Nop); // 18
    v.push(I::Nop); // 19
    v.push(I::Nop); // 20
    let get_target = (v.len() + 2) as u32;
    v.push(I::Jal { rd: Reg(30), target: get_target }); // 21
    v.push(I::Jump { target: get_target + 2 }); // 22 (return landing pad)
    v.push(I::PerfRead { rd: Reg(10) }); // closes the window
    v.push(I::Jr { ra: Reg(30) });

    // Epilogue: store measurement and halt.
    v.push(I::Store { width: Width::W, ra: sp, off: 8, rs: Reg(10) });
    v.push(I::Addi { rd: sp, ra: sp, imm: 16 });
    v.push(I::Halt);

    Program::new(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn assembles_and_runs_sum_loop() {
        let p = assemble(
            "; sum 1..=10\n\
             movi r1, 10\n\
             movi r2, 0\n\
             loop: add r2, r2, r1\n\
             addi r1, r1, -1\n\
             bne r1, r0, loop\n\
             sw r0, 0, r2\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        m.run(&p, 1).unwrap();
        assert_eq!(m.wram.read_u32(0).unwrap(), 55);
    }

    #[test]
    fn labels_before_and_after_use() {
        let p = assemble("jmp end\nmid: halt\nend: jmp mid\n").unwrap();
        assert_eq!(p.label("mid").unwrap(), 1);
        assert_eq!(p.label("end").unwrap(), 2);
        let mut m = Machine::default();
        m.run(&p, 1).unwrap();
    }

    #[test]
    fn call_syntax_profiles_subroutine() {
        let p = assemble("movi r1, 6\nmovi r2, 7\ncall __mulsi3 r3, r1, r2\nsw r0, 0, r3\nhalt\n")
            .unwrap();
        let mut m = Machine::default();
        let res = m.run(&p, 1).unwrap();
        assert_eq!(m.wram.read_u32(0).unwrap(), 42);
        assert_eq!(res.profile.occurrences(Subroutine::Mulsi3), 1);
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(assemble("bogus r1, r2").is_err());
        assert!(assemble("movi r99, 1").is_err());
        assert!(assemble("add r1, r2").is_err());
        assert!(assemble("jmp nowhere").is_err());
        assert!(assemble("dup: nop\ndup: nop").is_err());
        assert!(assemble("lsli r1, r1, 40").is_err());
        assert!(assemble("call __nosuch r1, r2, r3").is_err());
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("movi r1, 0xff\nmovi r2, -16\nmovi r3, 0xffffffff\nhalt\n").unwrap();
        assert_eq!(p.instrs.len(), 4);
        assert_eq!(p.instrs[0], Instr::Movi { rd: Reg(1), imm: 255 });
        assert_eq!(p.instrs[1], Instr::Movi { rd: Reg(2), imm: -16 });
        assert_eq!(p.instrs[2], Instr::Movi { rd: Reg(3), imm: -1 });
    }

    #[test]
    fn harness_reproduces_table_3_1_within_tolerance() {
        for op in HarnessOp::ALL {
            let p = profile_harness(op);
            let mut m = Machine::default();
            let res = m.run(&p, 1).unwrap();
            assert_eq!(res.perf_reads.len(), 1, "{op:?} must read perf once");
            let measured = res.perf_reads[0];
            let paper = op.paper_cycles();
            let rel = (measured as f64 - paper as f64).abs() / paper as f64;
            assert!(rel < 0.02, "{op:?}: measured {measured}, paper {paper}, rel err {rel:.3}");
        }
    }

    #[test]
    fn harness_computes_correct_results() {
        // The harness is a real program: check the functional output too.
        let p = profile_harness(HarnessOp::Mul8);
        let mut m = Machine::default();
        m.run(&p, 1).unwrap();
        // Result slot is sp+8 with sp = 0x100 - 16 ... stored before epilogue
        // at original sp: 0x100 + 8 held the op result spill.
        assert_eq!(m.wram.read_u32(0x108).unwrap(), 255 * 255);
    }

    #[test]
    fn harness_profile_contains_expected_subroutine() {
        let p = profile_harness(HarnessOp::FDiv);
        let mut m = Machine::default();
        let res = m.run(&p, 1).unwrap();
        assert_eq!(res.profile.occurrences(Subroutine::Divsf3), 1);
        assert_eq!(res.profile.distinct_subroutines(), 1);
    }
}

/// Disassemble a program back into assembler-accepted source text.
///
/// The output round-trips: `assemble(&disassemble(p))` reproduces `p`
/// instruction-for-instruction (labels are rendered as absolute targets).
#[must_use]
pub fn disassemble(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for instr in &program.instrs {
        let line = match *instr {
            Instr::Nop => "nop".to_owned(),
            Instr::Halt => "halt".to_owned(),
            Instr::Movi { rd, imm } => format!("movi {rd}, {imm}"),
            Instr::Mov { rd, ra } => format!("mov {rd}, {ra}"),
            Instr::Add { rd, ra, rb } => format!("add {rd}, {ra}, {rb}"),
            Instr::Addi { rd, ra, imm } => format!("addi {rd}, {ra}, {imm}"),
            Instr::Sub { rd, ra, rb } => format!("sub {rd}, {ra}, {rb}"),
            Instr::And { rd, ra, rb } => format!("and {rd}, {ra}, {rb}"),
            Instr::Or { rd, ra, rb } => format!("or {rd}, {ra}, {rb}"),
            Instr::Xor { rd, ra, rb } => format!("xor {rd}, {ra}, {rb}"),
            Instr::Lsl { rd, ra, rb } => format!("lsl {rd}, {ra}, {rb}"),
            Instr::Lsr { rd, ra, rb } => format!("lsr {rd}, {ra}, {rb}"),
            Instr::Asr { rd, ra, rb } => format!("asr {rd}, {ra}, {rb}"),
            Instr::Lsli { rd, ra, sh } => format!("lsli {rd}, {ra}, {sh}"),
            Instr::Lsri { rd, ra, sh } => format!("lsri {rd}, {ra}, {sh}"),
            Instr::Asri { rd, ra, sh } => format!("asri {rd}, {ra}, {sh}"),
            Instr::Mul8 { rd, ra, rb } => format!("mul8 {rd}, {ra}, {rb}"),
            Instr::Popcount { rd, ra } => format!("popcount {rd}, {ra}"),
            Instr::Load { width, rd, ra, off } => {
                let w = match width {
                    Width::B => "lb",
                    Width::H => "lh",
                    Width::W => "lw",
                };
                format!("{w} {rd}, {ra}, {off}")
            }
            Instr::Store { width, ra, off, rs } => {
                let w = match width {
                    Width::B => "sb",
                    Width::H => "sh",
                    Width::W => "sw",
                };
                format!("{w} {ra}, {off}, {rs}")
            }
            Instr::MramRead { wram, mram, len } => format!("mram.read {wram}, {mram}, {len}"),
            Instr::MramWrite { wram, mram, len } => format!("mram.write {wram}, {mram}, {len}"),
            Instr::Branch { cond, ra, rb, target } => {
                let c = match cond {
                    Cond::Eq => "beq",
                    Cond::Ne => "bne",
                    Cond::Lt => "blt",
                    Cond::Ge => "bge",
                    Cond::Ltu => "bltu",
                    Cond::Geu => "bgeu",
                };
                format!("{c} {ra}, {rb}, {target}")
            }
            Instr::Jump { target } => format!("jmp {target}"),
            Instr::Jal { rd, target } => format!("jal {rd}, {target}"),
            Instr::Jr { ra } => format!("jr {ra}"),
            Instr::CallSub { sub, rd, ra, rb } => {
                let sym =
                    if sub == Subroutine::Mulsi3Short { "__mulsi3.short" } else { sub.symbol() };
                format!("call {sym} {rd}, {ra}, {rb}")
            }
            Instr::PerfConfig => "perf.config".to_owned(),
            Instr::PerfRead { rd } => format!("perf.read {rd}"),
            Instr::TaskletId { rd } => format!("me {rd}"),
            Instr::Trace { ra } => format!("trace {ra}"),
            Instr::Barrier => "barrier".to_owned(),
            Instr::MutexLock { id } => format!("mutex.lock {id}"),
            Instr::MutexUnlock { id } => format!("mutex.unlock {id}"),
        };
        writeln!(s, "{line}").expect("writing to String cannot fail");
    }
    s
}

#[cfg(test)]
mod disasm_tests {
    use super::*;
    use proptest::prelude::*;

    fn reg_strategy() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(Reg)
    }

    fn instr_strategy() -> impl Strategy<Value = Instr> {
        let r = reg_strategy;
        prop_oneof![
            Just(Instr::Nop),
            Just(Instr::Halt),
            (r(), any::<i32>()).prop_map(|(rd, imm)| Instr::Movi { rd, imm }),
            (r(), r()).prop_map(|(rd, ra)| Instr::Mov { rd, ra }),
            (r(), r(), r()).prop_map(|(rd, ra, rb)| Instr::Add { rd, ra, rb }),
            (r(), r(), any::<i32>()).prop_map(|(rd, ra, imm)| Instr::Addi { rd, ra, imm }),
            (r(), r(), r()).prop_map(|(rd, ra, rb)| Instr::Xor { rd, ra, rb }),
            (r(), r(), 0u8..32).prop_map(|(rd, ra, sh)| Instr::Lsli { rd, ra, sh }),
            (r(), r(), r()).prop_map(|(rd, ra, rb)| Instr::Mul8 { rd, ra, rb }),
            (r(), r()).prop_map(|(rd, ra)| Instr::Popcount { rd, ra }),
            (r(), r(), -1024i32..1024).prop_map(|(rd, ra, off)| Instr::Load {
                width: Width::W,
                rd,
                ra,
                off
            }),
            (r(), -1024i32..1024, r()).prop_map(|(ra, off, rs)| Instr::Store {
                width: Width::B,
                ra,
                off,
                rs
            }),
            (r(), r(), r()).prop_map(|(wram, mram, len)| Instr::MramRead { wram, mram, len }),
            (r(), r(), 0u32..64).prop_map(|(ra, rb, target)| Instr::Branch {
                cond: Cond::Ne,
                ra,
                rb,
                target
            }),
            (0u32..64).prop_map(|target| Instr::Jump { target }),
            (r(), 0u32..64).prop_map(|(rd, target)| Instr::Jal { rd, target }),
            r().prop_map(|ra| Instr::Jr { ra }),
            (r(), r(), r()).prop_map(|(rd, ra, rb)| Instr::CallSub {
                sub: Subroutine::Mulsf3,
                rd,
                ra,
                rb
            }),
            Just(Instr::PerfConfig),
            r().prop_map(|rd| Instr::PerfRead { rd }),
            r().prop_map(|rd| Instr::TaskletId { rd }),
            r().prop_map(|ra| Instr::Trace { ra }),
            Just(Instr::Barrier),
            (0u8..=255).prop_map(|id| Instr::MutexLock { id }),
            (0u8..=255).prop_map(|id| Instr::MutexUnlock { id }),
        ]
    }

    proptest! {
        /// assemble(disassemble(p)) reproduces any program exactly.
        #[test]
        fn round_trip(instrs in proptest::collection::vec(instr_strategy(), 1..40)) {
            let p = Program::new(instrs);
            let text = disassemble(&p);
            let back = assemble(&text).expect("disassembly must re-assemble");
            prop_assert_eq!(back.instrs, p.instrs);
        }
    }

    #[test]
    fn round_trip_the_harness_programs() {
        for op in HarnessOp::ALL {
            let p = profile_harness(op);
            let back = assemble(&disassemble(&p)).expect("re-assembles");
            assert_eq!(back.instrs, p.instrs, "{op:?}");
        }
    }
}
