//! Error type shared by the simulator.

use std::fmt;

/// Convenient result alias for simulator operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the DPU simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A memory access fell outside the addressed memory.
    ///
    /// `kind` names the memory ("WRAM", "MRAM", "IRAM"), `addr`/`len` the
    /// offending access, `size` the capacity.
    OutOfBounds {
        /// Which memory was addressed.
        kind: &'static str,
        /// Byte address of the access.
        addr: usize,
        /// Length of the access in bytes.
        len: usize,
        /// Capacity of the memory in bytes.
        size: usize,
    },
    /// A host<->DPU transfer violated the 8-byte alignment/size rule.
    Misaligned {
        /// Byte address or length that broke the rule.
        value: usize,
        /// Required alignment.
        align: usize,
    },
    /// A DMA transfer exceeded the per-transfer byte limit.
    DmaTooLarge {
        /// Requested transfer size.
        requested: usize,
        /// Hardware limit.
        limit: usize,
    },
    /// The interpreter hit its cycle budget without reaching `halt`.
    CycleBudgetExceeded {
        /// Budget that was exhausted.
        budget: u64,
    },
    /// The program counter left the program.
    PcOutOfRange {
        /// Offending program counter.
        pc: usize,
        /// Number of instructions in the program.
        len: usize,
    },
    /// Division by zero inside the interpreter.
    DivisionByZero {
        /// Program counter of the dividing instruction.
        pc: usize,
    },
    /// Requested tasklet count is outside 1..=24.
    BadTaskletCount {
        /// Requested count.
        requested: usize,
        /// Maximum supported.
        max: usize,
    },
    /// The assembler rejected the source text.
    Asm {
        /// 1-based source line.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A program did not fit in IRAM.
    ProgramTooLarge {
        /// Program size in bytes (8 bytes per instruction slot).
        bytes: usize,
        /// IRAM capacity.
        iram_bytes: usize,
    },
    /// A named symbol was not found in a program or DPU symbol table.
    UnknownSymbol {
        /// The symbol that was looked up.
        name: String,
    },
    /// No tasklet can make progress: some are blocked on a barrier or
    /// mutex that can never be satisfied.
    Deadlock {
        /// Tasklets blocked at a barrier.
        at_barrier: usize,
        /// Tasklets blocked on mutexes.
        on_mutex: usize,
    },
    /// The DPU refused to launch: an injected whole-DPU fault (the
    /// simulated analogue of a masked-out rank).
    DpuOffline,
    /// A DMA transfer aborted mid-kernel: an injected transfer fault.
    DmaFault {
        /// Program counter of the DMA instruction.
        pc: usize,
        /// Requested transfer size in bytes.
        bytes: usize,
    },
    /// An MRAM word failed its SEC-DED check with more than one bit in
    /// error — detected but uncorrectable, so the containing launch must
    /// be retried from a clean snapshot rather than trusted.
    EccUncorrectable {
        /// Byte address of the first word that failed decode.
        addr: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OutOfBounds { kind, addr, len, size } => write!(
                f,
                "{kind} access out of bounds: addr={addr:#x} len={len} capacity={size:#x}"
            ),
            Error::Misaligned { value, align } => {
                write!(f, "host transfer of {value} bytes violates {align}-byte alignment rule")
            }
            Error::DmaTooLarge { requested, limit } => {
                write!(f, "DMA transfer of {requested} bytes exceeds the {limit}-byte limit")
            }
            Error::CycleBudgetExceeded { budget } => {
                write!(f, "program did not halt within {budget} cycles")
            }
            Error::PcOutOfRange { pc, len } => {
                write!(f, "program counter {pc} outside program of {len} instructions")
            }
            Error::DivisionByZero { pc } => write!(f, "division by zero at pc={pc}"),
            Error::BadTaskletCount { requested, max } => {
                write!(f, "tasklet count {requested} outside 1..={max}")
            }
            Error::Asm { line, msg } => write!(f, "assembly error at line {line}: {msg}"),
            Error::ProgramTooLarge { bytes, iram_bytes } => {
                write!(f, "program of {bytes} bytes does not fit in {iram_bytes}-byte IRAM")
            }
            Error::UnknownSymbol { name } => write!(f, "unknown symbol `{name}`"),
            Error::Deadlock { at_barrier, on_mutex } => write!(
                f,
                "deadlock: {at_barrier} tasklet(s) at a barrier, {on_mutex} blocked on mutexes, none runnable"
            ),
            Error::DpuOffline => write!(f, "DPU offline (injected rank fault)"),
            Error::DmaFault { pc, bytes } => {
                write!(f, "injected DMA fault at pc={pc} ({bytes}-byte transfer)")
            }
            Error::EccUncorrectable { addr } => {
                write!(f, "uncorrectable ECC error in MRAM word at addr={addr:#x}")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::OutOfBounds { kind: "WRAM", addr: 0x10000, len: 4, size: 0x10000 };
        let s = e.to_string();
        assert!(s.contains("WRAM"));
        assert!(s.contains("0x10000"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::DivisionByZero { pc: 3 }, Error::DivisionByZero { pc: 3 });
        assert_ne!(Error::DivisionByZero { pc: 3 }, Error::DivisionByZero { pc: 4 });
    }

    #[test]
    fn injected_fault_variants_display_their_site() {
        assert!(Error::DpuOffline.to_string().contains("offline"));
        let e = Error::DmaFault { pc: 17, bytes: 128 };
        let s = e.to_string();
        assert!(s.contains("pc=17") && s.contains("128"), "{s}");
    }
}
