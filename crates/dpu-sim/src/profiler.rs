//! Subroutine occurrence profiler, modelled on `dpu-profiling`.
//!
//! The paper identifies costly floating-point subroutines by profiling DPU
//! programs and counting how many times each runtime routine is entered
//! (the `#occ` column of Fig. 3.2); Fig. 4.3 then shows the LUT rewrite
//! shrinking the profile from 11+ routines to 2. [`Profiler`] reproduces
//! that report: the interpreter records one occurrence per
//! [`crate::isa::Instr::CallSub`] executed.

use crate::subroutines::Subroutine;
use std::collections::BTreeMap;
use std::fmt;

/// Occurrence counts per runtime subroutine for one program run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profiler {
    counts: BTreeMap<&'static str, u64>,
    float_calls: u64,
    total_calls: u64,
}

impl Profiler {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one entry into `sub`.
    pub fn record(&mut self, sub: Subroutine) {
        *self.counts.entry(sub.symbol()).or_insert(0) += 1;
        self.total_calls += 1;
        if sub.is_float() {
            self.float_calls += 1;
        }
    }

    /// Occurrences of a given routine.
    #[must_use]
    pub fn occurrences(&self, sub: Subroutine) -> u64 {
        self.counts.get(sub.symbol()).copied().unwrap_or(0)
    }

    /// Number of *distinct* routines observed — the quantity Fig. 4.3
    /// compares (11+ without the LUT rewrite, 2 with it).
    #[must_use]
    pub fn distinct_subroutines(&self) -> usize {
        self.counts.len()
    }

    /// Number of distinct *floating-point* routines observed.
    #[must_use]
    pub fn distinct_float_subroutines(&self) -> usize {
        Subroutine::ALL
            .iter()
            .filter(|s| s.is_float() && self.occurrences(**s) > 0)
            .map(|s| s.symbol())
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }

    /// Total subroutine entries.
    #[must_use]
    pub fn total_calls(&self) -> u64 {
        self.total_calls
    }

    /// Total entries into floating-point routines.
    #[must_use]
    pub fn float_calls(&self) -> u64 {
        self.float_calls
    }

    /// Iterate `(symbol, #occ)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(s, c)| (*s, *c))
    }

    /// Merge another profile into this one (used when aggregating tasklets
    /// or DPUs).
    pub fn merge(&mut self, other: &Profiler) {
        for (s, c) in &other.counts {
            *self.counts.entry(s).or_insert(0) += c;
        }
        self.total_calls += other.total_calls;
        self.float_calls += other.float_calls;
    }
}

impl fmt::Display for Profiler {
    /// Renders a Fig. 3.2-style table: one routine per line with `#occ`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<14} #occ", "symbol")?;
        for (sym, occ) in self.iter() {
            writeln!(f, "{sym:<14} {occ}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_distinct() {
        let mut p = Profiler::new();
        p.record(Subroutine::Addsf3);
        p.record(Subroutine::Addsf3);
        p.record(Subroutine::Mulsi3);
        assert_eq!(p.occurrences(Subroutine::Addsf3), 2);
        assert_eq!(p.occurrences(Subroutine::Mulsi3), 1);
        assert_eq!(p.occurrences(Subroutine::Divsf3), 0);
        assert_eq!(p.distinct_subroutines(), 2);
        assert_eq!(p.total_calls(), 3);
        assert_eq!(p.float_calls(), 2);
    }

    #[test]
    fn distinct_float_subroutines_excludes_integer_ones() {
        let mut p = Profiler::new();
        p.record(Subroutine::Mulsi3);
        p.record(Subroutine::Divsi3);
        p.record(Subroutine::Ltsf2);
        assert_eq!(p.distinct_float_subroutines(), 1);
    }

    #[test]
    fn mulsi3_variants_share_a_symbol() {
        // Short and full paths are the same routine in a real profile.
        let mut p = Profiler::new();
        p.record(Subroutine::Mulsi3);
        p.record(Subroutine::Mulsi3Short);
        assert_eq!(p.occurrences(Subroutine::Mulsi3), 2);
        assert_eq!(p.distinct_subroutines(), 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Profiler::new();
        a.record(Subroutine::Addsf3);
        let mut b = Profiler::new();
        b.record(Subroutine::Addsf3);
        b.record(Subroutine::Divsf3);
        a.merge(&b);
        assert_eq!(a.occurrences(Subroutine::Addsf3), 2);
        assert_eq!(a.occurrences(Subroutine::Divsf3), 1);
        assert_eq!(a.total_calls(), 3);
    }

    #[test]
    fn display_renders_occ_table() {
        let mut p = Profiler::new();
        p.record(Subroutine::Divsf3);
        let s = p.to_string();
        assert!(s.contains("__divsf3"));
        assert!(s.contains("#occ"));
    }
}
