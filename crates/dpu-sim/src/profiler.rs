//! Subroutine occurrence profiler, modelled on `dpu-profiling`.
//!
//! The paper identifies costly floating-point subroutines by profiling DPU
//! programs and counting how many times each runtime routine is entered
//! (the `#occ` column of Fig. 3.2); Fig. 4.3 then shows the LUT rewrite
//! shrinking the profile from 11+ routines to 2. [`Profiler`] reproduces
//! that report: the interpreter records one occurrence per
//! [`crate::isa::Instr::CallSub`] executed.
//!
//! [`CycleAttribution`] goes beyond occurrence counts to the *cycles*
//! behind them: a profiled run attributes every elapsed cycle to the
//! superblock-partition piece whose instruction occupied the issue slot
//! (burst slots go to the in-flight subroutine, keyed by its call site),
//! so the attributed cycles sum exactly to the run's makespan. The
//! profile exports as flamegraph folded stacks ([`CycleAttribution::folded`])
//! and feeds the Chrome-trace counter events and `report --json` hot-block
//! tables.

use crate::exec::Superblocks;
use crate::subroutines::Subroutine;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Occurrence counts per runtime subroutine for one program run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profiler {
    counts: BTreeMap<&'static str, u64>,
    float_calls: u64,
    total_calls: u64,
}

impl Profiler {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one entry into `sub`.
    pub fn record(&mut self, sub: Subroutine) {
        *self.counts.entry(sub.symbol()).or_insert(0) += 1;
        self.total_calls += 1;
        if sub.is_float() {
            self.float_calls += 1;
        }
    }

    /// Occurrences of a given routine.
    #[must_use]
    pub fn occurrences(&self, sub: Subroutine) -> u64 {
        self.counts.get(sub.symbol()).copied().unwrap_or(0)
    }

    /// Number of *distinct* routines observed — the quantity Fig. 4.3
    /// compares (11+ without the LUT rewrite, 2 with it).
    #[must_use]
    pub fn distinct_subroutines(&self) -> usize {
        self.counts.len()
    }

    /// Number of distinct *floating-point* routines observed.
    #[must_use]
    pub fn distinct_float_subroutines(&self) -> usize {
        Subroutine::ALL
            .iter()
            .filter(|s| s.is_float() && self.occurrences(**s) > 0)
            .map(|s| s.symbol())
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }

    /// Total subroutine entries.
    #[must_use]
    pub fn total_calls(&self) -> u64 {
        self.total_calls
    }

    /// Total entries into floating-point routines.
    #[must_use]
    pub fn float_calls(&self) -> u64 {
        self.float_calls
    }

    /// Iterate `(symbol, #occ)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(s, c)| (*s, *c))
    }

    /// Merge another profile into this one (used when aggregating tasklets
    /// or DPUs).
    pub fn merge(&mut self, other: &Profiler) {
        for (s, c) in &other.counts {
            *self.counts.entry(s).or_insert(0) += c;
        }
        self.total_calls += other.total_calls;
        self.float_calls += other.float_calls;
    }
}

impl fmt::Display for Profiler {
    /// Renders a Fig. 3.2-style table: one routine per line with `#occ`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<14} #occ", "symbol")?;
        for (sym, occ) in self.iter() {
            writeln!(f, "{sym:<14} {occ}")?;
        }
        Ok(())
    }
}

/// Cycle totals for one subroutine at one call site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubroutineCycles {
    /// Number of calls from this site.
    pub calls: u64,
    /// Issue slots spent in the subroutine body (burst slots).
    pub slots: u64,
    /// Cycles attributed to those slots.
    pub cycles: u64,
}

/// Cycle totals for one piece of the superblock partition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCycles {
    /// First pc of the piece.
    pub start: u32,
    /// Piece length in instructions (1 for non-superblock singletons).
    pub len: u32,
    /// Times the piece's head instruction issued (block entries).
    pub entries: u64,
    /// Issue slots attributed to the piece's own instructions.
    pub slots: u64,
    /// Cycles attributed to those slots (includes the idle/stall gap
    /// each slot waited behind — see the attribution rule below).
    pub cycles: u64,
}

/// Per-superblock and per-subroutine cycle attribution for one run.
///
/// Built by the profiled reference loop
/// ([`crate::machine::Machine::run_exec_profiled`]): each issue slot's
/// contribution is the makespan delta it advanced the pipeline by (the
/// gap since the previous issue, so DMA stalls and idle windows land on
/// the instruction that waited behind them), attributed to the partition
/// piece containing the issued pc — or, for burst slots, to the
/// in-flight subroutine keyed by `(call-site piece, symbol)`. The
/// attributed cycles therefore sum *exactly* to the run's cycle count,
/// which the identity tests pin.
///
/// One attribution can accumulate several runs of the *same* program
/// (repeated launches, or one per DPU via [`CycleAttribution::merge`]).
///
/// Equality compares the accumulated profile (pieces, block and
/// subroutine stats, totals) and ignores the per-run `in_flight`
/// scratch, so "N runs accumulated" equals "N single-run attributions
/// merged".
#[derive(Debug, Clone, Default)]
pub struct CycleAttribution {
    /// `(start, len)` of every partition piece, ascending by start.
    pieces: Vec<(u32, u32)>,
    /// pc → index into `pieces`.
    piece_of: Vec<u32>,
    /// Per-piece accumulated stats, same order as `pieces`.
    blocks: Vec<BlockCycles>,
    /// Per-`(piece, symbol)` subroutine burst stats.
    subs: BTreeMap<(u32, &'static str), SubroutineCycles>,
    /// In-flight burst target per tasklet (valid during a profiled run).
    in_flight: Vec<Option<(u32, &'static str)>>,
    /// Total cycles attributed across all recorded runs.
    total_cycles: u64,
    /// Number of runs accumulated.
    runs: u64,
}

impl PartialEq for CycleAttribution {
    fn eq(&self, other: &Self) -> bool {
        self.pieces == other.pieces
            && self.blocks == other.blocks
            && self.subs == other.subs
            && self.total_cycles == other.total_cycles
            && self.runs == other.runs
    }
}

impl Eq for CycleAttribution {}

impl CycleAttribution {
    /// An empty attribution; [`prepare`](Self::prepare) binds it to a
    /// program's partition at the start of a profiled run.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind to a program's superblock partition and reset per-run
    /// transients. First call adopts the partition; later calls require
    /// the same one (accumulating unrelated programs would produce
    /// meaningless per-block sums).
    ///
    /// # Panics
    /// If re-prepared with a different partition.
    pub fn prepare(&mut self, sb: &Superblocks, tasklets: usize) {
        let pieces = sb.partition();
        if self.pieces.is_empty() && self.blocks.is_empty() {
            self.piece_of = Vec::with_capacity(pieces.iter().map(|&(_, l)| l as usize).sum());
            for (i, &(start, len)) in pieces.iter().enumerate() {
                #[allow(clippy::cast_possible_truncation)]
                self.piece_of.extend(std::iter::repeat_n(i as u32, len as usize));
                self.blocks.push(BlockCycles { start, len, ..BlockCycles::default() });
            }
            self.pieces = pieces;
        } else {
            assert_eq!(self.pieces, pieces, "CycleAttribution reused across different programs");
        }
        self.in_flight.clear();
        self.in_flight.resize(tasklets, None);
        self.runs += 1;
    }

    /// Attribute one issue slot at `pc` advancing the makespan by
    /// `delta` cycles. Ends any burst bookkeeping for the tasklet.
    #[inline]
    pub(crate) fn record_slot(&mut self, t: usize, pc: usize, delta: u64) {
        self.in_flight[t] = None;
        let piece = self.piece_of[pc] as usize;
        let b = &mut self.blocks[piece];
        b.slots += 1;
        b.cycles += delta;
        if b.start as usize == pc {
            b.entries += 1;
        }
        self.total_cycles += delta;
    }

    /// Note that the slot just recorded at `pc` entered subroutine
    /// `symbol`: subsequent burst slots of tasklet `t` accrue to it.
    #[inline]
    pub(crate) fn begin_burst(&mut self, t: usize, pc: usize, symbol: &'static str) {
        let piece = self.piece_of[pc];
        self.in_flight[t] = Some((piece, symbol));
        self.subs.entry((piece, symbol)).or_default().calls += 1;
    }

    /// Attribute one burst slot (subroutine body instruction) of tasklet
    /// `t` advancing the makespan by `delta` cycles.
    #[inline]
    pub(crate) fn record_burst(&mut self, t: usize, delta: u64) {
        let (piece, symbol) = self.in_flight[t].expect("burst slot outside a subroutine");
        let s = self.subs.entry((piece, symbol)).or_default();
        s.slots += 1;
        s.cycles += delta;
        self.total_cycles += delta;
    }

    /// Total cycles attributed — equal to the sum of the recorded runs'
    /// cycle counts (the identity tests pin this).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Number of runs accumulated into this attribution.
    #[must_use]
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Per-piece stats in program order (pieces with zero slots included).
    #[must_use]
    pub fn blocks(&self) -> &[BlockCycles] {
        &self.blocks
    }

    /// Start pcs (ascending) of the pieces entered at least `min_entries`
    /// times across the accumulated runs. This is the hotness signal the
    /// compiled tier uses to decide which superblocks are worth translating
    /// to threaded code ([`crate::compile::CompiledProgram::compile_hot`]).
    #[must_use]
    pub fn hot_starts(&self, min_entries: u64) -> Vec<u32> {
        self.blocks.iter().filter(|b| b.entries >= min_entries).map(|b| b.start).collect()
    }

    /// Per-call-site subroutine stats, keyed by `(piece index, symbol)`.
    pub fn subroutines(&self) -> impl Iterator<Item = (u32, &'static str, SubroutineCycles)> + '_ {
        self.subs.iter().map(|(&(piece, symbol), &s)| (piece, symbol, s))
    }

    /// The `n` hottest pieces by attributed cycles (own slots plus the
    /// bursts of subroutines called from them), hottest first; ties break
    /// by start pc for determinism.
    #[must_use]
    pub fn top_blocks(&self, n: usize) -> Vec<BlockCycles> {
        let mut ranked: Vec<BlockCycles> = self
            .blocks
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let mut b = *b;
                #[allow(clippy::cast_possible_truncation)]
                let sub_cycles: u64 = self
                    .subs
                    .iter()
                    .filter(|((piece, _), _)| *piece == i as u32)
                    .map(|(_, s)| s.cycles)
                    .sum();
                b.cycles += sub_cycles;
                b
            })
            .filter(|b| b.slots > 0 || b.cycles > 0)
            .collect();
        ranked.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.start.cmp(&b.start)));
        ranked.truncate(n);
        ranked
    }

    /// Flamegraph-compatible folded stacks: one line per frame path with
    /// its attributed cycle count. Frames are `root;block_<start>_<len>`
    /// for block-own cycles and `root;block_<start>_<len>;<symbol>` for
    /// subroutine bursts, emitted in program order so the output is
    /// deterministic. Feed to `flamegraph.pl` / `inferno-flamegraph`.
    #[must_use]
    pub fn folded(&self, root: &str) -> String {
        let mut out = String::new();
        for (i, b) in self.blocks.iter().enumerate() {
            if b.slots > 0 {
                let _ = writeln!(out, "{root};block_{}_{} {}", b.start, b.len, b.cycles);
            }
            #[allow(clippy::cast_possible_truncation)]
            for ((_, symbol), s) in self.subs.range((i as u32, "")..(i as u32, "\u{10ffff}")) {
                let _ = writeln!(out, "{root};block_{}_{};{symbol} {}", b.start, b.len, s.cycles);
            }
        }
        out
    }

    /// Merge another attribution over the *same program* into this one
    /// (aggregating DPUs of a launch).
    ///
    /// # Panics
    /// If the two attributions were prepared on different partitions
    /// (merging unrelated programs would be meaningless). Merging an
    /// unprepared (empty) attribution in either direction is allowed.
    pub fn merge(&mut self, other: &CycleAttribution) {
        if other.pieces.is_empty() {
            return;
        }
        if self.pieces.is_empty() {
            *self = other.clone();
            return;
        }
        assert_eq!(self.pieces, other.pieces, "CycleAttribution merge across different programs");
        for (mine, theirs) in self.blocks.iter_mut().zip(&other.blocks) {
            mine.entries += theirs.entries;
            mine.slots += theirs.slots;
            mine.cycles += theirs.cycles;
        }
        for (k, s) in &other.subs {
            let mine = self.subs.entry(*k).or_default();
            mine.calls += s.calls;
            mine.slots += s.slots;
            mine.cycles += s.cycles;
        }
        self.total_cycles += other.total_cycles;
        self.runs += other.runs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_distinct() {
        let mut p = Profiler::new();
        p.record(Subroutine::Addsf3);
        p.record(Subroutine::Addsf3);
        p.record(Subroutine::Mulsi3);
        assert_eq!(p.occurrences(Subroutine::Addsf3), 2);
        assert_eq!(p.occurrences(Subroutine::Mulsi3), 1);
        assert_eq!(p.occurrences(Subroutine::Divsf3), 0);
        assert_eq!(p.distinct_subroutines(), 2);
        assert_eq!(p.total_calls(), 3);
        assert_eq!(p.float_calls(), 2);
    }

    #[test]
    fn distinct_float_subroutines_excludes_integer_ones() {
        let mut p = Profiler::new();
        p.record(Subroutine::Mulsi3);
        p.record(Subroutine::Divsi3);
        p.record(Subroutine::Ltsf2);
        assert_eq!(p.distinct_float_subroutines(), 1);
    }

    #[test]
    fn mulsi3_variants_share_a_symbol() {
        // Short and full paths are the same routine in a real profile.
        let mut p = Profiler::new();
        p.record(Subroutine::Mulsi3);
        p.record(Subroutine::Mulsi3Short);
        assert_eq!(p.occurrences(Subroutine::Mulsi3), 2);
        assert_eq!(p.distinct_subroutines(), 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Profiler::new();
        a.record(Subroutine::Addsf3);
        let mut b = Profiler::new();
        b.record(Subroutine::Addsf3);
        b.record(Subroutine::Divsf3);
        a.merge(&b);
        assert_eq!(a.occurrences(Subroutine::Addsf3), 2);
        assert_eq!(a.occurrences(Subroutine::Divsf3), 1);
        assert_eq!(a.total_calls(), 3);
    }

    #[test]
    fn display_renders_occ_table() {
        let mut p = Profiler::new();
        p.record(Subroutine::Divsf3);
        let s = p.to_string();
        assert!(s.contains("__divsf3"));
        assert!(s.contains("#occ"));
    }
}
