//! Software subroutines for operations the DPU lacks hardware for.
//!
//! The DPU is a 32-bit integer machine with no hardware for 32-bit
//! multiplication/division or any floating-point arithmetic. The UPMEM
//! compiler lowers those operations to compiler-rt style subroutines
//! (`__mulsi3`, `__addsf3`, `__divsf3`, …), whose cycle cost dominates
//! high-precision kernels (paper §3.3, Table 3.1, Fig. 3.2).
//!
//! In the simulator a subroutine executes *functionally* in one step but
//! occupies [`Subroutine::instruction_count`] issue slots in the pipeline —
//! exactly the timing footprint of a real software routine on a
//! single-instruction-in-flight core. The instruction counts below are
//! **calibrated against Table 3.1 of the paper**: with the Fig. 3.1
//! profiling harness (24 overhead slots, see [`crate::machine`] docs) and a
//! single tasklet issuing one instruction per 11-cycle pipeline rotation,
//! the measured totals land within ~1.5 % of the paper's numbers:
//!
//! | operation (O0, max operands)   | paper cycles | simulator |
//! |--------------------------------|--------------|-----------|
//! | 8/16/32-bit add, sub           | 272          | 275       |
//! | 8-bit multiply (hardware)      | 272          | 275       |
//! | 16-bit multiply (`__mulsi3`)   | 608          | 605       |
//! | 32-bit multiply (`__mulsi3`)   | 800          | 803       |
//! | fixed-point divide (`__divsi3`)| 368          | 374       |
//! | float add (`__addsf3`)         | 896          | 891       |
//! | float sub (`__subsf3`)         | 928          | 924       |
//! | float mul (`__mulsf3`)         | 2528         | 2530      |
//! | float div (`__divsf3`)         | 12064        | 12067     |

use serde::{Deserialize, Serialize};
use std::fmt;

/// A compiler-runtime subroutine invoked via [`crate::isa::Instr::CallSub`].
///
/// The names mirror the routines the paper observed in `dpu-profiling`
/// output (Fig. 3.2 and Fig. 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Subroutine {
    /// 32-bit integer multiplication (also used for 16-bit under `-O0`;
    /// early-exits when both operands fit in 16 bits).
    Mulsi3,
    /// 16-bit-operand path through `__mulsi3` (separate entry so the
    /// calibrated cost of Table 3.1's 16-bit row can be charged).
    Mulsi3Short,
    /// 64-bit integer multiplication.
    Muldi3,
    /// 32-bit signed integer division.
    Divsi3,
    /// 32-bit signed integer remainder.
    Modsi3,
    /// `f32` addition.
    Addsf3,
    /// `f32` subtraction.
    Subsf3,
    /// `f32` multiplication.
    Mulsf3,
    /// `f32` division.
    Divsf3,
    /// `f32` comparison (`<`); the paper's profile lists `__ltsf2`.
    Ltsf2,
    /// `f32` comparison (`>`).
    Gtsf2,
    /// `i32` → `f32` conversion (`__floatsisf`).
    Floatsisf,
    /// `f32` → `i32` conversion (`__fixsfsi`).
    Fixsfsi,
    /// `f64` addition (the paper's text lists `__adddf3`).
    Adddf3,
    /// `f64` subtraction.
    Subdf3,
    /// `f64` multiplication (`__muldf3`).
    Muldf3,
    /// `f64` division.
    Divdf3,
    /// `f64` comparison (`<`).
    Ltdf2,
    /// `i32` → `f64` conversion.
    Floatsidf,
    /// `f64` → `i32` conversion.
    Fixdfsi,
    /// `f64` → `f32` truncation.
    Truncdfsf2,
    /// `f32` → `f64` extension.
    Extendsfdf2,
}

impl Subroutine {
    /// All subroutine kinds, in a stable order (used by the profiler report).
    pub const ALL: [Subroutine; 22] = [
        Subroutine::Mulsi3,
        Subroutine::Mulsi3Short,
        Subroutine::Muldi3,
        Subroutine::Divsi3,
        Subroutine::Modsi3,
        Subroutine::Addsf3,
        Subroutine::Subsf3,
        Subroutine::Mulsf3,
        Subroutine::Divsf3,
        Subroutine::Ltsf2,
        Subroutine::Gtsf2,
        Subroutine::Floatsisf,
        Subroutine::Fixsfsi,
        Subroutine::Adddf3,
        Subroutine::Subdf3,
        Subroutine::Muldf3,
        Subroutine::Divdf3,
        Subroutine::Ltdf2,
        Subroutine::Floatsidf,
        Subroutine::Fixdfsi,
        Subroutine::Truncdfsf2,
        Subroutine::Extendsfdf2,
    ];

    /// The linker-level name of the routine as it appears in profiling
    /// output on real hardware.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            Subroutine::Mulsi3 | Subroutine::Mulsi3Short => "__mulsi3",
            Subroutine::Muldi3 => "__muldi3",
            Subroutine::Divsi3 => "__divsi3",
            Subroutine::Modsi3 => "__modsi3",
            Subroutine::Addsf3 => "__addsf3",
            Subroutine::Subsf3 => "__subsf3",
            Subroutine::Mulsf3 => "__mulsf3",
            Subroutine::Divsf3 => "__divsf3",
            Subroutine::Ltsf2 => "__ltsf2",
            Subroutine::Gtsf2 => "__gtsf2",
            Subroutine::Floatsisf => "__floatsisf",
            Subroutine::Fixsfsi => "__fixsfsi",
            Subroutine::Adddf3 => "__adddf3",
            Subroutine::Subdf3 => "__subdf3",
            Subroutine::Muldf3 => "__muldf3",
            Subroutine::Divdf3 => "__divdf3",
            Subroutine::Ltdf2 => "__ltdf2",
            Subroutine::Floatsidf => "__floatsidf",
            Subroutine::Fixdfsi => "__fixdfsi",
            Subroutine::Truncdfsf2 => "__truncdfsf2",
            Subroutine::Extendsfdf2 => "__extendsfdf2",
        }
    }

    /// True for the floating-point family (the routines the LUT
    /// transformation of paper §4.1.4 eliminates).
    #[must_use]
    pub fn is_float(self) -> bool {
        matches!(
            self,
            Subroutine::Addsf3
                | Subroutine::Subsf3
                | Subroutine::Mulsf3
                | Subroutine::Divsf3
                | Subroutine::Ltsf2
                | Subroutine::Gtsf2
                | Subroutine::Floatsisf
                | Subroutine::Fixsfsi
                | Subroutine::Adddf3
                | Subroutine::Subdf3
                | Subroutine::Muldf3
                | Subroutine::Divdf3
                | Subroutine::Ltdf2
                | Subroutine::Floatsidf
                | Subroutine::Fixdfsi
                | Subroutine::Truncdfsf2
                | Subroutine::Extendsfdf2
        )
    }

    /// Number of DPU instructions the routine executes (calibrated; see the
    /// module docs for the derivation from Table 3.1).
    #[must_use]
    pub fn instruction_count(self) -> u64 {
        match self {
            Subroutine::Mulsi3 => 49,
            Subroutine::Mulsi3Short => 31,
            Subroutine::Muldi3 => 96,
            Subroutine::Divsi3 => 10,
            Subroutine::Modsi3 => 12,
            Subroutine::Addsf3 => 57,
            Subroutine::Subsf3 => 60,
            Subroutine::Mulsf3 => 206,
            Subroutine::Divsf3 => 1073,
            Subroutine::Ltsf2 => 12,
            Subroutine::Gtsf2 => 12,
            Subroutine::Floatsisf => 21,
            Subroutine::Fixsfsi => 19,
            // f64 family: not present in Table 3.1; estimated at ~2x the
            // calibrated f32 routine (double-word mantissa arithmetic).
            Subroutine::Adddf3 => 118,
            Subroutine::Subdf3 => 124,
            Subroutine::Muldf3 => 430,
            Subroutine::Divdf3 => 2150,
            Subroutine::Ltdf2 => 24,
            Subroutine::Floatsidf => 42,
            Subroutine::Fixdfsi => 38,
            Subroutine::Truncdfsf2 => 16,
            Subroutine::Extendsfdf2 => 14,
        }
    }

    /// Functional evaluation of the routine over two register operands.
    ///
    /// Floating-point routines reinterpret the register bits as `f32`.
    /// Division routines return 0 on a zero divisor and let the interpreter
    /// surface [`crate::Error::DivisionByZero`]; callers of this method see
    /// the wrapped behaviour only.
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> u32 {
        let fa = f32::from_bits(a);
        let fb = f32::from_bits(b);
        match self {
            Subroutine::Mulsi3 | Subroutine::Mulsi3Short => a.wrapping_mul(b),
            Subroutine::Muldi3 => (a as u64).wrapping_mul(b as u64) as u32,
            Subroutine::Divsi3 => {
                let (ia, ib) = (a as i32, b as i32);
                if ib == 0 {
                    0
                } else {
                    ia.wrapping_div(ib) as u32
                }
            }
            Subroutine::Modsi3 => {
                let (ia, ib) = (a as i32, b as i32);
                if ib == 0 {
                    0
                } else {
                    ia.wrapping_rem(ib) as u32
                }
            }
            Subroutine::Addsf3 => (fa + fb).to_bits(),
            Subroutine::Subsf3 => (fa - fb).to_bits(),
            Subroutine::Mulsf3 => (fa * fb).to_bits(),
            Subroutine::Divsf3 => (fa / fb).to_bits(),
            Subroutine::Ltsf2 => u32::from(fa < fb),
            Subroutine::Gtsf2 => u32::from(fa > fb),
            Subroutine::Floatsisf => (a as i32 as f32).to_bits(),
            Subroutine::Fixsfsi => (fa as i32) as u32,
            // f64 routines are modelled on the f32 lane: the simulator's
            // registers are 32-bit and the paper only profiles their cost.
            Subroutine::Adddf3 => (fa + fb).to_bits(),
            Subroutine::Subdf3 => (fa - fb).to_bits(),
            Subroutine::Muldf3 => (fa * fb).to_bits(),
            Subroutine::Divdf3 => (fa / fb).to_bits(),
            Subroutine::Ltdf2 => u32::from(fa < fb),
            Subroutine::Floatsidf => (a as i32 as f32).to_bits(),
            Subroutine::Fixdfsi => (fa as i32) as u32,
            Subroutine::Truncdfsf2 => a,
            Subroutine::Extendsfdf2 => a,
        }
    }
}

impl fmt::Display for Subroutine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_routines_flagged() {
        assert!(Subroutine::Addsf3.is_float());
        assert!(Subroutine::Divsf3.is_float());
        assert!(Subroutine::Ltsf2.is_float());
        assert!(!Subroutine::Mulsi3.is_float());
        assert!(!Subroutine::Divsi3.is_float());
    }

    #[test]
    fn eval_integer_routines() {
        assert_eq!(Subroutine::Mulsi3.eval(7, 6), 42);
        assert_eq!(Subroutine::Mulsi3.eval(u32::MAX, 2), u32::MAX.wrapping_mul(2));
        assert_eq!(Subroutine::Divsi3.eval(42, 6), 7);
        assert_eq!(Subroutine::Divsi3.eval((-42i32) as u32, 6), (-7i32) as u32);
        assert_eq!(Subroutine::Modsi3.eval(43, 6), 1);
        assert_eq!(Subroutine::Divsi3.eval(1, 0), 0);
    }

    #[test]
    fn eval_float_routines() {
        let a = 1.5f32.to_bits();
        let b = 2.5f32.to_bits();
        assert_eq!(f32::from_bits(Subroutine::Addsf3.eval(a, b)), 4.0);
        assert_eq!(f32::from_bits(Subroutine::Mulsf3.eval(a, b)), 3.75);
        assert_eq!(f32::from_bits(Subroutine::Subsf3.eval(b, a)), 1.0);
        assert_eq!(Subroutine::Ltsf2.eval(a, b), 1);
        assert_eq!(Subroutine::Ltsf2.eval(b, a), 0);
        assert_eq!(f32::from_bits(Subroutine::Floatsisf.eval(3, 0)), 3.0);
        assert_eq!(Subroutine::Fixsfsi.eval(7.9f32.to_bits(), 0), 7);
    }

    #[test]
    fn costs_ordered_like_table_3_1() {
        // Table 3.1 ordering: fadd < fsub < fmul < fdiv, and
        // short multiply < full multiply.
        assert!(Subroutine::Addsf3.instruction_count() < Subroutine::Subsf3.instruction_count());
        assert!(Subroutine::Subsf3.instruction_count() < Subroutine::Mulsf3.instruction_count());
        assert!(Subroutine::Mulsf3.instruction_count() < Subroutine::Divsf3.instruction_count());
        assert!(
            Subroutine::Mulsi3Short.instruction_count() < Subroutine::Mulsi3.instruction_count()
        );
    }

    #[test]
    fn symbols_match_profiler_names() {
        assert_eq!(Subroutine::Mulsi3.symbol(), "__mulsi3");
        assert_eq!(Subroutine::Ltsf2.symbol(), "__ltsf2");
        assert_eq!(Subroutine::Floatsisf.symbol(), "__floatsisf");
    }
}
