//! The DPU performance counter (`perfcounter_config` / `perfcounter_get`).
//!
//! The paper's Fig. 3.1 harness brackets an operation between
//! `perfcounter_config()` and `perfcounter_get()` and reports the elapsed
//! cycles; Table 3.1 is produced this way. The simulator exposes the same
//! two primitives as instructions ([`crate::isa::Instr::PerfConfig`] and
//! [`crate::isa::Instr::PerfRead`]).

/// Per-DPU cycle counter armed by `perfcounter_config`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounter {
    /// Cycle at which the counter was last armed, if armed.
    armed_at: Option<u64>,
    /// Last value read by `perfcounter_get`.
    last_read: u64,
}

impl PerfCounter {
    /// A disarmed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm (or re-arm) the counter at the given cycle.
    pub fn config(&mut self, cycle: u64) {
        self.armed_at = Some(cycle);
    }

    /// Read elapsed cycles since arming (0 when never armed).
    pub fn read(&mut self, cycle: u64) -> u64 {
        let v = self.armed_at.map_or(0, |a| cycle.saturating_sub(a));
        self.last_read = v;
        v
    }

    /// The most recent value returned by [`PerfCounter::read`].
    #[must_use]
    pub fn last(&self) -> u64 {
        self.last_read
    }

    /// Whether the counter is currently armed.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.armed_at.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_elapsed_cycles() {
        let mut pc = PerfCounter::new();
        pc.config(100);
        assert_eq!(pc.read(372), 272);
        assert_eq!(pc.last(), 272);
    }

    #[test]
    fn unarmed_reads_zero() {
        let mut pc = PerfCounter::new();
        assert_eq!(pc.read(500), 0);
        assert!(!pc.is_armed());
    }

    #[test]
    fn rearming_resets_the_base() {
        let mut pc = PerfCounter::new();
        pc.config(0);
        pc.config(90);
        assert_eq!(pc.read(100), 10);
    }
}
