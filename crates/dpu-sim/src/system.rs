//! Topology of a full UPMEM PIM system: DPUs grouped into chips, ranks and
//! DIMMs (Fig. 2.1 / Table 2.1 of the paper).
//!
//! The evaluated server carries 20 DIMMs × 128 DPUs = 2560 DPUs. The
//! topology matters to the host runtime: broadcast transfers go to whole
//! DPU sets, and the paper's multi-DPU speedup (Fig. 4.7c) scales with the
//! number of allocated DPUs.

use crate::machine::Machine;
use crate::params::{self, DpuParams};
use serde::{Deserialize, Serialize};

/// Identifier of a DPU within a [`PimSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DpuId(pub u32);

impl DpuId {
    /// DIMM index holding this DPU.
    #[must_use]
    pub fn dimm(self) -> u32 {
        self.0 / params::DPUS_PER_DIMM as u32
    }

    /// Rank index within the system.
    #[must_use]
    pub fn rank(self) -> u32 {
        self.0 / (params::DPUS_PER_DIMM as u32 / params::RANKS_PER_DIMM as u32)
    }

    /// DRAM chip index within the system.
    #[must_use]
    pub fn chip(self) -> u32 {
        self.0 / params::DPUS_PER_CHIP as u32
    }
}

impl std::fmt::Display for DpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dpu{}", self.0)
    }
}

/// One rank of DPUs (the granularity UPMEM allocates at).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rank {
    /// Rank index.
    pub index: u32,
    /// First DPU in the rank.
    pub first_dpu: u32,
    /// Number of DPUs in the rank.
    pub dpus: u32,
}

/// A simulated multi-DPU system.
///
/// Instantiating all 2560 DPUs is cheap: MRAM is copy-on-write paged
/// ([`crate::CowMemory`]), so an untouched DPU costs a page table, not
/// 64 MiB, and broadcast images are stored once system-wide
/// ([`PimSystem::mram_residency`] reports the real footprint). The DPUs
/// are fully independent, which is exactly the property the paper's
/// linear multi-DPU scaling rests on.
#[derive(Debug)]
pub struct PimSystem {
    /// Device parameters shared by all DPUs.
    pub params: DpuParams,
    dpus: Vec<Machine>,
}

/// MRAM arena accounting across a whole system — see
/// [`PimSystem::mram_residency`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MramResidency {
    /// Addressable MRAM across all DPUs (`n × 64 MiB`): what dense
    /// storage would cost.
    pub logical_bytes: usize,
    /// Materialized pages summed per DPU (shared pages counted once per
    /// DPU referencing them).
    pub resident_pages: usize,
    /// Bytes behind `resident_pages`.
    pub resident_bytes: usize,
    /// Distinct page storages (shared pages counted once) — the actual
    /// heap footprint of the arena.
    pub distinct_pages: usize,
    /// Bytes behind `distinct_pages`.
    pub distinct_bytes: usize,
}

impl MramResidency {
    /// Bytes avoided by page sharing alone (broadcast images referenced
    /// by many DPUs but stored once).
    #[must_use]
    pub fn shared_savings_bytes(&self) -> usize {
        self.resident_bytes - self.distinct_bytes
    }
}

impl PimSystem {
    /// Allocate a system of `n` DPUs.
    #[must_use]
    pub fn new(n: usize, params: DpuParams) -> Self {
        let dpus = (0..n).map(|_| Machine::new(params)).collect();
        Self { params, dpus }
    }

    /// Number of simulated DPUs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dpus.len()
    }

    /// True when the system holds no DPUs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dpus.is_empty()
    }

    /// Borrow one DPU.
    ///
    /// # Panics
    /// When `id` is out of range.
    #[must_use]
    pub fn dpu(&self, id: DpuId) -> &Machine {
        &self.dpus[id.0 as usize]
    }

    /// Mutably borrow one DPU.
    ///
    /// # Panics
    /// When `id` is out of range.
    pub fn dpu_mut(&mut self, id: DpuId) -> &mut Machine {
        &mut self.dpus[id.0 as usize]
    }

    /// Iterate over all DPUs.
    pub fn iter(&self) -> impl Iterator<Item = (DpuId, &Machine)> {
        self.dpus.iter().enumerate().map(|(i, m)| (DpuId(i as u32), m))
    }

    /// Mutably iterate over all DPUs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (DpuId, &mut Machine)> {
        self.dpus.iter_mut().enumerate().map(|(i, m)| (DpuId(i as u32), m))
    }

    /// Rank table of the system.
    #[must_use]
    pub fn ranks(&self) -> Vec<Rank> {
        let per_rank = (params::DPUS_PER_DIMM / params::RANKS_PER_DIMM) as u32;
        let n = self.dpus.len() as u32;
        (0..n.div_ceil(per_rank))
            .map(|r| Rank {
                index: r,
                first_dpu: r * per_rank,
                dpus: per_rank.min(n - r * per_rank),
            })
            .collect()
    }

    /// Host-memory footprint of the system's MRAM arena.
    ///
    /// Walks every DPU's page table and deduplicates pages by storage
    /// identity, so a weight image broadcast to 2,560 DPUs counts once —
    /// the number that must stay bounded at rank scale.
    #[must_use]
    pub fn mram_residency(&self) -> MramResidency {
        let mut distinct = std::collections::HashSet::new();
        let mut resident_bytes = 0usize;
        let mut resident_pages = 0usize;
        let mut distinct_bytes = 0usize;
        for dpu in &self.dpus {
            for (id, len) in dpu.mram.page_ids() {
                resident_pages += 1;
                resident_bytes += len;
                if distinct.insert(id) {
                    distinct_bytes += len;
                }
            }
        }
        MramResidency {
            logical_bytes: self.dpus.len() * self.params.mram_bytes,
            resident_pages,
            resident_bytes,
            distinct_pages: distinct.len(),
            distinct_bytes,
        }
    }

    /// Aggregate power draw in watts (Table 2.1: 120 mW per DPU).
    #[must_use]
    pub fn power_watts(&self) -> f64 {
        self.dpus.len() as f64 * params::DPU_POWER_W
    }

    /// Aggregate DPU silicon area in mm².
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        self.dpus.len() as f64 * params::DPU_AREA_MM2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, Program, Reg};

    #[test]
    fn topology_indices() {
        let id = DpuId(300);
        assert_eq!(id.dimm(), 2); // 300 / 128
        assert_eq!(id.chip(), 37); // 300 / 8
        assert_eq!(id.rank(), 4); // 300 / 64
    }

    #[test]
    fn dpus_are_independent() {
        let mut sys = PimSystem::new(4, DpuParams::default());
        let p = Program::new(vec![
            Instr::Movi { rd: Reg(1), imm: 7 },
            Instr::Store { width: crate::isa::Width::W, ra: Reg(0), off: 0, rs: Reg(1) },
            Instr::Halt,
        ]);
        sys.dpu_mut(DpuId(2)).run(&p, 1).unwrap();
        assert_eq!(sys.dpu(DpuId(2)).wram.read_u32(0).unwrap(), 7);
        assert_eq!(sys.dpu(DpuId(0)).wram.read_u32(0).unwrap(), 0);
    }

    #[test]
    fn ranks_cover_all_dpus() {
        let sys = PimSystem::new(100, DpuParams::default());
        let ranks = sys.ranks();
        let total: u32 = ranks.iter().map(|r| r.dpus).sum();
        assert_eq!(total, 100);
        assert_eq!(ranks[0].first_dpu, 0);
        assert_eq!(ranks.last().unwrap().dpus, 100 - 64);
    }

    #[test]
    fn power_and_area_scale_linearly() {
        let sys = PimSystem::new(8, DpuParams::default());
        assert!((sys.power_watts() - 0.96).abs() < 1e-9); // one chip: 0.96 W
        assert!((sys.area_mm2() - 30.0).abs() < 1e-9); // Table 5.4's 30 mm²
    }
}
