//! The DPU interpreter: executes [`Program`]s over the simulated memories
//! with exact pipeline timing.
//!
//! All tasklets run the *same* program (the DPU's SIMT model, paper §3.1),
//! distinguished only by [`crate::isa::Instr::TaskletId`]. The interpreter
//! asks the [`Pipeline`] which tasklet issues next, executes one instruction
//! for it, and reports total cycles, instruction count, DMA statistics, a
//! subroutine profile and every performance-counter reading.
//!
//! ## The Fig. 3.1 microbenchmark harness
//!
//! [`crate::asm::profile_harness`] reproduces the paper's
//! cycle-per-operation methodology: a program arms the perfcounter, executes
//! `-O0`-style code for one operation (operand loads from stack slots, the
//! operation, a store), reads the counter and halts. The harness carries 24
//! overhead issue slots (perfcounter library calls, operand setup with
//! `movi` pairs for 32-bit maxima, stack traffic) so that with the
//! single-tasklet issue rate of one instruction per 11 cycles the measured
//! totals reproduce Table 3.1 within ~1.5 % (see [`crate::subroutines`]).

use crate::compile::{CompiledProgram, Link, Term};
use crate::error::{Error, Result};
use crate::exec::{self, ExecInstr, ExecProgram, Superblocks, OP_COUNT};
use crate::faults::{AttemptFaults, DmaFault, FaultKind};
use crate::isa::{Instr, Program, Reg, Width};
use crate::memory::{DmaEngine, Mram, Wram};
use crate::params::{DpuParams, REGS_PER_TASKLET};
use crate::perfcounter::PerfCounter;
use crate::pipeline::Pipeline;
use crate::profiler::{CycleAttribution, Profiler};
use pim_trace::{DmaDirection, NullSink, TraceEvent, TraceSink};

/// Default cycle budget for [`Machine::run`]; generous enough for every
/// kernel in the repository while still catching infinite loops.
pub const DEFAULT_CYCLE_BUDGET: u64 = 50_000_000_000;

/// Interpreter engine tiers, slowest first. Every tier produces
/// bit-identical observable results — cycles, histograms, traces, memory,
/// error sites — which the golden and proptest identity suites pin; the
/// selection only trades simplicity of the executing loop for speed.
///
/// Selection is explicit via [`Machine::run_exec_engine`] (and the
/// engine-aware `pim-host` launch APIs) or ambient via
/// [`Engine::effective`], which consults the `PIM_SIM_ENGINE` environment
/// variable and otherwise defaults to the compiled tier. Traced and
/// profiled runs always take the reference loop regardless of selection,
/// and armed fault injection deoptimizes the compiled tier onto the
/// superblock engine (see [`Machine::run_code`] internals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// The per-instruction reference loop: one pick, one budget check,
    /// one fetch-dispatch per issue slot — the semantic source of truth
    /// every observable figure is defined by.
    Reference,
    /// The superblock engine: memoized straight-line blocks and batched
    /// saturated rotations over the pre-decoded stream.
    Superblock,
    /// The compiled tier: hot superblocks as threaded-code closures
    /// chained by direct block ids (see [`crate::compile`]), deoptimizing
    /// onto the superblock engine at everything the compiled universe
    /// does not cover.
    #[default]
    Compiled,
}

impl Engine {
    /// Environment variable consulted by [`Engine::effective`]; valid
    /// values are the [`Engine::name`]s.
    pub const ENV_VAR: &'static str = "PIM_SIM_ENGINE";

    /// Parse an engine name as used by the env/config override.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "reference" => Some(Self::Reference),
            "superblock" => Some(Self::Superblock),
            "compiled" => Some(Self::Compiled),
            _ => None,
        }
    }

    /// The canonical name: `reference`, `superblock` or `compiled`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Reference => "reference",
            Self::Superblock => "superblock",
            Self::Compiled => "compiled",
        }
    }

    /// The ambient engine: `PIM_SIM_ENGINE` when set to a valid name, the
    /// default tier otherwise. Read fresh on every call — never cached —
    /// so the CI engine matrix and test harnesses can force a tier per
    /// process.
    #[must_use]
    pub fn effective() -> Self {
        std::env::var(Self::ENV_VAR).ok().and_then(|v| Self::from_name(&v)).unwrap_or_default()
    }
}

/// Statistics of one program run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunResult {
    /// Total elapsed cycles including final pipeline drain.
    pub cycles: u64,
    /// Instructions issued (subroutine bodies included).
    pub instructions: u64,
    /// Issue slots left idle (pipeline under-utilisation).
    pub idle_cycles: u64,
    /// Cycles spent in MRAM DMA transfers.
    pub dma_cycles: u64,
    /// Number of DMA transfers.
    pub dma_transfers: u64,
    /// Bytes moved over DMA.
    pub dma_bytes: u64,
    /// Every value read through `perfcounter_get`, in execution order.
    pub perf_reads: Vec<u64>,
    /// DPU log: `(tasklet, value)` pairs emitted by `trace`, in execution
    /// order (the host-side `dpu_log_read` view).
    pub trace: Vec<(usize, u32)>,
    /// Executed-instruction histogram by mnemonic class (subroutine bodies
    /// count as one `call` plus their issue slots in `instructions`).
    pub op_histogram: std::collections::BTreeMap<&'static str, u64>,
    /// Subroutine occurrence profile of the run.
    pub profile: Profiler,
    /// Instructions issued by each tasklet (index = tasklet id); the basis
    /// of the tasklet-occupancy metric.
    pub issue_per_tasklet: Vec<u64>,
}

impl RunResult {
    /// Wall-clock seconds at the device frequency in `params`.
    #[must_use]
    pub fn seconds(&self, params: &DpuParams) -> f64 {
        params.cycles_to_seconds(self.cycles)
    }
}

#[derive(Debug, Clone)]
struct Tasklet {
    pc: u32,
    regs: [u32; REGS_PER_TASKLET],
    /// Remaining pure-issue slots of an in-flight subroutine body.
    burst: u64,
}

impl Tasklet {
    fn new() -> Self {
        Self { pc: 0, regs: [0; REGS_PER_TASKLET], burst: 0 }
    }

    fn get(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    fn set(&mut self, r: Reg, v: u32) {
        if r.index() != 0 {
            self.regs[r.index()] = v;
        }
    }
}

/// One simulated DPU: memories, DMA engine and pipeline-accurate interpreter.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Device parameters in force.
    pub params: DpuParams,
    /// Working RAM (shared by all tasklets).
    pub wram: Wram,
    /// Main RAM (host-visible).
    pub mram: Mram,
    /// DMA engine between MRAM and WRAM.
    pub dma: DmaEngine,
    perf: PerfCounter,
    /// Faults armed for the next run attempt, if any (see [`crate::faults`]).
    faults: Option<AttemptFaults>,
    /// Integrity events observed by the machine (monotone; the host
    /// reads per-launch deltas).
    pub integrity: IntegrityCounters,
}

/// Integrity events the machine itself observed and handled.
///
/// Populated only when MRAM ECC is enabled (see
/// [`crate::CowMemory::set_ecc`]); zero otherwise.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityCounters {
    /// Single-bit corrections applied at the DMA read site: MRAM source
    /// words repaired via SEC-DED, plus landed WRAM destinations
    /// re-copied after an in-flight corruption.
    pub dma_corrected: u64,
}

/// Full architectural state of one DPU, captured by [`Machine::snapshot`].
///
/// MRAM is held as an O(pages) copy-on-write snapshot
/// ([`crate::MemorySnapshot`]); WRAM, the DMA statistics and the perf
/// counter are small and copied outright. Restoring one of these onto its
/// machine and re-running the same program reproduces the original run
/// bit-for-bit — the unit of deterministic replay.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    wram: Wram,
    mram: crate::MemorySnapshot,
    dma: DmaEngine,
    perf: PerfCounter,
}

impl MachineSnapshot {
    /// Materialized MRAM pages this snapshot pins (shared pages count
    /// here once per snapshot; system-wide deduplication is
    /// [`crate::PimSystem::mram_residency`]'s job).
    #[must_use]
    pub fn mram_resident_pages(&self) -> usize {
        self.mram.resident_pages()
    }
}

impl Default for Machine {
    fn default() -> Self {
        Self::new(DpuParams::default())
    }
}

impl Machine {
    /// A machine with the given device parameters.
    #[must_use]
    pub fn new(params: DpuParams) -> Self {
        Self {
            params,
            wram: Wram::new(params.wram_bytes),
            mram: Mram::new(params.mram_bytes),
            dma: DmaEngine::new(
                params.dma_setup_cycles,
                params.dma_bytes_per_cycle,
                crate::params::DMA_MAX_TRANSFER_BYTES,
            ),
            perf: PerfCounter::new(),
            faults: None,
            integrity: IntegrityCounters::default(),
        }
    }

    /// Arm a set of injected faults for the next run. The machine consults
    /// them at launch (offline / hang clamp) and at every DMA transfer;
    /// everything that fires is logged inside the armed [`AttemptFaults`].
    pub fn arm_faults(&mut self, faults: AttemptFaults) {
        self.faults = Some(faults);
    }

    /// Disarm fault injection, returning the armed state with its log of
    /// what fired (if anything was armed).
    pub fn disarm_faults(&mut self) -> Option<AttemptFaults> {
        self.faults.take()
    }

    /// Capture the machine's full architectural state. WRAM is copied
    /// (64 KiB dense); MRAM costs O(pages) thanks to copy-on-write
    /// ([`crate::CowMemory::snapshot`]); DMA statistics and the perf
    /// counter ride along so a restored machine replays bit-identically.
    ///
    /// Armed faults are *not* captured: they are per-attempt transients
    /// armed by the host around each run.
    #[must_use]
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            wram: self.wram.clone(),
            mram: self.mram.snapshot(),
            dma: self.dma,
            perf: self.perf,
        }
    }

    /// Restore the state captured by [`Machine::snapshot`]. Re-running the
    /// same program (and, for resilient launches, the same fault seed)
    /// from a restored snapshot reproduces results, cycle counts and
    /// traces exactly. Clears any armed faults.
    ///
    /// # Errors
    /// [`Error::OutOfBounds`] when the snapshot came from a machine with
    /// different memory capacities.
    pub fn restore(&mut self, snap: &MachineSnapshot) -> Result<()> {
        if snap.wram.len() != self.wram.len() {
            return Err(Error::OutOfBounds {
                kind: "WRAM",
                addr: 0,
                len: snap.wram.len(),
                size: self.wram.len(),
            });
        }
        self.mram.restore(&snap.mram)?;
        self.wram.clone_from(&snap.wram);
        self.dma = snap.dma;
        self.perf = snap.perf;
        self.faults = None;
        Ok(())
    }

    /// Run `program` on `tasklets` hardware threads until all halt.
    ///
    /// # Errors
    /// Any interpreter fault ([`Error::PcOutOfRange`], memory bounds,
    /// [`Error::CycleBudgetExceeded`] after [`DEFAULT_CYCLE_BUDGET`] cycles,
    /// …).
    pub fn run(&mut self, program: &Program, tasklets: usize) -> Result<RunResult> {
        self.run_with_budget(program, tasklets, DEFAULT_CYCLE_BUDGET)
    }

    /// Like [`Machine::run`] with an explicit cycle budget.
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_with_budget(
        &mut self,
        program: &Program,
        tasklets: usize,
        budget: u64,
    ) -> Result<RunResult> {
        self.run_traced_with_budget(program, tasklets, budget, &mut NullSink)
    }

    /// Like [`Machine::run`], recording cycle-stamped [`TraceEvent`]s into
    /// `sink` as the kernel executes.
    ///
    /// Tracing is purely observational: with any sink (including the
    /// recording ones) the returned cycle counts are bit-identical to an
    /// untraced run.
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_traced(
        &mut self,
        program: &Program,
        tasklets: usize,
        sink: &mut dyn TraceSink,
    ) -> Result<RunResult> {
        self.run_traced_with_budget(program, tasklets, DEFAULT_CYCLE_BUDGET, sink)
    }

    /// Like [`Machine::run_traced`] with an explicit cycle budget.
    ///
    /// Decodes `program` into its [`ExecProgram`] form on every call; hot
    /// launch-many callers should pre-decode once and use
    /// [`Machine::run_exec_traced_with_budget`] instead.
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_traced_with_budget(
        &mut self,
        program: &Program,
        tasklets: usize,
        budget: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<RunResult> {
        // Decode without validating: `Machine::run*` has always left branch
        // targets runtime-checked (`PcOutOfRange` only if executed).
        let code: Vec<ExecInstr> = program
            .instrs
            .iter()
            .map(|&instr| ExecInstr { instr, op: exec::op_id(&instr) })
            .collect();
        let sb = Superblocks::analyze(&code);
        let engine = Engine::effective();
        // Threaded code is only built when this run can actually enter it
        // (traced runs take the reference loop regardless).
        let compiled = (engine == Engine::Compiled && !sink.is_enabled())
            .then(|| CompiledProgram::compile_all(&code, &sb));
        self.run_code(&code, &sb, compiled.as_ref(), tasklets, budget, sink, engine, None)
    }

    /// Run a pre-decoded program on `tasklets` hardware threads until all
    /// halt. Semantically identical to [`Machine::run`] on
    /// [`ExecProgram::source`], without the per-launch decode.
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_exec(&mut self, exec: &ExecProgram, tasklets: usize) -> Result<RunResult> {
        self.run_exec_with_budget(exec, tasklets, DEFAULT_CYCLE_BUDGET)
    }

    /// Like [`Machine::run_exec`] with an explicit cycle budget.
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_exec_with_budget(
        &mut self,
        exec: &ExecProgram,
        tasklets: usize,
        budget: u64,
    ) -> Result<RunResult> {
        self.run_exec_engine_with_budget(exec, tasklets, budget, Engine::effective())
    }

    /// Like [`Machine::run_exec`] with an explicit engine tier instead of
    /// the ambient [`Engine::effective`] selection. All tiers are
    /// observationally identical; see [`Engine`].
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_exec_engine(
        &mut self,
        exec: &ExecProgram,
        tasklets: usize,
        engine: Engine,
    ) -> Result<RunResult> {
        self.run_exec_engine_with_budget(exec, tasklets, DEFAULT_CYCLE_BUDGET, engine)
    }

    /// Like [`Machine::run_exec_engine`] with an explicit cycle budget.
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_exec_engine_with_budget(
        &mut self,
        exec: &ExecProgram,
        tasklets: usize,
        budget: u64,
        engine: Engine,
    ) -> Result<RunResult> {
        self.run_code(
            exec.code(),
            exec.superblocks(),
            Some(exec.compiled()),
            tasklets,
            budget,
            &mut NullSink,
            engine,
            None,
        )
    }

    /// Like [`Machine::run_exec_with_budget`] but forcing the
    /// per-instruction reference loop, with superblock fast-forwarding and
    /// event-driven skipping disabled. Equivalent to
    /// [`Machine::run_exec_engine_with_budget`] with [`Engine::Reference`];
    /// kept for the existing equivalence tests and benchmarks.
    ///
    /// # Errors
    /// See [`Machine::run`].
    #[doc(hidden)]
    pub fn run_exec_reference_with_budget(
        &mut self,
        exec: &ExecProgram,
        tasklets: usize,
        budget: u64,
    ) -> Result<RunResult> {
        self.run_exec_engine_with_budget(exec, tasklets, budget, Engine::Reference)
    }

    /// Like [`Machine::run_exec`], additionally attributing every elapsed
    /// cycle to its superblock-partition piece (and, for burst slots, the
    /// in-flight subroutine) in `attr`.
    ///
    /// Profiling is pay-for-what-you-use: it is purely observational — the
    /// returned [`RunResult`] (cycles, instructions, histograms, traces)
    /// is bit-identical to an unprofiled run, which the identity tests
    /// pin — and unprofiled runs share none of its bookkeeping. Profiled
    /// runs take the per-instruction reference loop, so they trade the
    /// superblock engine's speed for attribution.
    ///
    /// `attr` may accumulate multiple runs of the same program (it is
    /// prepared on first use and re-used across launches).
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_exec_profiled(
        &mut self,
        exec: &ExecProgram,
        tasklets: usize,
        attr: &mut CycleAttribution,
    ) -> Result<RunResult> {
        self.run_exec_profiled_with_budget(exec, tasklets, DEFAULT_CYCLE_BUDGET, attr)
    }

    /// Like [`Machine::run_exec_profiled`] with an explicit cycle budget.
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_exec_profiled_with_budget(
        &mut self,
        exec: &ExecProgram,
        tasklets: usize,
        budget: u64,
        attr: &mut CycleAttribution,
    ) -> Result<RunResult> {
        self.run_code(
            exec.code(),
            exec.superblocks(),
            None,
            tasklets,
            budget,
            &mut NullSink,
            Engine::Reference,
            Some(attr),
        )
    }

    /// Like [`Machine::run_exec`], recording cycle-stamped [`TraceEvent`]s
    /// into `sink` as the kernel executes.
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_exec_traced(
        &mut self,
        exec: &ExecProgram,
        tasklets: usize,
        sink: &mut dyn TraceSink,
    ) -> Result<RunResult> {
        self.run_exec_traced_with_budget(exec, tasklets, DEFAULT_CYCLE_BUDGET, sink)
    }

    /// Like [`Machine::run_exec_traced`] with an explicit cycle budget.
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_exec_traced_with_budget(
        &mut self,
        exec: &ExecProgram,
        tasklets: usize,
        budget: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<RunResult> {
        self.run_exec_traced_engine_with_budget(exec, tasklets, budget, sink, Engine::effective())
    }

    /// Like [`Machine::run_exec_traced_with_budget`] with an explicit
    /// engine tier. An enabled sink forces the reference loop regardless
    /// of `engine` (trace emission needs per-slot dispatch), so the tier
    /// only affects untraced launches sharing this entry point.
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_exec_traced_engine_with_budget(
        &mut self,
        exec: &ExecProgram,
        tasklets: usize,
        budget: u64,
        sink: &mut dyn TraceSink,
        engine: Engine,
    ) -> Result<RunResult> {
        self.run_code(
            exec.code(),
            exec.superblocks(),
            Some(exec.compiled()),
            tasklets,
            budget,
            sink,
            engine,
            None,
        )
    }

    /// The interpreter core over a decoded instruction stream.
    ///
    /// Sets up an [`Interp`] and runs the selected [`Engine`] over it:
    ///
    /// * the **reference loop** ([`Interp::run_reference`]) — one
    ///   `Pipeline::pick` per issue slot, exactly the semantics every
    ///   observable figure is defined by. Traced and profiled runs always
    ///   take it regardless of `engine`, so the existing
    ///   traced-vs-untraced equality tests double as fast-vs-reference
    ///   identity checks;
    /// * the **superblock engine** ([`Interp::run_fast`] with no compiled
    ///   program) — fast-forwards whole straight-line blocks and
    ///   saturated round-robin rotations in one dispatch, observationally
    ///   invisible by construction (see the per-method proofs and
    ///   `docs/PERFORMANCE.md`);
    /// * the **compiled tier** (the same loop with `compiled` wired in) —
    ///   additionally executes threaded-code block chains
    ///   ([`Interp::run_compiled`]) inside the batched modes, deopting
    ///   onto the superblock paths everywhere else. Armed fault injection
    ///   downgrades this tier to the superblock engine so injected-fault
    ///   runs stay on the thoroughly-pinned paths.
    #[allow(clippy::too_many_arguments)]
    fn run_code(
        &mut self,
        code: &[ExecInstr],
        sb: &Superblocks,
        compiled: Option<&CompiledProgram>,
        tasklets: usize,
        budget: u64,
        sink: &mut dyn TraceSink,
        engine: Engine,
        profile: Option<&mut CycleAttribution>,
    ) -> Result<RunResult> {
        if tasklets == 0 || tasklets > self.params.max_tasklets {
            return Err(Error::BadTaskletCount {
                requested: tasklets,
                max: self.params.max_tasklets,
            });
        }
        let iram_bytes = code.len() * crate::isa::INSTR_BYTES;
        if iram_bytes > self.params.iram_bytes {
            return Err(Error::ProgramTooLarge {
                bytes: iram_bytes,
                iram_bytes: self.params.iram_bytes,
            });
        }

        // A launch resets the perf counter: state armed by a previous run
        // on this machine — including one that faulted or whose host
        // worker panicked mid-kernel — must not leak into this run's
        // `perfcounter_get` reads.
        self.perf = PerfCounter::new();

        let mut budget = budget;
        if let Some(f) = self.faults.as_mut() {
            if f.offline() {
                f.log(FaultKind::DpuOffline, 0);
                return Err(Error::DpuOffline);
            }
            if let Some(hang) = f.hang_after() {
                // An injected hang is a run that never halts; the clamped
                // budget is the watchdog cutting it off.
                budget = budget.min(hang);
            }
        }

        // Armed faults deoptimize the compiled tier onto the superblock
        // engine: injection is rare and every injection site (DMA, hang
        // clamp) lives on boundary instructions, so keeping armed runs off
        // the threaded code costs nothing while keeping fault logs and
        // error sites on the longest-pinned paths. An empty compilation
        // (nothing hot, or everything filtered) downgrades too — every
        // dispatch would probe and deopt, so skipping the probes makes the
        // uncompilable case exactly the superblock engine.
        let engine = if engine == Engine::Compiled
            && (self.faults.is_some() || compiled.is_none_or(CompiledProgram::is_empty))
        {
            Engine::Superblock
        } else {
            engine
        };

        let pipeline = Pipeline::with_stages(tasklets, u64::from(self.params.pipeline_stages));
        let live = if code.is_empty() { 0 } else { tasklets };
        let dma_cycles_before = self.dma.total_cycles;
        let dma_transfers_before = self.dma.transfers;
        let dma_bytes_before = self.dma.total_bytes;

        let mut interp = Interp {
            pipeline,
            threads: (0..tasklets).map(|_| Tasklet::new()).collect(),
            dma_stream_free: 0,
            single: tasklets == 1,
            runnable: vec![!code.is_empty(); tasklets],
            live,
            runnable_count: live,
            parked: 0,
            at_barrier: vec![false; tasklets],
            op_counts: [0; OP_COUNT],
            mutex_owner: vec![None; MUTEX_IDS],
            mutex_waiters: vec![std::collections::VecDeque::new(); MUTEX_IDS],
            result: RunResult::default(),
            order_scratch: Vec::new(),
            active: if code.is_empty() { Vec::new() } else { (0..tasklets).collect() },
            sched_changed: false,
            code,
            sb,
            compiled: if engine == Engine::Compiled { compiled } else { None },
            budget,
            machine: self,
            sink,
        };
        if interp.sink.is_enabled() {
            interp.sink.record(TraceEvent::KernelLaunch { tasklets: tasklets as u8, cycle: 0 });
        }

        // Traced and profiled runs take the reference path:
        // per-instruction stepping trivially emits identical events and
        // per-slot attribution, and the traced-vs-untraced identity tests
        // then pin the fast engine against the reference.
        let outcome = if let Some(attr) = profile {
            attr.prepare(sb, tasklets);
            interp.run_reference_profiled(attr)
        } else if engine == Engine::Reference || interp.sink.is_enabled() {
            interp.run_reference()
        } else {
            interp.run_fast()
        };
        if let Err(e) = outcome {
            if let Error::CycleBudgetExceeded { budget: hit } = e {
                if let Some(f) = interp.machine.faults.as_mut() {
                    if f.hang_after() == Some(hit) {
                        f.log(FaultKind::TaskletHang { budget: hit }, hit);
                    }
                }
            }
            return Err(e);
        }

        let mut result = interp.result;
        result.op_histogram = exec::fold_histogram(&interp.op_counts);
        result.cycles = interp.pipeline.elapsed();
        result.instructions = interp.pipeline.issued();
        result.idle_cycles = interp.pipeline.idle_cycles();
        result.issue_per_tasklet = interp.pipeline.issued_per_tasklet().to_vec();
        result.dma_cycles = self.dma.total_cycles - dma_cycles_before;
        result.dma_transfers = self.dma.transfers - dma_transfers_before;
        result.dma_bytes = self.dma.total_bytes - dma_bytes_before;
        if sink.is_enabled() {
            sink.record(TraceEvent::KernelComplete {
                cycle: result.cycles,
                instructions: result.instructions,
            });
        }
        Ok(result)
    }
}

/// In-flight state of one kernel run.
///
/// Scheduling state is tracked incrementally — `live` (non-halted),
/// `parked` (at a barrier) and `runnable_count` are counters updated at
/// state transitions rather than flag vectors rescanned every issue slot —
/// and the op histogram is a fixed-size array indexed by opcode id, folded
/// into the public `BTreeMap` once at run end. With a single tasklet the
/// mutex/barrier machinery is bypassed entirely: a barrier releases
/// immediately and a lock can never block, so neither needs bookkeeping.
struct Interp<'a> {
    machine: &'a mut Machine,
    sink: &'a mut dyn TraceSink,
    code: &'a [ExecInstr],
    sb: &'a Superblocks,
    /// Threaded-code tier for this run; `None` on reference/superblock
    /// runs and under armed fault injection (see [`Machine::run_code`]).
    compiled: Option<&'a CompiledProgram>,
    budget: u64,
    pipeline: Pipeline,
    threads: Vec<Tasklet>,
    /// First cycle at which the DMA engine's shared streaming port
    /// (2 bytes/cycle) is free: concurrent transfers from different
    /// tasklets serialize their data movement, while the fixed setup
    /// latency overlaps.
    dma_stream_free: u64,
    single: bool,
    runnable: Vec<bool>,
    /// Non-halted tasklets. Every live, non-runnable tasklet is either
    /// parked at a barrier or blocked on a mutex, so `live - parked` is
    /// the mutex-blocked population.
    live: usize,
    runnable_count: usize,
    /// Tasklets waiting at a barrier. Parked tasklets are temporarily not
    /// runnable; when every live tasklet is parked, all release. Tasklets
    /// blocked on a mutex count as live, so a barrier cannot release past
    /// them (matching hardware semantics — and making a mutex held across
    /// a barrier a detectable deadlock).
    parked: usize,
    at_barrier: Vec<bool>,
    op_counts: [u64; OP_COUNT],
    /// Hardware mutexes: owner per id plus FIFO wait queues, flat arrays
    /// indexed by the 8-bit mutex id — lock/unlock sit on the scheduler
    /// hot path, where hashing would dominate the critical section.
    mutex_owner: Vec<Option<usize>>,
    mutex_waiters: Vec<std::collections::VecDeque<usize>>,
    result: RunResult,
    /// Reused allocation for the rotation fast-path probe order.
    order_scratch: Vec<usize>,
    /// Ascending list of exactly the runnable tasklet indices, maintained
    /// incrementally at every transition so `Pipeline::pick_from` probes
    /// only live candidates instead of scanning every tasklet's flag.
    active: Vec<usize>,
    /// Set whenever the runnable set changes (halt, barrier park/release,
    /// mutex block/wake); cleared at the top of the fast engine's mode
    /// loop so the per-slot path knows when to re-evaluate its mode.
    sched_changed: bool,
}

/// Issue-slot classification used by the batched fast paths.
enum SlotKind {
    /// An inline (schedule-neutral) instruction was dispatched; its pick
    /// is accounted to the current batch.
    Advanced,
    /// The instruction needs scheduler or timing machinery (it can change
    /// the runnable set, stall, burst, or read the clock); nothing was
    /// executed and no pick was consumed.
    Boundary,
}

/// Number of addressable hardware mutexes (the id is a byte).
const MUTEX_IDS: usize = 256;

/// Opcode classes the batched fast paths may dispatch with a *deferred*
/// pipeline update: ops that always occupy exactly one issue slot and
/// cannot change the runnable set, stall, start a burst, or observe the
/// clock. Indexed by [`exec::op_id`]; kept in sync with the dispatch in
/// [`Interp::dispatch_slot_inline`] (enforced by a unit test).
const INLINE_OP: [bool; OP_COUNT] = [
    true,  // nop
    false, // halt — ends the tasklet, changes the runnable set
    true,  // movi
    true,  // mov
    true,  // add (+ addi)
    true,  // sub
    true,  // and
    true,  // or
    true,  // xor
    true,  // lsl (+ lsli)
    true,  // lsr (+ lsri)
    true,  // asr (+ asri)
    true,  // mul8
    true,  // popcount
    true,  // load — may fault, but faults flush the batch first
    true,  // store
    false, // mram.read — stalls the tasklet on the DMA engine
    false, // mram.write
    true,  // branch — control flow is data, not scheduling
    true,  // jump (+ jal, jr)
    false, // call — starts a subroutine burst
    false, // perf — reads the pipeline clock at its own issue slot
    true,  // me (tasklet id)
    true,  // trace
    false, // barrier — parks the tasklet
    false, // mutex — may block or wake tasklets
];

impl Interp<'_> {
    /// Release a full barrier when every live tasklet is parked. (A lone
    /// tasklet never parks — its barriers release at the issue slot.)
    fn release_full_barrier(&mut self) {
        for (r, b) in self.runnable.iter_mut().zip(self.at_barrier.iter_mut()) {
            if *b {
                *b = false;
                *r = true;
            }
        }
        self.runnable_count += self.parked;
        self.parked = 0;
        self.active.clear();
        self.active.extend((0..self.runnable.len()).filter(|&t| self.runnable[t]));
        self.sched_changed = true;
    }

    /// Remove tasklet `t` from the compact runnable list (it halted,
    /// parked, or blocked).
    fn active_remove(&mut self, t: usize) {
        if let Ok(i) = self.active.binary_search(&t) {
            self.active.remove(i);
        }
        self.sched_changed = true;
    }

    /// Insert tasklet `t` into the compact runnable list (it woke).
    fn active_insert(&mut self, t: usize) {
        if let Err(i) = self.active.binary_search(&t) {
            self.active.insert(i, t);
        }
        self.sched_changed = true;
    }

    /// The per-instruction reference loop: one `Pipeline::pick`, one
    /// budget check, one fetch-dispatch per issue slot. Every observable
    /// figure (cycles, traces, histograms, Deadlock accounting) is defined
    /// by this loop; [`Interp::run_fast`] must match it bit-for-bit.
    fn run_reference(&mut self) -> Result<()> {
        loop {
            if !self.single && self.parked > 0 && self.parked == self.live {
                self.release_full_barrier();
            }
            if self.runnable_count == 0 {
                if self.live == 0 {
                    return Ok(()); // clean completion
                }
                return Err(Error::Deadlock {
                    at_barrier: self.parked,
                    on_mutex: self.live - self.parked,
                });
            }
            let Some(t) = self.pipeline.pick(&self.runnable) else { return Ok(()) };
            if self.pipeline.elapsed() > self.budget {
                return Err(Error::CycleBudgetExceeded { budget: self.budget });
            }
            let th = &mut self.threads[t];
            if th.burst > 0 {
                th.burst -= 1;
                continue;
            }
            self.step(t)?;
        }
    }

    /// [`Interp::run_reference`] with per-slot cycle attribution.
    ///
    /// Identical control flow — one `pick`, one budget check, one
    /// fetch-dispatch per issue slot — plus, per slot, the makespan delta
    /// it advanced the pipeline by (`elapsed` is monotone across picks,
    /// so the deltas telescope exactly to the final cycle count). The
    /// delta lands on the issued instruction's partition piece, or on the
    /// in-flight subroutine for burst slots; idle and stall gaps are
    /// charged to the instruction that waited behind them. Attribution
    /// only *observes* the run: results stay bit-identical to
    /// [`Interp::run_reference`].
    fn run_reference_profiled(&mut self, attr: &mut CycleAttribution) -> Result<()> {
        // Hoist the per-slot call-site probe out of the loop: one table
        // lookup per slot instead of loading and matching the decoded
        // instruction (which `step` will load again anyway).
        let callsub: Vec<Option<&'static str>> = self
            .code
            .iter()
            .map(|c| match c.instr {
                Instr::CallSub { sub, .. } => Some(sub.symbol()),
                _ => None,
            })
            .collect();
        let mut last = self.pipeline.elapsed();
        loop {
            if !self.single && self.parked > 0 && self.parked == self.live {
                self.release_full_barrier();
            }
            if self.runnable_count == 0 {
                if self.live == 0 {
                    return Ok(());
                }
                return Err(Error::Deadlock {
                    at_barrier: self.parked,
                    on_mutex: self.live - self.parked,
                });
            }
            let Some(t) = self.pipeline.pick(&self.runnable) else { return Ok(()) };
            let now = self.pipeline.elapsed();
            if now > self.budget {
                return Err(Error::CycleBudgetExceeded { budget: self.budget });
            }
            let delta = now - last;
            last = now;
            let th = &mut self.threads[t];
            if th.burst > 0 {
                th.burst -= 1;
                attr.record_burst(t, delta);
                continue;
            }
            let pc = th.pc as usize;
            // An out-of-range pc is about to fault in `step`; leave its
            // slot unattributed rather than index past the partition.
            if pc < self.code.len() {
                attr.record_slot(t, pc, delta);
                if let Some(symbol) = callsub[pc] {
                    attr.begin_burst(t, pc, symbol);
                }
            }
            self.step(t)?;
        }
    }

    /// The superblock engine. Same observable semantics as
    /// [`Interp::run_reference`], reached through three accelerated paths:
    ///
    /// * **sole mode** — exactly one runnable tasklet (the other tasklets
    ///   halted, parked, or blocked; DMA-stalled tasklets stay runnable,
    ///   so one runnable truly means one issuer): inline instructions and
    ///   memoized superblocks dispatch in a batch whose picks flush as one
    ///   `fast_forward_sole`, and the `pick` probe is skipped entirely;
    /// * **rotation mode** — at issue saturation (every runnable tasklet
    ///   ready at its round-robin slot, at least `stages` of them), the
    ///   dispatcher provably issues them cyclically with zero idle, so
    ///   inline instructions and burst slots dispatch in a batch whose
    ///   picks flush as one `advance_rotation`;
    /// * otherwise one reference-identical slot executes via
    ///   `pick_from` over the compact runnable list, and the loop
    ///   re-evaluates.
    ///
    /// Event-driven cycle skipping needs no extra code here:
    /// `Pipeline::pick` commits the minimum ready cycle directly, so the
    /// clock already jumps over windows where every runnable tasklet is
    /// DMA-stalled; the fast paths above remove the *per-instruction
    /// re-picking* that remained.
    ///
    /// With a compiled program wired in (the [`Engine::Compiled`] tier)
    /// the sole and rotation batch loops additionally dispatch whole
    /// threaded-code chains via [`Interp::run_compiled`]; everything the
    /// chains exit on deoptimizes to the superblock paths below, so this
    /// loop *is* the deopt fallback.
    fn run_fast(&mut self) -> Result<()> {
        loop {
            if !self.single && self.parked > 0 && self.parked == self.live {
                self.release_full_barrier();
            }
            if self.runnable_count == 0 {
                if self.live == 0 {
                    return Ok(());
                }
                return Err(Error::Deadlock {
                    at_barrier: self.parked,
                    on_mutex: self.live - self.parked,
                });
            }
            self.sched_changed = false;
            if self.runnable_count == 1 {
                let t = self.active[0];
                self.run_sole(t)?;
                continue;
            }
            let stages = self.pipeline.stages();
            if self.runnable_count as u64 >= stages && self.try_rotation()? {
                continue;
            }
            // Fall back to reference-identical slots. The scheduling
            // predicates above (barrier release, deadlock, mode choice)
            // are functions of the runnable set alone, so slots repeat
            // without re-evaluating them until a dispatch changes it —
            // except at saturation, where a rotation retry may pay off as
            // soon as a boundary instruction has been stepped over.
            loop {
                let Some(t) = self.pipeline.pick_from(&self.active) else { return Ok(()) };
                if self.pipeline.elapsed() > self.budget {
                    return Err(Error::CycleBudgetExceeded { budget: self.budget });
                }
                let th = &mut self.threads[t];
                if th.burst > 0 {
                    th.burst -= 1;
                    continue;
                }
                self.step(t)?;
                if self.sched_changed || self.runnable_count as u64 >= stages {
                    break;
                }
            }
        }
    }

    /// Sole-runnable mode: tasklet `t` is the only one the dispatcher can
    /// pick, so every issue lands exactly `stages` after the previous one
    /// and the pipeline update for a run of inline instructions is a
    /// closed form. The batch loop dispatches inline instructions (whole
    /// memoized superblocks at a time where possible) with the pipeline
    /// untouched, then flushes the accumulated `k` picks as one
    /// `fast_forward_sole`; boundary instructions flush first and take a
    /// reference-identical slot. Inline ops cannot change the runnable
    /// set, so the mode only needs re-checking after a boundary dispatch.
    ///
    /// Budget semantics match the reference exactly: after `k` issues the
    /// reference's post-pick check sees `elapsed = first + k*stages`, so
    /// the batch is capped so `first + k*stages` never leaves the budget,
    /// and once fewer than `stages` cycles of headroom remain the
    /// overrunning pick is issued singly so the error surfaces with
    /// identical partial state.
    fn run_sole(&mut self, t: usize) -> Result<()> {
        while self.runnable_count == 1 && self.runnable[t] {
            let stages = self.pipeline.stages();
            let first = self.pipeline.next_issue_at(t);
            let burst = self.threads[t].burst;
            if burst > 0 {
                if first.saturating_add(burst * stages) <= self.budget {
                    self.pipeline.fast_forward_sole(t, burst);
                    self.threads[t].burst = 0;
                } else {
                    self.pipeline.pick_sole(t);
                    if self.pipeline.elapsed() > self.budget {
                        return Err(Error::CycleBudgetExceeded { budget: self.budget });
                    }
                    self.threads[t].burst -= 1;
                }
                continue;
            }
            let headroom = self.budget.saturating_sub(first);
            if headroom < stages {
                // The next pick overruns the budget no matter what the
                // instruction is; issue it singly and surface the error.
                self.pipeline.pick_sole(t);
                return Err(Error::CycleBudgetExceeded { budget: self.budget });
            }
            // Largest batch whose final pick keeps `first + k*stages`
            // inside the budget. Far from the budget the division is
            // replaced by a safe underestimate (the batch just flushes
            // and re-enters); the exact quotient only matters close to
            // exhaustion.
            let k_cap = if headroom >= (1 << 32) && stages <= 64 {
                headroom >> 6
            } else {
                headroom / stages
            };
            let mut k: u64 = 0;
            loop {
                if k >= k_cap {
                    if k > 0 {
                        self.pipeline.fast_forward_sole(t, k);
                    }
                    break;
                }
                let pc = self.threads[t].pc as usize;
                // Threaded-code chains run first: whole block sequences
                // per dispatch, deopting back here (ran == 0 falls
                // through with pc unchanged, so progress is guaranteed by
                // the per-op paths below).
                if let Some(bid) = self.compiled.and_then(|cp| cp.block_id_at(pc)) {
                    let ran = self.run_compiled(t, bid, k_cap - k, 1, false);
                    if ran > 0 {
                        k += ran;
                        continue;
                    }
                }
                let len = u64::from(self.sb.len_at(pc));
                if len >= 2 && k + len <= k_cap {
                    self.apply_block(t, pc, len as usize);
                    k += len;
                    continue;
                }
                match self.dispatch_slot_inline(t) {
                    Ok(SlotKind::Advanced) => k += 1,
                    Ok(SlotKind::Boundary) => {
                        if k > 0 {
                            self.pipeline.fast_forward_sole(t, k);
                        }
                        self.pipeline.pick_sole(t);
                        if self.pipeline.elapsed() > self.budget {
                            return Err(Error::CycleBudgetExceeded { budget: self.budget });
                        }
                        self.step(t)?;
                        break;
                    }
                    Err(e) => {
                        // The faulting instruction consumed its pick before
                        // the dispatch failed, exactly as in the reference.
                        self.pipeline.fast_forward_sole(t, k + 1);
                        return Err(e);
                    }
                }
            }
        }
        Ok(())
    }

    /// Attempt a batched rotation at issue saturation. Returns true if
    /// time advanced.
    ///
    /// Entry preconditions, matching `Pipeline::advance_rotation`: at
    /// least `stages` runnable tasklets, each ready at its round-robin
    /// issue slot. Under those the dispatcher provably issues them
    /// cyclically with zero idle slots for as long as every dispatched
    /// instruction is inline (or a burst slot, which consumes a pick
    /// without a fetch), so the batch loop runs with the pipeline frozen
    /// and flushes the accumulated `m` slots as one `advance_rotation`.
    /// The first boundary instruction ends the batch *before* its slot;
    /// re-entry then fails fast at that tasklet and the outer loop takes
    /// one reference-identical slot for it. Mid-rotation exits are safe:
    /// the flushed ready times still satisfy the entry precondition for
    /// the rotated order on the next attempt.
    fn try_rotation(&mut self) -> Result<bool> {
        let stages = self.pipeline.stages();
        let base = self.pipeline.current_cycle();
        // Slot m (0-based) issues at base + m with elapsed
        // base + m + stages; the budget allows m_allowed slots.
        let m_allowed = self.budget.saturating_sub(base.saturating_add(stages - 1));
        if m_allowed == 0 {
            return Ok(false);
        }
        let cursor = self.pipeline.rr_cursor();
        let mut order = std::mem::take(&mut self.order_scratch);
        order.clear();
        let split = self.active.partition_point(|&t| t < cursor);
        order.extend_from_slice(&self.active[split..]);
        order.extend_from_slice(&self.active[..split]);
        let mut saturated = true;
        for (p, &t) in order.iter().enumerate() {
            if self.pipeline.next_ready_of(t) > base + p as u64 {
                saturated = false;
                break;
            }
        }
        if !saturated {
            self.order_scratch = order;
            return Ok(false);
        }
        let r = order.len();
        let mut m: u64 = 0;
        let mut pos: usize = 0;
        // Lockstep chain replication is probed until the first divergent
        // register file: the compare is per-register and would tax every
        // round of a divergent SIMT batch, while reconvergent workloads
        // get re-probed on the next batch entry.
        let mut try_replicate = true;
        let outcome = loop {
            if m >= m_allowed {
                break Ok(());
            }
            // At a round boundary with every tasklet in lockstep (same pc,
            // no bursts) — the common SIMT shape — whole rounds dispatch
            // from a single fetch: a memoized superblock replays for each
            // tasklet in one go, and any other schedule-neutral
            // instruction executes once per tasklet without per-slot
            // fetch/classify overhead. Reordering slots within the bulk
            // block (all instructions per tasklet vs. all tasklets per
            // instruction) is unobservable because superblock effects are
            // tasklet-private and the histogram commutes.
            if pos == 0 {
                let pc0 = self.threads[order[0]].pc;
                if order.iter().all(|&t| self.threads[t].pc == pc0 && self.threads[t].burst == 0) {
                    // Threaded-code chains with full register lockstep —
                    // the SIMT common case — execute ONCE on the lead
                    // tasklet and replicate the end state to the rest.
                    // Sound because compiled bodies are deterministic
                    // functions of the private register file alone
                    // (tasklet-sensitive blocks stop the chain), so
                    // identical inputs give identical per-tasklet traces,
                    // and reordering slots within the flushed bulk is
                    // unobservable for the same reason `apply_block_all`
                    // may reorder: effects are tasklet-private and the
                    // histogram commutes. The chain is capped at whole
                    // rounds, so `pos` stays at the round boundary.
                    if try_replicate {
                        if let Some(bid) = self.compiled.and_then(|cp| cp.block_id_at(pc0 as usize))
                        {
                            let cap = (m_allowed - m) / r as u64;
                            if cap > 0 {
                                if self.regs_identical(&order) {
                                    let lead = order[0];
                                    let ran = self.run_compiled(lead, bid, cap, r as u64, true);
                                    if ran > 0 {
                                        let pc_after = self.threads[lead].pc;
                                        let regs_after = self.threads[lead].regs;
                                        for &t in &order[1..] {
                                            let th = &mut self.threads[t];
                                            th.regs = regs_after;
                                            th.pc = pc_after;
                                        }
                                        m += ran * r as u64;
                                        continue;
                                    }
                                } else {
                                    try_replicate = false;
                                }
                            }
                        }
                    }
                    let len = u64::from(self.sb.len_at(pc0 as usize));
                    if len >= 2 && m + len * r as u64 <= m_allowed {
                        self.apply_block_all(&order, pc0 as usize, len as usize);
                        m += len * r as u64;
                        continue;
                    }
                    if m + r as u64 <= m_allowed && self.dispatch_round_uniform(&order, pc0) {
                        m += r as u64;
                        continue;
                    }
                }
            }
            let t = order[pos];
            if self.threads[t].burst > 0 {
                self.threads[t].burst -= 1;
                m += 1;
            } else {
                match self.dispatch_slot_inline(t) {
                    Ok(SlotKind::Advanced) => m += 1,
                    Ok(SlotKind::Boundary) => break Ok(()),
                    Err(e) => {
                        // Count the faulting instruction's pick, as above.
                        m += 1;
                        break Err(e);
                    }
                }
            }
            pos += 1;
            if pos == r {
                pos = 0;
            }
        };
        if m > 0 {
            self.pipeline.advance_rotation(&order, m);
        }
        self.order_scratch = order;
        outcome.map(|()| m > 0)
    }

    /// Replay `len` superblock instructions at `pc` for every tasklet in
    /// `order` (the lockstep bulk path), hoisting the memoized-head lookup
    /// and the histogram fold out of the per-tasklet loop.
    fn apply_block_all(&mut self, order: &[usize], pc: usize, len: usize) {
        let code = self.code;
        let slice = &code[pc..pc + len];
        let replicas = order.len() as u64;
        let memoized = match self.sb.head_meta(pc) {
            Some(meta) if meta.len as usize == len => {
                for &(op, c) in &meta.op_counts {
                    self.op_counts[op as usize] += u64::from(c) * replicas;
                }
                true
            }
            _ => false,
        };
        if !memoized {
            for slot in slice {
                self.op_counts[slot.op as usize] += replicas;
            }
        }
        for &t in order {
            let th = &mut self.threads[t];
            for slot in slice {
                apply_pure(th, t, &slot.instr);
            }
            th.pc = (pc + len) as u32;
        }
    }

    /// Dispatch the instruction at `pc0` once for every tasklet in `order`
    /// — all of them sit at that pc — from a single fetch and classify.
    /// Returns false (no state touched) for instructions that can fault or
    /// leave the inline class; the caller falls back to per-slot dispatch.
    fn dispatch_round_uniform(&mut self, order: &[usize], pc0: u32) -> bool {
        let Some(&ExecInstr { instr, op }) = self.code.get(pc0 as usize) else {
            return false;
        };
        let next = pc0.wrapping_add(1);
        if exec::is_superblock_op(&instr) {
            for &t in order {
                let th = &mut self.threads[t];
                apply_pure(th, t, &instr);
                th.pc = next;
            }
        } else {
            match instr {
                Instr::Branch { cond, ra, rb, target } => {
                    for &t in order {
                        let th = &mut self.threads[t];
                        th.pc = if cond.eval(th.get(ra), th.get(rb)) { target } else { next };
                    }
                }
                Instr::Jump { target } => {
                    for &t in order {
                        self.threads[t].pc = target;
                    }
                }
                Instr::Jal { rd, target } => {
                    for &t in order {
                        let th = &mut self.threads[t];
                        th.set(rd, next);
                        th.pc = target;
                    }
                }
                Instr::Jr { ra } => {
                    for &t in order {
                        let th = &mut self.threads[t];
                        th.pc = th.get(ra);
                    }
                }
                Instr::Trace { ra } => {
                    for &t in order {
                        let th = &mut self.threads[t];
                        let v = th.get(ra);
                        th.pc = next;
                        self.result.trace.push((t, v));
                    }
                }
                _ => return false,
            }
        }
        self.op_counts[op as usize] += order.len() as u64;
        true
    }

    /// Dispatch one instruction for tasklet `t` *without touching the
    /// pipeline*, for the batched fast paths: the caller has reserved the
    /// issue slot and will flush the pipeline update for the whole batch.
    /// Only [`INLINE_OP`] classes execute; anything else returns
    /// [`SlotKind::Boundary`] untouched. A fault (bad load/store address)
    /// leaves pc on the faulting instruction with its op counted, exactly
    /// like [`Interp::step`].
    fn dispatch_slot_inline(&mut self, t: usize) -> Result<SlotKind> {
        let pc = self.threads[t].pc as usize;
        let &ExecInstr { instr, op } =
            self.code.get(pc).ok_or(Error::PcOutOfRange { pc, len: self.code.len() })?;
        if !INLINE_OP[op as usize] {
            return Ok(SlotKind::Boundary);
        }
        self.op_counts[op as usize] += 1;
        let th = &mut self.threads[t];
        let mut next_pc = th.pc.wrapping_add(1);
        match instr {
            Instr::Nop => {}
            Instr::Movi { rd, imm } => th.set(rd, imm as u32),
            Instr::Mov { rd, ra } => {
                let v = th.get(ra);
                th.set(rd, v);
            }
            Instr::Add { rd, ra, rb } => {
                let v = th.get(ra).wrapping_add(th.get(rb));
                th.set(rd, v);
            }
            Instr::Addi { rd, ra, imm } => {
                let v = th.get(ra).wrapping_add(imm as u32);
                th.set(rd, v);
            }
            Instr::Sub { rd, ra, rb } => {
                let v = th.get(ra).wrapping_sub(th.get(rb));
                th.set(rd, v);
            }
            Instr::And { rd, ra, rb } => {
                let v = th.get(ra) & th.get(rb);
                th.set(rd, v);
            }
            Instr::Or { rd, ra, rb } => {
                let v = th.get(ra) | th.get(rb);
                th.set(rd, v);
            }
            Instr::Xor { rd, ra, rb } => {
                let v = th.get(ra) ^ th.get(rb);
                th.set(rd, v);
            }
            Instr::Lsl { rd, ra, rb } => {
                let v = th.get(ra) << (th.get(rb) & 31);
                th.set(rd, v);
            }
            Instr::Lsr { rd, ra, rb } => {
                let v = th.get(ra) >> (th.get(rb) & 31);
                th.set(rd, v);
            }
            Instr::Asr { rd, ra, rb } => {
                let v = ((th.get(ra) as i32) >> (th.get(rb) & 31)) as u32;
                th.set(rd, v);
            }
            Instr::Lsli { rd, ra, sh } => {
                let v = th.get(ra) << (sh & 31);
                th.set(rd, v);
            }
            Instr::Lsri { rd, ra, sh } => {
                let v = th.get(ra) >> (sh & 31);
                th.set(rd, v);
            }
            Instr::Asri { rd, ra, sh } => {
                let v = ((th.get(ra) as i32) >> (sh & 31)) as u32;
                th.set(rd, v);
            }
            Instr::Mul8 { rd, ra, rb } => {
                let v = (th.get(ra) & 0xff) * (th.get(rb) & 0xff);
                th.set(rd, v);
            }
            Instr::Popcount { rd, ra } => {
                let v = th.get(ra).count_ones();
                th.set(rd, v);
            }
            Instr::TaskletId { rd } => th.set(rd, t as u32),
            Instr::Load { width, rd, ra, off } => {
                let addr = th.get(ra).wrapping_add(off as u32) as usize;
                let v = match width {
                    Width::B => self.machine.wram.read_u8(addr)?,
                    Width::H => self.machine.wram.read_u16(addr)?,
                    Width::W => self.machine.wram.read_u32(addr)?,
                };
                self.threads[t].set(rd, v);
            }
            Instr::Store { width, ra, off, rs } => {
                let addr = th.get(ra).wrapping_add(off as u32) as usize;
                let v = th.get(rs);
                match width {
                    Width::B => self.machine.wram.write_u8(addr, v)?,
                    Width::H => self.machine.wram.write_u16(addr, v)?,
                    Width::W => self.machine.wram.write_u32(addr, v)?,
                }
            }
            Instr::Branch { cond, ra, rb, target } => {
                if cond.eval(th.get(ra), th.get(rb)) {
                    next_pc = target;
                }
            }
            Instr::Jump { target } => next_pc = target,
            Instr::Jal { rd, target } => {
                th.set(rd, th.pc.wrapping_add(1));
                next_pc = target;
            }
            Instr::Jr { ra } => next_pc = th.get(ra),
            Instr::Trace { ra } => {
                let v = self.threads[t].get(ra);
                self.result.trace.push((t, v));
            }
            _ => unreachable!("INLINE_OP out of sync with dispatch_slot_inline"),
        }
        self.threads[t].pc = next_pc;
        Ok(SlotKind::Advanced)
    }

    /// Execute `count` superblock instructions for tasklet `t` starting at
    /// `pc`, using the memoized head histogram when the span is exactly a
    /// memoized block.
    fn apply_block(&mut self, t: usize, pc: usize, count: usize) {
        if let Some(meta) = self.sb.head_meta(pc) {
            if meta.len as usize == count {
                for &(op, c) in &meta.op_counts {
                    self.op_counts[op as usize] += u64::from(c);
                }
                let th = &mut self.threads[t];
                for slot in &self.code[pc..pc + count] {
                    apply_pure(th, t, &slot.instr);
                }
                th.pc = (pc + count) as u32;
                return;
            }
        }
        self.apply_seq(t, pc, count);
    }

    /// Execute `count` superblock instructions for tasklet `t` starting at
    /// `pc`, folding op counts inline (mid-block entry or partial span).
    fn apply_seq(&mut self, t: usize, pc: usize, count: usize) {
        let th = &mut self.threads[t];
        for slot in &self.code[pc..pc + count] {
            self.op_counts[slot.op as usize] += 1;
            apply_pure(th, t, &slot.instr);
        }
        th.pc = (pc + count) as u32;
    }

    /// Execute a threaded-code chain for tasklet `t` starting at compiled
    /// block `bid`, consuming at most `cap` issue slots; returns the
    /// slots consumed (the caller has reserved them and flushes the
    /// pipeline update for the whole batch, exactly as for the other
    /// batched dispatches).
    ///
    /// The chain runs block to block through compiled links — no fetch,
    /// no decode, no per-instruction classify — folding each block's
    /// memoized issue-slot and histogram counts per entry. It stops, with
    /// the tasklet's pc parked on the next block's start so any engine
    /// resumes exactly where the reference would be, when the next block
    /// would overrun `cap` (budget exactness) or when a link exits
    /// compiled code (a deopt: cold block, side-exit boundary op,
    /// mid-block `jr` target, or end of IRAM — the out-of-range pc then
    /// faults at the next fetch exactly like the reference).
    ///
    /// `replicas` scales the histogram folds and `replicate` guards
    /// tasklet-sensitive blocks for the rotation engine's lockstep
    /// replication (see `try_rotation`); sole mode passes `1, false`.
    /// Compiled bodies touch only the private register file and pc, are
    /// deterministic, cannot fault and cannot observe scheduling, so the
    /// chain needs no budget or scheduler probes mid-flight.
    fn run_compiled(
        &mut self,
        t: usize,
        bid: u32,
        cap: u64,
        replicas: u64,
        replicate: bool,
    ) -> u64 {
        let Some(cp) = self.compiled else { return 0 };
        let mut bid = bid;
        let mut k: u64 = 0;
        loop {
            let b = cp.block(bid);
            let slots = u64::from(b.slots());
            if k + slots > cap || (replicate && b.tasklet_sensitive()) {
                self.threads[t].pc = b.start();
                return k;
            }
            b.run(&mut self.threads[t].regs, t as u32);
            for &(op, c) in b.op_counts() {
                self.op_counts[op as usize] += u64::from(c) * replicas;
            }
            k += slots;
            let link = match *b.term() {
                Term::Next(link) | Term::Jump(link) => link,
                Term::Jal { rd, ret, link } => {
                    self.threads[t].set(rd, ret);
                    link
                }
                Term::Jr { ra } => cp.link_of(self.threads[t].get(ra)),
                Term::Branch { cond, ra, rb, taken, fall } => {
                    let th = &self.threads[t];
                    if cond.eval(th.get(ra), th.get(rb)) {
                        taken
                    } else {
                        fall
                    }
                }
            };
            match link {
                Link::Block(next) => bid = next,
                Link::Exit(pc) => {
                    self.threads[t].pc = pc;
                    return k;
                }
            }
        }
    }

    /// Do all tasklets in `order` carry the lead tasklet's register file
    /// bit for bit? (The precondition for lockstep chain replication.)
    fn regs_identical(&self, order: &[usize]) -> bool {
        let lead = &self.threads[order[0]].regs;
        order[1..].iter().all(|&t| self.threads[t].regs == *lead)
    }

    /// Fetch and dispatch one instruction for tasklet `t`. The caller has
    /// already picked the issue slot and checked the budget.
    fn step(&mut self, t: usize) -> Result<()> {
        let pc = self.threads[t].pc as usize;
        let &ExecInstr { instr, op } =
            self.code.get(pc).ok_or(Error::PcOutOfRange { pc, len: self.code.len() })?;

        self.op_counts[op as usize] += 1;
        let th = &mut self.threads[t];
        let mut next_pc = th.pc.wrapping_add(1);
        match instr {
            Instr::Nop => {}
            Instr::Halt => {
                self.runnable[t] = false;
                self.runnable_count -= 1;
                self.live -= 1;
                self.active_remove(t);
            }
            Instr::Movi { rd, imm } => th.set(rd, imm as u32),
            Instr::Mov { rd, ra } => {
                let v = th.get(ra);
                th.set(rd, v);
            }
            Instr::Add { rd, ra, rb } => {
                let v = th.get(ra).wrapping_add(th.get(rb));
                th.set(rd, v);
            }
            Instr::Addi { rd, ra, imm } => {
                let v = th.get(ra).wrapping_add(imm as u32);
                th.set(rd, v);
            }
            Instr::Sub { rd, ra, rb } => {
                let v = th.get(ra).wrapping_sub(th.get(rb));
                th.set(rd, v);
            }
            Instr::And { rd, ra, rb } => {
                let v = th.get(ra) & th.get(rb);
                th.set(rd, v);
            }
            Instr::Or { rd, ra, rb } => {
                let v = th.get(ra) | th.get(rb);
                th.set(rd, v);
            }
            Instr::Xor { rd, ra, rb } => {
                let v = th.get(ra) ^ th.get(rb);
                th.set(rd, v);
            }
            Instr::Lsl { rd, ra, rb } => {
                let v = th.get(ra) << (th.get(rb) & 31);
                th.set(rd, v);
            }
            Instr::Lsr { rd, ra, rb } => {
                let v = th.get(ra) >> (th.get(rb) & 31);
                th.set(rd, v);
            }
            Instr::Asr { rd, ra, rb } => {
                let v = ((th.get(ra) as i32) >> (th.get(rb) & 31)) as u32;
                th.set(rd, v);
            }
            Instr::Lsli { rd, ra, sh } => {
                let v = th.get(ra) << (sh & 31);
                th.set(rd, v);
            }
            Instr::Lsri { rd, ra, sh } => {
                let v = th.get(ra) >> (sh & 31);
                th.set(rd, v);
            }
            Instr::Asri { rd, ra, sh } => {
                let v = ((th.get(ra) as i32) >> (sh & 31)) as u32;
                th.set(rd, v);
            }
            Instr::Mul8 { rd, ra, rb } => {
                let v = (th.get(ra) & 0xff) * (th.get(rb) & 0xff);
                th.set(rd, v);
            }
            Instr::Popcount { rd, ra } => {
                let v = th.get(ra).count_ones();
                th.set(rd, v);
            }
            Instr::Load { width, rd, ra, off } => {
                let addr = th.get(ra).wrapping_add(off as u32) as usize;
                let v = match width {
                    Width::B => self.machine.wram.read_u8(addr)?,
                    Width::H => self.machine.wram.read_u16(addr)?,
                    Width::W => self.machine.wram.read_u32(addr)?,
                };
                self.threads[t].set(rd, v);
            }
            Instr::Store { width, ra, off, rs } => {
                let addr = th.get(ra).wrapping_add(off as u32) as usize;
                let v = th.get(rs);
                match width {
                    Width::B => self.machine.wram.write_u8(addr, v)?,
                    Width::H => self.machine.wram.write_u16(addr, v)?,
                    Width::W => self.machine.wram.write_u32(addr, v)?,
                }
            }
            Instr::MramRead { wram, mram, len } | Instr::MramWrite { wram, mram, len } => {
                let w = th.get(wram) as usize;
                let m = th.get(mram) as usize;
                let l = th.get(len) as usize;
                let is_read = matches!(instr, Instr::MramRead { .. });
                // Both interpreter engines route every DMA through this
                // site (the op is a scheduling boundary), so one injection
                // hook covers all execution modes.
                let fault = self.machine.faults.as_mut().and_then(|f| f.on_dma(l));
                if fault == Some(DmaFault::Fail) {
                    let cycle = pipeline_issue_cycle(&self.pipeline);
                    if let Some(f) = self.machine.faults.as_mut() {
                        f.log(FaultKind::DmaFail, cycle);
                    }
                    return Err(Error::DmaFault { pc, bytes: l });
                }
                let cycles = if is_read {
                    self.machine.dma.read(&self.machine.mram, &mut self.machine.wram, m, w, l)?
                } else {
                    self.machine.dma.write(&mut self.machine.mram, &self.machine.wram, m, w, l)?
                };
                let setup = self.machine.params.dma_setup_cycles;
                let stream = cycles.saturating_sub(setup);
                let issue = pipeline_issue_cycle(&self.pipeline);
                let start = issue.max(self.dma_stream_free);
                self.dma_stream_free = start + stream;
                // The issuing tasklet blocks for queueing + setup + its
                // own streaming time.
                self.pipeline.stall(t, (start - issue) + setup + stream);
                if let Some(f @ (DmaFault::FlipBit { .. } | DmaFault::FlipBits2 { .. })) = fault {
                    let (byte, bits, n) = match f {
                        DmaFault::FlipBit { byte, bit } => (byte, [bit, 0], 1),
                        DmaFault::FlipBits2 { byte, bit_a, bit_b } => (byte, [bit_a, bit_b], 2),
                        DmaFault::Fail => unreachable!("Fail returned above"),
                    };
                    // The flip(s) land in the transfer's destination as
                    // the data arrives: WRAM for reads, MRAM for writes.
                    // MRAM flips are *storage* errors: they bypass the
                    // SEC-DED sidecar (and break COW first), so the
                    // scrubber sees a code/data mismatch to repair.
                    let done = start + setup + stream;
                    for &bit in &bits[..n] {
                        let kind = if is_read {
                            let addr = w + byte;
                            let v = self.machine.wram.read_u8(addr)?;
                            self.machine.wram.write_u8(addr, v ^ (1 << bit))?;
                            FaultKind::WramBitFlip { addr: addr as u32, bit }
                        } else {
                            let addr = m + byte;
                            self.machine.mram.flip_bit_raw(addr, bit)?;
                            FaultKind::MramBitFlip { addr: addr as u32, bit }
                        };
                        if let Some(f) = self.machine.faults.as_mut() {
                            f.log(kind, done);
                        }
                    }
                }
                if is_read && self.machine.mram.ecc_enabled() {
                    // Verify-on-read: repair single-bit storage errors in
                    // the source words (surface multi-bit ones), then
                    // re-check the landed bytes against the trusted
                    // source so in-flight corruption is caught too.
                    let repaired = self.machine.mram.verify_range(m, l)?;
                    self.machine.integrity.dma_corrected += repaired;
                    let src = self.machine.mram.to_vec(m, l)?;
                    if self.machine.wram.slice(w, l)? != src.as_slice() {
                        self.machine.wram.write(w, &src)?;
                        self.machine.integrity.dma_corrected += 1;
                    }
                }
                if self.sink.is_enabled() {
                    self.sink.record(TraceEvent::DmaTransfer {
                        tasklet: t as u8,
                        direction: if matches!(instr, Instr::MramRead { .. }) {
                            DmaDirection::MramToWram
                        } else {
                            DmaDirection::WramToMram
                        },
                        bytes: l as u32,
                        start_cycle: start,
                        cycles: setup + stream,
                    });
                }
            }
            Instr::Branch { cond, ra, rb, target } => {
                if cond.eval(th.get(ra), th.get(rb)) {
                    next_pc = target;
                }
            }
            Instr::Jump { target } => next_pc = target,
            Instr::Jal { rd, target } => {
                th.set(rd, th.pc.wrapping_add(1));
                next_pc = target;
            }
            Instr::Jr { ra } => next_pc = th.get(ra),
            Instr::CallSub { sub, rd, ra, rb } => {
                let a = th.get(ra);
                let b = th.get(rb);
                if matches!(
                    sub,
                    crate::subroutines::Subroutine::Divsi3 | crate::subroutines::Subroutine::Modsi3
                ) && b == 0
                {
                    return Err(Error::DivisionByZero { pc });
                }
                th.set(rd, sub.eval(a, b));
                th.burst = sub.instruction_count().saturating_sub(1);
                self.result.profile.record(sub);
                if self.sink.is_enabled() {
                    self.sink.record(TraceEvent::SubroutineEnter {
                        tasklet: t as u8,
                        symbol: sub.symbol(),
                        cycle: pipeline_issue_cycle(&self.pipeline),
                        instructions: sub.instruction_count() as u32,
                    });
                }
            }
            Instr::PerfConfig => {
                // `pipeline.pick` already advanced time past this issue;
                // the counter bases on the issue cycle itself.
                self.machine.perf.config(pipeline_issue_cycle(&self.pipeline));
            }
            Instr::PerfRead { rd } => {
                let v = self.machine.perf.read(pipeline_issue_cycle(&self.pipeline));
                self.threads[t].set(rd, (v & 0xffff_ffff) as u32);
                self.result.perf_reads.push(v);
            }
            Instr::TaskletId { rd } => th.set(rd, t as u32),
            Instr::Trace { ra } => {
                let v = self.threads[t].get(ra);
                self.result.trace.push((t, v));
            }
            Instr::Barrier => {
                if self.single {
                    // A lone live tasklet satisfies the barrier at its
                    // own arrival: no park, immediate release.
                    if self.sink.is_enabled() {
                        self.sink.record(TraceEvent::TaskletBarrier {
                            tasklet: t as u8,
                            cycle: pipeline_issue_cycle(&self.pipeline),
                            released: true,
                        });
                    }
                } else {
                    self.at_barrier[t] = true;
                    self.runnable[t] = false;
                    self.runnable_count -= 1;
                    self.parked += 1;
                    self.active_remove(t);
                    if self.sink.is_enabled() {
                        self.sink.record(TraceEvent::TaskletBarrier {
                            tasklet: t as u8,
                            cycle: pipeline_issue_cycle(&self.pipeline),
                            released: self.parked == self.live,
                        });
                    }
                }
            }
            Instr::MutexLock { id } => {
                // A lone tasklet always acquires immediately; no state
                // to track since no other tasklet can observe the lock.
                if !self.single {
                    if let Some(owner) = self.mutex_owner[id as usize] {
                        if owner != t {
                            // Block until released; re-execute the lock on
                            // wake (pc stays on this instruction).
                            self.mutex_waiters[id as usize].push_back(t);
                            self.runnable[t] = false;
                            self.runnable_count -= 1;
                            self.active_remove(t);
                            next_pc = self.threads[t].pc;
                        }
                        // Re-locking an owned mutex is a no-op (the real
                        // hardware would deadlock; the simulator is lenient
                        // so generated code can be defensive).
                    } else {
                        self.mutex_owner[id as usize] = Some(t);
                    }
                }
            }
            Instr::MutexUnlock { id } => {
                if !self.single && self.mutex_owner[id as usize] == Some(t) {
                    self.mutex_owner[id as usize] = None;
                    if let Some(next) = self.mutex_waiters[id as usize].pop_front() {
                        self.runnable[next] = true;
                        self.runnable_count += 1;
                        self.active_insert(next);
                    }
                }
            }
        }
        self.threads[t].pc = next_pc;
        Ok(())
    }
}

/// Apply one superblock instruction to tasklet `th` (= tasklet index `t`).
/// Exactly the register-file arms of [`Interp::step`]; the superblock
/// classifier guarantees no other variant reaches here.
fn apply_pure(th: &mut Tasklet, t: usize, instr: &Instr) {
    match *instr {
        Instr::Nop => {}
        Instr::Movi { rd, imm } => th.set(rd, imm as u32),
        Instr::Mov { rd, ra } => {
            let v = th.get(ra);
            th.set(rd, v);
        }
        Instr::Add { rd, ra, rb } => {
            let v = th.get(ra).wrapping_add(th.get(rb));
            th.set(rd, v);
        }
        Instr::Addi { rd, ra, imm } => {
            let v = th.get(ra).wrapping_add(imm as u32);
            th.set(rd, v);
        }
        Instr::Sub { rd, ra, rb } => {
            let v = th.get(ra).wrapping_sub(th.get(rb));
            th.set(rd, v);
        }
        Instr::And { rd, ra, rb } => {
            let v = th.get(ra) & th.get(rb);
            th.set(rd, v);
        }
        Instr::Or { rd, ra, rb } => {
            let v = th.get(ra) | th.get(rb);
            th.set(rd, v);
        }
        Instr::Xor { rd, ra, rb } => {
            let v = th.get(ra) ^ th.get(rb);
            th.set(rd, v);
        }
        Instr::Lsl { rd, ra, rb } => {
            let v = th.get(ra) << (th.get(rb) & 31);
            th.set(rd, v);
        }
        Instr::Lsr { rd, ra, rb } => {
            let v = th.get(ra) >> (th.get(rb) & 31);
            th.set(rd, v);
        }
        Instr::Asr { rd, ra, rb } => {
            let v = ((th.get(ra) as i32) >> (th.get(rb) & 31)) as u32;
            th.set(rd, v);
        }
        Instr::Lsli { rd, ra, sh } => {
            let v = th.get(ra) << (sh & 31);
            th.set(rd, v);
        }
        Instr::Lsri { rd, ra, sh } => {
            let v = th.get(ra) >> (sh & 31);
            th.set(rd, v);
        }
        Instr::Asri { rd, ra, sh } => {
            let v = ((th.get(ra) as i32) >> (sh & 31)) as u32;
            th.set(rd, v);
        }
        Instr::Mul8 { rd, ra, rb } => {
            let v = (th.get(ra) & 0xff) * (th.get(rb) & 0xff);
            th.set(rd, v);
        }
        Instr::Popcount { rd, ra } => {
            let v = th.get(ra).count_ones();
            th.set(rd, v);
        }
        Instr::TaskletId { rd } => th.set(rd, t as u32),
        _ => debug_assert!(false, "non-superblock op {instr:?} in a superblock"),
    }
}

/// The cycle at which the most recent instruction issued.
fn pipeline_issue_cycle(p: &Pipeline) -> u64 {
    // `elapsed` = last_issue + stages.
    p.elapsed().saturating_sub(p.stages())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cond, Instr as I, Reg};
    use crate::subroutines::Subroutine;

    fn r(i: u8) -> Reg {
        Reg(i)
    }

    #[test]
    fn inline_op_table_matches_classification() {
        use crate::isa::Width;
        // One instance of every instruction variant.
        let variants = [
            I::Nop,
            I::Halt,
            I::Movi { rd: r(1), imm: 0 },
            I::Mov { rd: r(1), ra: r(2) },
            I::Add { rd: r(1), ra: r(2), rb: r(3) },
            I::Addi { rd: r(1), ra: r(2), imm: 1 },
            I::Sub { rd: r(1), ra: r(2), rb: r(3) },
            I::And { rd: r(1), ra: r(2), rb: r(3) },
            I::Or { rd: r(1), ra: r(2), rb: r(3) },
            I::Xor { rd: r(1), ra: r(2), rb: r(3) },
            I::Lsl { rd: r(1), ra: r(2), rb: r(3) },
            I::Lsr { rd: r(1), ra: r(2), rb: r(3) },
            I::Asr { rd: r(1), ra: r(2), rb: r(3) },
            I::Lsli { rd: r(1), ra: r(2), sh: 1 },
            I::Lsri { rd: r(1), ra: r(2), sh: 1 },
            I::Asri { rd: r(1), ra: r(2), sh: 1 },
            I::Mul8 { rd: r(1), ra: r(2), rb: r(3) },
            I::Popcount { rd: r(1), ra: r(2) },
            I::Load { width: Width::W, rd: r(1), ra: r(2), off: 0 },
            I::Store { width: Width::W, ra: r(1), off: 0, rs: r(2) },
            I::MramRead { wram: r(1), mram: r(2), len: r(3) },
            I::MramWrite { wram: r(1), mram: r(2), len: r(3) },
            I::Branch { cond: Cond::Eq, ra: r(1), rb: r(2), target: 0 },
            I::Jump { target: 0 },
            I::Jal { rd: r(1), target: 0 },
            I::Jr { ra: r(1) },
            I::CallSub { sub: Subroutine::Mulsi3, rd: r(1), ra: r(2), rb: r(3) },
            I::PerfConfig,
            I::PerfRead { rd: r(1) },
            I::TaskletId { rd: r(1) },
            I::Trace { ra: r(1) },
            I::Barrier,
            I::MutexLock { id: 0 },
            I::MutexUnlock { id: 0 },
        ];
        for instr in &variants {
            let inline = exec::is_superblock_op(instr)
                || matches!(
                    instr,
                    I::Load { .. }
                        | I::Store { .. }
                        | I::Branch { .. }
                        | I::Jump { .. }
                        | I::Jal { .. }
                        | I::Jr { .. }
                        | I::Trace { .. }
                );
            assert_eq!(
                INLINE_OP[exec::op_id(instr) as usize],
                inline,
                "INLINE_OP disagrees with classification for {instr:?}"
            );
        }
    }

    #[test]
    fn arithmetic_loop_computes_sum() {
        // sum 1..=10 into r2.
        let p = Program::new(vec![
            I::Movi { rd: r(1), imm: 10 },
            I::Movi { rd: r(2), imm: 0 },
            I::Add { rd: r(2), ra: r(2), rb: r(1) },
            I::Addi { rd: r(1), ra: r(1), imm: -1 },
            I::Branch { cond: Cond::Ne, ra: r(1), rb: r(0), target: 2 },
            I::Store { width: Width::W, ra: r(0), off: 0, rs: r(2) },
            I::Halt,
        ]);
        let mut m = Machine::default();
        let res = m.run(&p, 1).unwrap();
        assert_eq!(m.wram.read_u32(0).unwrap(), 55);
        // 2 setup + 10×3 loop + store + halt = 34 issue slots.
        assert_eq!(res.instructions, 34);
        assert_eq!(res.cycles, 33 * 11 + 11);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let p = Program::new(vec![
            I::Movi { rd: r(0), imm: 42 },
            I::Store { width: Width::W, ra: r(0), off: 0, rs: r(0) },
            I::Halt,
        ]);
        let mut m = Machine::default();
        m.wram.write_u32(0, 7).unwrap();
        m.run(&p, 1).unwrap();
        assert_eq!(m.wram.read_u32(0).unwrap(), 0);
    }

    #[test]
    fn tasklets_write_disjoint_slots() {
        // Each tasklet stores its id at wram[4*id].
        let p = Program::new(vec![
            I::TaskletId { rd: r(1) },
            I::Lsli { rd: r(2), ra: r(1), sh: 2 },
            I::Store { width: Width::W, ra: r(2), off: 0, rs: r(1) },
            I::Halt,
        ]);
        let mut m = Machine::default();
        m.run(&p, 8).unwrap();
        for id in 0..8u32 {
            assert_eq!(m.wram.read_u32(4 * id as usize).unwrap(), id);
        }
    }

    #[test]
    fn subroutine_burst_costs_issue_slots() {
        let body = |with_sub: bool| {
            let op = if with_sub {
                I::CallSub { sub: Subroutine::Mulsf3, rd: r(3), ra: r(1), rb: r(2) }
            } else {
                I::Add { rd: r(3), ra: r(1), rb: r(2) }
            };
            Program::new(vec![
                I::Movi { rd: r(1), imm: 1067450368 }, // 1.5f32 bits... any value
                I::Movi { rd: r(2), imm: 1075838976 },
                op,
                I::Halt,
            ])
        };
        let mut m1 = Machine::default();
        let cheap = m1.run(&body(false), 1).unwrap();
        let mut m2 = Machine::default();
        let costly = m2.run(&body(true), 1).unwrap();
        let extra = Subroutine::Mulsf3.instruction_count() - 1;
        assert_eq!(costly.instructions, cheap.instructions + extra);
        assert_eq!(costly.cycles, cheap.cycles + extra * 11);
        assert_eq!(costly.profile.occurrences(Subroutine::Mulsf3), 1);
    }

    #[test]
    fn mul8_is_hardware_and_correct() {
        let p = Program::new(vec![
            I::Movi { rd: r(1), imm: 0x1_02 }, // low byte 0x02
            I::Movi { rd: r(2), imm: 0xff },
            I::Mul8 { rd: r(3), ra: r(1), rb: r(2) },
            I::Store { width: Width::W, ra: r(0), off: 0, rs: r(3) },
            I::Halt,
        ]);
        let mut m = Machine::default();
        m.run(&p, 1).unwrap();
        assert_eq!(m.wram.read_u32(0).unwrap(), 2 * 255);
    }

    #[test]
    fn dma_round_trip_and_stall_accounting() {
        let p = Program::new(vec![
            I::Movi { rd: r(1), imm: 0 },    // wram addr
            I::Movi { rd: r(2), imm: 4096 }, // mram addr
            I::Movi { rd: r(3), imm: 2048 }, // len
            I::MramRead { wram: r(1), mram: r(2), len: r(3) },
            I::Load { width: Width::W, rd: r(4), ra: r(1), off: 0 },
            I::Addi { rd: r(4), ra: r(4), imm: 1 },
            I::Store { width: Width::W, ra: r(1), off: 0, rs: r(4) },
            I::MramWrite { wram: r(1), mram: r(2), len: r(3) },
            I::Halt,
        ]);
        let mut m = Machine::default();
        m.mram.write_u32(4096, 41).unwrap();
        let res = m.run(&p, 1).unwrap();
        assert_eq!(m.mram.read_u32(4096).unwrap(), 42);
        assert_eq!(res.dma_transfers, 2);
        assert_eq!(res.dma_bytes, 4096);
        assert_eq!(res.dma_cycles, 2 * 1049);
        // The two DMA stalls dominate: 9 instructions but > 2000 cycles.
        assert!(res.cycles > 2 * 1049);
    }

    #[test]
    fn perfcounter_measures_bracketed_region() {
        let p = Program::new(vec![
            I::PerfConfig,
            I::Nop,
            I::Nop,
            I::Nop,
            I::PerfRead { rd: r(5) },
            I::Halt,
        ]);
        let mut m = Machine::default();
        let res = m.run(&p, 1).unwrap();
        assert_eq!(res.perf_reads, vec![44]); // 4 instructions × 11 cycles
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let p = Program::new(vec![I::Jump { target: 0 }]);
        let mut m = Machine::default();
        let err = m.run_with_budget(&p, 1, 10_000).unwrap_err();
        assert!(matches!(err, Error::CycleBudgetExceeded { budget: 10_000 }));
    }

    #[test]
    fn division_by_zero_is_reported() {
        let p = Program::new(vec![
            I::Movi { rd: r(1), imm: 5 },
            I::CallSub { sub: Subroutine::Divsi3, rd: r(2), ra: r(1), rb: r(0) },
            I::Halt,
        ]);
        let mut m = Machine::default();
        assert!(matches!(m.run(&p, 1), Err(Error::DivisionByZero { pc: 1 })));
    }

    #[test]
    fn bad_tasklet_count_rejected() {
        let p = Program::new(vec![I::Halt]);
        let mut m = Machine::default();
        assert!(matches!(m.run(&p, 0), Err(Error::BadTaskletCount { .. })));
        assert!(matches!(m.run(&p, 25), Err(Error::BadTaskletCount { .. })));
        assert!(m.run(&p, 24).is_ok());
    }

    #[test]
    fn program_too_large_for_iram() {
        let p = Program::new(vec![I::Nop; 24 * 1024 / 8 + 1]);
        let mut m = Machine::default();
        assert!(matches!(m.run(&p, 1), Err(Error::ProgramTooLarge { .. })));
    }

    #[test]
    fn jal_jr_subroutine_linkage() {
        // main: jal r31, func; store r9; halt. func: movi r9, 99; jr r31.
        let p = Program::new(vec![
            I::Jal { rd: r(31), target: 3 },
            I::Store { width: Width::W, ra: r(0), off: 0, rs: r(9) },
            I::Halt,
            I::Movi { rd: r(9), imm: 99 },
            I::Jr { ra: r(31) },
        ]);
        let mut m = Machine::default();
        m.run(&p, 1).unwrap();
        assert_eq!(m.wram.read_u32(0).unwrap(), 99);
    }

    #[test]
    fn popcount_counts_bits() {
        let p = Program::new(vec![
            I::Movi { rd: r(1), imm: 0b1011_0110 },
            I::Popcount { rd: r(2), ra: r(1) },
            I::Store { width: Width::W, ra: r(0), off: 0, rs: r(2) },
            I::Halt,
        ]);
        let mut m = Machine::default();
        m.run(&p, 1).unwrap();
        assert_eq!(m.wram.read_u32(0).unwrap(), 5);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn trace_records_values_in_execution_order() {
        let p = assemble(
            "movi r1, 10\n\
             loop: trace r1\n\
             addi r1, r1, -1\n\
             bne r1, r0, loop\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        let res = m.run(&p, 1).unwrap();
        let values: Vec<u32> = res.trace.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, (1..=10).rev().collect::<Vec<u32>>());
        assert!(res.trace.iter().all(|&(t, _)| t == 0));
    }

    #[test]
    fn trace_tags_the_emitting_tasklet() {
        let p = assemble("me r1\ntrace r1\nhalt\n").unwrap();
        let mut m = Machine::default();
        let res = m.run(&p, 4).unwrap();
        let mut pairs = res.trace.clone();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }
}

#[cfg(test)]
mod trace_sink_tests {
    use super::*;
    use crate::asm::assemble;
    use pim_trace::TraceBuffer;

    fn dma_heavy_program() -> Program {
        assemble(
            "me r1\n\
             lsli r2, r1, 8\n\
             movi r3, 64\n\
             mram.read r2, r2, r3\n\
             call __mulsi3 r4, r3, r3\n\
             barrier\n\
             mram.write r2, r2, r3\n\
             halt\n",
        )
        .unwrap()
    }

    #[test]
    fn traced_run_records_all_event_kinds() {
        let p = dma_heavy_program();
        let mut m = Machine::default();
        let mut buf = TraceBuffer::new();
        let res = m.run_traced(&p, 4, &mut buf).unwrap();
        let launches = buf.count_matching(|e| matches!(e, TraceEvent::KernelLaunch { .. }));
        let completes = buf.count_matching(|e| matches!(e, TraceEvent::KernelComplete { .. }));
        let dmas = buf.count_matching(|e| matches!(e, TraceEvent::DmaTransfer { .. }));
        let subs = buf.count_matching(|e| matches!(e, TraceEvent::SubroutineEnter { .. }));
        let barriers = buf.count_matching(|e| matches!(e, TraceEvent::TaskletBarrier { .. }));
        assert_eq!(launches, 1);
        assert_eq!(completes, 1);
        assert_eq!(dmas, 8, "4 tasklets × (read + write)");
        assert_eq!(subs, 4);
        assert_eq!(barriers, 4);
        assert_eq!(buf.dma_bytes(), res.dma_bytes);
        assert_eq!(buf.dma_cycles(), res.dma_cycles);
    }

    #[test]
    fn null_sink_run_is_bit_identical_to_untraced() {
        let p = dma_heavy_program();
        let mut m1 = Machine::default();
        let untraced = m1.run(&p, 4).unwrap();
        let mut m2 = Machine::default();
        let nulled = m2.run_traced(&p, 4, &mut NullSink).unwrap();
        let mut m3 = Machine::default();
        let mut buf = TraceBuffer::new();
        let recorded = m3.run_traced(&p, 4, &mut buf).unwrap();
        assert_eq!(untraced, nulled);
        assert_eq!(untraced, recorded, "recording must not perturb timing");
    }

    #[test]
    fn trace_max_end_cycle_equals_run_cycles() {
        let p = dma_heavy_program();
        let mut m = Machine::default();
        let mut buf = TraceBuffer::new();
        let res = m.run_traced(&p, 3, &mut buf).unwrap();
        assert_eq!(buf.max_end_cycle(), res.cycles);
    }

    #[test]
    fn exactly_one_barrier_arrival_releases() {
        let p = dma_heavy_program();
        let mut m = Machine::default();
        let mut buf = TraceBuffer::new();
        m.run_traced(&p, 4, &mut buf).unwrap();
        let released =
            buf.count_matching(|e| matches!(e, TraceEvent::TaskletBarrier { released: true, .. }));
        assert_eq!(released, 1);
    }

    #[test]
    fn per_tasklet_issue_counts_cover_all_instructions() {
        let p = dma_heavy_program();
        let mut m = Machine::default();
        let res = m.run(&p, 4).unwrap();
        assert_eq!(res.issue_per_tasklet.len(), 4);
        assert_eq!(res.issue_per_tasklet.iter().sum::<u64>(), res.instructions);
        assert!(res.issue_per_tasklet.iter().all(|&n| n > 0));
    }
}

#[cfg(test)]
mod barrier_tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn barrier_orders_producer_before_consumers() {
        // Tasklet 0 writes a value, everyone barriers, all read it.
        // Without the barrier the consumers would race ahead (tasklet 0's
        // store happens thousands of cycles into its long setup loop).
        let p = assemble(
            "me r1\n\
             bne r1, r0, wait\n\
             movi r2, 500        ; producer: long setup loop\n\
             spin: addi r2, r2, -1\n\
             bne r2, r0, spin\n\
             movi r3, 77\n\
             sw r0, 0x40, r3     ; publish\n\
             wait: barrier\n\
             lw r4, r0, 0x40     ; every tasklet reads after the barrier\n\
             lsli r5, r1, 2\n\
             addi r5, r5, 0x80\n\
             sw r5, 0, r4\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        m.run(&p, 8).unwrap();
        for t in 0..8 {
            assert_eq!(m.wram.read_u32(0x80 + 4 * t).unwrap(), 77, "tasklet {t}");
        }
    }

    #[test]
    fn single_tasklet_barrier_is_a_noop() {
        let p = assemble("movi r1, 5\nbarrier\naddi r1, r1, 1\nsw r0, 0, r1\nhalt\n").unwrap();
        let mut m = Machine::default();
        m.run(&p, 1).unwrap();
        assert_eq!(m.wram.read_u32(0).unwrap(), 6);
    }

    #[test]
    fn halted_tasklets_do_not_block_a_barrier() {
        // Odd tasklets halt immediately; even ones barrier and proceed.
        let p = assemble(
            "me r1\n\
             movi r2, 1\n\
             and r3, r1, r2\n\
             bne r3, r0, out\n\
             barrier\n\
             movi r4, 9\n\
             lsli r5, r1, 2\n\
             sw r5, 0x40, r4\n\
             out: halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        m.run(&p, 4).unwrap();
        assert_eq!(m.wram.read_u32(0x40).unwrap(), 9);
        assert_eq!(m.wram.read_u32(0x48).unwrap(), 9);
        assert_eq!(m.wram.read_u32(0x44).unwrap(), 0); // tasklet 1 halted
    }

    #[test]
    fn consecutive_barriers_work() {
        let p = assemble(
            "me r1\n\
             barrier\n\
             barrier\n\
             barrier\n\
             lsli r2, r1, 2\n\
             movi r3, 1\n\
             sw r2, 0, r3\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        m.run(&p, 6).unwrap();
        for t in 0..6 {
            assert_eq!(m.wram.read_u32(4 * t).unwrap(), 1);
        }
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn histogram_counts_executed_not_static_instructions() {
        let p = assemble(
            "movi r1, 5\n\
             loop: addi r1, r1, -1\n\
             bne r1, r0, loop\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        let res = m.run(&p, 1).unwrap();
        assert_eq!(res.op_histogram["movi"], 1);
        assert_eq!(res.op_histogram["add"], 5); // addi executes 5 times
        assert_eq!(res.op_histogram["branch"], 5);
        assert_eq!(res.op_histogram["halt"], 1);
    }

    #[test]
    fn histogram_counts_subroutine_calls_once() {
        let p = assemble("movi r1, 3\ncall __mulsf3 r2, r1, r1\nhalt\n").unwrap();
        let mut m = Machine::default();
        let res = m.run(&p, 1).unwrap();
        assert_eq!(res.op_histogram["call"], 1);
        // ...while the issue-slot count reflects the full body.
        assert!(res.instructions > 200);
    }
}

#[cfg(test)]
mod mutex_tests {
    use super::*;
    use crate::asm::assemble;

    /// The classic race: N tasklets each add 1 to a shared counter 50
    /// times with a load-add-store sequence. Without the mutex the
    /// interleaved sequences lose updates; with it, the count is exact.
    fn counter_program(locked: bool) -> Program {
        let (lock, unlock) = if locked { ("mutex.lock 3\n", "mutex.unlock 3\n") } else { ("", "") };
        assemble(&format!(
            "movi r2, 50\n\
             loop:\n\
             {lock}\
             lw r3, r0, 0x40\n\
             addi r3, r3, 1\n\
             sw r0, 0x40, r3\n\
             {unlock}\
             addi r2, r2, -1\n\
             bne r2, r0, loop\n\
             halt\n"
        ))
        .unwrap()
    }

    #[test]
    fn mutex_makes_shared_counter_exact() {
        let mut m = Machine::default();
        m.run(&counter_program(true), 8).unwrap();
        assert_eq!(m.wram.read_u32(0x40).unwrap(), 8 * 50);
    }

    #[test]
    fn without_mutex_updates_are_lost() {
        let mut m = Machine::default();
        m.run(&counter_program(false), 8).unwrap();
        let got = m.wram.read_u32(0x40).unwrap();
        assert!(got < 8 * 50, "race must lose updates, got {got}");
        assert!(got >= 50, "at least one tasklet's worth survives");
    }

    #[test]
    fn waiters_wake_fifo_and_all_finish() {
        // Every tasklet takes the same mutex once; completion proves no
        // lost wakeups.
        let p = assemble(
            "me r1\n\
             mutex.lock 0\n\
             lw r3, r0, 0x40\n\
             addi r3, r3, 1\n\
             sw r0, 0x40, r3\n\
             mutex.unlock 0\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        m.run(&p, 24).unwrap();
        assert_eq!(m.wram.read_u32(0x40).unwrap(), 24);
    }

    #[test]
    fn relock_by_owner_is_lenient() {
        let p = assemble(
            "mutex.lock 1\nmutex.lock 1\nmutex.unlock 1\nmovi r1, 7\nsw r0, 0, r1\nhalt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        m.run(&p, 1).unwrap();
        assert_eq!(m.wram.read_u32(0).unwrap(), 7);
    }

    #[test]
    fn unlock_of_unowned_mutex_is_ignored() {
        let p = assemble("mutex.unlock 9\nmovi r1, 5\nsw r0, 0, r1\nhalt\n").unwrap();
        let mut m = Machine::default();
        m.run(&p, 2).unwrap();
        assert_eq!(m.wram.read_u32(0).unwrap(), 5);
    }
}

#[cfg(test)]
mod barrier_mutex_interaction_tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn barrier_waits_for_mutex_blocked_tasklets() {
        // Tasklet 0 grabs the mutex, spins, releases, then barriers.
        // Tasklets 1.. must first take the mutex (blocking on t0), then
        // barrier. If the barrier released while they were mutex-blocked,
        // the final store would be unordered.
        let p = assemble(
            "me r1\n\
             bne r1, r0, others\n\
             mutex.lock 0\n\
             movi r2, 300\n\
             spin: addi r2, r2, -1\n\
             bne r2, r0, spin\n\
             movi r3, 1\n\
             sw r0, 0x40, r3      ; publish inside the lock\n\
             mutex.unlock 0\n\
             jmp sync\n\
             others:\n\
             mutex.lock 0\n\
             lw r4, r0, 0x40      ; must see t0's publish\n\
             lsli r5, r1, 2\n\
             sw r5, 0x80, r4\n\
             mutex.unlock 0\n\
             sync: barrier\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        m.run(&p, 6).unwrap();
        for t in 1..6 {
            assert_eq!(m.wram.read_u32(0x80 + 4 * t).unwrap(), 1, "tasklet {t}");
        }
    }

    #[test]
    fn mutex_held_across_barrier_deadlocks_detectably() {
        // Tasklet 0 locks and goes to the barrier while holding the mutex;
        // the others need the mutex before their barrier → deadlock, which
        // must surface as a budget error rather than a hang or bogus
        // release.
        let p = assemble(
            "me r1\n\
             bne r1, r0, others\n\
             mutex.lock 0\n\
             barrier\n\
             mutex.unlock 0\n\
             halt\n\
             others:\n\
             mutex.lock 0\n\
             mutex.unlock 0\n\
             barrier\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        let err = m.run_with_budget(&p, 3, 50_000).unwrap_err();
        assert!(matches!(err, Error::Deadlock { at_barrier: 1, on_mutex: 2 }), "got {err}");
    }
}

#[cfg(test)]
mod deadlock_accounting_tests {
    //! Regression tests that the `Error::Deadlock` populations derived from
    //! the incremental live/parked counters stay exact.

    use super::*;
    use crate::asm::assemble;

    #[test]
    fn cross_mutex_deadlock_counts_only_mutex_blockers() {
        // Tasklet 0: lock 0, spin, lock 1. Tasklet 1: lock 1, spin, lock 0.
        // Both spins overlap, so each tasklet holds its first mutex when it
        // requests the other's → pure mutex deadlock, nobody at a barrier.
        let p = assemble(
            "me r1\n\
             bne r1, r0, second\n\
             mutex.lock 0\n\
             movi r2, 20\n\
             s0: addi r2, r2, -1\n\
             bne r2, r0, s0\n\
             mutex.lock 1\n\
             halt\n\
             second:\n\
             mutex.lock 1\n\
             movi r2, 20\n\
             s1: addi r2, r2, -1\n\
             bne r2, r0, s1\n\
             mutex.lock 0\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        let err = m.run_with_budget(&p, 2, 100_000).unwrap_err();
        assert!(matches!(err, Error::Deadlock { at_barrier: 0, on_mutex: 2 }), "got {err}");
    }

    #[test]
    fn mixed_barrier_and_mutex_deadlock_splits_populations() {
        // Tasklet 0 parks at the barrier holding mutex 0; tasklets 1 and 2
        // block on that mutex; tasklet 3 parks at the barrier. The barrier
        // can never fill (two live tasklets are mutex-blocked) → deadlock
        // with two parked and two blocked.
        let p = assemble(
            "me r1\n\
             movi r2, 3\n\
             bne r1, r2, not3\n\
             barrier\n\
             halt\n\
             not3:\n\
             bne r1, r0, waiters\n\
             mutex.lock 0\n\
             barrier\n\
             halt\n\
             waiters:\n\
             mutex.lock 0\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        let err = m.run_with_budget(&p, 4, 100_000).unwrap_err();
        assert!(matches!(err, Error::Deadlock { at_barrier: 2, on_mutex: 2 }), "got {err}");
    }

    #[test]
    fn deadlock_counts_ignore_halted_tasklets() {
        // Of four tasklets, two halt immediately. Tasklet 0 parks at the
        // barrier holding mutex 0 and tasklet 1 blocks on that mutex: the
        // deadlock populations must count only the two live tasklets.
        let p = assemble(
            "me r1\n\
             movi r2, 2\n\
             blt r1, r2, low\n\
             halt\n\
             low:\n\
             bne r1, r0, waiter\n\
             mutex.lock 0\n\
             barrier\n\
             halt\n\
             waiter:\n\
             mutex.lock 0\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        let err = m.run_with_budget(&p, 4, 100_000).unwrap_err();
        assert!(matches!(err, Error::Deadlock { at_barrier: 1, on_mutex: 1 }), "got {err}");
    }
}

#[cfg(test)]
mod fault_injection_tests {
    use super::*;
    use crate::asm::assemble;
    use crate::faults::{FaultConfig, FaultPlan};

    /// DMA a word in, double it, DMA it back out.
    fn dma_program() -> Program {
        assemble(
            "movi r1, 0\n\
             movi r2, 0\n\
             movi r3, 8\n\
             mram.read r1, r2, r3\n\
             lw r4, r1, 0\n\
             add r4, r4, r4\n\
             sw r1, 0, r4\n\
             mram.write r1, r2, r3\n\
             halt\n",
        )
        .unwrap()
    }

    fn plan(config: FaultConfig) -> FaultPlan {
        FaultPlan::new(config)
    }

    #[test]
    fn offline_fault_fails_the_launch_and_logs() {
        let mut m = Machine::default();
        m.arm_faults(
            plan(FaultConfig { forced_offline: vec![0], ..Default::default() }).attempt(0, 0),
        );
        let err = m.run(&dma_program(), 1).unwrap_err();
        assert_eq!(err, Error::DpuOffline);
        let log = m.disarm_faults().unwrap();
        assert_eq!(log.injected().len(), 1);
        assert_eq!(log.injected()[0].kind.label(), "dpu_offline");
    }

    #[test]
    fn dma_fail_aborts_with_site_and_logs() {
        let mut m = Machine::default();
        m.arm_faults(
            plan(FaultConfig { seed: 1, dma_fail_prob: 1.0, ..Default::default() }).attempt(0, 0),
        );
        let err = m.run(&dma_program(), 1).unwrap_err();
        assert!(matches!(err, Error::DmaFault { bytes: 8, .. }), "got {err}");
        let log = m.disarm_faults().unwrap();
        assert_eq!(log.injected()[0].kind.label(), "dma_fail");
    }

    #[test]
    fn bit_flip_corrupts_the_result_and_logs_the_site() {
        // Clean run: 21 doubles to 42.
        let mut clean = Machine::default();
        clean.mram.write(0, &21u64.to_le_bytes()).unwrap();
        clean.run(&dma_program(), 1).unwrap();
        let mut out = [0u8; 8];
        clean.mram.read(0, &mut out).unwrap();
        assert_eq!(u64::from_le_bytes(out), 42);

        // Same run with every DMA flipping one destination bit.
        let mut faulty = Machine::default();
        faulty.mram.write(0, &21u64.to_le_bytes()).unwrap();
        faulty.arm_faults(
            plan(FaultConfig { seed: 9, bit_flip_prob: 1.0, ..Default::default() }).attempt(0, 0),
        );
        faulty.run(&dma_program(), 1).unwrap();
        let log = faulty.disarm_faults().unwrap();
        assert_eq!(log.injected().len(), 2, "one flip per DMA transfer");
        let labels: Vec<&str> = log.injected().iter().map(|f| f.kind.label()).collect();
        assert_eq!(labels, vec!["wram_bit_flip", "mram_bit_flip"]);
        assert!(log.injected()[0].cycle > 0, "flip is stamped at DMA completion");
        faulty.mram.read(0, &mut out).unwrap();
        assert_ne!(u64::from_le_bytes(out), 42, "corruption must be observable");
    }

    #[test]
    fn injected_hang_surfaces_as_clamped_budget_exhaustion() {
        // An endless loop would normally run to the caller's budget; with a
        // hang injected the run is cut off at the drawn cycle instead.
        let p = assemble("top:\njmp top\n").unwrap();
        let mut m = Machine::default();
        let armed =
            plan(FaultConfig { seed: 3, hang_prob: 1.0, ..Default::default() }).attempt(0, 0);
        let hang_at = armed.hang_after().unwrap();
        m.arm_faults(armed);
        let err = m.run_with_budget(&p, 1, 10_000_000).unwrap_err();
        assert_eq!(err, Error::CycleBudgetExceeded { budget: hang_at });
        let log = m.disarm_faults().unwrap();
        assert_eq!(log.injected()[0].kind.label(), "tasklet_hang");
    }

    #[test]
    fn hang_does_not_fire_when_the_kernel_finishes_first() {
        let mut m = Machine::default();
        let armed =
            plan(FaultConfig { seed: 5, hang_prob: 1.0, ..Default::default() }).attempt(0, 0);
        m.arm_faults(armed);
        // The DMA program halts within a few hundred cycles, below any
        // drawn hang cutoff >= 500.
        let r = m.run(&dma_program(), 1);
        if let Ok(res) = &r {
            assert!(res.cycles < 500);
            assert!(m.disarm_faults().unwrap().injected().is_empty());
        } else {
            // A cutoff below the kernel's runtime would hang it instead —
            // not possible here, but keep the assertion honest.
            panic!("kernel should finish before the minimum hang cutoff: {r:?}");
        }
    }

    #[test]
    fn zero_plan_armed_is_bit_identical_to_unarmed() {
        let run = |arm: bool| {
            let mut m = Machine::default();
            m.mram.write(0, &7u64.to_le_bytes()).unwrap();
            if arm {
                m.arm_faults(FaultPlan::none().attempt(0, 0));
            }
            let r = m.run(&dma_program(), 1).unwrap();
            match m.disarm_faults() {
                Some(log) => {
                    assert!(arm);
                    assert!(log.injected().is_empty());
                }
                None => assert!(!arm),
            }
            r
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn compiled_tier_deopts_under_armed_faults_with_identical_results() {
        // A zero plan armed forces the Compiled→Superblock downgrade in
        // `run_code` without injecting anything, so the downgraded run
        // must stay bit-identical to the compiled tier proper.
        let p = dma_program();
        let exec = ExecProgram::compile(&p).unwrap();
        let mut plain = Machine::default();
        plain.mram.write(0, &21u64.to_le_bytes()).unwrap();
        let unarmed = plain.run_exec_engine(&exec, 3, Engine::Compiled).unwrap();
        let mut armed = Machine::default();
        armed.mram.write(0, &21u64.to_le_bytes()).unwrap();
        armed.arm_faults(FaultPlan::none().attempt(0, 0));
        let downgraded = armed.run_exec_engine(&exec, 3, Engine::Compiled).unwrap();
        assert_eq!(unarmed, downgraded);
        let wram = plain.params.wram_bytes;
        assert_eq!(plain.wram.slice(0, wram).unwrap(), armed.wram.slice(0, wram).unwrap());
        assert_eq!(plain.mram, armed.mram);
    }

    #[test]
    fn perf_counter_does_not_leak_across_runs() {
        // Run 1 arms the perf counter early and never reads it.
        let arm = assemble("perf.config\nhalt\n").unwrap();
        // Run 2 burns cycles, then reads the counter without arming it:
        // a fresh launch must read 0, not the elapsed time since run 1's
        // stale arming.
        let read_late = assemble(
            "movi r1, 200\n\
             top:\n\
             addi r1, r1, -1\n\
             bne r1, r0, top\n\
             perf.read r4\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        m.run(&arm, 1).unwrap();
        let r = m.run(&read_late, 1).unwrap();
        assert_eq!(r.perf_reads, vec![0], "perf state leaked across launches");
    }
}
