//! The DPU interpreter: executes [`Program`]s over the simulated memories
//! with exact pipeline timing.
//!
//! All tasklets run the *same* program (the DPU's SIMT model, paper §3.1),
//! distinguished only by [`crate::isa::Instr::TaskletId`]. The interpreter
//! asks the [`Pipeline`] which tasklet issues next, executes one instruction
//! for it, and reports total cycles, instruction count, DMA statistics, a
//! subroutine profile and every performance-counter reading.
//!
//! ## The Fig. 3.1 microbenchmark harness
//!
//! [`crate::asm::profile_harness`] reproduces the paper's
//! cycle-per-operation methodology: a program arms the perfcounter, executes
//! `-O0`-style code for one operation (operand loads from stack slots, the
//! operation, a store), reads the counter and halts. The harness carries 24
//! overhead issue slots (perfcounter library calls, operand setup with
//! `movi` pairs for 32-bit maxima, stack traffic) so that with the
//! single-tasklet issue rate of one instruction per 11 cycles the measured
//! totals reproduce Table 3.1 within ~1.5 % (see [`crate::subroutines`]).

use crate::error::{Error, Result};
use crate::exec::{self, ExecInstr, ExecProgram, OP_COUNT};
use crate::isa::{Instr, Program, Reg, Width};
use crate::memory::{DmaEngine, Mram, Wram};
use crate::params::{DpuParams, REGS_PER_TASKLET};
use crate::perfcounter::PerfCounter;
use crate::pipeline::Pipeline;
use crate::profiler::Profiler;
use pim_trace::{DmaDirection, NullSink, TraceEvent, TraceSink};

/// Default cycle budget for [`Machine::run`]; generous enough for every
/// kernel in the repository while still catching infinite loops.
pub const DEFAULT_CYCLE_BUDGET: u64 = 50_000_000_000;

/// Statistics of one program run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunResult {
    /// Total elapsed cycles including final pipeline drain.
    pub cycles: u64,
    /// Instructions issued (subroutine bodies included).
    pub instructions: u64,
    /// Issue slots left idle (pipeline under-utilisation).
    pub idle_cycles: u64,
    /// Cycles spent in MRAM DMA transfers.
    pub dma_cycles: u64,
    /// Number of DMA transfers.
    pub dma_transfers: u64,
    /// Bytes moved over DMA.
    pub dma_bytes: u64,
    /// Every value read through `perfcounter_get`, in execution order.
    pub perf_reads: Vec<u64>,
    /// DPU log: `(tasklet, value)` pairs emitted by `trace`, in execution
    /// order (the host-side `dpu_log_read` view).
    pub trace: Vec<(usize, u32)>,
    /// Executed-instruction histogram by mnemonic class (subroutine bodies
    /// count as one `call` plus their issue slots in `instructions`).
    pub op_histogram: std::collections::BTreeMap<&'static str, u64>,
    /// Subroutine occurrence profile of the run.
    pub profile: Profiler,
    /// Instructions issued by each tasklet (index = tasklet id); the basis
    /// of the tasklet-occupancy metric.
    pub issue_per_tasklet: Vec<u64>,
}

impl RunResult {
    /// Wall-clock seconds at the device frequency in `params`.
    #[must_use]
    pub fn seconds(&self, params: &DpuParams) -> f64 {
        params.cycles_to_seconds(self.cycles)
    }
}

#[derive(Debug, Clone)]
struct Tasklet {
    pc: u32,
    regs: [u32; REGS_PER_TASKLET],
    /// Remaining pure-issue slots of an in-flight subroutine body.
    burst: u64,
}

impl Tasklet {
    fn new() -> Self {
        Self { pc: 0, regs: [0; REGS_PER_TASKLET], burst: 0 }
    }

    fn get(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    fn set(&mut self, r: Reg, v: u32) {
        if r.index() != 0 {
            self.regs[r.index()] = v;
        }
    }
}

/// One simulated DPU: memories, DMA engine and pipeline-accurate interpreter.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Device parameters in force.
    pub params: DpuParams,
    /// Working RAM (shared by all tasklets).
    pub wram: Wram,
    /// Main RAM (host-visible).
    pub mram: Mram,
    /// DMA engine between MRAM and WRAM.
    pub dma: DmaEngine,
    perf: PerfCounter,
}

impl Default for Machine {
    fn default() -> Self {
        Self::new(DpuParams::default())
    }
}

impl Machine {
    /// A machine with the given device parameters.
    #[must_use]
    pub fn new(params: DpuParams) -> Self {
        Self {
            params,
            wram: Wram::new(params.wram_bytes),
            mram: Mram::new(params.mram_bytes),
            dma: DmaEngine::new(
                params.dma_setup_cycles,
                params.dma_bytes_per_cycle,
                crate::params::DMA_MAX_TRANSFER_BYTES,
            ),
            perf: PerfCounter::new(),
        }
    }

    /// Run `program` on `tasklets` hardware threads until all halt.
    ///
    /// # Errors
    /// Any interpreter fault ([`Error::PcOutOfRange`], memory bounds,
    /// [`Error::CycleBudgetExceeded`] after [`DEFAULT_CYCLE_BUDGET`] cycles,
    /// …).
    pub fn run(&mut self, program: &Program, tasklets: usize) -> Result<RunResult> {
        self.run_with_budget(program, tasklets, DEFAULT_CYCLE_BUDGET)
    }

    /// Like [`Machine::run`] with an explicit cycle budget.
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_with_budget(
        &mut self,
        program: &Program,
        tasklets: usize,
        budget: u64,
    ) -> Result<RunResult> {
        self.run_traced_with_budget(program, tasklets, budget, &mut NullSink)
    }

    /// Like [`Machine::run`], recording cycle-stamped [`TraceEvent`]s into
    /// `sink` as the kernel executes.
    ///
    /// Tracing is purely observational: with any sink (including the
    /// recording ones) the returned cycle counts are bit-identical to an
    /// untraced run.
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_traced(
        &mut self,
        program: &Program,
        tasklets: usize,
        sink: &mut dyn TraceSink,
    ) -> Result<RunResult> {
        self.run_traced_with_budget(program, tasklets, DEFAULT_CYCLE_BUDGET, sink)
    }

    /// Like [`Machine::run_traced`] with an explicit cycle budget.
    ///
    /// Decodes `program` into its [`ExecProgram`] form on every call; hot
    /// launch-many callers should pre-decode once and use
    /// [`Machine::run_exec_traced_with_budget`] instead.
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_traced_with_budget(
        &mut self,
        program: &Program,
        tasklets: usize,
        budget: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<RunResult> {
        // Decode without validating: `Machine::run*` has always left branch
        // targets runtime-checked (`PcOutOfRange` only if executed).
        let code: Vec<ExecInstr> = program
            .instrs
            .iter()
            .map(|&instr| ExecInstr { instr, op: exec::op_id(&instr) })
            .collect();
        self.run_code(&code, tasklets, budget, sink)
    }

    /// Run a pre-decoded program on `tasklets` hardware threads until all
    /// halt. Semantically identical to [`Machine::run`] on
    /// [`ExecProgram::source`], without the per-launch decode.
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_exec(&mut self, exec: &ExecProgram, tasklets: usize) -> Result<RunResult> {
        self.run_exec_with_budget(exec, tasklets, DEFAULT_CYCLE_BUDGET)
    }

    /// Like [`Machine::run_exec`] with an explicit cycle budget.
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_exec_with_budget(
        &mut self,
        exec: &ExecProgram,
        tasklets: usize,
        budget: u64,
    ) -> Result<RunResult> {
        self.run_code(exec.code(), tasklets, budget, &mut NullSink)
    }

    /// Like [`Machine::run_exec`], recording cycle-stamped [`TraceEvent`]s
    /// into `sink` as the kernel executes.
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_exec_traced(
        &mut self,
        exec: &ExecProgram,
        tasklets: usize,
        sink: &mut dyn TraceSink,
    ) -> Result<RunResult> {
        self.run_exec_traced_with_budget(exec, tasklets, DEFAULT_CYCLE_BUDGET, sink)
    }

    /// Like [`Machine::run_exec_traced`] with an explicit cycle budget.
    ///
    /// # Errors
    /// See [`Machine::run`].
    pub fn run_exec_traced_with_budget(
        &mut self,
        exec: &ExecProgram,
        tasklets: usize,
        budget: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<RunResult> {
        self.run_code(exec.code(), tasklets, budget, sink)
    }

    /// The interpreter core over a decoded instruction stream.
    ///
    /// Scheduling state is tracked incrementally — `live` (non-halted),
    /// `parked` (at a barrier) and `runnable_count` are counters updated at
    /// state transitions rather than flag vectors rescanned every issue
    /// slot — and the op histogram is a fixed-size array indexed by opcode
    /// id, folded into the public `BTreeMap` once at run end. With a single
    /// tasklet the mutex/barrier machinery is bypassed entirely: a barrier
    /// releases immediately and a lock can never block, so neither needs
    /// bookkeeping.
    fn run_code(
        &mut self,
        code: &[ExecInstr],
        tasklets: usize,
        budget: u64,
        sink: &mut dyn TraceSink,
    ) -> Result<RunResult> {
        if tasklets == 0 || tasklets > self.params.max_tasklets {
            return Err(Error::BadTaskletCount {
                requested: tasklets,
                max: self.params.max_tasklets,
            });
        }
        let iram_bytes = code.len() * crate::isa::INSTR_BYTES;
        if iram_bytes > self.params.iram_bytes {
            return Err(Error::ProgramTooLarge {
                bytes: iram_bytes,
                iram_bytes: self.params.iram_bytes,
            });
        }

        let mut pipeline = Pipeline::with_stages(tasklets, u64::from(self.params.pipeline_stages));
        let mut threads: Vec<Tasklet> = (0..tasklets).map(|_| Tasklet::new()).collect();
        // The DMA engine's streaming port (2 bytes/cycle) is a shared
        // resource: concurrent transfers from different tasklets serialize
        // their data movement, while the fixed setup latency overlaps.
        let mut dma_stream_free: u64 = 0;
        let single = tasklets == 1;
        let mut runnable = vec![!code.is_empty(); tasklets];
        // Incremental scheduling counters, updated at state transitions:
        // `live` = non-halted tasklets, `parked` = tasklets waiting at a
        // barrier, `runnable_count` = tasklets the dispatcher may pick.
        // Every live, non-runnable tasklet is either parked or blocked on a
        // mutex, so `live - parked` is the mutex-blocked population.
        let mut live = if code.is_empty() { 0 } else { tasklets };
        let mut runnable_count = live;
        let mut parked = 0usize;
        // Barrier bookkeeping: tasklets parked at a barrier are temporarily
        // not runnable; when every live (non-halted) tasklet is parked, all
        // release. Tasklets blocked on a mutex count as live, so a barrier
        // cannot release past them (matching hardware semantics — and
        // making a mutex held across a barrier a detectable deadlock).
        let mut at_barrier = vec![false; tasklets];
        // Per-opcode-id issue counts; folded into the public histogram map
        // only once the run completes.
        let mut op_counts = [0u64; OP_COUNT];
        // Hardware mutexes: owner per id plus FIFO wait queues.
        let mut mutex_owner: std::collections::HashMap<u8, usize> =
            std::collections::HashMap::new();
        let mut mutex_waiters: std::collections::HashMap<u8, std::collections::VecDeque<usize>> =
            std::collections::HashMap::new();
        let mut result = RunResult::default();
        let dma_cycles_before = self.dma.total_cycles;
        let dma_transfers_before = self.dma.transfers;
        let dma_bytes_before = self.dma.total_bytes;
        if sink.is_enabled() {
            sink.record(TraceEvent::KernelLaunch { tasklets: tasklets as u8, cycle: 0 });
        }

        loop {
            // Release a full barrier: every live tasklet is parked. (A lone
            // tasklet never parks — its barriers release at the issue slot.)
            if !single && parked > 0 && parked == live {
                for (r, b) in runnable.iter_mut().zip(at_barrier.iter_mut()) {
                    if *b {
                        *b = false;
                        *r = true;
                    }
                }
                runnable_count += parked;
                parked = 0;
            }
            if runnable_count == 0 {
                if live == 0 {
                    break; // clean completion
                }
                return Err(Error::Deadlock { at_barrier: parked, on_mutex: live - parked });
            }
            let Some(t) = pipeline.pick(&runnable) else { break };
            if pipeline.elapsed() > budget {
                return Err(Error::CycleBudgetExceeded { budget });
            }
            let th = &mut threads[t];
            if th.burst > 0 {
                th.burst -= 1;
                continue;
            }
            let pc = th.pc as usize;
            let &ExecInstr { instr, op } =
                code.get(pc).ok_or(Error::PcOutOfRange { pc, len: code.len() })?;

            op_counts[op as usize] += 1;
            let mut next_pc = th.pc.wrapping_add(1);
            match instr {
                Instr::Nop => {}
                Instr::Halt => {
                    runnable[t] = false;
                    runnable_count -= 1;
                    live -= 1;
                }
                Instr::Movi { rd, imm } => th.set(rd, imm as u32),
                Instr::Mov { rd, ra } => {
                    let v = th.get(ra);
                    th.set(rd, v);
                }
                Instr::Add { rd, ra, rb } => {
                    let v = th.get(ra).wrapping_add(th.get(rb));
                    th.set(rd, v);
                }
                Instr::Addi { rd, ra, imm } => {
                    let v = th.get(ra).wrapping_add(imm as u32);
                    th.set(rd, v);
                }
                Instr::Sub { rd, ra, rb } => {
                    let v = th.get(ra).wrapping_sub(th.get(rb));
                    th.set(rd, v);
                }
                Instr::And { rd, ra, rb } => {
                    let v = th.get(ra) & th.get(rb);
                    th.set(rd, v);
                }
                Instr::Or { rd, ra, rb } => {
                    let v = th.get(ra) | th.get(rb);
                    th.set(rd, v);
                }
                Instr::Xor { rd, ra, rb } => {
                    let v = th.get(ra) ^ th.get(rb);
                    th.set(rd, v);
                }
                Instr::Lsl { rd, ra, rb } => {
                    let v = th.get(ra) << (th.get(rb) & 31);
                    th.set(rd, v);
                }
                Instr::Lsr { rd, ra, rb } => {
                    let v = th.get(ra) >> (th.get(rb) & 31);
                    th.set(rd, v);
                }
                Instr::Asr { rd, ra, rb } => {
                    let v = ((th.get(ra) as i32) >> (th.get(rb) & 31)) as u32;
                    th.set(rd, v);
                }
                Instr::Lsli { rd, ra, sh } => {
                    let v = th.get(ra) << (sh & 31);
                    th.set(rd, v);
                }
                Instr::Lsri { rd, ra, sh } => {
                    let v = th.get(ra) >> (sh & 31);
                    th.set(rd, v);
                }
                Instr::Asri { rd, ra, sh } => {
                    let v = ((th.get(ra) as i32) >> (sh & 31)) as u32;
                    th.set(rd, v);
                }
                Instr::Mul8 { rd, ra, rb } => {
                    let v = (th.get(ra) & 0xff) * (th.get(rb) & 0xff);
                    th.set(rd, v);
                }
                Instr::Popcount { rd, ra } => {
                    let v = th.get(ra).count_ones();
                    th.set(rd, v);
                }
                Instr::Load { width, rd, ra, off } => {
                    let addr = th.get(ra).wrapping_add(off as u32) as usize;
                    let v = match width {
                        Width::B => self.wram.read_u8(addr)?,
                        Width::H => self.wram.read_u16(addr)?,
                        Width::W => self.wram.read_u32(addr)?,
                    };
                    th.set(rd, v);
                }
                Instr::Store { width, ra, off, rs } => {
                    let addr = th.get(ra).wrapping_add(off as u32) as usize;
                    let v = th.get(rs);
                    match width {
                        Width::B => self.wram.write_u8(addr, v)?,
                        Width::H => self.wram.write_u16(addr, v)?,
                        Width::W => self.wram.write_u32(addr, v)?,
                    }
                }
                Instr::MramRead { wram, mram, len } | Instr::MramWrite { wram, mram, len } => {
                    let w = th.get(wram) as usize;
                    let m = th.get(mram) as usize;
                    let l = th.get(len) as usize;
                    let cycles = if matches!(instr, Instr::MramRead { .. }) {
                        self.dma.read(&self.mram, &mut self.wram, m, w, l)?
                    } else {
                        self.dma.write(&mut self.mram, &self.wram, m, w, l)?
                    };
                    let setup = self.params.dma_setup_cycles;
                    let stream = cycles.saturating_sub(setup);
                    let issue = pipeline_issue_cycle(&pipeline);
                    let start = issue.max(dma_stream_free);
                    dma_stream_free = start + stream;
                    // The issuing tasklet blocks for queueing + setup + its
                    // own streaming time.
                    pipeline.stall(t, (start - issue) + setup + stream);
                    if sink.is_enabled() {
                        sink.record(TraceEvent::DmaTransfer {
                            tasklet: t as u8,
                            direction: if matches!(instr, Instr::MramRead { .. }) {
                                DmaDirection::MramToWram
                            } else {
                                DmaDirection::WramToMram
                            },
                            bytes: l as u32,
                            start_cycle: start,
                            cycles: setup + stream,
                        });
                    }
                }
                Instr::Branch { cond, ra, rb, target } => {
                    if cond.eval(th.get(ra), th.get(rb)) {
                        next_pc = target;
                    }
                }
                Instr::Jump { target } => next_pc = target,
                Instr::Jal { rd, target } => {
                    th.set(rd, th.pc.wrapping_add(1));
                    next_pc = target;
                }
                Instr::Jr { ra } => next_pc = th.get(ra),
                Instr::CallSub { sub, rd, ra, rb } => {
                    let a = th.get(ra);
                    let b = th.get(rb);
                    if matches!(
                        sub,
                        crate::subroutines::Subroutine::Divsi3
                            | crate::subroutines::Subroutine::Modsi3
                    ) && b == 0
                    {
                        return Err(Error::DivisionByZero { pc });
                    }
                    th.set(rd, sub.eval(a, b));
                    th.burst = sub.instruction_count().saturating_sub(1);
                    result.profile.record(sub);
                    if sink.is_enabled() {
                        sink.record(TraceEvent::SubroutineEnter {
                            tasklet: t as u8,
                            symbol: sub.symbol(),
                            cycle: pipeline_issue_cycle(&pipeline),
                            instructions: sub.instruction_count() as u32,
                        });
                    }
                }
                Instr::PerfConfig => {
                    // `pipeline.pick` already advanced time past this issue;
                    // the counter bases on the issue cycle itself.
                    self.perf.config(pipeline_issue_cycle(&pipeline));
                }
                Instr::PerfRead { rd } => {
                    let v = self.perf.read(pipeline_issue_cycle(&pipeline));
                    th.set(rd, (v & 0xffff_ffff) as u32);
                    result.perf_reads.push(v);
                }
                Instr::TaskletId { rd } => th.set(rd, t as u32),
                Instr::Trace { ra } => result.trace.push((t, th.get(ra))),
                Instr::Barrier => {
                    if single {
                        // A lone live tasklet satisfies the barrier at its
                        // own arrival: no park, immediate release.
                        if sink.is_enabled() {
                            sink.record(TraceEvent::TaskletBarrier {
                                tasklet: t as u8,
                                cycle: pipeline_issue_cycle(&pipeline),
                                released: true,
                            });
                        }
                    } else {
                        at_barrier[t] = true;
                        runnable[t] = false;
                        runnable_count -= 1;
                        parked += 1;
                        if sink.is_enabled() {
                            sink.record(TraceEvent::TaskletBarrier {
                                tasklet: t as u8,
                                cycle: pipeline_issue_cycle(&pipeline),
                                released: parked == live,
                            });
                        }
                    }
                }
                Instr::MutexLock { id } => {
                    // A lone tasklet always acquires immediately; no state
                    // to track since no other tasklet can observe the lock.
                    if !single {
                        if let Some(&owner) = mutex_owner.get(&id) {
                            if owner != t {
                                // Block until released; re-execute the lock on
                                // wake (pc stays on this instruction).
                                mutex_waiters.entry(id).or_default().push_back(t);
                                runnable[t] = false;
                                runnable_count -= 1;
                                next_pc = th.pc;
                            }
                            // Re-locking an owned mutex is a no-op (the real
                            // hardware would deadlock; the simulator is lenient
                            // so generated code can be defensive).
                        } else {
                            mutex_owner.insert(id, t);
                        }
                    }
                }
                Instr::MutexUnlock { id } => {
                    if !single && mutex_owner.get(&id) == Some(&t) {
                        mutex_owner.remove(&id);
                        if let Some(queue) = mutex_waiters.get_mut(&id) {
                            if let Some(next) = queue.pop_front() {
                                runnable[next] = true;
                                runnable_count += 1;
                            }
                        }
                    }
                }
            }
            th.pc = next_pc;
        }

        result.op_histogram = exec::fold_histogram(&op_counts);
        result.cycles = pipeline.elapsed();
        result.instructions = pipeline.issued();
        result.idle_cycles = pipeline.idle_cycles();
        result.dma_cycles = self.dma.total_cycles - dma_cycles_before;
        result.dma_transfers = self.dma.transfers - dma_transfers_before;
        result.dma_bytes = self.dma.total_bytes - dma_bytes_before;
        result.issue_per_tasklet = pipeline.issued_per_tasklet().to_vec();
        if sink.is_enabled() {
            sink.record(TraceEvent::KernelComplete {
                cycle: result.cycles,
                instructions: result.instructions,
            });
        }
        Ok(result)
    }
}

/// The cycle at which the most recent instruction issued.
fn pipeline_issue_cycle(p: &Pipeline) -> u64 {
    // `elapsed` = last_issue + stages.
    p.elapsed().saturating_sub(p.stages())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cond, Instr as I, Reg};
    use crate::subroutines::Subroutine;

    fn r(i: u8) -> Reg {
        Reg(i)
    }

    #[test]
    fn arithmetic_loop_computes_sum() {
        // sum 1..=10 into r2.
        let p = Program::new(vec![
            I::Movi { rd: r(1), imm: 10 },
            I::Movi { rd: r(2), imm: 0 },
            I::Add { rd: r(2), ra: r(2), rb: r(1) },
            I::Addi { rd: r(1), ra: r(1), imm: -1 },
            I::Branch { cond: Cond::Ne, ra: r(1), rb: r(0), target: 2 },
            I::Store { width: Width::W, ra: r(0), off: 0, rs: r(2) },
            I::Halt,
        ]);
        let mut m = Machine::default();
        let res = m.run(&p, 1).unwrap();
        assert_eq!(m.wram.read_u32(0).unwrap(), 55);
        // 2 setup + 10×3 loop + store + halt = 34 issue slots.
        assert_eq!(res.instructions, 34);
        assert_eq!(res.cycles, 33 * 11 + 11);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let p = Program::new(vec![
            I::Movi { rd: r(0), imm: 42 },
            I::Store { width: Width::W, ra: r(0), off: 0, rs: r(0) },
            I::Halt,
        ]);
        let mut m = Machine::default();
        m.wram.write_u32(0, 7).unwrap();
        m.run(&p, 1).unwrap();
        assert_eq!(m.wram.read_u32(0).unwrap(), 0);
    }

    #[test]
    fn tasklets_write_disjoint_slots() {
        // Each tasklet stores its id at wram[4*id].
        let p = Program::new(vec![
            I::TaskletId { rd: r(1) },
            I::Lsli { rd: r(2), ra: r(1), sh: 2 },
            I::Store { width: Width::W, ra: r(2), off: 0, rs: r(1) },
            I::Halt,
        ]);
        let mut m = Machine::default();
        m.run(&p, 8).unwrap();
        for id in 0..8u32 {
            assert_eq!(m.wram.read_u32(4 * id as usize).unwrap(), id);
        }
    }

    #[test]
    fn subroutine_burst_costs_issue_slots() {
        let body = |with_sub: bool| {
            let op = if with_sub {
                I::CallSub { sub: Subroutine::Mulsf3, rd: r(3), ra: r(1), rb: r(2) }
            } else {
                I::Add { rd: r(3), ra: r(1), rb: r(2) }
            };
            Program::new(vec![
                I::Movi { rd: r(1), imm: 1067450368 }, // 1.5f32 bits... any value
                I::Movi { rd: r(2), imm: 1075838976 },
                op,
                I::Halt,
            ])
        };
        let mut m1 = Machine::default();
        let cheap = m1.run(&body(false), 1).unwrap();
        let mut m2 = Machine::default();
        let costly = m2.run(&body(true), 1).unwrap();
        let extra = Subroutine::Mulsf3.instruction_count() - 1;
        assert_eq!(costly.instructions, cheap.instructions + extra);
        assert_eq!(costly.cycles, cheap.cycles + extra * 11);
        assert_eq!(costly.profile.occurrences(Subroutine::Mulsf3), 1);
    }

    #[test]
    fn mul8_is_hardware_and_correct() {
        let p = Program::new(vec![
            I::Movi { rd: r(1), imm: 0x1_02 }, // low byte 0x02
            I::Movi { rd: r(2), imm: 0xff },
            I::Mul8 { rd: r(3), ra: r(1), rb: r(2) },
            I::Store { width: Width::W, ra: r(0), off: 0, rs: r(3) },
            I::Halt,
        ]);
        let mut m = Machine::default();
        m.run(&p, 1).unwrap();
        assert_eq!(m.wram.read_u32(0).unwrap(), 2 * 255);
    }

    #[test]
    fn dma_round_trip_and_stall_accounting() {
        let p = Program::new(vec![
            I::Movi { rd: r(1), imm: 0 },    // wram addr
            I::Movi { rd: r(2), imm: 4096 }, // mram addr
            I::Movi { rd: r(3), imm: 2048 }, // len
            I::MramRead { wram: r(1), mram: r(2), len: r(3) },
            I::Load { width: Width::W, rd: r(4), ra: r(1), off: 0 },
            I::Addi { rd: r(4), ra: r(4), imm: 1 },
            I::Store { width: Width::W, ra: r(1), off: 0, rs: r(4) },
            I::MramWrite { wram: r(1), mram: r(2), len: r(3) },
            I::Halt,
        ]);
        let mut m = Machine::default();
        m.mram.write_u32(4096, 41).unwrap();
        let res = m.run(&p, 1).unwrap();
        assert_eq!(m.mram.read_u32(4096).unwrap(), 42);
        assert_eq!(res.dma_transfers, 2);
        assert_eq!(res.dma_bytes, 4096);
        assert_eq!(res.dma_cycles, 2 * 1049);
        // The two DMA stalls dominate: 9 instructions but > 2000 cycles.
        assert!(res.cycles > 2 * 1049);
    }

    #[test]
    fn perfcounter_measures_bracketed_region() {
        let p = Program::new(vec![
            I::PerfConfig,
            I::Nop,
            I::Nop,
            I::Nop,
            I::PerfRead { rd: r(5) },
            I::Halt,
        ]);
        let mut m = Machine::default();
        let res = m.run(&p, 1).unwrap();
        assert_eq!(res.perf_reads, vec![44]); // 4 instructions × 11 cycles
    }

    #[test]
    fn infinite_loop_hits_budget() {
        let p = Program::new(vec![I::Jump { target: 0 }]);
        let mut m = Machine::default();
        let err = m.run_with_budget(&p, 1, 10_000).unwrap_err();
        assert!(matches!(err, Error::CycleBudgetExceeded { budget: 10_000 }));
    }

    #[test]
    fn division_by_zero_is_reported() {
        let p = Program::new(vec![
            I::Movi { rd: r(1), imm: 5 },
            I::CallSub { sub: Subroutine::Divsi3, rd: r(2), ra: r(1), rb: r(0) },
            I::Halt,
        ]);
        let mut m = Machine::default();
        assert!(matches!(m.run(&p, 1), Err(Error::DivisionByZero { pc: 1 })));
    }

    #[test]
    fn bad_tasklet_count_rejected() {
        let p = Program::new(vec![I::Halt]);
        let mut m = Machine::default();
        assert!(matches!(m.run(&p, 0), Err(Error::BadTaskletCount { .. })));
        assert!(matches!(m.run(&p, 25), Err(Error::BadTaskletCount { .. })));
        assert!(m.run(&p, 24).is_ok());
    }

    #[test]
    fn program_too_large_for_iram() {
        let p = Program::new(vec![I::Nop; 24 * 1024 / 8 + 1]);
        let mut m = Machine::default();
        assert!(matches!(m.run(&p, 1), Err(Error::ProgramTooLarge { .. })));
    }

    #[test]
    fn jal_jr_subroutine_linkage() {
        // main: jal r31, func; store r9; halt. func: movi r9, 99; jr r31.
        let p = Program::new(vec![
            I::Jal { rd: r(31), target: 3 },
            I::Store { width: Width::W, ra: r(0), off: 0, rs: r(9) },
            I::Halt,
            I::Movi { rd: r(9), imm: 99 },
            I::Jr { ra: r(31) },
        ]);
        let mut m = Machine::default();
        m.run(&p, 1).unwrap();
        assert_eq!(m.wram.read_u32(0).unwrap(), 99);
    }

    #[test]
    fn popcount_counts_bits() {
        let p = Program::new(vec![
            I::Movi { rd: r(1), imm: 0b1011_0110 },
            I::Popcount { rd: r(2), ra: r(1) },
            I::Store { width: Width::W, ra: r(0), off: 0, rs: r(2) },
            I::Halt,
        ]);
        let mut m = Machine::default();
        m.run(&p, 1).unwrap();
        assert_eq!(m.wram.read_u32(0).unwrap(), 5);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn trace_records_values_in_execution_order() {
        let p = assemble(
            "movi r1, 10\n\
             loop: trace r1\n\
             addi r1, r1, -1\n\
             bne r1, r0, loop\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        let res = m.run(&p, 1).unwrap();
        let values: Vec<u32> = res.trace.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, (1..=10).rev().collect::<Vec<u32>>());
        assert!(res.trace.iter().all(|&(t, _)| t == 0));
    }

    #[test]
    fn trace_tags_the_emitting_tasklet() {
        let p = assemble("me r1\ntrace r1\nhalt\n").unwrap();
        let mut m = Machine::default();
        let res = m.run(&p, 4).unwrap();
        let mut pairs = res.trace.clone();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }
}

#[cfg(test)]
mod trace_sink_tests {
    use super::*;
    use crate::asm::assemble;
    use pim_trace::TraceBuffer;

    fn dma_heavy_program() -> Program {
        assemble(
            "me r1\n\
             lsli r2, r1, 8\n\
             movi r3, 64\n\
             mram.read r2, r2, r3\n\
             call __mulsi3 r4, r3, r3\n\
             barrier\n\
             mram.write r2, r2, r3\n\
             halt\n",
        )
        .unwrap()
    }

    #[test]
    fn traced_run_records_all_event_kinds() {
        let p = dma_heavy_program();
        let mut m = Machine::default();
        let mut buf = TraceBuffer::new();
        let res = m.run_traced(&p, 4, &mut buf).unwrap();
        let launches = buf.count_matching(|e| matches!(e, TraceEvent::KernelLaunch { .. }));
        let completes = buf.count_matching(|e| matches!(e, TraceEvent::KernelComplete { .. }));
        let dmas = buf.count_matching(|e| matches!(e, TraceEvent::DmaTransfer { .. }));
        let subs = buf.count_matching(|e| matches!(e, TraceEvent::SubroutineEnter { .. }));
        let barriers = buf.count_matching(|e| matches!(e, TraceEvent::TaskletBarrier { .. }));
        assert_eq!(launches, 1);
        assert_eq!(completes, 1);
        assert_eq!(dmas, 8, "4 tasklets × (read + write)");
        assert_eq!(subs, 4);
        assert_eq!(barriers, 4);
        assert_eq!(buf.dma_bytes(), res.dma_bytes);
        assert_eq!(buf.dma_cycles(), res.dma_cycles);
    }

    #[test]
    fn null_sink_run_is_bit_identical_to_untraced() {
        let p = dma_heavy_program();
        let mut m1 = Machine::default();
        let untraced = m1.run(&p, 4).unwrap();
        let mut m2 = Machine::default();
        let nulled = m2.run_traced(&p, 4, &mut NullSink).unwrap();
        let mut m3 = Machine::default();
        let mut buf = TraceBuffer::new();
        let recorded = m3.run_traced(&p, 4, &mut buf).unwrap();
        assert_eq!(untraced, nulled);
        assert_eq!(untraced, recorded, "recording must not perturb timing");
    }

    #[test]
    fn trace_max_end_cycle_equals_run_cycles() {
        let p = dma_heavy_program();
        let mut m = Machine::default();
        let mut buf = TraceBuffer::new();
        let res = m.run_traced(&p, 3, &mut buf).unwrap();
        assert_eq!(buf.max_end_cycle(), res.cycles);
    }

    #[test]
    fn exactly_one_barrier_arrival_releases() {
        let p = dma_heavy_program();
        let mut m = Machine::default();
        let mut buf = TraceBuffer::new();
        m.run_traced(&p, 4, &mut buf).unwrap();
        let released =
            buf.count_matching(|e| matches!(e, TraceEvent::TaskletBarrier { released: true, .. }));
        assert_eq!(released, 1);
    }

    #[test]
    fn per_tasklet_issue_counts_cover_all_instructions() {
        let p = dma_heavy_program();
        let mut m = Machine::default();
        let res = m.run(&p, 4).unwrap();
        assert_eq!(res.issue_per_tasklet.len(), 4);
        assert_eq!(res.issue_per_tasklet.iter().sum::<u64>(), res.instructions);
        assert!(res.issue_per_tasklet.iter().all(|&n| n > 0));
    }
}

#[cfg(test)]
mod barrier_tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn barrier_orders_producer_before_consumers() {
        // Tasklet 0 writes a value, everyone barriers, all read it.
        // Without the barrier the consumers would race ahead (tasklet 0's
        // store happens thousands of cycles into its long setup loop).
        let p = assemble(
            "me r1\n\
             bne r1, r0, wait\n\
             movi r2, 500        ; producer: long setup loop\n\
             spin: addi r2, r2, -1\n\
             bne r2, r0, spin\n\
             movi r3, 77\n\
             sw r0, 0x40, r3     ; publish\n\
             wait: barrier\n\
             lw r4, r0, 0x40     ; every tasklet reads after the barrier\n\
             lsli r5, r1, 2\n\
             addi r5, r5, 0x80\n\
             sw r5, 0, r4\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        m.run(&p, 8).unwrap();
        for t in 0..8 {
            assert_eq!(m.wram.read_u32(0x80 + 4 * t).unwrap(), 77, "tasklet {t}");
        }
    }

    #[test]
    fn single_tasklet_barrier_is_a_noop() {
        let p = assemble("movi r1, 5\nbarrier\naddi r1, r1, 1\nsw r0, 0, r1\nhalt\n").unwrap();
        let mut m = Machine::default();
        m.run(&p, 1).unwrap();
        assert_eq!(m.wram.read_u32(0).unwrap(), 6);
    }

    #[test]
    fn halted_tasklets_do_not_block_a_barrier() {
        // Odd tasklets halt immediately; even ones barrier and proceed.
        let p = assemble(
            "me r1\n\
             movi r2, 1\n\
             and r3, r1, r2\n\
             bne r3, r0, out\n\
             barrier\n\
             movi r4, 9\n\
             lsli r5, r1, 2\n\
             sw r5, 0x40, r4\n\
             out: halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        m.run(&p, 4).unwrap();
        assert_eq!(m.wram.read_u32(0x40).unwrap(), 9);
        assert_eq!(m.wram.read_u32(0x48).unwrap(), 9);
        assert_eq!(m.wram.read_u32(0x44).unwrap(), 0); // tasklet 1 halted
    }

    #[test]
    fn consecutive_barriers_work() {
        let p = assemble(
            "me r1\n\
             barrier\n\
             barrier\n\
             barrier\n\
             lsli r2, r1, 2\n\
             movi r3, 1\n\
             sw r2, 0, r3\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        m.run(&p, 6).unwrap();
        for t in 0..6 {
            assert_eq!(m.wram.read_u32(4 * t).unwrap(), 1);
        }
    }
}

#[cfg(test)]
mod histogram_tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn histogram_counts_executed_not_static_instructions() {
        let p = assemble(
            "movi r1, 5\n\
             loop: addi r1, r1, -1\n\
             bne r1, r0, loop\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        let res = m.run(&p, 1).unwrap();
        assert_eq!(res.op_histogram["movi"], 1);
        assert_eq!(res.op_histogram["add"], 5); // addi executes 5 times
        assert_eq!(res.op_histogram["branch"], 5);
        assert_eq!(res.op_histogram["halt"], 1);
    }

    #[test]
    fn histogram_counts_subroutine_calls_once() {
        let p = assemble("movi r1, 3\ncall __mulsf3 r2, r1, r1\nhalt\n").unwrap();
        let mut m = Machine::default();
        let res = m.run(&p, 1).unwrap();
        assert_eq!(res.op_histogram["call"], 1);
        // ...while the issue-slot count reflects the full body.
        assert!(res.instructions > 200);
    }
}

#[cfg(test)]
mod mutex_tests {
    use super::*;
    use crate::asm::assemble;

    /// The classic race: N tasklets each add 1 to a shared counter 50
    /// times with a load-add-store sequence. Without the mutex the
    /// interleaved sequences lose updates; with it, the count is exact.
    fn counter_program(locked: bool) -> Program {
        let (lock, unlock) = if locked { ("mutex.lock 3\n", "mutex.unlock 3\n") } else { ("", "") };
        assemble(&format!(
            "movi r2, 50\n\
             loop:\n\
             {lock}\
             lw r3, r0, 0x40\n\
             addi r3, r3, 1\n\
             sw r0, 0x40, r3\n\
             {unlock}\
             addi r2, r2, -1\n\
             bne r2, r0, loop\n\
             halt\n"
        ))
        .unwrap()
    }

    #[test]
    fn mutex_makes_shared_counter_exact() {
        let mut m = Machine::default();
        m.run(&counter_program(true), 8).unwrap();
        assert_eq!(m.wram.read_u32(0x40).unwrap(), 8 * 50);
    }

    #[test]
    fn without_mutex_updates_are_lost() {
        let mut m = Machine::default();
        m.run(&counter_program(false), 8).unwrap();
        let got = m.wram.read_u32(0x40).unwrap();
        assert!(got < 8 * 50, "race must lose updates, got {got}");
        assert!(got >= 50, "at least one tasklet's worth survives");
    }

    #[test]
    fn waiters_wake_fifo_and_all_finish() {
        // Every tasklet takes the same mutex once; completion proves no
        // lost wakeups.
        let p = assemble(
            "me r1\n\
             mutex.lock 0\n\
             lw r3, r0, 0x40\n\
             addi r3, r3, 1\n\
             sw r0, 0x40, r3\n\
             mutex.unlock 0\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        m.run(&p, 24).unwrap();
        assert_eq!(m.wram.read_u32(0x40).unwrap(), 24);
    }

    #[test]
    fn relock_by_owner_is_lenient() {
        let p = assemble(
            "mutex.lock 1\nmutex.lock 1\nmutex.unlock 1\nmovi r1, 7\nsw r0, 0, r1\nhalt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        m.run(&p, 1).unwrap();
        assert_eq!(m.wram.read_u32(0).unwrap(), 7);
    }

    #[test]
    fn unlock_of_unowned_mutex_is_ignored() {
        let p = assemble("mutex.unlock 9\nmovi r1, 5\nsw r0, 0, r1\nhalt\n").unwrap();
        let mut m = Machine::default();
        m.run(&p, 2).unwrap();
        assert_eq!(m.wram.read_u32(0).unwrap(), 5);
    }
}

#[cfg(test)]
mod barrier_mutex_interaction_tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn barrier_waits_for_mutex_blocked_tasklets() {
        // Tasklet 0 grabs the mutex, spins, releases, then barriers.
        // Tasklets 1.. must first take the mutex (blocking on t0), then
        // barrier. If the barrier released while they were mutex-blocked,
        // the final store would be unordered.
        let p = assemble(
            "me r1\n\
             bne r1, r0, others\n\
             mutex.lock 0\n\
             movi r2, 300\n\
             spin: addi r2, r2, -1\n\
             bne r2, r0, spin\n\
             movi r3, 1\n\
             sw r0, 0x40, r3      ; publish inside the lock\n\
             mutex.unlock 0\n\
             jmp sync\n\
             others:\n\
             mutex.lock 0\n\
             lw r4, r0, 0x40      ; must see t0's publish\n\
             lsli r5, r1, 2\n\
             sw r5, 0x80, r4\n\
             mutex.unlock 0\n\
             sync: barrier\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        m.run(&p, 6).unwrap();
        for t in 1..6 {
            assert_eq!(m.wram.read_u32(0x80 + 4 * t).unwrap(), 1, "tasklet {t}");
        }
    }

    #[test]
    fn mutex_held_across_barrier_deadlocks_detectably() {
        // Tasklet 0 locks and goes to the barrier while holding the mutex;
        // the others need the mutex before their barrier → deadlock, which
        // must surface as a budget error rather than a hang or bogus
        // release.
        let p = assemble(
            "me r1\n\
             bne r1, r0, others\n\
             mutex.lock 0\n\
             barrier\n\
             mutex.unlock 0\n\
             halt\n\
             others:\n\
             mutex.lock 0\n\
             mutex.unlock 0\n\
             barrier\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        let err = m.run_with_budget(&p, 3, 50_000).unwrap_err();
        assert!(matches!(err, Error::Deadlock { at_barrier: 1, on_mutex: 2 }), "got {err}");
    }
}

#[cfg(test)]
mod deadlock_accounting_tests {
    //! Regression tests that the `Error::Deadlock` populations derived from
    //! the incremental live/parked counters stay exact.

    use super::*;
    use crate::asm::assemble;

    #[test]
    fn cross_mutex_deadlock_counts_only_mutex_blockers() {
        // Tasklet 0: lock 0, spin, lock 1. Tasklet 1: lock 1, spin, lock 0.
        // Both spins overlap, so each tasklet holds its first mutex when it
        // requests the other's → pure mutex deadlock, nobody at a barrier.
        let p = assemble(
            "me r1\n\
             bne r1, r0, second\n\
             mutex.lock 0\n\
             movi r2, 20\n\
             s0: addi r2, r2, -1\n\
             bne r2, r0, s0\n\
             mutex.lock 1\n\
             halt\n\
             second:\n\
             mutex.lock 1\n\
             movi r2, 20\n\
             s1: addi r2, r2, -1\n\
             bne r2, r0, s1\n\
             mutex.lock 0\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        let err = m.run_with_budget(&p, 2, 100_000).unwrap_err();
        assert!(matches!(err, Error::Deadlock { at_barrier: 0, on_mutex: 2 }), "got {err}");
    }

    #[test]
    fn mixed_barrier_and_mutex_deadlock_splits_populations() {
        // Tasklet 0 parks at the barrier holding mutex 0; tasklets 1 and 2
        // block on that mutex; tasklet 3 parks at the barrier. The barrier
        // can never fill (two live tasklets are mutex-blocked) → deadlock
        // with two parked and two blocked.
        let p = assemble(
            "me r1\n\
             movi r2, 3\n\
             bne r1, r2, not3\n\
             barrier\n\
             halt\n\
             not3:\n\
             bne r1, r0, waiters\n\
             mutex.lock 0\n\
             barrier\n\
             halt\n\
             waiters:\n\
             mutex.lock 0\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        let err = m.run_with_budget(&p, 4, 100_000).unwrap_err();
        assert!(matches!(err, Error::Deadlock { at_barrier: 2, on_mutex: 2 }), "got {err}");
    }

    #[test]
    fn deadlock_counts_ignore_halted_tasklets() {
        // Of four tasklets, two halt immediately. Tasklet 0 parks at the
        // barrier holding mutex 0 and tasklet 1 blocks on that mutex: the
        // deadlock populations must count only the two live tasklets.
        let p = assemble(
            "me r1\n\
             movi r2, 2\n\
             blt r1, r2, low\n\
             halt\n\
             low:\n\
             bne r1, r0, waiter\n\
             mutex.lock 0\n\
             barrier\n\
             halt\n\
             waiter:\n\
             mutex.lock 0\n\
             halt\n",
        )
        .unwrap();
        let mut m = Machine::default();
        let err = m.run_with_budget(&p, 4, 100_000).unwrap_err();
        assert!(matches!(err, Error::Deadlock { at_barrier: 1, on_mutex: 1 }), "got {err}");
    }
}
