//! Pre-decoded execution form of a [`Program`].
//!
//! The interpreter's hot loop used to pay two avoidable costs on every
//! issued instruction: a `BTreeMap<&str, u64>` update for the op histogram
//! (a string-keyed tree walk) and, through [`Program`], no way to attach
//! per-instruction metadata computed once. [`ExecProgram`] fixes both: it
//! pairs every instruction with a compact opcode-class id assigned at
//! decode time, so the interpreter counts ops in a fixed-size array
//! indexed by id and folds the array into the public `BTreeMap` only when
//! the run completes.
//!
//! Decoding is cheap (one linear pass) but still worth caching:
//! [`ExecProgram::compile`] also validates control flow, so the
//! load-once/launch-many host path (`DpuSet::load` +
//! `DpuSet::launch_loaded`) validates and decodes exactly once instead of
//! per launch.

use crate::compile::CompiledProgram;
use crate::isa::{Instr, Program};
use crate::profiler::CycleAttribution;
use std::sync::Arc;

/// Number of distinct mnemonic classes (see [`Instr::mnemonic`]).
pub const OP_COUNT: usize = 26;

/// Mnemonic of each opcode-class id; `OP_MNEMONICS[op_id(i)]` equals
/// `i.mnemonic()` for every instruction `i` (enforced by tests).
pub const OP_MNEMONICS: [&str; OP_COUNT] = [
    "nop",
    "halt",
    "movi",
    "mov",
    "add",
    "sub",
    "and",
    "or",
    "xor",
    "lsl",
    "lsr",
    "asr",
    "mul8",
    "popcount",
    "load",
    "store",
    "mram.read",
    "mram.write",
    "branch",
    "jump",
    "call",
    "perf",
    "me",
    "trace",
    "barrier",
    "mutex",
];

/// Compact opcode-class id of an instruction (index into
/// [`OP_MNEMONICS`]).
#[must_use]
pub fn op_id(instr: &Instr) -> u8 {
    match instr {
        Instr::Nop => 0,
        Instr::Halt => 1,
        Instr::Movi { .. } => 2,
        Instr::Mov { .. } => 3,
        Instr::Add { .. } | Instr::Addi { .. } => 4,
        Instr::Sub { .. } => 5,
        Instr::And { .. } => 6,
        Instr::Or { .. } => 7,
        Instr::Xor { .. } => 8,
        Instr::Lsl { .. } | Instr::Lsli { .. } => 9,
        Instr::Lsr { .. } | Instr::Lsri { .. } => 10,
        Instr::Asr { .. } | Instr::Asri { .. } => 11,
        Instr::Mul8 { .. } => 12,
        Instr::Popcount { .. } => 13,
        Instr::Load { .. } => 14,
        Instr::Store { .. } => 15,
        Instr::MramRead { .. } => 16,
        Instr::MramWrite { .. } => 17,
        Instr::Branch { .. } => 18,
        Instr::Jump { .. } | Instr::Jal { .. } | Instr::Jr { .. } => 19,
        Instr::CallSub { .. } => 20,
        Instr::PerfConfig | Instr::PerfRead { .. } => 21,
        Instr::TaskletId { .. } => 22,
        Instr::Trace { .. } => 23,
        Instr::Barrier => 24,
        Instr::MutexLock { .. } | Instr::MutexUnlock { .. } => 25,
    }
}

/// One pre-decoded instruction slot: the instruction plus its opcode id,
/// kept adjacent so the interpreter touches one cache line per fetch.
#[derive(Debug, Clone, Copy)]
pub struct ExecInstr {
    /// The instruction itself.
    pub instr: Instr,
    /// Opcode-class id, an index into [`OP_MNEMONICS`].
    pub op: u8,
}

/// True when `instr` touches only the executing tasklet's private register
/// file: no shared memory, no control flow, no synchronization, and no
/// timing-visible side effect (DMA, perfcounter, DPU log). These are the
/// ops a superblock may contain — reordering them *across tasklets* is
/// unobservable, which is what lets the interpreter fast-forward a whole
/// block in one dispatch (see [`Superblocks`]).
#[must_use]
pub fn is_superblock_op(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::Nop
            | Instr::Movi { .. }
            | Instr::Mov { .. }
            | Instr::Add { .. }
            | Instr::Addi { .. }
            | Instr::Sub { .. }
            | Instr::And { .. }
            | Instr::Or { .. }
            | Instr::Xor { .. }
            | Instr::Lsl { .. }
            | Instr::Lsli { .. }
            | Instr::Lsr { .. }
            | Instr::Lsri { .. }
            | Instr::Asr { .. }
            | Instr::Asri { .. }
            | Instr::Mul8 { .. }
            | Instr::Popcount { .. }
            | Instr::TaskletId { .. }
    )
}

/// Sentinel in the pc → head index map: this pc does not start a block.
const NO_HEAD: u32 = u32::MAX;

/// Memoized facts about one superblock, computed once at decode time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMeta {
    /// First instruction of the block.
    pub start: u32,
    /// Number of instructions (every superblock op is a single issue slot,
    /// so this is also the block's issue-slot count).
    pub len: u32,
    /// Sparse opcode-id histogram of the block: `(op_id, count)` pairs,
    /// folded into the run's fixed-size op array in one pass instead of
    /// one increment per executed instruction.
    pub op_counts: Vec<(u8, u32)>,
}

impl BlockMeta {
    /// Cycles a lone tasklet spends issuing this block under a pipeline of
    /// the given depth: one issue per rotation.
    #[must_use]
    pub fn cycle_delta(&self, stages: u64) -> u64 {
        u64::from(self.len) * stages
    }
}

/// Superblock decomposition of a decoded instruction stream.
///
/// A *superblock* is a maximal straight-line run of [`is_superblock_op`]
/// instructions containing no branch, synchronization (barrier/mutex), DMA
/// or perfcounter op, split additionally at every static branch/jump
/// target (side entries start their own block). The interpreter uses the
/// decomposition to replay a whole block in one dispatch with a memoized
/// cycle delta — see `Machine::run_exec` — which is observationally
/// invisible because block ops touch only the executing tasklet's private
/// registers.
///
/// Two views are kept:
///
/// * `len_at(pc)` — how many block instructions start at `pc` (a suffix
///   length, so entering a block mid-way through a computed jump still
///   fast-forwards the remainder);
/// * `head_meta(pc)` — the memoized [`BlockMeta`] when `pc` is a block
///   head (program start, post-block fall-through, or branch target).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblocks {
    /// Per-pc: number of consecutive superblock ops executable from this
    /// pc before the next block boundary (0 when `code[pc]` is not a
    /// superblock op).
    exec_len: Vec<u32>,
    /// Per-pc: index into `heads`, or [`NO_HEAD`].
    head_idx: Vec<u32>,
    /// Memoized metadata of every block head.
    heads: Vec<BlockMeta>,
}

impl Superblocks {
    /// Decompose `code` into superblocks. One linear pass over the stream
    /// plus one pass over the blocks to memoize their op counts.
    #[must_use]
    pub fn analyze(code: &[ExecInstr]) -> Self {
        let n = code.len();
        // Raw suffix run lengths of superblock ops.
        let mut run = vec![0u32; n];
        for i in (0..n).rev() {
            if is_superblock_op(&code[i].instr) {
                run[i] = 1 + if i + 1 < n { run[i + 1] } else { 0 };
            }
        }
        // Entry points: program start, fall-through after a non-block op,
        // and every static control-flow target (side entries split blocks
        // so entering at a head always covers a whole memoized block).
        let mut is_entry = vec![false; n];
        if n > 0 {
            is_entry[0] = true;
        }
        for (i, slot) in code.iter().enumerate() {
            match slot.instr {
                Instr::Branch { target, .. }
                | Instr::Jump { target }
                | Instr::Jal { target, .. }
                    if (target as usize) < n =>
                {
                    is_entry[target as usize] = true;
                }
                _ => {}
            }
            if !is_superblock_op(&slot.instr) && i + 1 < n {
                is_entry[i + 1] = true;
            }
        }
        // Executable length from each pc: the suffix run truncated at the
        // next entry point.
        let mut exec_len = vec![0u32; n];
        for i in (0..n).rev() {
            if run[i] == 0 {
                continue;
            }
            exec_len[i] = if i + 1 < n && run[i + 1] > 0 && !is_entry[i + 1] {
                exec_len[i + 1] + 1
            } else {
                1
            };
        }
        // Memoize per-head op counts.
        let mut head_idx = vec![NO_HEAD; n];
        let mut heads = Vec::new();
        for pc in 0..n {
            if exec_len[pc] == 0 || !is_entry[pc] {
                continue;
            }
            let len = exec_len[pc];
            let mut counts: Vec<(u8, u32)> = Vec::new();
            for slot in &code[pc..pc + len as usize] {
                match counts.iter_mut().find(|(op, _)| *op == slot.op) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((slot.op, 1)),
                }
            }
            head_idx[pc] = heads.len() as u32;
            heads.push(BlockMeta { start: pc as u32, len, op_counts: counts });
        }
        Self { exec_len, head_idx, heads }
    }

    /// Number of consecutive superblock instructions executable from `pc`
    /// before the next block boundary; 0 when `pc` is out of range or the
    /// instruction there is not a superblock op.
    #[must_use]
    pub fn len_at(&self, pc: usize) -> u32 {
        self.exec_len.get(pc).copied().unwrap_or(0)
    }

    /// Memoized metadata when `pc` is a block head.
    #[must_use]
    pub fn head_meta(&self, pc: usize) -> Option<&BlockMeta> {
        let idx = *self.head_idx.get(pc)?;
        if idx == NO_HEAD {
            None
        } else {
            Some(&self.heads[idx as usize])
        }
    }

    /// Every block head, in program order.
    #[must_use]
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.heads
    }

    /// The canonical partition of the instruction stream: superblocks and
    /// singleton units for every non-block instruction, as `(start, len)`
    /// pairs. Concatenated in order, the pieces reproduce `0..len` exactly
    /// (pinned by a proptest).
    #[must_use]
    pub fn partition(&self) -> Vec<(u32, u32)> {
        let mut parts = Vec::new();
        let mut pc = 0usize;
        while pc < self.exec_len.len() {
            let len = self.exec_len[pc].max(1);
            parts.push((pc as u32, len));
            pc += len as usize;
        }
        parts
    }
}

/// A [`Program`] decoded into its dense execution form.
///
/// Holds the source program (for labels, display and host symbol lookups)
/// alongside the decoded instruction stream the interpreter executes.
#[derive(Debug, Clone)]
pub struct ExecProgram {
    source: Program,
    code: Vec<ExecInstr>,
    superblocks: Superblocks,
    /// Threaded-code translation of the superblocks (see
    /// [`crate::compile`]); behind an [`Arc`] so cloning the program for
    /// parallel launches shares the compiled closures.
    compiled: Arc<CompiledProgram>,
}

impl ExecProgram {
    /// Validate `program` (as [`Program::validate`]) and decode it.
    ///
    /// This is the entry point for cached execution: compile once, launch
    /// many times without re-validating.
    ///
    /// # Errors
    /// [`crate::Error::PcOutOfRange`] naming the first bad branch target.
    pub fn compile(program: &Program) -> crate::Result<Self> {
        program.validate()?;
        Ok(Self::decode(program))
    }

    /// Decode without validating control flow. Branch targets stay
    /// runtime-checked (the interpreter bounds-checks every fetch), which
    /// preserves the semantics of [`crate::Machine::run`] on programs
    /// whose invalid targets are never executed.
    #[must_use]
    pub fn decode(program: &Program) -> Self {
        let code: Vec<ExecInstr> =
            program.instrs.iter().map(|&instr| ExecInstr { instr, op: op_id(&instr) }).collect();
        let superblocks = Superblocks::analyze(&code);
        let compiled = Arc::new(CompiledProgram::compile_all(&code, &superblocks));
        Self { source: program.clone(), code, superblocks, compiled }
    }

    /// The threaded-code translation of the superblocks, used by the
    /// compiled execution tier ([`crate::machine::Engine::Compiled`]).
    #[must_use]
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// Recompile only the blocks whose profiled entry count meets
    /// `min_entries`, using the attribution gathered by a prior
    /// [`crate::machine::Machine::run_exec_profiled`] run. Cold blocks fall
    /// back to the superblock engine at run time.
    pub fn recompile_hot(&mut self, attr: &CycleAttribution, min_entries: u64) {
        self.compiled = Arc::new(CompiledProgram::compile_hot(
            &self.code,
            &self.superblocks,
            attr,
            min_entries,
        ));
    }

    /// Recompile keeping only the blocks for which `keep(start_pc)` returns
    /// true. Test hook for forcing deopt at arbitrary block boundaries.
    #[doc(hidden)]
    pub fn recompile_filtered(&mut self, keep: impl FnMut(u32) -> bool) {
        self.compiled =
            Arc::new(CompiledProgram::compile_filtered(&self.code, &self.superblocks, keep));
    }

    /// The source program this execution form was decoded from.
    #[must_use]
    pub fn source(&self) -> &Program {
        &self.source
    }

    /// The decoded instruction stream.
    #[must_use]
    pub fn code(&self) -> &[ExecInstr] {
        &self.code
    }

    /// The superblock decomposition computed at decode time.
    #[must_use]
    pub fn superblocks(&self) -> &Superblocks {
        &self.superblocks
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// IRAM footprint in bytes.
    #[must_use]
    pub fn iram_bytes(&self) -> usize {
        self.source.iram_bytes()
    }
}

/// Fold a fixed-size opcode-count array into the public histogram form.
/// Only classes that executed appear, matching the lazily-inserted map the
/// interpreter used to build per instruction.
#[must_use]
pub fn fold_histogram(counts: &[u64; OP_COUNT]) -> std::collections::BTreeMap<&'static str, u64> {
    let mut map = std::collections::BTreeMap::new();
    for (i, &c) in counts.iter().enumerate() {
        if c > 0 {
            map.insert(OP_MNEMONICS[i], c);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cond, Reg, Width};
    use crate::subroutines::Subroutine;

    /// One instance of every instruction variant.
    fn all_variants() -> Vec<Instr> {
        let r = Reg(1);
        vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Movi { rd: r, imm: 1 },
            Instr::Mov { rd: r, ra: r },
            Instr::Add { rd: r, ra: r, rb: r },
            Instr::Addi { rd: r, ra: r, imm: 1 },
            Instr::Sub { rd: r, ra: r, rb: r },
            Instr::And { rd: r, ra: r, rb: r },
            Instr::Or { rd: r, ra: r, rb: r },
            Instr::Xor { rd: r, ra: r, rb: r },
            Instr::Lsl { rd: r, ra: r, rb: r },
            Instr::Lsr { rd: r, ra: r, rb: r },
            Instr::Asr { rd: r, ra: r, rb: r },
            Instr::Lsli { rd: r, ra: r, sh: 1 },
            Instr::Lsri { rd: r, ra: r, sh: 1 },
            Instr::Asri { rd: r, ra: r, sh: 1 },
            Instr::Mul8 { rd: r, ra: r, rb: r },
            Instr::Popcount { rd: r, ra: r },
            Instr::Load { width: Width::W, rd: r, ra: r, off: 0 },
            Instr::Store { width: Width::W, ra: r, off: 0, rs: r },
            Instr::MramRead { wram: r, mram: r, len: r },
            Instr::MramWrite { wram: r, mram: r, len: r },
            Instr::Branch { cond: Cond::Ne, ra: r, rb: r, target: 0 },
            Instr::Jump { target: 0 },
            Instr::Jal { rd: r, target: 0 },
            Instr::Jr { ra: r },
            Instr::CallSub { sub: Subroutine::Mulsi3, rd: r, ra: r, rb: r },
            Instr::PerfConfig,
            Instr::PerfRead { rd: r },
            Instr::TaskletId { rd: r },
            Instr::Trace { ra: r },
            Instr::Barrier,
            Instr::MutexLock { id: 0 },
            Instr::MutexUnlock { id: 0 },
        ]
    }

    #[test]
    fn op_ids_agree_with_mnemonics_for_every_variant() {
        for i in all_variants() {
            let id = op_id(&i) as usize;
            assert!(id < OP_COUNT, "{i:?}");
            assert_eq!(OP_MNEMONICS[id], i.mnemonic(), "{i:?}");
        }
    }

    #[test]
    fn every_op_id_is_reachable() {
        let mut seen = [false; OP_COUNT];
        for i in all_variants() {
            seen[op_id(&i) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "unused opcode id: {seen:?}");
    }

    #[test]
    fn compile_validates_and_decode_does_not() {
        let bad = Program::new(vec![Instr::Jump { target: 7 }]);
        assert!(ExecProgram::compile(&bad).is_err());
        let exec = ExecProgram::decode(&bad);
        assert_eq!(exec.len(), 1);
        assert_eq!(exec.iram_bytes(), 8);
    }

    #[test]
    fn decoded_stream_mirrors_source() {
        let p = Program::new(all_variants());
        let exec = ExecProgram::compile(&p).unwrap();
        assert_eq!(exec.len(), p.len());
        assert!(!exec.is_empty());
        assert_eq!(exec.source(), &p);
        for (ei, i) in exec.code().iter().zip(&p.instrs) {
            assert_eq!(ei.instr, *i);
            assert_eq!(ei.op, op_id(i));
        }
    }

    #[test]
    fn fold_histogram_skips_untouched_classes() {
        let mut counts = [0u64; OP_COUNT];
        counts[op_id(&Instr::Nop) as usize] = 3;
        counts[op_id(&Instr::Barrier) as usize] = 1;
        let map = fold_histogram(&counts);
        assert_eq!(map.len(), 2);
        assert_eq!(map["nop"], 3);
        assert_eq!(map["barrier"], 1);
    }

    fn decode_instrs(instrs: Vec<Instr>) -> Vec<ExecInstr> {
        instrs.into_iter().map(|instr| ExecInstr { op: op_id(&instr), instr }).collect()
    }

    #[test]
    fn superblock_classification_matches_variant_census() {
        // Exactly the register-private, single-slot ops qualify.
        for instr in all_variants() {
            let pure = is_superblock_op(&instr);
            let expect = !matches!(
                instr,
                Instr::Load { .. }
                    | Instr::Store { .. }
                    | Instr::MramRead { .. }
                    | Instr::MramWrite { .. }
                    | Instr::Branch { .. }
                    | Instr::Jump { .. }
                    | Instr::Jal { .. }
                    | Instr::Jr { .. }
                    | Instr::CallSub { .. }
                    | Instr::PerfConfig
                    | Instr::PerfRead { .. }
                    | Instr::Trace { .. }
                    | Instr::Barrier
                    | Instr::MutexLock { .. }
                    | Instr::MutexUnlock { .. }
                    | Instr::Halt
            );
            assert_eq!(pure, expect, "{instr:?}");
        }
    }

    #[test]
    fn superblocks_split_at_branch_targets_and_impure_ops() {
        let r = Reg(1);
        // 0: movi  ┐ block A truncated at 1 (branch target)
        // 1: addi  ┐ block B (len 2: side entry starts its own block)
        // 2: add   ┘
        // 3: bne -> 1
        // 4: movi  ─ block C (len 1)
        // 5: halt
        let code = decode_instrs(vec![
            Instr::Movi { rd: r, imm: 7 },
            Instr::Addi { rd: r, ra: r, imm: 1 },
            Instr::Add { rd: r, ra: r, rb: r },
            Instr::Branch { cond: Cond::Ne, ra: r, rb: Reg(0), target: 1 },
            Instr::Movi { rd: r, imm: 0 },
            Instr::Halt,
        ]);
        let sb = Superblocks::analyze(&code);

        assert_eq!(sb.len_at(0), 1, "block A truncated at the side entry");
        assert_eq!(sb.len_at(1), 2);
        assert_eq!(sb.len_at(2), 1, "suffix of block B");
        assert_eq!(sb.len_at(3), 0, "branch is not a block op");
        assert_eq!(sb.len_at(4), 1);
        assert_eq!(sb.len_at(5), 0, "halt is not a block op");
        assert_eq!(sb.len_at(6), 0, "out of range");

        // Heads: 0 (program start), 1 (branch target), 4 (fall-through
        // after the branch). pc 2 is a mid-block suffix, not a head.
        assert_eq!(sb.head_meta(0).map(|m| (m.start, m.len)), Some((0, 1)));
        assert_eq!(sb.head_meta(1).map(|m| (m.start, m.len)), Some((1, 2)));
        assert!(sb.head_meta(2).is_none());
        assert_eq!(sb.head_meta(4).map(|m| (m.start, m.len)), Some((4, 1)));

        // Memoized op counts for block B: addi and add share the "add"
        // opcode class, so one entry with count 2.
        let meta = sb.head_meta(1).unwrap();
        let add = op_id(&Instr::Add { rd: r, ra: r, rb: r });
        assert_eq!(meta.op_counts, vec![(add, 2)]);
        assert_eq!(meta.cycle_delta(11), 22);
    }

    #[test]
    fn superblock_partition_covers_stream_exactly() {
        let r = Reg(2);
        let code = decode_instrs(vec![
            Instr::Movi { rd: r, imm: 3 },
            Instr::Add { rd: r, ra: r, rb: r },
            Instr::Barrier,
            Instr::Sub { rd: r, ra: r, rb: r },
            Instr::Jump { target: 0 },
        ]);
        let sb = Superblocks::analyze(&code);
        assert_eq!(sb.partition(), vec![(0, 2), (2, 1), (3, 1), (4, 1)]);
        // Every head is the start of a partition piece with the same length.
        for meta in sb.blocks() {
            assert!(sb.partition().contains(&(meta.start, meta.len)), "{meta:?}");
        }
    }

    #[test]
    fn superblocks_of_empty_program_are_empty() {
        let sb = Superblocks::analyze(&[]);
        assert_eq!(sb.len_at(0), 0);
        assert!(sb.head_meta(0).is_none());
        assert!(sb.blocks().is_empty());
        assert!(sb.partition().is_empty());
    }
}
