//! Pre-decoded execution form of a [`Program`].
//!
//! The interpreter's hot loop used to pay two avoidable costs on every
//! issued instruction: a `BTreeMap<&str, u64>` update for the op histogram
//! (a string-keyed tree walk) and, through [`Program`], no way to attach
//! per-instruction metadata computed once. [`ExecProgram`] fixes both: it
//! pairs every instruction with a compact opcode-class id assigned at
//! decode time, so the interpreter counts ops in a fixed-size array
//! indexed by id and folds the array into the public `BTreeMap` only when
//! the run completes.
//!
//! Decoding is cheap (one linear pass) but still worth caching:
//! [`ExecProgram::compile`] also validates control flow, so the
//! load-once/launch-many host path (`DpuSet::load` +
//! `DpuSet::launch_loaded`) validates and decodes exactly once instead of
//! per launch.

use crate::isa::{Instr, Program};

/// Number of distinct mnemonic classes (see [`Instr::mnemonic`]).
pub const OP_COUNT: usize = 26;

/// Mnemonic of each opcode-class id; `OP_MNEMONICS[op_id(i)]` equals
/// `i.mnemonic()` for every instruction `i` (enforced by tests).
pub const OP_MNEMONICS: [&str; OP_COUNT] = [
    "nop",
    "halt",
    "movi",
    "mov",
    "add",
    "sub",
    "and",
    "or",
    "xor",
    "lsl",
    "lsr",
    "asr",
    "mul8",
    "popcount",
    "load",
    "store",
    "mram.read",
    "mram.write",
    "branch",
    "jump",
    "call",
    "perf",
    "me",
    "trace",
    "barrier",
    "mutex",
];

/// Compact opcode-class id of an instruction (index into
/// [`OP_MNEMONICS`]).
#[must_use]
pub fn op_id(instr: &Instr) -> u8 {
    match instr {
        Instr::Nop => 0,
        Instr::Halt => 1,
        Instr::Movi { .. } => 2,
        Instr::Mov { .. } => 3,
        Instr::Add { .. } | Instr::Addi { .. } => 4,
        Instr::Sub { .. } => 5,
        Instr::And { .. } => 6,
        Instr::Or { .. } => 7,
        Instr::Xor { .. } => 8,
        Instr::Lsl { .. } | Instr::Lsli { .. } => 9,
        Instr::Lsr { .. } | Instr::Lsri { .. } => 10,
        Instr::Asr { .. } | Instr::Asri { .. } => 11,
        Instr::Mul8 { .. } => 12,
        Instr::Popcount { .. } => 13,
        Instr::Load { .. } => 14,
        Instr::Store { .. } => 15,
        Instr::MramRead { .. } => 16,
        Instr::MramWrite { .. } => 17,
        Instr::Branch { .. } => 18,
        Instr::Jump { .. } | Instr::Jal { .. } | Instr::Jr { .. } => 19,
        Instr::CallSub { .. } => 20,
        Instr::PerfConfig | Instr::PerfRead { .. } => 21,
        Instr::TaskletId { .. } => 22,
        Instr::Trace { .. } => 23,
        Instr::Barrier => 24,
        Instr::MutexLock { .. } | Instr::MutexUnlock { .. } => 25,
    }
}

/// One pre-decoded instruction slot: the instruction plus its opcode id,
/// kept adjacent so the interpreter touches one cache line per fetch.
#[derive(Debug, Clone, Copy)]
pub struct ExecInstr {
    /// The instruction itself.
    pub instr: Instr,
    /// Opcode-class id, an index into [`OP_MNEMONICS`].
    pub op: u8,
}

/// A [`Program`] decoded into its dense execution form.
///
/// Holds the source program (for labels, display and host symbol lookups)
/// alongside the decoded instruction stream the interpreter executes.
#[derive(Debug, Clone)]
pub struct ExecProgram {
    source: Program,
    code: Vec<ExecInstr>,
}

impl ExecProgram {
    /// Validate `program` (as [`Program::validate`]) and decode it.
    ///
    /// This is the entry point for cached execution: compile once, launch
    /// many times without re-validating.
    ///
    /// # Errors
    /// [`crate::Error::PcOutOfRange`] naming the first bad branch target.
    pub fn compile(program: &Program) -> crate::Result<Self> {
        program.validate()?;
        Ok(Self::decode(program))
    }

    /// Decode without validating control flow. Branch targets stay
    /// runtime-checked (the interpreter bounds-checks every fetch), which
    /// preserves the semantics of [`crate::Machine::run`] on programs
    /// whose invalid targets are never executed.
    #[must_use]
    pub fn decode(program: &Program) -> Self {
        let code =
            program.instrs.iter().map(|&instr| ExecInstr { instr, op: op_id(&instr) }).collect();
        Self { source: program.clone(), code }
    }

    /// The source program this execution form was decoded from.
    #[must_use]
    pub fn source(&self) -> &Program {
        &self.source
    }

    /// The decoded instruction stream.
    #[must_use]
    pub fn code(&self) -> &[ExecInstr] {
        &self.code
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// IRAM footprint in bytes.
    #[must_use]
    pub fn iram_bytes(&self) -> usize {
        self.source.iram_bytes()
    }
}

/// Fold a fixed-size opcode-count array into the public histogram form.
/// Only classes that executed appear, matching the lazily-inserted map the
/// interpreter used to build per instruction.
#[must_use]
pub fn fold_histogram(counts: &[u64; OP_COUNT]) -> std::collections::BTreeMap<&'static str, u64> {
    let mut map = std::collections::BTreeMap::new();
    for (i, &c) in counts.iter().enumerate() {
        if c > 0 {
            map.insert(OP_MNEMONICS[i], c);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cond, Reg, Width};
    use crate::subroutines::Subroutine;

    /// One instance of every instruction variant.
    fn all_variants() -> Vec<Instr> {
        let r = Reg(1);
        vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Movi { rd: r, imm: 1 },
            Instr::Mov { rd: r, ra: r },
            Instr::Add { rd: r, ra: r, rb: r },
            Instr::Addi { rd: r, ra: r, imm: 1 },
            Instr::Sub { rd: r, ra: r, rb: r },
            Instr::And { rd: r, ra: r, rb: r },
            Instr::Or { rd: r, ra: r, rb: r },
            Instr::Xor { rd: r, ra: r, rb: r },
            Instr::Lsl { rd: r, ra: r, rb: r },
            Instr::Lsr { rd: r, ra: r, rb: r },
            Instr::Asr { rd: r, ra: r, rb: r },
            Instr::Lsli { rd: r, ra: r, sh: 1 },
            Instr::Lsri { rd: r, ra: r, sh: 1 },
            Instr::Asri { rd: r, ra: r, sh: 1 },
            Instr::Mul8 { rd: r, ra: r, rb: r },
            Instr::Popcount { rd: r, ra: r },
            Instr::Load { width: Width::W, rd: r, ra: r, off: 0 },
            Instr::Store { width: Width::W, ra: r, off: 0, rs: r },
            Instr::MramRead { wram: r, mram: r, len: r },
            Instr::MramWrite { wram: r, mram: r, len: r },
            Instr::Branch { cond: Cond::Ne, ra: r, rb: r, target: 0 },
            Instr::Jump { target: 0 },
            Instr::Jal { rd: r, target: 0 },
            Instr::Jr { ra: r },
            Instr::CallSub { sub: Subroutine::Mulsi3, rd: r, ra: r, rb: r },
            Instr::PerfConfig,
            Instr::PerfRead { rd: r },
            Instr::TaskletId { rd: r },
            Instr::Trace { ra: r },
            Instr::Barrier,
            Instr::MutexLock { id: 0 },
            Instr::MutexUnlock { id: 0 },
        ]
    }

    #[test]
    fn op_ids_agree_with_mnemonics_for_every_variant() {
        for i in all_variants() {
            let id = op_id(&i) as usize;
            assert!(id < OP_COUNT, "{i:?}");
            assert_eq!(OP_MNEMONICS[id], i.mnemonic(), "{i:?}");
        }
    }

    #[test]
    fn every_op_id_is_reachable() {
        let mut seen = [false; OP_COUNT];
        for i in all_variants() {
            seen[op_id(&i) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "unused opcode id: {seen:?}");
    }

    #[test]
    fn compile_validates_and_decode_does_not() {
        let bad = Program::new(vec![Instr::Jump { target: 7 }]);
        assert!(ExecProgram::compile(&bad).is_err());
        let exec = ExecProgram::decode(&bad);
        assert_eq!(exec.len(), 1);
        assert_eq!(exec.iram_bytes(), 8);
    }

    #[test]
    fn decoded_stream_mirrors_source() {
        let p = Program::new(all_variants());
        let exec = ExecProgram::compile(&p).unwrap();
        assert_eq!(exec.len(), p.len());
        assert!(!exec.is_empty());
        assert_eq!(exec.source(), &p);
        for (ei, i) in exec.code().iter().zip(&p.instrs) {
            assert_eq!(ei.instr, *i);
            assert_eq!(ei.op, op_id(i));
        }
    }

    #[test]
    fn fold_histogram_skips_untouched_classes() {
        let mut counts = [0u64; OP_COUNT];
        counts[op_id(&Instr::Nop) as usize] = 3;
        counts[op_id(&Instr::Barrier) as usize] = 1;
        let map = fold_histogram(&counts);
        assert_eq!(map.len(), 2);
        assert_eq!(map["nop"], 3);
        assert_eq!(map["barrier"], 1);
    }
}
