//! The simulated DPU instruction set.
//!
//! The real DPU executes a proprietary RISC ISA; the paper only relies on a
//! few of its properties — in-order single-issue execution, one instruction
//! slot per pipeline rotation, hardware support limited to 32-bit integer
//! add/sub/logic/shift plus an 8×8 multiply step, and software subroutines
//! for everything wider (paper §3.3). This module defines a compact ISA with
//! exactly those properties.
//!
//! Registers are 32-bit. `r0` is hardwired to zero (writes are discarded),
//! which keeps the assembler and generated kernels simple. Each tasklet has
//! its own register file of [`crate::params::REGS_PER_TASKLET`] registers.

use crate::subroutines::Subroutine;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A register name (`r0`..`r31`). `r0` always reads zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// The zero register.
    pub const ZERO: Reg = Reg(0);

    /// Numeric index of the register.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Branch comparison conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed greater-or-equal.
    Ge,
    /// Branch if unsigned less-than.
    Ltu,
    /// Branch if unsigned greater-or-equal.
    Geu,
}

impl Cond {
    /// Evaluate the condition over two register values.
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i32) < (b as i32),
            Cond::Ge => (a as i32) >= (b as i32),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Ge => "ge",
            Cond::Ltu => "ltu",
            Cond::Geu => "geu",
        };
        f.write_str(s)
    }
}

/// Width of a WRAM load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Width {
    /// One byte.
    B,
    /// Two bytes (halfword).
    H,
    /// Four bytes (word).
    W,
}

impl Width {
    /// Size of the access in bytes.
    #[must_use]
    pub fn bytes(self) -> usize {
        match self {
            Width::B => 1,
            Width::H => 2,
            Width::W => 4,
        }
    }
}

/// One DPU instruction.
///
/// Every variant occupies one issue slot in the pipeline except
/// [`Instr::CallSub`] (which occupies as many slots as the subroutine has
/// instructions) and the MRAM DMA variants (which block the issuing tasklet
/// for the Eq. 3.4 transfer duration).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // field meanings are uniform: rd dest, ra/rb sources
pub enum Instr {
    /// Do nothing for one slot.
    Nop,
    /// Stop this tasklet.
    Halt,
    /// `rd <- imm`.
    Movi { rd: Reg, imm: i32 },
    /// `rd <- ra`.
    Mov { rd: Reg, ra: Reg },
    /// `rd <- ra + rb` (wrapping).
    Add { rd: Reg, ra: Reg, rb: Reg },
    /// `rd <- ra + imm` (wrapping).
    Addi { rd: Reg, ra: Reg, imm: i32 },
    /// `rd <- ra - rb` (wrapping).
    Sub { rd: Reg, ra: Reg, rb: Reg },
    /// `rd <- ra & rb`.
    And { rd: Reg, ra: Reg, rb: Reg },
    /// `rd <- ra | rb`.
    Or { rd: Reg, ra: Reg, rb: Reg },
    /// `rd <- ra ^ rb`.
    Xor { rd: Reg, ra: Reg, rb: Reg },
    /// `rd <- ra << (rb & 31)`.
    Lsl { rd: Reg, ra: Reg, rb: Reg },
    /// `rd <- ra >> (rb & 31)` (logical).
    Lsr { rd: Reg, ra: Reg, rb: Reg },
    /// `rd <- ra >> (rb & 31)` (arithmetic).
    Asr { rd: Reg, ra: Reg, rb: Reg },
    /// `rd <- ra << sh`.
    Lsli { rd: Reg, ra: Reg, sh: u8 },
    /// `rd <- ra >> sh` (logical).
    Lsri { rd: Reg, ra: Reg, sh: u8 },
    /// `rd <- ra >> sh` (arithmetic).
    Asri { rd: Reg, ra: Reg, sh: u8 },
    /// Hardware 8×8 → 16-bit unsigned multiply step:
    /// `rd <- (ra & 0xff) * (rb & 0xff)`.
    ///
    /// This is the only multiplication the DPU supports in hardware; the
    /// compiler builds 8-bit multiplies from a handful of these (the paper's
    /// §5.2.2 quotes g(8) = 4 instructions) and calls `__mulsi3` for wider
    /// operands.
    Mul8 { rd: Reg, ra: Reg, rb: Reg },
    /// Population count: `rd <- popcount(ra)`.
    ///
    /// Binary neural networks reduce convolution to XNOR + popcount; the DPU
    /// exposes this as a native instruction.
    Popcount { rd: Reg, ra: Reg },
    /// WRAM load: `rd <- wram[ra + off]` (zero-extended).
    Load { width: Width, rd: Reg, ra: Reg, off: i32 },
    /// WRAM store: `wram[ra + off] <- rs`.
    Store { width: Width, ra: Reg, off: i32, rs: Reg },
    /// DMA read `len` bytes from MRAM address `mram` into WRAM address
    /// `wram`. Blocks the issuing tasklet for `25 + len/2` cycles (Eq. 3.4).
    MramRead { wram: Reg, mram: Reg, len: Reg },
    /// DMA write `len` bytes from WRAM address `wram` to MRAM address `mram`.
    MramWrite { wram: Reg, mram: Reg, len: Reg },
    /// Conditional branch to the absolute instruction index `target`.
    Branch { cond: Cond, ra: Reg, rb: Reg, target: u32 },
    /// Unconditional jump to instruction index `target`.
    Jump { target: u32 },
    /// Jump-and-link: `rd <- pc + 1; pc <- target`.
    Jal { rd: Reg, target: u32 },
    /// Jump to the address held in `ra` (returns from `Jal`).
    Jr { ra: Reg },
    /// Invoke a software subroutine (see [`Subroutine`]).
    ///
    /// Functionally the result is computed immediately; for timing the
    /// tasklet issues as many slots as the subroutine's calibrated
    /// instruction count, and the profiler records one occurrence — exactly
    /// what `dpu-profiling` reports on real hardware (paper Fig. 3.2).
    CallSub { sub: Subroutine, rd: Reg, ra: Reg, rb: Reg },
    /// Arm the performance counter (maps to `perfcounter_config`).
    PerfConfig,
    /// Read the performance counter into `rd` (maps to `perfcounter_get`).
    PerfRead { rd: Reg },
    /// `rd <-` index of the executing tasklet (maps to `me()`).
    TaskletId { rd: Reg },
    /// Emit the value of `ra` to the DPU log — the simulator's stand-in
    /// for the SDK's buffered `printf` that the host drains with
    /// `dpu_log_read` after a launch.
    Trace { ra: Reg },
    /// Block until every live tasklet reaches a barrier (the SDK's
    /// `barrier_wait(&my_barrier)`). Tasklets that have already halted do
    /// not participate.
    Barrier,
    /// Acquire hardware mutex `id` (the SDK's `mutex_lock`); blocks until
    /// available. The DPU provides a small set of hardware mutexes for
    /// tasklet-cooperative kernels.
    MutexLock {
        /// Mutex index (0..=255).
        id: u8,
    },
    /// Release hardware mutex `id` (`mutex_unlock`).
    MutexUnlock {
        /// Mutex index (0..=255).
        id: u8,
    },
}

impl Instr {
    /// Short mnemonic class for statistics (loads/stores collapse by
    /// width, branches by condition).
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instr::Nop => "nop",
            Instr::Halt => "halt",
            Instr::Movi { .. } => "movi",
            Instr::Mov { .. } => "mov",
            Instr::Add { .. } | Instr::Addi { .. } => "add",
            Instr::Sub { .. } => "sub",
            Instr::And { .. } => "and",
            Instr::Or { .. } => "or",
            Instr::Xor { .. } => "xor",
            Instr::Lsl { .. } | Instr::Lsli { .. } => "lsl",
            Instr::Lsr { .. } | Instr::Lsri { .. } => "lsr",
            Instr::Asr { .. } | Instr::Asri { .. } => "asr",
            Instr::Mul8 { .. } => "mul8",
            Instr::Popcount { .. } => "popcount",
            Instr::Load { .. } => "load",
            Instr::Store { .. } => "store",
            Instr::MramRead { .. } => "mram.read",
            Instr::MramWrite { .. } => "mram.write",
            Instr::Branch { .. } => "branch",
            Instr::Jump { .. } | Instr::Jal { .. } | Instr::Jr { .. } => "jump",
            Instr::CallSub { .. } => "call",
            Instr::PerfConfig | Instr::PerfRead { .. } => "perf",
            Instr::TaskletId { .. } => "me",
            Instr::Trace { .. } => "trace",
            Instr::Barrier => "barrier",
            Instr::MutexLock { .. } | Instr::MutexUnlock { .. } => "mutex",
        }
    }

    /// Whether this instruction ends the tasklet.
    #[must_use]
    pub fn is_halt(&self) -> bool {
        matches!(self, Instr::Halt)
    }

    /// Number of pipeline issue slots the instruction occupies.
    ///
    /// Regular instructions take one slot; a subroutine call takes one slot
    /// per subroutine instruction (the call is inlined into the issue
    /// stream). DMA instructions take one slot — their stall is modelled
    /// separately by the pipeline.
    #[must_use]
    pub fn issue_slots(&self) -> u64 {
        match self {
            Instr::CallSub { sub, .. } => sub.instruction_count(),
            _ => 1,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
            Instr::Movi { rd, imm } => write!(f, "movi {rd}, {imm}"),
            Instr::Mov { rd, ra } => write!(f, "mov {rd}, {ra}"),
            Instr::Add { rd, ra, rb } => write!(f, "add {rd}, {ra}, {rb}"),
            Instr::Addi { rd, ra, imm } => write!(f, "addi {rd}, {ra}, {imm}"),
            Instr::Sub { rd, ra, rb } => write!(f, "sub {rd}, {ra}, {rb}"),
            Instr::And { rd, ra, rb } => write!(f, "and {rd}, {ra}, {rb}"),
            Instr::Or { rd, ra, rb } => write!(f, "or {rd}, {ra}, {rb}"),
            Instr::Xor { rd, ra, rb } => write!(f, "xor {rd}, {ra}, {rb}"),
            Instr::Lsl { rd, ra, rb } => write!(f, "lsl {rd}, {ra}, {rb}"),
            Instr::Lsr { rd, ra, rb } => write!(f, "lsr {rd}, {ra}, {rb}"),
            Instr::Asr { rd, ra, rb } => write!(f, "asr {rd}, {ra}, {rb}"),
            Instr::Lsli { rd, ra, sh } => write!(f, "lsli {rd}, {ra}, {sh}"),
            Instr::Lsri { rd, ra, sh } => write!(f, "lsri {rd}, {ra}, {sh}"),
            Instr::Asri { rd, ra, sh } => write!(f, "asri {rd}, {ra}, {sh}"),
            Instr::Mul8 { rd, ra, rb } => write!(f, "mul8 {rd}, {ra}, {rb}"),
            Instr::Popcount { rd, ra } => write!(f, "popcount {rd}, {ra}"),
            Instr::Load { width, rd, ra, off } => {
                let w = match width {
                    Width::B => "lb",
                    Width::H => "lh",
                    Width::W => "lw",
                };
                write!(f, "{w} {rd}, [{ra}{off:+}]")
            }
            Instr::Store { width, ra, off, rs } => {
                let w = match width {
                    Width::B => "sb",
                    Width::H => "sh",
                    Width::W => "sw",
                };
                write!(f, "{w} [{ra}{off:+}], {rs}")
            }
            Instr::MramRead { wram, mram, len } => write!(f, "mram.read {wram}, {mram}, {len}"),
            Instr::MramWrite { wram, mram, len } => write!(f, "mram.write {wram}, {mram}, {len}"),
            Instr::Branch { cond, ra, rb, target } => write!(f, "b{cond} {ra}, {rb}, {target}"),
            Instr::Jump { target } => write!(f, "jmp {target}"),
            Instr::Jal { rd, target } => write!(f, "jal {rd}, {target}"),
            Instr::Jr { ra } => write!(f, "jr {ra}"),
            Instr::CallSub { sub, rd, ra, rb } => write!(f, "call {sub} {rd}, {ra}, {rb}"),
            Instr::PerfConfig => write!(f, "perf.config"),
            Instr::PerfRead { rd } => write!(f, "perf.read {rd}"),
            Instr::TaskletId { rd } => write!(f, "me {rd}"),
            Instr::Trace { ra } => write!(f, "trace {ra}"),
            Instr::Barrier => write!(f, "barrier"),
            Instr::MutexLock { id } => write!(f, "mutex.lock {id}"),
            Instr::MutexUnlock { id } => write!(f, "mutex.unlock {id}"),
        }
    }
}

/// An assembled DPU program: a flat instruction vector plus named labels.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Instruction stream; the program counter indexes this vector.
    pub instrs: Vec<Instr>,
    /// Label name → instruction index.
    pub labels: HashMap<String, u32>,
}

/// Bytes one instruction slot occupies in IRAM (the real DPU uses wide
/// 64-bit-encoded instructions).
pub const INSTR_BYTES: usize = 8;

impl Program {
    /// Create a program from a raw instruction vector.
    #[must_use]
    pub fn new(instrs: Vec<Instr>) -> Self {
        Self { instrs, labels: HashMap::new() }
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True when the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// IRAM footprint in bytes.
    #[must_use]
    pub fn iram_bytes(&self) -> usize {
        self.instrs.len() * INSTR_BYTES
    }

    /// Look up a label.
    ///
    /// # Errors
    /// Returns [`crate::Error::UnknownSymbol`] when the label is absent.
    pub fn label(&self, name: &str) -> crate::Result<u32> {
        self.labels
            .get(name)
            .copied()
            .ok_or_else(|| crate::Error::UnknownSymbol { name: name.to_owned() })
    }

    /// Total issue slots if executed straight-line (no branches); used by
    /// tests to cross-check the pipeline model.
    #[must_use]
    pub fn straight_line_slots(&self) -> u64 {
        self.instrs.iter().map(Instr::issue_slots).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_signed_vs_unsigned() {
        // -1 < 1 signed, but 0xffff_ffff > 1 unsigned.
        assert!(Cond::Lt.eval(-1i32 as u32, 1));
        assert!(!Cond::Ltu.eval(-1i32 as u32, 1));
        assert!(Cond::Geu.eval(-1i32 as u32, 1));
        assert!(Cond::Eq.eval(7, 7));
        assert!(Cond::Ne.eval(7, 8));
        assert!(Cond::Ge.eval(3, 3));
    }

    #[test]
    fn issue_slots_for_plain_and_subroutine() {
        let plain = Instr::Add { rd: Reg(1), ra: Reg(2), rb: Reg(3) };
        assert_eq!(plain.issue_slots(), 1);
        let call = Instr::CallSub { sub: Subroutine::Mulsf3, rd: Reg(1), ra: Reg(2), rb: Reg(3) };
        assert_eq!(call.issue_slots(), Subroutine::Mulsf3.instruction_count());
        assert!(call.issue_slots() > 100);
    }

    #[test]
    fn display_round_trips_common_shapes() {
        let i = Instr::Load { width: Width::W, rd: Reg(5), ra: Reg(2), off: -8 };
        assert_eq!(i.to_string(), "lw r5, [r2-8]");
        let b = Instr::Branch { cond: Cond::Ne, ra: Reg(1), rb: Reg(0), target: 3 };
        assert_eq!(b.to_string(), "bne r1, r0, 3");
    }

    #[test]
    fn program_labels() {
        let mut p = Program::new(vec![Instr::Nop, Instr::Halt]);
        p.labels.insert("loop".into(), 1);
        assert_eq!(p.label("loop").unwrap(), 1);
        assert!(p.label("missing").is_err());
        assert_eq!(p.iram_bytes(), 16);
    }
}

impl Program {
    /// Statically validate the program: every branch/jump/call target must
    /// land inside the instruction stream. Catches mis-assembled control
    /// flow before a launch instead of as a runtime
    /// [`crate::Error::PcOutOfRange`]. (`Jr` targets are dynamic and remain
    /// runtime-checked.)
    ///
    /// # Errors
    /// [`crate::Error::PcOutOfRange`] naming the first bad target.
    pub fn validate(&self) -> crate::Result<()> {
        let len = self.instrs.len();
        for instr in &self.instrs {
            let target = match *instr {
                Instr::Branch { target, .. }
                | Instr::Jump { target }
                | Instr::Jal { target, .. } => Some(target),
                _ => None,
            };
            if let Some(t) = target {
                if t as usize >= len {
                    return Err(crate::Error::PcOutOfRange { pc: t as usize, len });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod validate_tests {
    use super::*;

    #[test]
    fn valid_program_passes() {
        let p = Program::new(vec![
            Instr::Jump { target: 1 },
            Instr::Branch { cond: Cond::Ne, ra: Reg(1), rb: Reg(0), target: 0 },
            Instr::Halt,
        ]);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn out_of_range_targets_rejected() {
        for bad in [
            Instr::Jump { target: 3 },
            Instr::Branch { cond: Cond::Eq, ra: Reg(0), rb: Reg(0), target: 99 },
            Instr::Jal { rd: Reg(1), target: 3 },
        ] {
            let p = Program::new(vec![bad, Instr::Halt]);
            assert!(matches!(p.validate(), Err(crate::Error::PcOutOfRange { .. })), "{bad:?}");
        }
    }
}
