//! Tier-2 kernel cycle model.
//!
//! Full CNN workloads (YOLOv3 moves ~3×10¹⁰ MACs per frame) are too large to
//! run through the instruction-level interpreter, so CNN kernels execute as
//! native Rust over the simulated memories while tallying an [`OpCounts`]
//! per tasklet. This module converts those tallies into cycles using the
//! same two mechanisms the interpreter models exactly:
//!
//! 1. **issue slots** — every instruction occupies one slot; the pipeline
//!    retires at most one slot per cycle, and a single tasklet at most one
//!    slot per 11-cycle rotation;
//! 2. **DMA stalls** — each MRAM transfer blocks its tasklet for
//!    `25 + bytes/2` cycles without consuming issue slots.
//!
//! The closed form is validated against the interpreter in this module's
//! tests and in `tests/` at the workspace root:
//!
//! ```text
//! cycles ≈ max( Σ_t slots_t,  max_t (11·slots_t + dma_t) ) + 11
//! ```
//!
//! The first argument is the *issue bound* (the pipeline is a shared
//! single-issue resource), the second the *latency bound* of the slowest
//! tasklet (rotation spacing plus its DMA stalls).
//!
//! ## Compiler optimization levels
//!
//! [`OptLevel`] models `dpu-clang -O0..-O3` the way the paper uses them
//! (§3.1, §3.3, Fig. 4.7b): at `-O0` every C-level operation is surrounded
//! by stack spill/reload traffic and 16-bit multiplies call `__mulsi3`; at
//! `-O2/-O3` values live in registers and 16-bit multiplies collapse into
//! the 4-instruction hardware `mul8` sequence (the paper notes the
//! subroutine threshold n moving from 16 to 32 bits, §5.2.2).

use crate::params::{DpuParams, PIPELINE_STAGES};
use crate::subroutines::Subroutine;
use serde::{Deserialize, Serialize};

/// `dpu-clang` optimization setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OptLevel {
    /// No optimization: fastest compile, all values on the stack.
    O0,
    /// Basic optimization.
    O1,
    /// Aggressive optimization.
    O2,
    /// Maximum standard optimization (paper's recommended setting).
    O3,
}

impl OptLevel {
    /// Extra issue slots of stack spill/reload traffic around one
    /// arithmetic operation at this level.
    #[must_use]
    pub fn per_op_overhead_slots(self) -> u64 {
        match self {
            OptLevel::O0 => 3,
            OptLevel::O1 => 2,
            OptLevel::O2 => 1,
            OptLevel::O3 => 0,
        }
    }

    /// Loop-control slots charged per loop iteration (increment, compare,
    /// branch — `-O3` partially unrolls).
    #[must_use]
    pub fn loop_overhead_slots(self) -> u64 {
        match self {
            OptLevel::O0 => 3,
            OptLevel::O1 => 3,
            OptLevel::O2 => 2,
            OptLevel::O3 => 1,
        }
    }

    /// Whether a 16-bit multiply is lowered to the `__mulsi3` subroutine
    /// (true below `-O2`) or to the 4-instruction `mul8` sequence.
    #[must_use]
    pub fn mul16_uses_subroutine(self) -> bool {
        matches!(self, OptLevel::O0 | OptLevel::O1)
    }
}

/// Per-tasklet tally of executed operations, produced by Tier-2 kernels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Single-slot ALU operations (add, sub, logic, shift, compare, `mul8`
    /// steps counted individually, popcount).
    pub alu: u64,
    /// 8-bit multiplications (lowered to a 4-instruction `mul8` sequence;
    /// Table 5.2's 44-cycle entry = 4 slots × 11).
    pub mul8: u64,
    /// 16-bit multiplications.
    pub mul16: u64,
    /// 32-bit multiplications (`__mulsi3` at every level).
    pub mul32: u64,
    /// 32-bit divisions (`__divsi3`).
    pub div32: u64,
    /// `f32` additions (`__addsf3`).
    pub fadd: u64,
    /// `f32` subtractions (`__subsf3`).
    pub fsub: u64,
    /// `f32` multiplications (`__mulsf3`).
    pub fmul: u64,
    /// `f32` divisions (`__divsf3`).
    pub fdiv: u64,
    /// `f32` comparisons (`__ltsf2`/`__gtsf2`).
    pub fcmp: u64,
    /// `i32` → `f32` conversions (`__floatsisf`).
    pub i2f: u64,
    /// `f32` → `i32` conversions (`__fixsfsi`).
    pub f2i: u64,
    /// WRAM loads (single slot).
    pub load: u64,
    /// WRAM stores (single slot).
    pub store: u64,
    /// Loop iterations (charged [`OptLevel::loop_overhead_slots`]).
    pub loops: u64,
    /// MRAM DMA transfers issued by this tasklet.
    pub mram_transfers: u64,
    /// Total bytes moved over DMA by this tasklet.
    pub mram_bytes: u64,
}

impl OpCounts {
    /// Number of *arithmetic* operations (for overhead accounting).
    #[must_use]
    pub fn arith_ops(&self) -> u64 {
        self.alu
            + self.mul8
            + self.mul16
            + self.mul32
            + self.div32
            + self.fadd
            + self.fsub
            + self.fmul
            + self.fdiv
            + self.fcmp
            + self.i2f
            + self.f2i
    }

    /// Issue slots this tally occupies at the given optimization level.
    #[must_use]
    pub fn issue_slots(&self, opt: OptLevel) -> u64 {
        let mul16_slots = if opt.mul16_uses_subroutine() {
            Subroutine::Mulsi3Short.instruction_count()
        } else {
            4
        };
        self.alu
            + self.mul8 * 4
            + self.mul16 * mul16_slots
            + self.mul32 * Subroutine::Mulsi3.instruction_count()
            + self.div32 * Subroutine::Divsi3.instruction_count()
            + self.fadd * Subroutine::Addsf3.instruction_count()
            + self.fsub * Subroutine::Subsf3.instruction_count()
            + self.fmul * Subroutine::Mulsf3.instruction_count()
            + self.fdiv * Subroutine::Divsf3.instruction_count()
            + self.fcmp * Subroutine::Ltsf2.instruction_count()
            + self.i2f * Subroutine::Floatsisf.instruction_count()
            + self.f2i * Subroutine::Fixsfsi.instruction_count()
            + self.load
            + self.store
            + self.loops * opt.loop_overhead_slots()
            + self.arith_ops() * opt.per_op_overhead_slots()
            + self.mram_transfers // the DMA instruction itself
    }

    /// DMA stall cycles this tally causes (Eq. 3.4 per transfer).
    #[must_use]
    pub fn dma_cycles(&self, params: &DpuParams) -> u64 {
        params.dma_setup_cycles * self.mram_transfers
            + self.mram_bytes.div_ceil(params.dma_bytes_per_cycle)
    }

    /// Component-wise sum.
    #[must_use]
    pub fn merged(mut self, other: &OpCounts) -> OpCounts {
        self.merge(other);
        self
    }

    /// Accumulate another tally into this one.
    pub fn merge(&mut self, other: &OpCounts) {
        self.alu += other.alu;
        self.mul8 += other.mul8;
        self.mul16 += other.mul16;
        self.mul32 += other.mul32;
        self.div32 += other.div32;
        self.fadd += other.fadd;
        self.fsub += other.fsub;
        self.fmul += other.fmul;
        self.fdiv += other.fdiv;
        self.fcmp += other.fcmp;
        self.i2f += other.i2f;
        self.f2i += other.f2i;
        self.load += other.load;
        self.store += other.store;
        self.loops += other.loops;
        self.mram_transfers += other.mram_transfers;
        self.mram_bytes += other.mram_bytes;
    }
}

/// Cycle estimate for one kernel launch, with the contributing bounds
/// exposed for analysis (the paper's §4.3.3 WRAM-vs-MRAM discussion is a
/// statement about which bound dominates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelEstimate {
    /// Final cycle estimate.
    pub cycles: u64,
    /// Pipeline issue bound: total slots across tasklets.
    pub issue_bound: u64,
    /// Latency bound of the slowest tasklet (rotation + DMA stalls).
    pub latency_bound: u64,
    /// Shared MRAM streaming-bandwidth bound: total DMA bytes over the
    /// 2-bytes-per-cycle port (transfer setups overlap across tasklets,
    /// the data stream does not).
    pub bandwidth_bound: u64,
    /// Total DMA stall cycles across tasklets.
    pub dma_cycles: u64,
    /// Total issue slots across tasklets.
    pub total_slots: u64,
}

impl KernelEstimate {
    /// Seconds at the device frequency.
    #[must_use]
    pub fn seconds(&self, params: &DpuParams) -> f64 {
        params.cycles_to_seconds(self.cycles)
    }

    /// True when MRAM DMA (not compute) determines the runtime — the
    /// situation §4.3.3 blames for YOLOv3's poor showing.
    #[must_use]
    pub fn is_memory_bound(&self) -> bool {
        self.latency_bound.max(self.bandwidth_bound) > self.issue_bound
    }
}

/// The Tier-2 cycle model for one DPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleModel {
    /// Device parameters.
    pub params: DpuParams,
    /// Compiler optimization level in force.
    pub opt: OptLevel,
}

impl Default for CycleModel {
    fn default() -> Self {
        Self { params: DpuParams::default(), opt: OptLevel::O3 }
    }
}

impl CycleModel {
    /// Model with explicit parameters.
    #[must_use]
    pub fn new(params: DpuParams, opt: OptLevel) -> Self {
        Self { params, opt }
    }

    /// Estimate cycles for a kernel whose per-tasklet tallies are given.
    ///
    /// Tallies need not be balanced; the slowest tasklet sets the latency
    /// bound.
    #[must_use]
    pub fn estimate(&self, per_tasklet: &[OpCounts]) -> KernelEstimate {
        let stages = u64::from(self.params.pipeline_stages);
        let mut total_slots = 0u64;
        let mut latency_bound = 0u64;
        let mut dma_total = 0u64;
        let mut dma_bytes = 0u64;
        for counts in per_tasklet {
            let slots = counts.issue_slots(self.opt);
            let dma = counts.dma_cycles(&self.params);
            total_slots += slots;
            dma_total += dma;
            dma_bytes += counts.mram_bytes;
            latency_bound = latency_bound.max(stages * slots + dma);
        }
        let bandwidth_bound = dma_bytes.div_ceil(self.params.dma_bytes_per_cycle);
        let cycles = total_slots.max(latency_bound).max(bandwidth_bound) + stages;
        KernelEstimate {
            cycles,
            issue_bound: total_slots,
            latency_bound,
            bandwidth_bound,
            dma_cycles: dma_total,
            total_slots,
        }
    }

    /// Estimate cycles when `work` identical work-items are spread evenly
    /// over `tasklets` threads (each item costing `per_item`): items are
    /// distributed `ceil(work / tasklets)` to the busiest thread, which is
    /// the granularity effect behind Fig. 4.7a's eBNN curve.
    #[must_use]
    pub fn estimate_items(
        &self,
        per_item: &OpCounts,
        work: u64,
        tasklets: usize,
    ) -> KernelEstimate {
        assert!(tasklets > 0, "tasklet count must be positive");
        let t = tasklets as u64;
        let mut per_tasklet = Vec::with_capacity(tasklets);
        for i in 0..t {
            // First (work % t) tasklets take one extra item.
            let items = work / t + u64::from(i < work % t);
            let mut c = OpCounts::default();
            for _ in 0..items {
                c.merge(per_item);
            }
            per_tasklet.push(c);
        }
        self.estimate(&per_tasklet)
    }
}

/// Convenience: the default pipeline law for `t` balanced tasklets of
/// `slots` issue slots each, no DMA.
#[must_use]
pub fn balanced_kernel_cycles(tasklets: u64, slots: u64) -> u64 {
    let stages = u64::from(PIPELINE_STAGES);
    (tasklets * slots).max(stages * slots) + stages
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_counts(alu: u64) -> OpCounts {
        OpCounts { alu, ..OpCounts::default() }
    }

    #[test]
    fn issue_slots_respects_opt_level() {
        let c = OpCounts { mul16: 1, ..OpCounts::default() };
        assert_eq!(c.issue_slots(OptLevel::O0), 31 + 3); // subroutine + O0 spill
        assert_eq!(c.issue_slots(OptLevel::O3), 4); // hardware sequence
        let c32 = OpCounts { mul32: 1, ..OpCounts::default() };
        assert_eq!(c32.issue_slots(OptLevel::O3), 49); // still a subroutine
    }

    #[test]
    fn float_ops_cost_table_3_1_slots() {
        let c = OpCounts { fdiv: 1, ..OpCounts::default() };
        assert_eq!(c.issue_slots(OptLevel::O3), 1073);
    }

    #[test]
    fn dma_cycles_match_eq_3_4() {
        let c = OpCounts { mram_transfers: 1, mram_bytes: 2048, ..OpCounts::default() };
        assert_eq!(c.dma_cycles(&DpuParams::default()), 1049);
        let c2 = OpCounts { mram_transfers: 3, mram_bytes: 24, ..OpCounts::default() };
        assert_eq!(c2.dma_cycles(&DpuParams::default()), 75 + 12);
    }

    #[test]
    fn single_tasklet_latency_bound_dominates() {
        let model = CycleModel::default();
        let est = model.estimate(&[simple_counts(100)]);
        assert_eq!(est.issue_bound, 100);
        assert_eq!(est.latency_bound, 1100);
        assert_eq!(est.cycles, 1111);
        assert!(est.is_memory_bound() || est.latency_bound > est.issue_bound);
    }

    #[test]
    fn eleven_tasklets_reach_issue_bound() {
        let model = CycleModel::default();
        let per = vec![simple_counts(100); 11];
        let est = model.estimate(&per);
        assert_eq!(est.cycles, 1100 + 11);
    }

    #[test]
    fn speedup_saturates_at_11_for_divisible_work() {
        let model = CycleModel::default();
        let total = 1100u64;
        let base = model.estimate(&[simple_counts(total)]).cycles as f64;
        let cyc = |t: usize| {
            let per = vec![simple_counts(total / t as u64); t];
            model.estimate(&per).cycles as f64
        };
        assert!((base / cyc(11) - 11.0).abs() < 0.3);
        assert!(base / cyc(16) < 11.5);
        assert!(base / cyc(22) < 11.5);
    }

    #[test]
    fn sixteen_items_show_fig_4_7a_dip() {
        // 16 images, per-image cost: speedup plateaus between 8 and 11
        // tasklets (both need 2 waves) and jumps again at 16 (1 wave).
        let model = CycleModel::default();
        let per_image = simple_counts(1000);
        let s = |t: usize| {
            let base = model.estimate_items(&per_image, 16, 1).cycles as f64;
            base / model.estimate_items(&per_image, 16, t).cycles as f64
        };
        let (s8, s11, s16) = (s(8), s(11), s(16));
        assert!((s8 - s11).abs() / s8 < 0.02, "8 and 11 tasklets tie: {s8} vs {s11}");
        assert!(s16 > s11 * 1.2, "16 tasklets beat 11: {s16} vs {s11}");
    }

    #[test]
    fn dma_makes_kernel_memory_bound() {
        let model = CycleModel::default();
        let c = OpCounts {
            alu: 10,
            mram_transfers: 100,
            mram_bytes: 100 * 2048,
            ..OpCounts::default()
        };
        let est = model.estimate(&[c]);
        assert!(est.is_memory_bound());
        assert!(est.dma_cycles >= 100 * 1049);
    }

    #[test]
    fn merge_is_componentwise() {
        let a = OpCounts { alu: 1, load: 2, mram_bytes: 8, ..OpCounts::default() };
        let b = OpCounts { alu: 3, store: 1, mram_bytes: 8, ..OpCounts::default() };
        let m = a.merged(&b);
        assert_eq!(m.alu, 4);
        assert_eq!(m.load, 2);
        assert_eq!(m.store, 1);
        assert_eq!(m.mram_bytes, 16);
    }

    #[test]
    fn estimate_items_distributes_remainder() {
        let model = CycleModel::default();
        // 5 items over 2 tasklets: 3 + 2.
        let est = model.estimate_items(&simple_counts(10), 5, 2);
        assert_eq!(est.total_slots, 50);
        assert_eq!(est.latency_bound, 11 * 30);
    }

    #[test]
    fn balanced_helper_matches_model() {
        let model = CycleModel::default();
        let per = vec![simple_counts(50); 4];
        assert_eq!(model.estimate(&per).cycles, balanced_kernel_cycles(4, 50));
    }
}
