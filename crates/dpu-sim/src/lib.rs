//! # dpu-sim — a simulator of the UPMEM DPU
//!
//! This crate is the hardware substrate of the reproduction: a functional and
//! timing simulator of the UPMEM DRAM Processing Unit (DPU) as described in
//! the thesis *"Implementation and Evaluation of Deep Neural Networks in
//! Commercially Available Processing in Memory Hardware"* (Das, 2022) and the
//! UPMEM white paper it cites.
//!
//! The simulated device follows the published architecture (Table 2.1 of the
//! paper):
//!
//! * a RISC-style in-order core with an **11-stage pipeline** operated as a
//!   *revolver*: every cycle the dispatcher issues one instruction from a
//!   ready hardware thread ("tasklet"), and a tasklet may only have a single
//!   instruction in flight, so its next instruction can issue at the earliest
//!   11 cycles after the previous one;
//! * **1–24 tasklets** with 32 general-purpose 32-bit registers each;
//! * three memories: 24 KiB instruction RAM (**IRAM**), 64 KiB working RAM
//!   (**WRAM**, single-cycle access), and 64 MiB main RAM (**MRAM**) reachable
//!   only through a DMA engine that costs `25 + bytes/2` cycles per transfer
//!   (Eq. 3.4 of the paper);
//! * **no hardware support** for 32-bit multiplication/division or any
//!   floating-point operation — these are executed by software subroutines
//!   (`__mulsi3`, `__addsf3`, …) whose cycle costs dominate high-precision
//!   kernels (Table 3.1 of the paper).
//!
//! Two tiers of fidelity are offered:
//!
//! 1. the **ISA interpreter** ([`machine::Machine`]) executes [`isa::Instr`]
//!    programs over the simulated memories, cycle-accounted by
//!    [`pipeline::Pipeline`] — used for microbenchmarks and small kernels;
//! 2. the **kernel cycle model** ([`cost::OpCounts`] +
//!    [`cost::CycleModel`]) converts an operation tally produced by a native
//!    Rust kernel into a cycle estimate using the same pipeline law — used for
//!    workloads too large to interpret instruction-by-instruction.
//!
//! Both tiers share the calibrated cost tables in [`subroutines`], which
//! reproduce Table 3.1 of the paper within ~1.5 %.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod compile;
pub mod cost;
pub mod ecc;
pub mod error;
pub mod exec;
pub mod faults;
pub mod isa;
pub mod machine;
pub mod memory;
pub mod params;
pub mod perfcounter;
pub mod pipeline;
pub mod profiler;
pub mod subroutines;
pub mod system;

pub use compile::{CompiledProgram, DEFAULT_HOT_THRESHOLD};
pub use error::{Error, Result};
pub use exec::ExecProgram;
pub use faults::{AttemptFaults, FaultConfig, FaultKind, FaultPlan, InjectedFault};
pub use isa::{Instr, Program, Reg};
pub use machine::{Engine, IntegrityCounters, Machine, MachineSnapshot, RunResult};
pub use memory::{
    CowMemory, DmaEngine, MemorySnapshot, Mram, ScrubReport, Scrubber, Wram, MRAM_PAGE_BYTES,
};
pub use params::DpuParams;
pub use pipeline::Pipeline;
pub use profiler::{BlockCycles, CycleAttribution, Profiler, SubroutineCycles};
pub use subroutines::Subroutine;
pub use system::{DpuId, MramResidency, PimSystem, Rank};
