//! The DPU's fine-grained multithreaded ("revolver") pipeline.
//!
//! The DPU core issues at most one instruction per cycle, drawn round-robin
//! from the ready tasklets, and a tasklet may only have a single instruction
//! in flight: after issuing, it cannot issue again for
//! [`crate::params::PIPELINE_STAGES`] (= 11) cycles. Consequences the paper
//! measures directly:
//!
//! * a single tasklet achieves 1/11 of peak issue rate, so single-thread
//!   microbenchmarks cost ≈ 11 cycles per instruction (Table 3.1);
//! * per-DPU speedup from multithreading saturates at 11 tasklets — the
//!   pipeline is full (Fig. 4.7a).
//!
//! [`Pipeline`] is an exact event-driven model of this dispatcher. Tasklets
//! blocked on a DMA transfer simply advertise a later ready time; they do not
//! consume issue slots while stalled, so other tasklets keep the pipeline
//! busy (this is what makes MRAM-heavy kernels scale worse than WRAM-heavy
//! ones, §4.3.3).

use crate::params::PIPELINE_STAGES;

/// Event-driven model of the revolver dispatcher.
#[derive(Debug, Clone)]
pub struct Pipeline {
    stages: u64,
    /// Earliest cycle at which each tasklet may issue its next instruction.
    next_ready: Vec<u64>,
    /// Next free global issue slot.
    cycle: u64,
    /// Cycle of the most recent issue (for pipeline drain accounting).
    last_issue: u64,
    /// Total instructions issued.
    issued: u64,
    /// Instructions issued per tasklet (occupancy accounting).
    issued_per_tasklet: Vec<u64>,
    /// Issue slots left idle because no tasklet was ready.
    idle_cycles: u64,
    rr_cursor: usize,
}

impl Pipeline {
    /// A pipeline for `tasklets` hardware threads with the default depth.
    #[must_use]
    pub fn new(tasklets: usize) -> Self {
        Self::with_stages(tasklets, u64::from(PIPELINE_STAGES))
    }

    /// A pipeline with an explicit depth (used for what-if studies).
    #[must_use]
    pub fn with_stages(tasklets: usize, stages: u64) -> Self {
        assert!(tasklets > 0, "pipeline needs at least one tasklet");
        assert!(stages > 0, "pipeline needs at least one stage");
        Self {
            stages,
            next_ready: vec![0; tasklets],
            cycle: 0,
            last_issue: 0,
            issued: 0,
            issued_per_tasklet: vec![0; tasklets],
            idle_cycles: 0,
            rr_cursor: 0,
        }
    }

    /// Number of tasklets the pipeline schedules.
    #[must_use]
    pub fn tasklets(&self) -> usize {
        self.next_ready.len()
    }

    /// Pipeline depth in stages.
    #[must_use]
    pub fn stages(&self) -> u64 {
        self.stages
    }

    /// Pick the tasklet that issues next among those with `runnable[t]`,
    /// advancing simulated time. Returns `None` when no tasklet is runnable.
    ///
    /// The chosen tasklet is the runnable one whose ready time allows the
    /// earliest issue; ties are broken round-robin starting after the last
    /// issuer, as the hardware dispatcher does.
    pub fn pick(&mut self, runnable: &[bool]) -> Option<usize> {
        debug_assert_eq!(runnable.len(), self.next_ready.len());
        let n = self.next_ready.len();
        if n == 1 {
            // Single-tasklet fast path: no scan, no round-robin state.
            if !runnable[0] {
                return None;
            }
            let issue_at = self.next_ready[0].max(self.cycle);
            return Some(self.commit(issue_at, 0, 1));
        }
        let mut best: Option<(u64, usize)> = None;
        // Probe in round-robin order as two wrap-free halves. The first
        // candidate at the current cycle is unbeatable (`issue_at` can
        // never be earlier, and ties go to the first in RR order), so the
        // scan stops there — on a saturated pipeline that is almost always
        // the first probe.
        'scan: for t in (self.rr_cursor..n).chain(0..self.rr_cursor) {
            if !runnable[t] {
                continue;
            }
            let issue_at = self.next_ready[t].max(self.cycle);
            if issue_at == self.cycle {
                best = Some((issue_at, t));
                break 'scan;
            }
            match best {
                None => best = Some((issue_at, t)),
                Some((b, _)) if issue_at < b => best = Some((issue_at, t)),
                _ => {}
            }
        }
        let (issue_at, t) = best?;
        Some(self.commit(issue_at, t, n))
    }

    /// Book one issue at `issue_at` for tasklet `t` and advance time.
    fn commit(&mut self, issue_at: u64, t: usize, n: usize) -> usize {
        self.idle_cycles += issue_at - self.cycle;
        self.last_issue = issue_at;
        self.cycle = issue_at + 1;
        self.next_ready[t] = issue_at + self.stages;
        self.issued += 1;
        self.issued_per_tasklet[t] += 1;
        self.rr_cursor = if t + 1 == n { 0 } else { t + 1 };
        t
    }

    /// Delay tasklet `t`'s next issue until `stall` cycles after its current
    /// ready time — used for DMA transfers, whose duration exceeds the
    /// pipeline rotation. The stall replaces (not adds to) the normal
    /// 11-cycle spacing when it is longer.
    pub fn stall(&mut self, t: usize, stall: u64) {
        // next_ready currently holds issue_cycle + stages; rebase the block
        // on the issue cycle itself.
        let issue_cycle = self.next_ready[t].saturating_sub(self.stages);
        self.next_ready[t] = issue_cycle + stall.max(self.stages);
    }

    /// Cycles elapsed once every tasklet has halted, including the final
    /// pipeline drain.
    #[must_use]
    pub fn elapsed(&self) -> u64 {
        if self.issued == 0 {
            0
        } else {
            self.last_issue + self.stages
        }
    }

    /// Total instructions issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Instructions issued by each tasklet so far (index = tasklet id).
    #[must_use]
    pub fn issued_per_tasklet(&self) -> &[u64] {
        &self.issued_per_tasklet
    }

    /// Issue slots that went unused because no tasklet was ready.
    #[must_use]
    pub fn idle_cycles(&self) -> u64 {
        self.idle_cycles
    }
}

/// Closed-form cycle estimate for a *balanced* kernel: `tasklets` threads
/// each issuing `slots_per_tasklet` instruction slots, with no memory stalls.
///
/// This is the law the event-driven model converges to and is used by the
/// Tier-2 kernel cost model:
/// `cycles ≈ max(total_slots, stages × slots_per_tasklet) + stages`.
#[must_use]
pub fn balanced_cycles(tasklets: u64, slots_per_tasklet: u64, stages: u64) -> u64 {
    let total = tasklets * slots_per_tasklet;
    total.max(stages * slots_per_tasklet) + stages
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a synthetic workload: each tasklet issues `per` instructions.
    fn run(tasklets: usize, per: u64) -> u64 {
        let mut p = Pipeline::new(tasklets);
        let mut remaining = vec![per; tasklets];
        let mut runnable = vec![true; tasklets];
        loop {
            if !runnable.iter().any(|&r| r) {
                break;
            }
            let t = p.pick(&runnable).unwrap();
            remaining[t] -= 1;
            if remaining[t] == 0 {
                runnable[t] = false;
            }
        }
        p.elapsed()
    }

    #[test]
    fn single_tasklet_pays_full_rotation() {
        // n instructions, one per 11 cycles: elapsed = (n-1)*11 + 1 + 11.
        let c = run(1, 10);
        assert_eq!(c, 9 * 11 + 11);
    }

    #[test]
    fn eleven_tasklets_fill_the_pipeline() {
        // 11 tasklets × n instrs: one issue per cycle, no idle slots.
        let n = 100;
        let c = run(11, n);
        // total slots = 1100; last issue at cycle 1099; drain 11.
        assert_eq!(c, 11 * n + 10);
    }

    #[test]
    fn throughput_saturates_at_pipeline_depth() {
        // Weak scaling: each tasklet issues `per` instructions. Up to 11
        // tasklets the elapsed time stays ~constant (latency bound), so
        // throughput grows ~linearly; past 11 the issue bound takes over and
        // throughput is flat at one instruction per cycle.
        let per = 200u64;
        let tput = |t: usize| (t as u64 * per) as f64 / run(t, per) as f64;
        let mut prev = 0.0;
        for t in 1..=11 {
            let x = tput(t);
            assert!(x > prev * 1.05, "throughput should grow up to 11 tasklets (t={t})");
            prev = x;
        }
        assert!(tput(11) > 0.9, "11 tasklets ≈ one instruction per cycle");
        assert!(tput(16) <= 1.0 + 1e-9);
        assert!(tput(24) <= 1.0 + 1e-9);
        assert!((tput(16) - tput(11)).abs() < 0.1, "flat past saturation");
    }

    #[test]
    fn fixed_total_work_speedup_matches_min_t_11() {
        // Split a fixed job of 1760 slots across t tasklets: speedup vs one
        // tasklet should be ≈ min(t, 11).
        let total = 1760u64;
        let base = run(1, total) as f64;
        for &t in &[2usize, 4, 8, 11] {
            let c = run(t, total / t as u64) as f64;
            let s = base / c;
            let expect = t as f64;
            assert!(
                (s - expect).abs() / expect < 0.05,
                "t={t}: speedup {s:.2} expected ≈ {expect}"
            );
        }
        let c22 = run(22, total / 22) as f64;
        assert!(base / c22 < 11.5, "speedup must saturate at ~11");
    }

    #[test]
    fn stall_blocks_only_the_stalled_tasklet() {
        let mut p = Pipeline::new(2);
        let runnable = vec![true, true];
        let t0 = p.pick(&runnable).unwrap();
        p.stall(t0, 1000); // t0 does a long DMA
                           // The other tasklet should keep issuing immediately.
        let t1 = p.pick(&runnable).unwrap();
        assert_ne!(t0, t1);
        let again = p.pick(&[t1 == 0, t1 == 1]).unwrap();
        assert_eq!(again, t1);
        assert!(p.elapsed() < 100);
    }

    #[test]
    fn stall_shorter_than_rotation_is_absorbed() {
        let mut p = Pipeline::new(1);
        p.pick(&[true]).unwrap();
        p.stall(0, 3); // shorter than 11 — rotation dominates
        p.pick(&[true]).unwrap();
        assert_eq!(p.elapsed(), 11 + 11);
    }

    #[test]
    fn balanced_formula_tracks_simulation() {
        for &(t, per) in &[(1u64, 50u64), (4, 50), (11, 50), (16, 30)] {
            let sim = run(t as usize, per);
            let est = balanced_cycles(t, per, 11);
            let err = (sim as f64 - est as f64).abs() / sim as f64;
            assert!(err < 0.05, "t={t} per={per}: sim={sim} est={est}");
        }
    }

    #[test]
    fn idle_cycles_counted_for_sparse_issue() {
        let mut p = Pipeline::new(1);
        for _ in 0..5 {
            p.pick(&[true]).unwrap();
        }
        // 4 gaps × 10 idle slots each.
        assert_eq!(p.idle_cycles(), 40);
    }

    #[test]
    fn empty_pipeline_reports_zero() {
        let p = Pipeline::new(4);
        assert_eq!(p.elapsed(), 0);
        assert_eq!(p.issued(), 0);
        assert_eq!(p.issued_per_tasklet(), &[0, 0, 0, 0]);
    }

    #[test]
    fn per_tasklet_issue_counts_sum_to_total() {
        let mut p = Pipeline::new(3);
        let mut runnable = vec![true; 3];
        for _ in 0..7 {
            p.pick(&runnable).unwrap();
        }
        runnable[1] = false;
        for _ in 0..4 {
            p.pick(&runnable).unwrap();
        }
        let per = p.issued_per_tasklet();
        assert_eq!(per.iter().sum::<u64>(), p.issued());
        // Round-robin over [0,1,2] for 7 picks gives t1 two issues; it is
        // then disabled and must not advance further.
        assert_eq!(per[1], 2);
    }
}

#[cfg(test)]
mod fairness_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The round-robin dispatcher is fair: over N picks with all
        /// tasklets always runnable, per-tasklet issue counts differ by at
        /// most one.
        #[test]
        fn round_robin_is_fair(tasklets in 1usize..24, rounds in 1u64..50) {
            let mut p = Pipeline::new(tasklets);
            let runnable = vec![true; tasklets];
            let mut counts = vec![0u64; tasklets];
            for _ in 0..rounds * tasklets as u64 {
                let t = p.pick(&runnable).unwrap();
                counts[t] += 1;
            }
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            prop_assert!(max - min <= 1, "counts {counts:?}");
        }

        /// Elapsed time is never less than either the issue bound or the
        /// single-tasklet rotation bound.
        #[test]
        fn elapsed_respects_both_bounds(
            tasklets in 1usize..24,
            per in 1u64..200,
        ) {
            let mut p = Pipeline::new(tasklets);
            let mut remaining = vec![per; tasklets];
            let mut runnable = vec![true; tasklets];
            while runnable.iter().any(|&r| r) {
                let t = p.pick(&runnable).unwrap();
                remaining[t] -= 1;
                if remaining[t] == 0 {
                    runnable[t] = false;
                }
            }
            let total = per * tasklets as u64;
            prop_assert!(p.elapsed() >= total);
            prop_assert!(p.elapsed() >= per * 11);
            // And it is tight: within one rotation of the max bound.
            prop_assert!(p.elapsed() <= total.max(per * 11) + 11);
        }
    }
}
