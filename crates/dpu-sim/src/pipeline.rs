//! The DPU's fine-grained multithreaded ("revolver") pipeline.
//!
//! The DPU core issues at most one instruction per cycle, drawn round-robin
//! from the ready tasklets, and a tasklet may only have a single instruction
//! in flight: after issuing, it cannot issue again for
//! [`crate::params::PIPELINE_STAGES`] (= 11) cycles. Consequences the paper
//! measures directly:
//!
//! * a single tasklet achieves 1/11 of peak issue rate, so single-thread
//!   microbenchmarks cost ≈ 11 cycles per instruction (Table 3.1);
//! * per-DPU speedup from multithreading saturates at 11 tasklets — the
//!   pipeline is full (Fig. 4.7a).
//!
//! [`Pipeline`] is an exact event-driven model of this dispatcher. Tasklets
//! blocked on a DMA transfer simply advertise a later ready time; they do not
//! consume issue slots while stalled, so other tasklets keep the pipeline
//! busy (this is what makes MRAM-heavy kernels scale worse than WRAM-heavy
//! ones, §4.3.3).

use crate::params::PIPELINE_STAGES;

/// Event-driven model of the revolver dispatcher.
///
/// `PartialEq`/`Eq` compare the complete scheduling state; the superblock
/// fast-forward tests use this to prove a batched advance leaves the
/// pipeline in exactly the state that the equivalent per-instruction
/// `pick` sequence would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pipeline {
    stages: u64,
    /// Earliest cycle at which each tasklet may issue its next instruction.
    next_ready: Vec<u64>,
    /// Next free global issue slot.
    cycle: u64,
    /// Cycle of the most recent issue (for pipeline drain accounting).
    last_issue: u64,
    /// Total instructions issued.
    issued: u64,
    /// Instructions issued per tasklet (occupancy accounting).
    issued_per_tasklet: Vec<u64>,
    /// Issue slots left idle because no tasklet was ready.
    idle_cycles: u64,
    rr_cursor: usize,
}

impl Pipeline {
    /// A pipeline for `tasklets` hardware threads with the default depth.
    #[must_use]
    pub fn new(tasklets: usize) -> Self {
        Self::with_stages(tasklets, u64::from(PIPELINE_STAGES))
    }

    /// A pipeline with an explicit depth (used for what-if studies).
    #[must_use]
    pub fn with_stages(tasklets: usize, stages: u64) -> Self {
        assert!(tasklets > 0, "pipeline needs at least one tasklet");
        assert!(stages > 0, "pipeline needs at least one stage");
        Self {
            stages,
            next_ready: vec![0; tasklets],
            cycle: 0,
            last_issue: 0,
            issued: 0,
            issued_per_tasklet: vec![0; tasklets],
            idle_cycles: 0,
            rr_cursor: 0,
        }
    }

    /// Number of tasklets the pipeline schedules.
    #[must_use]
    pub fn tasklets(&self) -> usize {
        self.next_ready.len()
    }

    /// Pipeline depth in stages.
    #[must_use]
    pub fn stages(&self) -> u64 {
        self.stages
    }

    /// Pick the tasklet that issues next among those with `runnable[t]`,
    /// advancing simulated time. Returns `None` when no tasklet is runnable.
    ///
    /// The chosen tasklet is the runnable one whose ready time allows the
    /// earliest issue; ties are broken round-robin starting after the last
    /// issuer, as the hardware dispatcher does.
    pub fn pick(&mut self, runnable: &[bool]) -> Option<usize> {
        debug_assert_eq!(runnable.len(), self.next_ready.len());
        let n = self.next_ready.len();
        if n == 1 {
            // Single-tasklet fast path: no scan, no round-robin state.
            if !runnable[0] {
                return None;
            }
            let issue_at = self.next_ready[0].max(self.cycle);
            return Some(self.commit(issue_at, 0, 1));
        }
        let mut best: Option<(u64, usize)> = None;
        // Probe in round-robin order as two wrap-free halves. The first
        // candidate at the current cycle is unbeatable (`issue_at` can
        // never be earlier, and ties go to the first in RR order), so the
        // scan stops there — on a saturated pipeline that is almost always
        // the first probe.
        'scan: for t in (self.rr_cursor..n).chain(0..self.rr_cursor) {
            if !runnable[t] {
                continue;
            }
            let issue_at = self.next_ready[t].max(self.cycle);
            if issue_at == self.cycle {
                best = Some((issue_at, t));
                break 'scan;
            }
            match best {
                None => best = Some((issue_at, t)),
                Some((b, _)) if issue_at < b => best = Some((issue_at, t)),
                _ => {}
            }
        }
        let (issue_at, t) = best?;
        Some(self.commit(issue_at, t, n))
    }

    /// Book one issue at `issue_at` for tasklet `t` and advance time.
    fn commit(&mut self, issue_at: u64, t: usize, n: usize) -> usize {
        self.idle_cycles += issue_at - self.cycle;
        self.last_issue = issue_at;
        self.cycle = issue_at + 1;
        self.next_ready[t] = issue_at + self.stages;
        self.issued += 1;
        self.issued_per_tasklet[t] += 1;
        self.rr_cursor = if t + 1 == n { 0 } else { t + 1 };
        t
    }

    /// Delay tasklet `t`'s next issue until `stall` cycles after its current
    /// ready time — used for DMA transfers, whose duration exceeds the
    /// pipeline rotation. The stall replaces (not adds to) the normal
    /// 11-cycle spacing when it is longer.
    pub fn stall(&mut self, t: usize, stall: u64) {
        // next_ready currently holds issue_cycle + stages; rebase the block
        // on the issue cycle itself.
        let issue_cycle = self.next_ready[t].saturating_sub(self.stages);
        self.next_ready[t] = issue_cycle + stall.max(self.stages);
    }

    /// Cycles elapsed once every tasklet has halted, including the final
    /// pipeline drain.
    #[must_use]
    pub fn elapsed(&self) -> u64 {
        if self.issued == 0 {
            0
        } else {
            self.last_issue + self.stages
        }
    }

    /// Total instructions issued so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Instructions issued by each tasklet so far (index = tasklet id).
    #[must_use]
    pub fn issued_per_tasklet(&self) -> &[u64] {
        &self.issued_per_tasklet
    }

    /// Issue slots that went unused because no tasklet was ready.
    #[must_use]
    pub fn idle_cycles(&self) -> u64 {
        self.idle_cycles
    }

    /// The next free global issue slot.
    #[must_use]
    pub fn current_cycle(&self) -> u64 {
        self.cycle
    }

    /// Earliest cycle at which tasklet `t` may issue its next instruction
    /// (its raw ready time, which may lie in the past).
    #[must_use]
    pub fn next_ready_of(&self, t: usize) -> u64 {
        self.next_ready[t]
    }

    /// Cycle at which tasklet `t` would actually issue if picked now:
    /// its ready time clamped to the current cycle.
    #[must_use]
    pub fn next_issue_at(&self, t: usize) -> u64 {
        self.next_ready[t].max(self.cycle)
    }

    /// Round-robin cursor: the tasklet probed first on the next `pick`.
    #[must_use]
    pub(crate) fn rr_cursor(&self) -> usize {
        self.rr_cursor
    }

    /// Issue one instruction for tasklet `t`, known by the caller to be the
    /// *sole* runnable tasklet.
    ///
    /// Equivalent to `pick(&runnable)` when `runnable[t]` is the only set
    /// flag: the round-robin scan would find `t` (wherever the cursor is),
    /// no other candidate exists, and the issue cycle is
    /// `next_ready[t].max(cycle)` either way. Skips the O(tasklets) probe.
    pub fn pick_sole(&mut self, t: usize) -> usize {
        let issue_at = self.next_ready[t].max(self.cycle);
        self.commit(issue_at, t, self.next_ready.len())
    }

    /// Issue `k >= 1` consecutive instructions for tasklet `t`, known by
    /// the caller to be the sole runnable tasklet, in one step.
    ///
    /// Exactly equivalent to `k` successive [`Pipeline::pick_sole`] calls:
    /// the first issue lands at `next_ready[t].max(cycle)` and each later
    /// one exactly `stages` cycles after its predecessor (the clamp is a
    /// no-op once `next_ready > cycle`), leaving `stages - 1` idle slots
    /// between consecutive issues.
    pub fn fast_forward_sole(&mut self, t: usize, k: u64) {
        debug_assert!(k >= 1);
        let first = self.next_ready[t].max(self.cycle);
        let last = first + (k - 1) * self.stages;
        self.idle_cycles += (first - self.cycle) + (k - 1) * (self.stages - 1);
        self.last_issue = last;
        self.cycle = last + 1;
        self.next_ready[t] = last + self.stages;
        self.issued += k;
        self.issued_per_tasklet[t] += k;
        let n = self.next_ready.len();
        self.rr_cursor = if t + 1 == n { 0 } else { t + 1 };
    }

    /// Issue `rounds >= 1` full rotations over `order` — the runnable
    /// tasklets in round-robin probe order starting at the current cursor —
    /// in one step. See [`Pipeline::advance_rotation`] for the general
    /// (mid-rotation) form and its preconditions.
    pub fn advance_rounds(&mut self, order: &[usize], rounds: u64) {
        debug_assert!(rounds >= 1);
        self.advance_rotation(order, rounds * order.len() as u64);
    }

    /// Issue `slots >= 1` consecutive picks over `order` — the runnable
    /// tasklets in round-robin probe order starting at the current cursor —
    /// in one step, possibly stopping mid-rotation.
    ///
    /// Exactly equivalent to `slots` successive `pick`s *provided* the
    /// caller has verified the saturation precondition: `order.len() >=
    /// stages` and `next_ready[order[p]] <= cycle + p` for every position
    /// `p`. Then pick number `m` (0-based) issues `order[m % len]` at
    /// `cycle + m` with zero idle slots — each tasklet issues once per
    /// rotation of `order.len()` cycles (>= `stages`, so its own spacing
    /// never binds), the first-fit probe always lands on the next tasklet
    /// in cyclic order, and the round-robin cursor ends after the last
    /// issuer.
    pub fn advance_rotation(&mut self, order: &[usize], slots: u64) {
        let r = order.len() as u64;
        debug_assert!(slots >= 1);
        debug_assert!(r >= self.stages, "rotation must cover the pipeline depth");
        let base = self.cycle;
        let full_rounds = slots / r;
        let rem = (slots % r) as usize;
        for (p, &t) in order.iter().enumerate() {
            debug_assert!(
                self.next_ready[t] <= base + p as u64,
                "tasklet {t} not ready at its slot"
            );
            let issues = full_rounds + u64::from(p < rem);
            if issues > 0 {
                self.next_ready[t] = base + (issues - 1) * r + p as u64 + self.stages;
                self.issued_per_tasklet[t] += issues;
            }
        }
        self.issued += slots;
        self.last_issue = base + slots - 1;
        self.cycle = self.last_issue + 1;
        let n = self.next_ready.len();
        let last = order[((slots - 1) % r) as usize];
        self.rr_cursor = if last + 1 == n { 0 } else { last + 1 };
    }

    /// [`Pipeline::pick`] restricted to a caller-maintained ascending list
    /// of exactly the runnable tasklet indices.
    ///
    /// Equivalent to `pick(&runnable)` whenever `active` holds precisely
    /// the indices with `runnable[t]`: the probe visits the same
    /// candidates in the same round-robin order with the same
    /// first-fit/minimum tie-break, without scanning the non-runnable
    /// majority — the win when a few tasklets of many are unblocked.
    pub fn pick_from(&mut self, active: &[usize]) -> Option<usize> {
        let n = self.next_ready.len();
        if let &[a, b] = active {
            // Two candidates — the common shape of a lock convoy. Probe
            // order from the cursor is [b, a] iff the cursor sits in
            // (a, b]; first-fit at the current cycle, else earliest wins
            // with the probe-order tie-break, exactly as below.
            let (x, y) = if self.rr_cursor > a && self.rr_cursor <= b { (b, a) } else { (a, b) };
            let ix = self.next_ready[x].max(self.cycle);
            if ix == self.cycle {
                return Some(self.commit(ix, x, n));
            }
            let iy = self.next_ready[y].max(self.cycle);
            let (i, t) = if iy < ix { (iy, y) } else { (ix, x) };
            return Some(self.commit(i, t, n));
        }
        let split = active.partition_point(|&t| t < self.rr_cursor);
        let mut best: Option<(u64, usize)> = None;
        'scan: for &t in active[split..].iter().chain(&active[..split]) {
            let issue_at = self.next_ready[t].max(self.cycle);
            if issue_at == self.cycle {
                best = Some((issue_at, t));
                break 'scan;
            }
            match best {
                None => best = Some((issue_at, t)),
                Some((b, _)) if issue_at < b => best = Some((issue_at, t)),
                _ => {}
            }
        }
        let (issue_at, t) = best?;
        Some(self.commit(issue_at, t, n))
    }
}

/// Closed-form cycle estimate for a *balanced* kernel: `tasklets` threads
/// each issuing `slots_per_tasklet` instruction slots, with no memory stalls.
///
/// This is the law the event-driven model converges to and is used by the
/// Tier-2 kernel cost model:
/// `cycles ≈ max(total_slots, stages × slots_per_tasklet) + stages`.
#[must_use]
pub fn balanced_cycles(tasklets: u64, slots_per_tasklet: u64, stages: u64) -> u64 {
    let total = tasklets * slots_per_tasklet;
    total.max(stages * slots_per_tasklet) + stages
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a synthetic workload: each tasklet issues `per` instructions.
    fn run(tasklets: usize, per: u64) -> u64 {
        let mut p = Pipeline::new(tasklets);
        let mut remaining = vec![per; tasklets];
        let mut runnable = vec![true; tasklets];
        loop {
            if !runnable.iter().any(|&r| r) {
                break;
            }
            let t = p.pick(&runnable).unwrap();
            remaining[t] -= 1;
            if remaining[t] == 0 {
                runnable[t] = false;
            }
        }
        p.elapsed()
    }

    #[test]
    fn single_tasklet_pays_full_rotation() {
        // n instructions, one per 11 cycles: elapsed = (n-1)*11 + 1 + 11.
        let c = run(1, 10);
        assert_eq!(c, 9 * 11 + 11);
    }

    #[test]
    fn eleven_tasklets_fill_the_pipeline() {
        // 11 tasklets × n instrs: one issue per cycle, no idle slots.
        let n = 100;
        let c = run(11, n);
        // total slots = 1100; last issue at cycle 1099; drain 11.
        assert_eq!(c, 11 * n + 10);
    }

    #[test]
    fn throughput_saturates_at_pipeline_depth() {
        // Weak scaling: each tasklet issues `per` instructions. Up to 11
        // tasklets the elapsed time stays ~constant (latency bound), so
        // throughput grows ~linearly; past 11 the issue bound takes over and
        // throughput is flat at one instruction per cycle.
        let per = 200u64;
        let tput = |t: usize| (t as u64 * per) as f64 / run(t, per) as f64;
        let mut prev = 0.0;
        for t in 1..=11 {
            let x = tput(t);
            assert!(x > prev * 1.05, "throughput should grow up to 11 tasklets (t={t})");
            prev = x;
        }
        assert!(tput(11) > 0.9, "11 tasklets ≈ one instruction per cycle");
        assert!(tput(16) <= 1.0 + 1e-9);
        assert!(tput(24) <= 1.0 + 1e-9);
        assert!((tput(16) - tput(11)).abs() < 0.1, "flat past saturation");
    }

    #[test]
    fn fixed_total_work_speedup_matches_min_t_11() {
        // Split a fixed job of 1760 slots across t tasklets: speedup vs one
        // tasklet should be ≈ min(t, 11).
        let total = 1760u64;
        let base = run(1, total) as f64;
        for &t in &[2usize, 4, 8, 11] {
            let c = run(t, total / t as u64) as f64;
            let s = base / c;
            let expect = t as f64;
            assert!(
                (s - expect).abs() / expect < 0.05,
                "t={t}: speedup {s:.2} expected ≈ {expect}"
            );
        }
        let c22 = run(22, total / 22) as f64;
        assert!(base / c22 < 11.5, "speedup must saturate at ~11");
    }

    #[test]
    fn stall_blocks_only_the_stalled_tasklet() {
        let mut p = Pipeline::new(2);
        let runnable = vec![true, true];
        let t0 = p.pick(&runnable).unwrap();
        p.stall(t0, 1000); // t0 does a long DMA
                           // The other tasklet should keep issuing immediately.
        let t1 = p.pick(&runnable).unwrap();
        assert_ne!(t0, t1);
        let again = p.pick(&[t1 == 0, t1 == 1]).unwrap();
        assert_eq!(again, t1);
        assert!(p.elapsed() < 100);
    }

    #[test]
    fn stall_shorter_than_rotation_is_absorbed() {
        let mut p = Pipeline::new(1);
        p.pick(&[true]).unwrap();
        p.stall(0, 3); // shorter than 11 — rotation dominates
        p.pick(&[true]).unwrap();
        assert_eq!(p.elapsed(), 11 + 11);
    }

    #[test]
    fn balanced_formula_tracks_simulation() {
        for &(t, per) in &[(1u64, 50u64), (4, 50), (11, 50), (16, 30)] {
            let sim = run(t as usize, per);
            let est = balanced_cycles(t, per, 11);
            let err = (sim as f64 - est as f64).abs() / sim as f64;
            assert!(err < 0.05, "t={t} per={per}: sim={sim} est={est}");
        }
    }

    #[test]
    fn idle_cycles_counted_for_sparse_issue() {
        let mut p = Pipeline::new(1);
        for _ in 0..5 {
            p.pick(&[true]).unwrap();
        }
        // 4 gaps × 10 idle slots each.
        assert_eq!(p.idle_cycles(), 40);
    }

    #[test]
    fn empty_pipeline_reports_zero() {
        let p = Pipeline::new(4);
        assert_eq!(p.elapsed(), 0);
        assert_eq!(p.issued(), 0);
        assert_eq!(p.issued_per_tasklet(), &[0, 0, 0, 0]);
    }

    #[test]
    fn pick_sole_matches_pick_with_one_runnable() {
        for tasklets in [1usize, 2, 5, 16] {
            for sole in 0..tasklets {
                let mut a = Pipeline::new(tasklets);
                let mut b = Pipeline::new(tasklets);
                // Desynchronize ready times first: issue one instruction
                // from every tasklet on both sides.
                let all = vec![true; tasklets];
                for _ in 0..tasklets {
                    let t = a.pick(&all).unwrap();
                    let u = b.pick(&all).unwrap();
                    assert_eq!(t, u);
                }
                let mut runnable = vec![false; tasklets];
                runnable[sole] = true;
                for _ in 0..20 {
                    assert_eq!(a.pick(&runnable), Some(sole));
                    assert_eq!(b.pick_sole(sole), sole);
                    assert_eq!(a, b, "tasklets={tasklets} sole={sole}");
                }
            }
        }
    }

    #[test]
    fn fast_forward_sole_matches_repeated_picks() {
        for tasklets in [1usize, 3, 11] {
            for k in [1u64, 2, 7, 40] {
                let mut a = Pipeline::new(tasklets);
                let mut b = Pipeline::new(tasklets);
                // Skew the sole tasklet's ready time via a stall.
                let mut runnable = vec![false; tasklets];
                runnable[tasklets - 1] = true;
                a.pick(&runnable).unwrap();
                a.stall(tasklets - 1, 137);
                b.pick(&runnable).unwrap();
                b.stall(tasklets - 1, 137);
                for _ in 0..k {
                    a.pick(&runnable).unwrap();
                }
                b.fast_forward_sole(tasklets - 1, k);
                assert_eq!(a, b, "tasklets={tasklets} k={k}");
            }
        }
    }

    #[test]
    fn advance_rounds_matches_repeated_picks_at_saturation() {
        // 13 runnable of 16 tasklets (>= 11 stages) with two disabled in
        // the middle; warm up one rotation so ready times are staggered,
        // then compare r rounds of picks against one advance_rounds.
        let tasklets = 16usize;
        let mut runnable = vec![true; tasklets];
        runnable[4] = false;
        runnable[9] = false;
        runnable[15] = false;
        let mut a = Pipeline::new(tasklets);
        let mut b = Pipeline::new(tasklets);
        let live: Vec<usize> = (0..tasklets).filter(|&t| runnable[t]).collect();
        for _ in 0..live.len() {
            a.pick(&runnable).unwrap();
            b.pick(&runnable).unwrap();
        }
        assert_eq!(a, b);
        // Build probe order from the current cursor.
        let cursor = b.rr_cursor();
        let order: Vec<usize> =
            (cursor..tasklets).chain(0..cursor).filter(|&t| runnable[t]).collect();
        for rounds in [1u64, 2, 9] {
            for _ in 0..rounds * order.len() as u64 {
                a.pick(&runnable).unwrap();
            }
            b.advance_rounds(&order, rounds);
            assert_eq!(a, b, "rounds={rounds}");
        }
    }

    #[test]
    fn long_whole_round_rotations_match_repeated_picks() {
        // The compiled tier's lockstep replication flushes thousands of
        // whole rounds through a single `advance_rotation` call; the state
        // must stay bit-identical to the equivalent pick-by-pick schedule.
        let tasklets = 11usize;
        let runnable = vec![true; tasklets];
        let mut a = Pipeline::new(tasklets);
        let mut b = Pipeline::new(tasklets);
        let order: Vec<usize> = (0..tasklets).collect();
        let slots = 4096 * tasklets as u64;
        for _ in 0..slots {
            a.pick(&runnable).unwrap();
        }
        b.advance_rotation(&order, slots);
        assert_eq!(a, b);
        assert_eq!(b.issued(), slots);
    }

    #[test]
    fn next_issue_at_clamps_to_current_cycle() {
        let mut p = Pipeline::new(2);
        assert_eq!(p.next_issue_at(0), 0);
        p.pick(&[true, true]).unwrap(); // t0 issues at 0
        assert_eq!(p.next_ready_of(0), 11);
        assert_eq!(p.current_cycle(), 1);
        assert_eq!(p.next_issue_at(0), 11);
        assert_eq!(p.next_issue_at(1), 1, "ready in the past clamps to now");
    }

    #[test]
    fn per_tasklet_issue_counts_sum_to_total() {
        let mut p = Pipeline::new(3);
        let mut runnable = vec![true; 3];
        for _ in 0..7 {
            p.pick(&runnable).unwrap();
        }
        runnable[1] = false;
        for _ in 0..4 {
            p.pick(&runnable).unwrap();
        }
        let per = p.issued_per_tasklet();
        assert_eq!(per.iter().sum::<u64>(), p.issued());
        // Round-robin over [0,1,2] for 7 picks gives t1 two issues; it is
        // then disabled and must not advance further.
        assert_eq!(per[1], 2);
    }
}

#[cfg(test)]
mod fairness_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The round-robin dispatcher is fair: over N picks with all
        /// tasklets always runnable, per-tasklet issue counts differ by at
        /// most one.
        #[test]
        fn round_robin_is_fair(tasklets in 1usize..24, rounds in 1u64..50) {
            let mut p = Pipeline::new(tasklets);
            let runnable = vec![true; tasklets];
            let mut counts = vec![0u64; tasklets];
            for _ in 0..rounds * tasklets as u64 {
                let t = p.pick(&runnable).unwrap();
                counts[t] += 1;
            }
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            prop_assert!(max - min <= 1, "counts {counts:?}");
        }

        /// Elapsed time is never less than either the issue bound or the
        /// single-tasklet rotation bound.
        #[test]
        fn elapsed_respects_both_bounds(
            tasklets in 1usize..24,
            per in 1u64..200,
        ) {
            let mut p = Pipeline::new(tasklets);
            let mut remaining = vec![per; tasklets];
            let mut runnable = vec![true; tasklets];
            while runnable.iter().any(|&r| r) {
                let t = p.pick(&runnable).unwrap();
                remaining[t] -= 1;
                if remaining[t] == 0 {
                    runnable[t] = false;
                }
            }
            let total = per * tasklets as u64;
            prop_assert!(p.elapsed() >= total);
            prop_assert!(p.elapsed() >= per * 11);
            // And it is tight: within one rotation of the max bound.
            prop_assert!(p.elapsed() <= total.max(per * 11) + 11);
        }
    }
}
