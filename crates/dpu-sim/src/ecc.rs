//! SEC-DED error-correcting codes over MRAM words.
//!
//! MRAM on commodity PIM DIMMs is ordinary DRAM: bit cells flip. The
//! paper's binarized kernels are maximally sensitive to that — one
//! flipped bit inverts a weight — so the simulator carries a
//! Hamming(72,64)-style **SEC-DED** sidecar: every aligned 64-bit data
//! word gets one extra code byte (7 Hamming check bits + 1 overall
//! parity bit), enough to **c**orrect any **s**ingle-bit **e**rror and
//! **d**etect any **d**ouble-bit error in the protected word.
//!
//! The codec here is pure word-level arithmetic; [`crate::CowMemory`]
//! owns the sidecar pages and the scrubbing sweep, and the DMA site in
//! `machine.rs` verifies words as they stream into WRAM.
//!
//! ## Layout
//!
//! Data bit `i` (0..64) sits at codeword position `POS[i]`, the `i`-th
//! position in `1..=71` that is *not* a power of two; the seven
//! power-of-two positions are the Hamming check bits, and one extra
//! overall-parity bit extends single-error correction to double-error
//! detection. The stored code byte packs the seven check bits in bits
//! 0..=6 and the overall parity in bit 7. A zero data word encodes to a
//! zero code byte, so the all-zero page needs no materialized sidecar.
//!
//! Encoding is eight table lookups and XORs per word (one 256-entry
//! table per data byte, built at compile time), cheap enough that
//! ECC-on zero-fault runs stay within the benched ≤2% tax.

/// Bytes of data covered by one code byte.
pub const WORD_BYTES: usize = 8;

const fn is_pow2(x: u32) -> bool {
    x != 0 && x & (x - 1) == 0
}

/// Codeword position (1..=71) of each data bit: the 64 non-power-of-two
/// positions in order.
const POS: [u8; 64] = {
    let mut pos = [0u8; 64];
    let mut p = 1u32;
    let mut i = 0;
    while i < 64 {
        if !is_pow2(p) {
            pos[i] = p as u8;
            i += 1;
        }
        p += 1;
    }
    pos
};

/// Inverse map: syndrome value → data bit index, `0xFF` when the
/// syndrome does not name a data position.
const POS_INV: [u8; 128] = {
    let mut inv = [0xFFu8; 128];
    let mut i = 0;
    while i < 64 {
        inv[POS[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

/// Per-byte encode tables: `TABLES[k][v]` is the XOR of
/// `POS[8k+j] | 0x80` over the set bits `j` of `v` — the low 7 bits
/// accumulate the Hamming syndrome, bit 7 accumulates data parity.
static TABLES: [[u8; 256]; 8] = {
    let mut t = [[0u8; 256]; 8];
    let mut k = 0;
    while k < 8 {
        let mut v = 0usize;
        while v < 256 {
            let mut acc = 0u8;
            let mut j = 0;
            while j < 8 {
                if v >> j & 1 == 1 {
                    acc ^= POS[8 * k + j] | 0x80;
                }
                j += 1;
            }
            t[k][v] = acc;
            v += 1;
        }
        k += 1;
    }
    t
};

/// Outcome of checking one data word against its stored code byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decode {
    /// Word and code agree.
    Clean,
    /// A single data bit flipped; the payload is its bit index (0..64).
    /// Correct by XORing `1 << i` into the data word.
    CorrectedData(u8),
    /// The error is confined to the sidecar byte (a check or parity
    /// bit flipped); correct by re-encoding the data word.
    CorrectedCode,
    /// Two (or an even number of) bits flipped — detected, not
    /// correctable.
    Uncorrectable,
}

/// Encode one little-endian data word into its SEC-DED code byte.
#[inline]
#[must_use]
pub fn encode_word(w: u64) -> u8 {
    let b = w.to_le_bytes();
    let acc = TABLES[0][b[0] as usize]
        ^ TABLES[1][b[1] as usize]
        ^ TABLES[2][b[2] as usize]
        ^ TABLES[3][b[3] as usize]
        ^ TABLES[4][b[4] as usize]
        ^ TABLES[5][b[5] as usize]
        ^ TABLES[6][b[6] as usize]
        ^ TABLES[7][b[7] as usize];
    let syn = acc & 0x7F;
    // Overall parity covers data bits *and* check bits.
    let overall = (acc >> 7) ^ ((syn.count_ones() as u8) & 1);
    syn | (overall << 7)
}

/// Check a received data word against its received code byte.
#[inline]
#[must_use]
pub fn decode_word(w: u64, code: u8) -> Decode {
    let expect = encode_word(w);
    if expect == code {
        return Decode::Clean;
    }
    let s = (expect ^ code) & 0x7F;
    // Overall-parity violation over the whole 72-bit codeword: odd for
    // any single-bit error, even for a double-bit error.
    let overall_viol = ((expect ^ code) >> 7) ^ ((s.count_ones() as u8) & 1);
    if overall_viol == 1 {
        if s == 0 || is_pow2(u32::from(s)) {
            return Decode::CorrectedCode;
        }
        match POS_INV[s as usize] {
            0xFF => Decode::Uncorrectable,
            i => Decode::CorrectedData(i),
        }
    } else {
        Decode::Uncorrectable
    }
}

/// Read the (zero-padded) aligned word starting at byte `off` of `data`.
#[inline]
#[must_use]
pub fn word_at(data: &[u8], off: usize) -> u64 {
    let mut b = [0u8; WORD_BYTES];
    let take = WORD_BYTES.min(data.len() - off);
    b[..take].copy_from_slice(&data[off..off + take]);
    u64::from_le_bytes(b)
}

/// Encode a whole page: one code byte per (zero-padded) 8-byte word.
#[must_use]
pub fn encode_page(data: &[u8]) -> Vec<u8> {
    (0..data.len().div_ceil(WORD_BYTES))
        .map(|w| encode_word(word_at(data, w * WORD_BYTES)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_word_encodes_to_zero() {
        assert_eq!(encode_word(0), 0);
        assert_eq!(decode_word(0, 0), Decode::Clean);
    }

    #[test]
    fn clean_round_trip() {
        for w in [1u64, 0xdead_beef_cafe_f00d, u64::MAX, 1 << 63, 0x0123_4567_89ab_cdef] {
            assert_eq!(decode_word(w, encode_word(w)), Decode::Clean, "{w:#x}");
        }
    }

    #[test]
    fn every_single_data_bit_flip_is_corrected() {
        let w = 0xdead_beef_cafe_f00du64;
        let code = encode_word(w);
        for i in 0..64 {
            let bad = w ^ (1u64 << i);
            assert_eq!(decode_word(bad, code), Decode::CorrectedData(i as u8), "bit {i}");
            // Applying the correction restores the original word.
            assert_eq!(bad ^ (1u64 << i), w);
        }
    }

    #[test]
    fn every_single_code_bit_flip_is_sidecar_only() {
        let w = 0x0123_4567_89ab_cdefu64;
        let code = encode_word(w);
        for b in 0..8 {
            assert_eq!(decode_word(w, code ^ (1 << b)), Decode::CorrectedCode, "code bit {b}");
        }
    }

    #[test]
    fn double_data_bit_flips_are_detected_never_miscorrected() {
        let w = 0x5555_aaaa_0f0f_3c3cu64;
        let code = encode_word(w);
        for i in 0..64u32 {
            for j in (i + 1)..64 {
                let bad = w ^ (1u64 << i) ^ (1u64 << j);
                assert_eq!(decode_word(bad, code), Decode::Uncorrectable, "bits {i},{j}");
            }
        }
    }

    #[test]
    fn data_plus_code_bit_flip_is_detected() {
        // One flip in the word and one in the sidecar is still a
        // double-bit error over the 72-bit codeword.
        let w = 0xfeed_face_dead_c0deu64;
        let code = encode_word(w);
        for i in 0..64u32 {
            for b in 0..8u32 {
                let got = decode_word(w ^ (1u64 << i), code ^ (1 << b));
                assert_eq!(got, Decode::Uncorrectable, "data {i} + code {b}");
            }
        }
    }

    #[test]
    fn page_encode_matches_word_encode_and_pads_tail() {
        let data: Vec<u8> = (0..27u8).collect();
        let codes = encode_page(&data);
        assert_eq!(codes.len(), 4);
        assert_eq!(codes[0], encode_word(u64::from_le_bytes(data[0..8].try_into().unwrap())));
        let mut tail = [0u8; 8];
        tail[..3].copy_from_slice(&data[24..27]);
        assert_eq!(codes[3], encode_word(u64::from_le_bytes(tail)));
    }

    #[test]
    fn position_tables_are_well_formed() {
        // 64 distinct non-power-of-two positions within 1..=71.
        let mut seen = [false; 128];
        for &p in &POS {
            assert!((1..=71).contains(&p));
            assert!(!is_pow2(u32::from(p)));
            assert!(!seen[p as usize], "duplicate position {p}");
            seen[p as usize] = true;
        }
        assert_eq!(POS[0], 3);
        assert_eq!(POS[63], 71);
    }
}
