//! AlexNet's layer table — grounding the `TOPs = 2.59e9` constant of
//! Table 5.1.
//!
//! The paper states AlexNet performs 2.59e9 total operations but does not
//! show the derivation. The canonical AlexNet (Krizhevsky et al. 2012,
//! single-tower reading of the two-GPU model) computes ≈0.71 G *MACs* in
//! its conv layers plus ≈0.059 G in the fully-connected layers. Counting a
//! multiply-accumulate as **two** operations and including the
//! grouped-convolution duplication conventions used by several accelerator
//! papers lands in the 1.4–2.6 G range; `2 × ungrouped MACs ≈ 2.27e9`
//! comes within 13 % of the paper's 2.59e9, with the residual plausibly
//! covering pooling/LRN/activation operations. This module carries the
//! layer table so the constant is auditable rather than folklore.

use serde::{Deserialize, Serialize};

/// One AlexNet layer's MAC-relevant parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlexNetLayer {
    /// Layer name.
    pub name: &'static str,
    /// Output spatial edge.
    pub out: usize,
    /// Output channels.
    pub filters: usize,
    /// Kernel edge (1 for FC layers, with `out = 1`).
    pub kernel: usize,
    /// Input channels per group.
    pub in_channels: usize,
    /// Convolution groups (AlexNet's two-GPU split).
    pub groups: usize,
}

impl AlexNetLayer {
    /// Multiply-accumulates of the layer (grouped convolution: each output
    /// channel sees `in_channels` inputs of its group only).
    #[must_use]
    pub fn macs(&self) -> u64 {
        (self.out * self.out * self.filters * self.kernel * self.kernel * self.in_channels) as u64
    }

    /// MACs if the convolution were ungrouped (each output channel sees
    /// every input channel) — the convention several accelerator papers
    /// use when quoting AlexNet op counts.
    #[must_use]
    pub fn macs_ungrouped(&self) -> u64 {
        self.macs() * self.groups as u64
    }
}

/// The AlexNet layer table (227×227 input, Krizhevsky's dimensions).
#[must_use]
pub fn layers() -> Vec<AlexNetLayer> {
    vec![
        AlexNetLayer { name: "conv1", out: 55, filters: 96, kernel: 11, in_channels: 3, groups: 1 },
        AlexNetLayer {
            name: "conv2",
            out: 27,
            filters: 256,
            kernel: 5,
            in_channels: 48,
            groups: 2,
        },
        AlexNetLayer {
            name: "conv3",
            out: 13,
            filters: 384,
            kernel: 3,
            in_channels: 256,
            groups: 1,
        },
        AlexNetLayer {
            name: "conv4",
            out: 13,
            filters: 384,
            kernel: 3,
            in_channels: 192,
            groups: 2,
        },
        AlexNetLayer {
            name: "conv5",
            out: 13,
            filters: 256,
            kernel: 3,
            in_channels: 192,
            groups: 2,
        },
        AlexNetLayer {
            name: "fc6",
            out: 1,
            filters: 4096,
            kernel: 1,
            in_channels: 9216,
            groups: 1,
        },
        AlexNetLayer {
            name: "fc7",
            out: 1,
            filters: 4096,
            kernel: 1,
            in_channels: 4096,
            groups: 1,
        },
        AlexNetLayer {
            name: "fc8",
            out: 1,
            filters: 1000,
            kernel: 1,
            in_channels: 4096,
            groups: 1,
        },
    ]
}

/// Total MACs with the grouped (faithful) convolutions.
#[must_use]
pub fn total_macs() -> u64 {
    layers().iter().map(AlexNetLayer::macs).sum()
}

/// Total MACs with ungrouped convolutions — the reading under which
/// `2 × MACs` reproduces the paper's 2.59e9 constant.
#[must_use]
pub fn total_macs_ungrouped() -> u64 {
    layers().iter().map(AlexNetLayer::macs_ungrouped).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    #[test]
    fn grouped_macs_match_the_literature() {
        let m = total_macs() as f64;
        // Canonical AlexNet: ≈0.72 GMACs (conv ≈ 0.66 G + FC ≈ 0.059 G).
        assert!((6.5e8..8.0e8).contains(&m), "got {m}");
    }

    #[test]
    fn per_layer_spot_checks() {
        let l = layers();
        assert_eq!(l[0].macs(), 55 * 55 * 96 * 11 * 11 * 3); // ≈105 M
        assert_eq!(l[1].macs(), 27 * 27 * 256 * 5 * 5 * 48); // ≈224 M
        assert_eq!(l[5].macs(), 4096 * 9216); // ≈37.7 M
    }

    #[test]
    fn papers_constant_is_near_two_ops_per_ungrouped_mac() {
        let ops = 2.0 * total_macs_ungrouped() as f64;
        let paper = Workload::alexnet().ops;
        let rel = (ops - paper).abs() / paper;
        assert!(rel < 0.15, "2 x ungrouped MACs = {ops:.3e} vs paper {paper:.3e}");
        // And the grouped reading is nowhere near — the constant is not
        // plain MACs.
        assert!(paper / total_macs() as f64 > 3.0);
    }
}
