//! Workload operation counts used throughout Chapter 5.
//!
//! The paper's tables use three applications, characterized only by their
//! MAC count (`TOPs` in the equations):
//!
//! * **AlexNet** — Table 5.1 states 2.59e9 total operations.
//! * **eBNN** and **YOLOv3** — Table 5.4 does not list the counts, but they
//!   back-solve consistently from its latency rows: e.g. pPIM's eBNN
//!   latency 3.80e-7 s × 1.25 GHz × 256 PEs / 8 cycles-per-MAC = 1.52e4
//!   MACs, and DRISA-3T1C's row gives the same 1.52e4; YOLOv3 solves to
//!   2.72e10 from every analytic row (the YOLO/eBNN latency ratio is
//!   1.79e6 across all five analytic architectures).

use serde::{Deserialize, Serialize};

/// A named MAC-count workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Display name.
    pub name: String,
    /// Total multiply-accumulate operations per inference.
    pub ops: f64,
}

impl Workload {
    /// AlexNet as used in Tables 5.1/5.3.
    #[must_use]
    pub fn alexnet() -> Self {
        Self { name: "AlexNet".into(), ops: 2.59e9 }
    }

    /// eBNN inference (back-solved from Table 5.4; see module docs).
    #[must_use]
    pub fn ebnn() -> Self {
        Self { name: "eBNN".into(), ops: 1.52e4 }
    }

    /// YOLOv3 inference (back-solved from Table 5.4; consistent with the
    /// ~3e10 MACs the full Darknet-53 graph computes at 416×416).
    #[must_use]
    pub fn yolov3() -> Self {
        Self { name: "YOLOv3".into(), ops: 2.72e10 }
    }

    /// A custom workload.
    #[must_use]
    pub fn custom(name: &str, ops: f64) -> Self {
        Self { name: name.into(), ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_counts() {
        assert_eq!(Workload::alexnet().ops, 2.59e9);
        assert_eq!(Workload::ebnn().ops, 1.52e4);
        assert_eq!(Workload::yolov3().ops, 2.72e10);
    }

    #[test]
    fn yolo_to_ebnn_ratio_matches_table_5_4() {
        // Every analytic row of Table 5.4 has latency(YOLO)/latency(eBNN)
        // = 1.79e6; the workload counts must reproduce it.
        let ratio = Workload::yolov3().ops / Workload::ebnn().ops;
        assert!((ratio / 1.79e6 - 1.0).abs() < 0.01, "ratio {ratio}");
    }
}
