//! The computation model: Eqs. 5.2–5.6.
//!
//! `Ccomp = Cop · ceil(TOPs / PEs)` (Eq. 5.3) — all PEs work in lockstep on
//! one operation each, so the workload executes in waves; the ceiling is
//! the partial final wave (the step pattern of Fig. 5.5(a)–(c)).
//! `Tcomp = Ccomp / Freq` (Eq. 5.2).

use serde::{Deserialize, Serialize};

/// Operand width in bits for the fundamental MAC operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperandBits {
    /// 4-bit fixed point.
    B4,
    /// 8-bit fixed point (the precision of Tables 5.1/5.4).
    B8,
    /// 16-bit fixed point.
    B16,
    /// 32-bit fixed point.
    B32,
}

impl OperandBits {
    /// All widths, in Table 5.2 row order.
    pub const ALL: [OperandBits; 4] =
        [OperandBits::B4, OperandBits::B8, OperandBits::B16, OperandBits::B32];

    /// The width as a number of bits.
    #[must_use]
    pub fn bits(self) -> u32 {
        match self {
            OperandBits::B4 => 4,
            OperandBits::B8 => 8,
            OperandBits::B16 => 16,
            OperandBits::B32 => 32,
        }
    }
}

/// The per-architecture computation model: `Cop` for the fundamental
/// operations plus the parallelization parameters of Eq. 5.3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeModel {
    /// Cycles for one multiplication at 4/8/16/32 bits (Table 5.2 row).
    pub cop_mult: [u64; 4],
    /// Cycles for one accumulation at 4/8/16/32 bits.
    pub cop_acc: [u64; 4],
    /// Processing elements (Eq. 5.3's `PEs`).
    pub pes: u64,
    /// Clock frequency in Hz.
    pub freq: f64,
}

impl ComputeModel {
    /// `Cop` for one multiplication (Eq. 5.4 instantiated).
    #[must_use]
    pub fn cop_mult(&self, x: OperandBits) -> u64 {
        self.cop_mult[Self::idx(x)]
    }

    /// `Cop` for one accumulation.
    #[must_use]
    pub fn cop_acc(&self, x: OperandBits) -> u64 {
        self.cop_acc[Self::idx(x)]
    }

    /// `Cop` for one multiply-accumulate — the paper's fundamental
    /// operation (§5.1).
    #[must_use]
    pub fn cop_mac(&self, x: OperandBits) -> u64 {
        self.cop_mult(x) + self.cop_acc(x)
    }

    /// `Ccomp` (Eq. 5.3) for `tops` operations of cost `cop`.
    #[must_use]
    pub fn ccomp(&self, cop: u64, tops: f64) -> f64 {
        cop as f64 * (tops / self.pes as f64).ceil()
    }

    /// `Tcomp` (Eq. 5.2) in seconds for `tops` MAC operations at width `x`.
    #[must_use]
    pub fn tcomp_mac(&self, x: OperandBits, tops: f64) -> f64 {
        self.ccomp(self.cop_mac(x), tops) / self.freq
    }

    /// `Tcomp` without the final-wave ceiling — fractional waves, as the
    /// paper's Table 5.4 latency rows use (they back-solve exactly only
    /// without the ceiling; the difference matters when `TOPs < PEs`).
    #[must_use]
    pub fn tcomp_mac_nominal(&self, x: OperandBits, tops: f64) -> f64 {
        self.cop_mac(x) as f64 * tops / self.pes as f64 / self.freq
    }

    /// `Tcomp` for a single MAC (the Table 5.1 row 11 quantity).
    #[must_use]
    pub fn tcomp_one_mac(&self, x: OperandBits) -> f64 {
        self.cop_mac(x) as f64 / self.freq
    }

    /// The Fig. 5.5 left-column sweep: `Ccomp` of a multiplication as TOPs
    /// grows with PEs fixed (step function from the ceiling).
    #[must_use]
    pub fn sweep_tops(&self, x: OperandBits, tops: &[f64]) -> Vec<f64> {
        tops.iter().map(|&t| self.ccomp(self.cop_mult(x), t)).collect()
    }

    /// The Fig. 5.5 right-column sweep: `Ccomp` as PEs grows with TOPs
    /// fixed (steep drop, then 1/x tail).
    #[must_use]
    pub fn sweep_pes(&self, x: OperandBits, tops: f64, pes: &[u64]) -> Vec<f64> {
        pes.iter().map(|&p| self.cop_mult(x) as f64 * (tops / p as f64).ceil()).collect()
    }

    fn idx(x: OperandBits) -> usize {
        match x {
            OperandBits::B4 => 0,
            OperandBits::B8 => 1,
            OperandBits::B16 => 2,
            OperandBits::B32 => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ppim_like() -> ComputeModel {
        ComputeModel { cop_mult: [1, 6, 124, 1016], cop_acc: [2, 2, 3, 5], pes: 256, freq: 1.25e9 }
    }

    #[test]
    fn table_5_1_ppim_column() {
        let m = ppim_like();
        assert_eq!(m.cop_mac(OperandBits::B8), 8);
        let ccomp = m.ccomp(m.cop_mac(OperandBits::B8), 2.59e9);
        assert!((ccomp - 8.0938e7).abs() / 8.0938e7 < 1e-3, "got {ccomp}");
        let tcomp = m.tcomp_mac(OperandBits::B8, 2.59e9);
        assert!((tcomp - 6.48e-2).abs() / 6.48e-2 < 1e-2, "got {tcomp}");
        assert!((m.tcomp_one_mac(OperandBits::B8) - 6.4e-9).abs() < 1e-12);
    }

    #[test]
    fn ceiling_produces_steps() {
        let m = ppim_like();
        // 256 PEs: 1..=256 ops is one wave, 257 ops is two.
        assert_eq!(m.ccomp(8, 256.0), 8.0);
        assert_eq!(m.ccomp(8, 257.0), 16.0);
        assert_eq!(m.ccomp(8, 512.0), 16.0);
    }

    #[test]
    fn pe_sweep_is_monotone_nonincreasing() {
        let m = ppim_like();
        let pes: Vec<u64> = (1..=64).map(|i| i * 8).collect();
        let c = m.sweep_pes(OperandBits::B8, 1e5, &pes);
        for w in c.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    proptest! {
        /// Eq. 5.3's ceiling never undercounts: Ccomp ≥ Cop · TOPs / PEs.
        #[test]
        fn ceiling_bounds(tops in 1.0f64..1e7, pes in 1u64..10000) {
            let m = ComputeModel { pes, ..ppim_like() };
            let c = m.ccomp(8, tops);
            prop_assert!(c + 1e-9 >= 8.0 * tops / pes as f64);
            prop_assert!(c <= 8.0 * (tops / pes as f64 + 1.0));
        }
    }
}
