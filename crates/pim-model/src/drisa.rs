//! DRISA's scale functions (§5.2.1, Eq. 5.7).
//!
//! DRISA computes with serially-executed Boolean bitline logic: below 4
//! bits, XNOR gates; at 4 bits and above, a composition of shift, select,
//! carry-save-adder and full-adder blocks, each with its own scale function
//! (Eq. 5.6/5.7). The paper takes exact multiplication cycle counts from
//! the DRISA publication for 4/8/16-bit operands and **curve-fits** the
//! 32-bit value; the published points are collinear (110, 200, 380 at
//! x = 4, 8, 16 → 22.5 cycles/bit + 20), which yields the paper's starred
//! 740 at 32 bits.

/// Published multiplication cycle counts (3T1C design).
const EXACT_MULT: [(u32, u64); 3] = [(4, 110), (8, 200), (16, 380)];

/// Cycles for one `x`-bit multiplication on DRISA-3T1C: literature values
/// where published, the linear fit `22.5·x + 20` elsewhere.
///
/// # Panics
/// When `x` is zero.
#[must_use]
pub fn cop_mult(x: u32) -> u64 {
    assert!(x > 0, "operand width must be positive");
    if let Some(&(_, c)) = EXACT_MULT.iter().find(|&&(b, _)| b == x) {
        return c;
    }
    // Linear fit through the published points.
    (22.5 * f64::from(x) + 20.0).round() as u64
}

/// Cycles for one accumulation (Table 5.1 row 4: 11 for 8-bit — a bit-
/// serial ripple addition of x + log-ish carry cycles).
#[must_use]
pub fn cop_acc(x: u32) -> u64 {
    u64::from(x) + u64::from(x.next_power_of_two().trailing_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_points_from_literature() {
        assert_eq!(cop_mult(4), 110);
        assert_eq!(cop_mult(8), 200);
        assert_eq!(cop_mult(16), 380);
    }

    #[test]
    fn fit_reproduces_paper_32bit_estimate() {
        assert_eq!(cop_mult(32), 740); // Table 5.2 starred value
    }

    #[test]
    fn mac_cost_8bit_matches_table_5_1() {
        // Table 5.1: DRISA Cop (1 MAC, 8-bit) = 200 + 11 = 211.
        assert_eq!(cop_acc(8), 11);
        assert_eq!(cop_mult(8) + cop_acc(8), 211);
    }

    #[test]
    fn fit_interpolates_between_points() {
        let c12 = cop_mult(12);
        assert!(c12 > cop_mult(8) && c12 < cop_mult(16));
        assert_eq!(c12, 290);
    }
}
