//! # pim-model — the paper's analytical PIM performance model (Chapter 5)
//!
//! PIM designs span a granularity spectrum (Fig. 5.1): **bitwise**
//! accelerators computing with bitline Boolean logic (DRISA, SCOPE),
//! **LUT-based** designs selecting pre-programmed results (pPIM, LACC), and
//! **pipelined-CPU** designs (UPMEM). The paper unifies them under one
//! model:
//!
//! ```text
//! Ttot  = Tmem + Tcomp                         (Eq. 5.1)
//! Tcomp = Ccomp / Freq                         (Eq. 5.2)
//! Ccomp = Cop · ceil(TOPs / PEs)               (Eq. 5.3)
//! Cop   = f(x) · C_BB · D_p                    (Eq. 5.4; piecewise 5.5,
//!                                               multi-building-block 5.6)
//! Tmem  = Ttransfer · ceil(TOPs / (PEs · sizebuf / (2·Lenop)))  (Eq. 5.10)
//! ```
//!
//! where `x` is the operand width, `C_BB` the cycles of one building block,
//! `D_p` the pipeline depth, and `f(x)` the architecture's dataflow scale
//! function. [`ppim`] derives pPIM's `f(x)` from the worst-case
//! block-by-block LUT multiplication (Fig. 5.3, Algorithm 3), [`drisa`]
//! curve-fits DRISA's published points, and [`upmem`] counts soft-multiply
//! instructions. [`arch`] instantiates the seven devices of Table 5.4 and
//! [`report`] regenerates every Chapter-5 table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alexnet;
pub mod arch;
pub mod compute;
pub mod drisa;
pub mod memory;
pub mod ppim;
pub mod report;
pub mod upmem;
pub mod workload;

pub use arch::{ArchClass, ParamSource, PimArch};
pub use compute::{ComputeModel, OperandBits};
pub use memory::MemoryModel;
pub use report::{BenchRow, ModelReport};
pub use workload::Workload;
