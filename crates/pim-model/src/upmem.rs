//! UPMEM's scale function (§5.2.2, Eq. 5.8).
//!
//! The DPU is the pipelined-CPU end of the spectrum: `C_BB = 1` (one
//! instruction per building block), `D_p = 11` (pipeline stages), and the
//! scale function counts instructions. Below the subroutine threshold a
//! multiplication is `g(x) = 4` instructions of `mul8` steps (the paper
//! cites g(4) = g(8) = 4, ref. \[31\]); at and above it, `__mulsi3` is called and
//! `f(x)` is the routine's instruction count. The threshold `n` is 16 bits
//! under `-O0` and moves to 32 bits under full optimization (§5.2.2).
//!
//! The 16/32-bit counts below come from the calibrated subroutine table of
//! `dpu-sim` (31 and 49 instructions plus call overhead), which lands
//! within ~1 % of the paper's starred 370/570 estimates.

/// Pipeline depth `D_p`.
pub const DP: u64 = 11;

/// Instructions for one `x`-bit multiplication (optimized code: hardware
/// `mul8` sequences up to 16 bits, `__mulsi3` above).
///
/// # Panics
/// When `x` is zero or above 32.
#[must_use]
pub fn mult_instructions(x: u32) -> u64 {
    assert!(x > 0 && x <= 32, "the DPU is a 32-bit machine");
    match x {
        1..=8 => 4,
        // __mulsi3 short path (31 instructions) + call/marshal overhead.
        9..=16 => 34,
        // __mulsi3 full path (49) + call/marshal overhead.
        _ => 52,
    }
}

/// Instructions for one accumulation (Table 5.1 row 4: 4 for 8-bit — load,
/// add, store, loop share).
#[must_use]
pub fn acc_instructions(_x: u32) -> u64 {
    4
}

/// Cycles for one `x`-bit multiplication: `f(x) · C_BB · D_p` with
/// `C_BB = 1` (Eq. 5.8). On the single-instruction-in-flight revolver a
/// lone operation pays the full rotation per instruction.
#[must_use]
pub fn cop_mult(x: u32) -> u64 {
    mult_instructions(x) * DP
}

/// Cycles for one accumulation.
#[must_use]
pub fn cop_acc(x: u32) -> u64 {
    acc_instructions(x) * DP
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_5_2_row() {
        assert_eq!(cop_mult(4), 44);
        assert_eq!(cop_mult(8), 44);
        // Paper's starred estimates: 370 and 570; ours derive from the
        // calibrated subroutine lengths and land within ~1 %.
        assert_eq!(cop_mult(16), 374);
        assert_eq!(cop_mult(32), 572);
        assert!((cop_mult(16) as f64 - 370.0).abs() / 370.0 < 0.02);
        assert!((cop_mult(32) as f64 - 570.0).abs() / 570.0 < 0.01);
    }

    #[test]
    fn mac_cost_8bit_matches_table_5_1() {
        // Table 5.1: UPMEM Cop (1 MAC, 8-bit) = (4 + 4) × 11 = 88.
        assert_eq!(cop_mult(8) + cop_acc(8), 88);
    }

    #[test]
    fn subroutine_threshold_is_visible() {
        // The jump from 8→16 bits is the subroutine call the paper
        // highlights (uneven separation in Fig. 5.5(c)).
        assert!(cop_mult(16) > 5 * cop_mult(8));
    }
}
