//! Regeneration of every Chapter-5 table and figure as structured data
//! with text rendering.

use crate::arch::{self, Evaluation, PimArch};
use crate::compute::OperandBits;
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::fmt;

/// eBNN on UPMEM keeps one frame per DPU in flight, so a chip of 8 DPUs
/// sustains 8 concurrent frames — the convention behind Table 5.4's UPMEM
/// throughput cells.
pub const UPMEM_EBNN_FRAMES_PER_CHIP: f64 = 8.0;

/// YOLOv3's Fig. 4.6 mapping peaks at 1024 DPUs (the widest layer); the
/// paper's throughput-per-watt cell normalizes by this peak power draw.
pub const UPMEM_YOLO_PEAK_DPUS: f64 = 1024.0;

/// Mean DPUs occupied across YOLOv3's 75 conv layers (Σ filters / 75);
/// the paper's throughput-per-area cell normalizes by this mean footprint.
pub const UPMEM_YOLO_MEAN_DPUS: f64 = 361.0;

/// One Table 5.4 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRow {
    /// Device name.
    pub name: String,
    /// Power per chip (W).
    pub power_w: f64,
    /// Area per chip (mm²).
    pub area_mm2: f64,
    /// eBNN latency/frame (s).
    pub ebnn_latency: f64,
    /// eBNN frames/s·W.
    pub ebnn_tp_power: f64,
    /// eBNN frames/s·mm².
    pub ebnn_tp_area: f64,
    /// YOLOv3 latency/frame (s).
    pub yolo_latency: f64,
    /// YOLOv3 frames/s·W.
    pub yolo_tp_power: f64,
    /// YOLOv3 frames/s·mm².
    pub yolo_tp_area: f64,
}

/// One Table 5.1 column (model walkthrough).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalkthroughColumn {
    /// Device name.
    pub name: String,
    /// Pipeline depth `D_p`.
    pub dp: u64,
    /// Accumulate `f(x)` at 8 bits.
    pub acc_fx: u64,
    /// Multiply `f(x)` at 8 bits.
    pub mult_fx: u64,
    /// `Cop` for one MAC.
    pub cop: u64,
    /// Processing elements.
    pub pes: u64,
    /// Frequency (Hz).
    pub freq: f64,
    /// `Ccomp` for one MAC.
    pub ccomp_one: u64,
    /// `Tcomp` for one MAC (s).
    pub tcomp_one: f64,
    /// `Ccomp` for the full workload.
    pub ccomp_tops: f64,
    /// `Tcomp` for the full workload (s).
    pub tcomp_tops: f64,
}

/// The full Chapter-5 report generator.
#[derive(Debug, Clone, Default)]
pub struct ModelReport;

impl ModelReport {
    /// Table 5.1: the computational-model walkthrough for pPIM, DRISA and
    /// UPMEM on 8-bit AlexNet.
    #[must_use]
    pub fn table_5_1() -> Vec<WalkthroughColumn> {
        let w = Workload::alexnet();
        let x = OperandBits::B8;
        [(arch::ppim(), 1u64), (arch::drisa_3t1c(), 1), (arch::upmem_analytic(), 11)]
            .into_iter()
            .map(|(a, dp)| {
                let c = a.compute().expect("walkthrough devices are analytic");
                let cop = c.cop_mac(x);
                WalkthroughColumn {
                    name: a.name.clone(),
                    dp,
                    // UPMEM's f(x) are instruction counts (Cop / Dp); the
                    // others have Dp = CBB = 1 so f(x) = Cop.
                    acc_fx: c.cop_acc(x) / dp,
                    mult_fx: c.cop_mult(x) / dp,
                    cop,
                    pes: c.pes,
                    freq: c.freq,
                    ccomp_one: cop,
                    tcomp_one: cop as f64 / c.freq,
                    ccomp_tops: c.ccomp(cop, w.ops),
                    tcomp_tops: c.ccomp(cop, w.ops) / c.freq,
                }
            })
            .collect()
    }

    /// Table 5.2: multiplication `Cop` per operand size per device.
    /// Returns `(device, [Cop at 4/8/16/32 bits])`.
    #[must_use]
    pub fn table_5_2() -> Vec<(String, [u64; 4])> {
        [arch::ppim(), arch::drisa_3t1c(), arch::upmem_analytic()]
            .into_iter()
            .map(|a| {
                let c = a.compute().expect("analytic");
                (
                    a.name.clone(),
                    [
                        c.cop_mult(OperandBits::B4),
                        c.cop_mult(OperandBits::B8),
                        c.cop_mult(OperandBits::B16),
                        c.cop_mult(OperandBits::B32),
                    ],
                )
            })
            .collect()
    }

    /// Fig. 5.4 data: adds-without-carry tent pattern per operand size.
    #[must_use]
    pub fn fig_5_4(widths: &[u32]) -> Vec<(u32, Vec<u64>)> {
        widths.iter().map(|&x| (x, crate::ppim::fig_5_4_pattern(x))).collect()
    }

    /// Fig. 5.5 data for one device: `(tops_sweep, pes_sweep)` per operand
    /// width, with the paper's fixed parameters (PEs fixed for the TOPs
    /// sweep, TOPs fixed for the PE sweep).
    #[must_use]
    pub fn fig_5_5(
        device: &PimArch,
        tops_points: &[f64],
        pes_points: &[u64],
        fixed_tops: f64,
    ) -> Vec<(OperandBits, Vec<f64>, Vec<f64>)> {
        let c = device.compute().expect("Fig. 5.5 devices are analytic");
        OperandBits::ALL
            .iter()
            .map(|&x| (x, c.sweep_tops(x, tops_points), c.sweep_pes(x, fixed_tops, pes_points)))
            .collect()
    }

    /// Fig. 5.6 data: multiplication `Ccomp` vs operand size for the three
    /// modelled PIMs at PEs = 2560, TOPs = 100000.
    #[must_use]
    pub fn fig_5_6() -> Vec<(String, [f64; 4])> {
        let tops = 100_000.0;
        let pes = 2560u64;
        [arch::ppim(), arch::drisa_3t1c(), arch::upmem_analytic()]
            .into_iter()
            .map(|a| {
                let c = a.compute().expect("analytic");
                let waves = (tops / pes as f64).ceil();
                let row = [
                    c.cop_mult(OperandBits::B4) as f64 * waves,
                    c.cop_mult(OperandBits::B8) as f64 * waves,
                    c.cop_mult(OperandBits::B16) as f64 * waves,
                    c.cop_mult(OperandBits::B32) as f64 * waves,
                ];
                (a.name.clone(), row)
            })
            .collect()
    }

    /// Table 5.3: memory-model analysis (8-bit AlexNet).
    /// Returns `(device, Ttransfer, ops/PE, local ops, Tmem)`.
    #[must_use]
    pub fn table_5_3() -> Vec<(String, f64, u64, u64, f64)> {
        let w = Workload::alexnet();
        [arch::ppim(), arch::drisa_3t1c(), arch::upmem_analytic()]
            .into_iter()
            .filter_map(|a| match &a.eval {
                Evaluation::Analytic { memory: Some(m), .. } => Some((
                    a.name.clone(),
                    m.t_transfer,
                    m.ops_per_pe(8),
                    m.local_ops(8),
                    m.tmem(w.ops, 8),
                )),
                _ => None,
            })
            .collect()
    }

    /// §5.3.1: `Ttot = Tmem + Tcomp` for 8-bit AlexNet.
    #[must_use]
    pub fn alexnet_totals() -> Vec<(String, f64)> {
        let w = Workload::alexnet();
        [arch::ppim(), arch::drisa_3t1c(), arch::upmem_analytic()]
            .into_iter()
            .map(|a| {
                let t = a.latency(&w, OperandBits::B8);
                (a.name.clone(), t)
            })
            .collect()
    }

    /// Table 5.4 / Fig. 5.7: the seven-device benchmark. Pass a custom
    /// UPMEM row (e.g. latencies measured on this repository's simulator)
    /// or `None` for the paper's measured values.
    #[must_use]
    pub fn table_5_4(upmem: Option<PimArch>) -> Vec<BenchRow> {
        let ebnn = Workload::ebnn();
        let yolo = Workload::yolov3();
        let x = OperandBits::B8;
        let mut lineup = arch::table_5_4_lineup();
        if let Some(u) = upmem {
            lineup[0] = u;
        }
        lineup
            .into_iter()
            .map(|a| {
                let el = a.latency_nominal(&ebnn, x);
                let yl = a.latency_nominal(&yolo, x);
                let is_upmem = a.name == "UPMEM";
                // UPMEM conventions (see the module constants); other
                // devices run one frame per chip.
                let (ebnn_fps, yolo_power, yolo_area) = if is_upmem {
                    (
                        UPMEM_EBNN_FRAMES_PER_CHIP / el,
                        UPMEM_YOLO_PEAK_DPUS * dpu_sim_power(),
                        UPMEM_YOLO_MEAN_DPUS * dpu_sim_area(),
                    )
                } else {
                    (1.0 / el, a.power_w, a.area_mm2)
                };
                BenchRow {
                    name: a.name.clone(),
                    power_w: a.power_w,
                    area_mm2: a.area_mm2,
                    ebnn_latency: el,
                    ebnn_tp_power: ebnn_fps / a.power_w,
                    ebnn_tp_area: ebnn_fps / a.area_mm2,
                    yolo_latency: yl,
                    yolo_tp_power: (1.0 / yl) / yolo_power,
                    yolo_tp_area: (1.0 / yl) / yolo_area,
                }
            })
            .collect()
    }
}

/// Per-DPU power (W) — Table 2.1's 120 mW.
fn dpu_sim_power() -> f64 {
    0.120
}

/// Per-DPU area (mm²) — Table 2.1's 3.75 mm².
fn dpu_sim_area() -> f64 {
    3.75
}

impl fmt::Display for BenchRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<15} {:>8.2} {:>8.2} {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e}",
            self.name,
            self.power_w,
            self.area_mm2,
            self.ebnn_latency,
            self.ebnn_tp_power,
            self.ebnn_tp_area,
            self.yolo_latency,
            self.yolo_tp_power,
            self.yolo_tp_area
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() / b.abs() < tol
    }

    #[test]
    fn table_5_1_matches_paper() {
        let t = ModelReport::table_5_1();
        let ppim = &t[0];
        assert_eq!(ppim.cop, 8);
        assert!(close(ppim.ccomp_tops, 8.0938e7, 1e-3));
        assert!(close(ppim.tcomp_tops, 6.48e-2, 1e-2));
        let drisa = &t[1];
        assert_eq!(drisa.cop, 211);
        assert!(close(drisa.ccomp_tops, 1.6678e7, 1e-3));
        assert!(close(drisa.tcomp_tops, 1.40e-1, 1e-2));
        let upmem = &t[2];
        assert_eq!(upmem.cop, 88);
        assert_eq!((upmem.mult_fx, upmem.acc_fx), (4, 4));
        assert!(close(upmem.ccomp_tops, 8.9031e7, 1e-3));
        assert!(close(upmem.tcomp_tops, 2.54e-1, 1e-2));
    }

    #[test]
    fn table_5_2_matches_paper() {
        let t = ModelReport::table_5_2();
        assert_eq!(t[0].1, [1, 6, 124, 1016]); // pPIM
        assert_eq!(t[1].1, [110, 200, 380, 740]); // DRISA
        assert_eq!(t[2].1, [44, 44, 374, 572]); // UPMEM (paper: 370*, 570*)
    }

    #[test]
    fn fig_5_6_crossover() {
        // Fig. 5.6's claim: pPIM wins at 8 and 16 bits, UPMEM wins at 32.
        let rows = ModelReport::fig_5_6();
        let find = |n: &str| rows.iter().find(|(name, _)| name == n).unwrap().1;
        let (p, d, u) = (find("pPIM"), find("DRISA-3T1C"), find("UPMEM"));
        assert!(p[1] < d[1] && p[1] < u[1], "pPIM wins 8-bit");
        assert!(p[2] < d[2] && p[2] < u[2], "pPIM wins 16-bit");
        assert!(u[3] < p[3] && u[3] < d[3], "UPMEM wins 32-bit");
    }

    #[test]
    fn table_5_4_upmem_cells() {
        let rows = ModelReport::table_5_4(None);
        let u = &rows[0];
        assert!(close(u.ebnn_tp_power, 5.63e3, 0.01));
        assert!(close(u.ebnn_tp_area, 1.80e2, 0.01));
        assert!(close(u.yolo_tp_power, 1.25e-4, 0.02));
        assert!(close(u.yolo_tp_area, 1.10e-5, 0.05));
    }

    #[test]
    fn table_5_4_analytic_cells() {
        let rows = ModelReport::table_5_4(None);
        let p = rows.iter().find(|r| r.name == "pPIM").unwrap();
        assert!(close(p.ebnn_tp_power, 7.52e5, 0.02));
        assert!(close(p.ebnn_tp_area, 1.02e5, 0.02));
        assert!(close(p.yolo_tp_power, 4.20e-1, 0.02));
        assert!(close(p.yolo_tp_area, 5.71e-2, 0.02));
        let l = rows.iter().find(|r| r.name == "LACC").unwrap();
        assert!(close(l.ebnn_tp_power, 8.82e5, 0.02));
        assert!(close(l.yolo_tp_power, 4.91e-1, 0.02));
        let s = rows.iter().find(|r| r.name == "SCOPE-Vanilla").unwrap();
        assert!(close(s.ebnn_tp_area, 2.82e5, 0.02));
        assert!(close(s.yolo_tp_area, 1.57e-1, 0.02));
    }

    #[test]
    fn fig_5_7_winners_match_paper() {
        // §5.4.1: pPIM and LAcc best in frames/power; SCOPE best in
        // frames/area; DRISA poorest of the analytic models; UPMEM's
        // measured row far below all.
        let rows = ModelReport::table_5_4(None);
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
        let best_power = rows
            .iter()
            .filter(|r| r.name != "UPMEM")
            .max_by(|a, b| a.ebnn_tp_power.partial_cmp(&b.ebnn_tp_power).unwrap())
            .unwrap();
        assert!(best_power.name == "LACC" || best_power.name == "pPIM");
        let best_area = rows
            .iter()
            .max_by(|a, b| a.ebnn_tp_area.partial_cmp(&b.ebnn_tp_area).unwrap())
            .unwrap();
        assert!(best_area.name.starts_with("SCOPE"));
        let drisa = get("DRISA-1T1C-NOR");
        for r in rows.iter().filter(|r| r.name != "UPMEM" && !r.name.starts_with("DRISA")) {
            assert!(drisa.ebnn_tp_power < r.ebnn_tp_power, "DRISA poorest vs {}", r.name);
        }
        let u = get("UPMEM");
        assert!(u.yolo_tp_power < drisa.yolo_tp_power / 10.0);
    }

    #[test]
    fn custom_upmem_row_is_injected() {
        let rows = ModelReport::table_5_4(Some(crate::arch::upmem_measured(2.0e-3, 80.0)));
        assert!((rows[0].ebnn_latency - 2.0e-3).abs() < 1e-12);
        assert!((rows[0].yolo_latency - 80.0).abs() < 1e-12);
    }

    #[test]
    fn sweeps_have_expected_shapes() {
        let tops: Vec<f64> = (1..=100).map(|i| i as f64 * 1000.0).collect();
        let pes: Vec<u64> = (1..=50).map(|i| i * 64).collect();
        let data = ModelReport::fig_5_5(&crate::arch::upmem_analytic(), &tops, &pes, 1e5);
        assert_eq!(data.len(), 4);
        for (_, t_sweep, p_sweep) in &data {
            // TOPs sweep: monotone nondecreasing steps.
            for w in t_sweep.windows(2) {
                assert!(w[1] >= w[0]);
            }
            // PE sweep: monotone nonincreasing.
            for w in p_sweep.windows(2) {
                assert!(w[1] <= w[0]);
            }
        }
        // UPMEM's 8→16-bit gap is uneven (subroutine jump, §5.2.4).
        let c8 = data[1].1[50];
        let c16 = data[2].1[50];
        assert!(c16 / c8 > 5.0);
    }
}
