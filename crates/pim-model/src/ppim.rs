//! pPIM's worst-case LUT multiplication scale function (§5.2.3).
//!
//! pPIM cores are 8-bit-out/2×4-bit-in LUTs, so an `x`-bit multiplication
//! decomposes into `(x/4)²` 4-bit partial products arranged in `2·(x/4)−1`
//! columns (Fig. 5.3), plus a recursive carry-propagating accumulation.
//! The paper's Algorithm 3 counts the additions: the per-column
//! *adds-without-carry* follow the tent pattern of Fig. 5.4 (up by 2 to the
//! middle column, down by 2 after), and each column's carries cascade into
//! the next, so the running count accumulates recursively.
//!
//! Validation against Table 5.2: 16-bit → 124 cycles, 32-bit → 1016 cycles
//! (both starred as estimates in the paper); 4-bit (1) and 8-bit (6) are
//! exact literature values and bypass the estimate.

/// Adds-without-carry for column `n` of a multiplication with `k = 2·(x/4)`
/// half-columns — the Fig. 5.4 tent pattern (Algorithm 3 lines 5–8).
#[must_use]
pub fn adds_without_carry(n: u64, k: u64) -> u64 {
    if n == 0 {
        0
    } else if n > k / 2 {
        2 * k - 2 * n
    } else {
        2 * n - 2
    }
}

/// Algorithm 3: total internal additions (with carries) for the worst-case
/// block-by-block LUT multiplication, iterating `n = k−1 .. 1`.
#[must_use]
pub fn algorithm3_total_adds(k: u64) -> u64 {
    let mut temp = 0u64;
    let mut total = 0u64;
    for n in (1..k).rev() {
        temp += adds_without_carry(n, k);
        total += temp;
    }
    total
}

/// Cycles for one `x`-bit multiplication on pPIM (each LUT access is one
/// cycle): exact literature values for 4/8 bit, the Algorithm-3 estimate
/// (partial products + additions) for wider operands.
///
/// # Panics
/// When `x` is not a positive multiple of 4.
#[must_use]
pub fn cop_mult(x: u32) -> u64 {
    assert!(x > 0 && x.is_multiple_of(4), "pPIM operands are whole 4-bit blocks");
    match x {
        4 => 1,
        8 => 6,
        _ => {
            let b = u64::from(x / 4);
            let partial_mults = b * b;
            partial_mults + algorithm3_total_adds(2 * b)
        }
    }
}

/// Cycles for one accumulation (Table 5.1 row 4: 2 for 8-bit).
#[must_use]
pub fn cop_acc(x: u32) -> u64 {
    // One LUT add per 8-bit block pair, plus carry.
    u64::from(x.div_ceil(8)).max(1) + 1
}

/// The Fig. 5.4 series: adds-without-carry per column for an `x`-bit
/// multiplication.
///
/// # Panics
/// When `x` is not a positive multiple of 4.
#[must_use]
pub fn fig_5_4_pattern(x: u32) -> Vec<u64> {
    assert!(x > 0 && x.is_multiple_of(4), "pPIM operands are whole 4-bit blocks");
    let k = 2 * u64::from(x / 4);
    (1..k).rev().map(|n| adds_without_carry(n, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table_5_2_values() {
        assert_eq!(cop_mult(4), 1);
        assert_eq!(cop_mult(8), 6);
        assert_eq!(cop_mult(16), 124); // 16 partials + 108 adds
        assert_eq!(cop_mult(32), 1016); // 64 partials + 952 adds
    }

    #[test]
    fn algorithm3_hand_checked() {
        // 16-bit: k = 8, g = [2,4,6,6,4,2,0] from n=7..1,
        // temps 2,6,12,18,22,24,24 → 108.
        assert_eq!(algorithm3_total_adds(8), 108);
        assert_eq!(algorithm3_total_adds(16), 952);
    }

    #[test]
    fn pattern_is_a_tent() {
        let p = fig_5_4_pattern(32); // k = 16 → columns n = 15..1
        assert_eq!(p.len(), 15);
        assert_eq!(p[0], 2); // n = 15
        let max = *p.iter().max().unwrap();
        assert_eq!(max, 14); // plateau at k - 2
        assert_eq!(*p.last().unwrap(), 0); // n = 1
                                           // Rises by 2 to the plateau, falls by 2 after.
        let up: Vec<u64> = p.iter().take_while(|&&v| v < max).copied().collect();
        for w in up.windows(2) {
            assert_eq!(w[1], w[0] + 2);
        }
    }

    #[test]
    fn mac_cost_8bit_matches_table_5_1() {
        // Table 5.1: pPIM Cop (1 MAC, 8-bit) = mult 6 + accum 2 = 8.
        assert_eq!(cop_mult(8) + cop_acc(8), 8);
    }

    proptest! {
        /// Cop grows superlinearly with operand width (LUT designs scale
        /// worst — the paper's Fig. 5.6 conclusion).
        #[test]
        fn cop_monotone_in_width(b in 2u32..16) {
            let x = 4 * b;
            prop_assert!(cop_mult(x + 4) > cop_mult(x));
        }

        /// Total adds of Algorithm 3 are consistent with summing the tent
        /// pattern's running prefix sums.
        #[test]
        fn algorithm3_equals_prefix_sum_of_pattern(b in 3u32..20) {
            let k = 2 * u64::from(b);
            let pattern = fig_5_4_pattern(4 * b);
            let mut temp = 0u64;
            let mut total = 0u64;
            for g in pattern {
                temp += g;
                total += temp;
            }
            prop_assert_eq!(total, algorithm3_total_adds(k));
        }
    }
}
