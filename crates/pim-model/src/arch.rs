//! The seven PIM devices of Table 5.4 with their parameter provenance.
//!
//! The paper mixes evaluation methods: UPMEM is *measured* (Chapter 4's
//! implementations), pPIM and DRISA are *modelled* with Eq. 5.3 from
//! literature parameters, and SCOPE/LACC/DRISA-1T1C enter through their
//! published per-MAC throughput (the paper's Table 5.4 rows back-solve to
//! a single effective MAC rate per device). [`ParamSource`] records where
//! each number comes from so reports can mark estimated cells the way the
//! paper stars them.

use crate::compute::{ComputeModel, OperandBits};
use crate::memory::MemoryModel;
use crate::workload::Workload;
use crate::{drisa, ppim, upmem};
use serde::{Deserialize, Serialize};

/// Position on the paper's granularity spectrum (Fig. 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArchClass {
    /// Bitline Boolean logic (DRISA, SCOPE).
    Bitwise,
    /// Look-up-table cores (pPIM, LACC).
    Lut,
    /// Pipelined RISC processors in DRAM (UPMEM).
    PipelinedCpu,
}

/// Provenance of a parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamSource {
    /// Taken directly from the device's publication.
    Literature,
    /// Back-solved from the paper's own tables.
    DerivedFromPaper,
    /// Estimated (curve fit / Algorithm 3 / soft-multiply counts) — the
    /// paper's starred values.
    Estimated,
    /// Measured on the (simulated) implementation in this repository.
    Measured,
}

/// How a device's latency is evaluated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Evaluation {
    /// Full Eq. 5.1–5.10 analytic model.
    Analytic {
        /// Computation model (Eqs. 5.2–5.6).
        compute: ComputeModel,
        /// Memory model (Eq. 5.10), when the paper provides parameters.
        memory: Option<MemoryModel>,
    },
    /// Effective MAC throughput (devices the paper carries over from
    /// literature benchmarks).
    Throughput {
        /// Sustained multiply-accumulates per second.
        macs_per_sec: f64,
    },
    /// Measured end-to-end latencies (UPMEM row of Table 5.4).
    Measured {
        /// eBNN seconds/frame.
        ebnn_latency: f64,
        /// YOLOv3 seconds/frame.
        yolov3_latency: f64,
    },
}

/// One PIM device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PimArch {
    /// Display name (Table 5.4 column header).
    pub name: String,
    /// Granularity class.
    pub class: ArchClass,
    /// Power per chip, watts.
    pub power_w: f64,
    /// Area per chip, mm².
    pub area_mm2: f64,
    /// Latency evaluation method.
    pub eval: Evaluation,
    /// Parameter provenance.
    pub source: ParamSource,
}

impl PimArch {
    /// Latency in seconds for one inference of `w` at width `x`.
    ///
    /// Analytic devices follow Eq. 5.1 (Tcomp + Tmem when a memory model
    /// exists); throughput devices scale linearly; measured devices return
    /// the recorded per-application latency.
    ///
    /// # Panics
    /// For measured devices when `w` is neither eBNN nor YOLOv3.
    #[must_use]
    pub fn latency(&self, w: &Workload, x: OperandBits) -> f64 {
        match &self.eval {
            Evaluation::Analytic { compute, memory } => {
                let tcomp = compute.tcomp_mac(x, w.ops);
                let tmem = memory.map_or(0.0, |m| m.tmem(w.ops, u64::from(x.bits())));
                tcomp + tmem
            }
            Evaluation::Throughput { macs_per_sec } => w.ops / macs_per_sec,
            Evaluation::Measured { ebnn_latency, yolov3_latency } => match w.name.as_str() {
                "eBNN" => *ebnn_latency,
                "YOLOv3" => *yolov3_latency,
                other => panic!("no measurement recorded for workload `{other}`"),
            },
        }
    }

    /// Nominal latency: compute time with fractional waves and no memory
    /// term — the convention of the paper's Table 5.4 latency rows.
    ///
    /// # Panics
    /// For measured devices when `w` is neither eBNN nor YOLOv3.
    #[must_use]
    pub fn latency_nominal(&self, w: &Workload, x: OperandBits) -> f64 {
        match &self.eval {
            Evaluation::Analytic { compute, .. } => compute.tcomp_mac_nominal(x, w.ops),
            _ => self.latency(w, x),
        }
    }

    /// The compute model, when the device is analytic.
    #[must_use]
    pub fn compute(&self) -> Option<&ComputeModel> {
        match &self.eval {
            Evaluation::Analytic { compute, .. } => Some(compute),
            _ => None,
        }
    }
}

/// pPIM (Table 5.1 column: 256 PEs at 1.25 GHz; 3.5 W, 25.75 mm²).
#[must_use]
pub fn ppim() -> PimArch {
    PimArch {
        name: "pPIM".into(),
        class: ArchClass::Lut,
        power_w: 3.5,
        area_mm2: 25.75,
        eval: Evaluation::Analytic {
            compute: ComputeModel {
                cop_mult: [
                    ppim::cop_mult(4),
                    ppim::cop_mult(8),
                    ppim::cop_mult(16),
                    ppim::cop_mult(32),
                ],
                cop_acc: [ppim::cop_acc(4), ppim::cop_acc(8), ppim::cop_acc(16), ppim::cop_acc(32)],
                pes: 256,
                freq: 1.25e9,
            },
            memory: Some(MemoryModel { t_transfer: 6.7e-9, pes: 256, sizebuf_bits: 256 }),
        },
        source: ParamSource::Literature,
    }
}

/// DRISA-3T1C (32768 PEs at 119 MHz; 98 W, 65.2 mm²).
#[must_use]
pub fn drisa_3t1c() -> PimArch {
    PimArch {
        name: "DRISA-3T1C".into(),
        class: ArchClass::Bitwise,
        power_w: 98.0,
        area_mm2: 65.2,
        eval: Evaluation::Analytic {
            compute: ComputeModel {
                cop_mult: [
                    drisa::cop_mult(4),
                    drisa::cop_mult(8),
                    drisa::cop_mult(16),
                    drisa::cop_mult(32),
                ],
                cop_acc: [
                    drisa::cop_acc(4),
                    drisa::cop_acc(8),
                    drisa::cop_acc(16),
                    drisa::cop_acc(32),
                ],
                pes: 32768,
                freq: 1.19e8,
            },
            memory: Some(MemoryModel { t_transfer: 9.0e-8, pes: 32768, sizebuf_bits: 1_048_576 }),
        },
        source: ParamSource::Literature,
    }
}

/// DRISA-1T1C-NOR: the NOR-logic variant; its 8-bit MAC cost back-solves
/// from Table 5.4 to 503 cycles (other widths scaled like 3T1C).
#[must_use]
pub fn drisa_1t1c_nor() -> PimArch {
    let scale = 503.0 / 211.0;
    let scaled = |c: u64| (c as f64 * scale).round() as u64;
    PimArch {
        name: "DRISA-1T1C-NOR".into(),
        class: ArchClass::Bitwise,
        power_w: 98.0,
        area_mm2: 65.2,
        eval: Evaluation::Analytic {
            compute: ComputeModel {
                cop_mult: [
                    scaled(drisa::cop_mult(4)),
                    scaled(drisa::cop_mult(8)),
                    scaled(drisa::cop_mult(16)),
                    scaled(drisa::cop_mult(32)),
                ],
                cop_acc: [
                    scaled(drisa::cop_acc(4)),
                    scaled(drisa::cop_acc(8)),
                    scaled(drisa::cop_acc(16)),
                    scaled(drisa::cop_acc(32)),
                ],
                pes: 32768,
                freq: 1.19e8,
            },
            memory: None,
        },
        source: ParamSource::DerivedFromPaper,
    }
}

/// UPMEM with the paper's measured Chapter-4 latencies. Use
/// [`upmem_measured`] to inject latencies measured on this repository's
/// simulated implementation instead.
#[must_use]
pub fn upmem_paper() -> PimArch {
    upmem_measured(1.48e-3, 65.0)
}

/// UPMEM with explicit measured latencies (0.96 W and 30 mm² per 8-DPU
/// chip; Table 2.1/5.4).
#[must_use]
pub fn upmem_measured(ebnn_latency: f64, yolov3_latency: f64) -> PimArch {
    PimArch {
        name: "UPMEM".into(),
        class: ArchClass::PipelinedCpu,
        power_w: 0.96,
        area_mm2: 30.0,
        eval: Evaluation::Measured { ebnn_latency, yolov3_latency },
        source: ParamSource::Measured,
    }
}

/// UPMEM as an *analytic* device (Table 5.1 column: 2560 PEs at 350 MHz) —
/// used for the model-walkthrough tables, not for Table 5.4.
#[must_use]
pub fn upmem_analytic() -> PimArch {
    PimArch {
        name: "UPMEM".into(),
        class: ArchClass::PipelinedCpu,
        power_w: 0.96,
        area_mm2: 30.0,
        eval: Evaluation::Analytic {
            compute: ComputeModel {
                cop_mult: [
                    upmem::cop_mult(4),
                    upmem::cop_mult(8),
                    upmem::cop_mult(16),
                    upmem::cop_mult(32),
                ],
                cop_acc: [
                    upmem::cop_acc(4),
                    upmem::cop_acc(8),
                    upmem::cop_acc(16),
                    upmem::cop_acc(32),
                ],
                pes: 2560,
                freq: 3.5e8,
            },
            memory: Some(MemoryModel { t_transfer: 9.6e-5, pes: 2560, sizebuf_bits: 512_000 }),
        },
        source: ParamSource::Literature,
    }
}

/// SCOPE-Vanilla (stochastic bitwise; throughput derived from Table 5.4).
#[must_use]
pub fn scope_vanilla() -> PimArch {
    PimArch {
        name: "SCOPE-Vanilla".into(),
        class: ArchClass::Bitwise,
        power_w: 176.4,
        area_mm2: 273.0,
        eval: Evaluation::Throughput { macs_per_sec: 1.52e4 / 1.30e-8 },
        source: ParamSource::DerivedFromPaper,
    }
}

/// SCOPE-H2d.
#[must_use]
pub fn scope_h2d() -> PimArch {
    PimArch {
        name: "SCOPE-H2d".into(),
        class: ArchClass::Bitwise,
        power_w: 176.4,
        area_mm2: 273.0,
        eval: Evaluation::Throughput { macs_per_sec: 1.52e4 / 4.64e-8 },
        source: ParamSource::DerivedFromPaper,
    }
}

/// LACC (LUT-based vector multiplier).
#[must_use]
pub fn lacc() -> PimArch {
    PimArch {
        name: "LACC".into(),
        class: ArchClass::Lut,
        power_w: 5.3,
        area_mm2: 54.8,
        eval: Evaluation::Throughput { macs_per_sec: 1.52e4 / 2.14e-7 },
        source: ParamSource::DerivedFromPaper,
    }
}

/// The Table 5.4 line-up, in column order.
#[must_use]
pub fn table_5_4_lineup() -> Vec<PimArch> {
    vec![
        upmem_paper(),
        ppim(),
        drisa_3t1c(),
        drisa_1t1c_nor(),
        scope_vanilla(),
        scope_h2d(),
        lacc(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() / b.abs() < tol
    }

    #[test]
    fn table_5_4_ebnn_latencies() {
        let e = Workload::ebnn();
        let x = OperandBits::B8;
        assert!(close(ppim().latency_nominal(&e, x), 3.80e-7, 0.01));
        assert!(close(drisa_3t1c().latency_nominal(&e, x), 8.21e-7, 0.01));
        assert!(close(drisa_1t1c_nor().latency_nominal(&e, x), 1.96e-6, 0.01));
        assert!(close(scope_vanilla().latency_nominal(&e, x), 1.30e-8, 0.01));
        assert!(close(scope_h2d().latency_nominal(&e, x), 4.64e-8, 0.01));
        assert!(close(lacc().latency_nominal(&e, x), 2.14e-7, 0.01));
        assert!(close(upmem_paper().latency_nominal(&e, x), 1.48e-3, 0.001));
    }

    #[test]
    fn table_5_4_yolo_latencies() {
        let y = Workload::yolov3();
        let x = OperandBits::B8;
        assert!(close(ppim().latency_nominal(&y, x), 0.68, 0.01));
        assert!(close(drisa_3t1c().latency_nominal(&y, x), 1.47, 0.01));
        assert!(close(drisa_1t1c_nor().latency_nominal(&y, x), 3.51, 0.01));
        assert!(close(scope_vanilla().latency_nominal(&y, x), 0.0233, 0.02));
        assert!(close(scope_h2d().latency_nominal(&y, x), 0.0831, 0.02));
        assert!(close(lacc().latency_nominal(&y, x), 0.384, 0.02));
        assert!(close(upmem_paper().latency_nominal(&y, x), 65.0, 0.001));
    }

    #[test]
    fn full_latency_exceeds_nominal() {
        // Eq. 5.1 adds Tmem and the final partial wave.
        let e = Workload::ebnn();
        let x = OperandBits::B8;
        for a in [ppim(), drisa_3t1c()] {
            assert!(a.latency(&e, x) >= a.latency_nominal(&e, x));
        }
    }

    #[test]
    fn alexnet_totals_match_section_5_3_1() {
        let a = Workload::alexnet();
        let x = OperandBits::B8;
        assert!(close(ppim().latency(&a, x), 6.90e-2, 0.01));
        assert!(close(drisa_3t1c().latency(&a, x), 1.40e-1, 0.01));
        assert!(close(upmem_analytic().latency(&a, x), 2.57e-1, 0.01));
    }

    #[test]
    fn lineup_has_seven_devices() {
        let l = table_5_4_lineup();
        assert_eq!(l.len(), 7);
        assert_eq!(l[0].name, "UPMEM");
    }

    #[test]
    #[should_panic(expected = "no measurement")]
    fn measured_device_rejects_unknown_workload() {
        let _ = upmem_paper().latency(&Workload::alexnet(), OperandBits::B8);
    }
}

/// Parse a device description from JSON — the §5.4 "model usage" workflow
/// for evaluating a *new* PIM without touching code. The schema is the
/// serde form of [`PimArch`]; see `examples/pim_model_explorer.rs`.
///
/// # Errors
/// Returns the serde error message on malformed input.
pub fn arch_from_json(json: &str) -> Result<PimArch, String> {
    serde_json::from_str(json).map_err(|e| e.to_string())
}

/// Serialize a device description to pretty JSON (the starting point for
/// users describing their own PIM).
#[must_use]
pub fn arch_to_json(arch: &PimArch) -> String {
    serde_json::to_string_pretty(arch).expect("PimArch serializes")
}

#[cfg(test)]
mod json_tests {
    use super::*;
    use crate::compute::OperandBits;
    use crate::workload::Workload;

    #[test]
    fn json_round_trip_every_builtin() {
        for a in table_5_4_lineup() {
            let json = arch_to_json(&a);
            let back = arch_from_json(&json).expect("round trip");
            assert_eq!(back, a, "{}", a.name);
        }
    }

    #[test]
    fn custom_device_from_json_evaluates() {
        let json = r#"{
            "name": "MyPIM",
            "class": "Lut",
            "power_w": 2.0,
            "area_mm2": 20.0,
            "eval": { "Throughput": { "macs_per_sec": 1.0e12 } },
            "source": "Estimated"
        }"#;
        let a = arch_from_json(json).expect("parses");
        let t = a.latency_nominal(&Workload::ebnn(), OperandBits::B8);
        assert!((t - 1.52e4 / 1.0e12).abs() < 1e-12);
    }

    #[test]
    fn malformed_json_is_reported() {
        assert!(arch_from_json("{ not json").is_err());
        assert!(arch_from_json(r#"{"name": "x"}"#).is_err());
    }
}
