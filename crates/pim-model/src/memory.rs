//! The memory model: Eq. 5.10 and Table 5.3.
//!
//! ```text
//! Tmem = Ttransfer · ceil( TOPs / (PEs · sizebuf / (2 · Lenop)) )
//! ```
//!
//! Each PE owns one local buffer of `sizebuf` bits holding
//! `sizebuf / (2·Lenop)` operations' worth of operands (two operands per
//! operation); computation proceeds in rounds of `PEs × ops-per-buffer`
//! locally-staged operations, each round costing one `Ttransfer` refill.

use serde::{Deserialize, Serialize};

/// Eq. 5.10's parameters for one architecture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Time of one external→local transfer, seconds (`Ttransfer`).
    pub t_transfer: f64,
    /// Processing elements.
    pub pes: u64,
    /// Local buffer size per PE, bits (`sizebuf`).
    pub sizebuf_bits: u64,
}

impl MemoryModel {
    /// Operations stageable in one PE's buffer (`sizebuf / (2·Lenop)`).
    #[must_use]
    pub fn ops_per_pe(&self, lenop_bits: u64) -> u64 {
        self.sizebuf_bits / (2 * lenop_bits)
    }

    /// Operations stageable across the whole device per round
    /// ("Local Ops" of Table 5.3).
    #[must_use]
    pub fn local_ops(&self, lenop_bits: u64) -> u64 {
        self.pes * self.ops_per_pe(lenop_bits)
    }

    /// `Tmem` (Eq. 5.10) in seconds for `tops` operations of `lenop_bits`
    /// operands.
    #[must_use]
    pub fn tmem(&self, tops: f64, lenop_bits: u64) -> f64 {
        let local = self.local_ops(lenop_bits) as f64;
        self.t_transfer * (tops / local).ceil()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 5.3 parameter columns.
    fn ppim() -> MemoryModel {
        MemoryModel { t_transfer: 6.7e-9, pes: 256, sizebuf_bits: 256 }
    }
    fn drisa() -> MemoryModel {
        MemoryModel { t_transfer: 9.0e-8, pes: 32768, sizebuf_bits: 1_048_576 }
    }
    fn upmem() -> MemoryModel {
        MemoryModel { t_transfer: 9.6e-5, pes: 2560, sizebuf_bits: 512_000 }
    }

    #[test]
    fn table_5_3_ops_per_pe() {
        assert_eq!(ppim().ops_per_pe(8), 16);
        assert_eq!(drisa().ops_per_pe(8), 65536);
        assert_eq!(upmem().ops_per_pe(8), 32000);
    }

    #[test]
    fn table_5_3_local_ops() {
        assert_eq!(ppim().local_ops(8), 4096);
        assert_eq!(drisa().local_ops(8), 2_147_483_648);
        assert_eq!(upmem().local_ops(8), 81_920_000);
    }

    #[test]
    fn table_5_3_tmem_alexnet() {
        let tops = 2.59e9;
        let t_ppim = ppim().tmem(tops, 8);
        assert!((t_ppim - 4.24e-3).abs() / 4.24e-3 < 0.01, "pPIM {t_ppim}");
        let t_drisa = drisa().tmem(tops, 8);
        assert!((t_drisa - 1.8e-7).abs() / 1.8e-7 < 0.01, "DRISA {t_drisa}");
        let t_upmem = upmem().tmem(tops, 8);
        assert!((t_upmem - 3.07e-3).abs() / 3.07e-3 < 0.01, "UPMEM {t_upmem}");
    }

    #[test]
    fn wider_operands_need_more_rounds() {
        let m = ppim();
        assert!(m.tmem(1e6, 16) >= m.tmem(1e6, 8));
        assert_eq!(m.ops_per_pe(16), 8);
    }
}
