//! Ablations and future-work studies.
//!
//! The paper closes with concrete improvement proposals (§4.3.4) and
//! future-work directions (§6.1). The simulator lets us evaluate them
//! quantitatively instead of speculating:
//!
//! * [`improvements`] — §4.3.4's three proposals (raise the DPU clock to
//!   the announced 600 MHz, grow WRAM so CNN buffers fit, cut the MRAM DMA
//!   penalty), each as a what-if device configuration re-running the
//!   headline workloads;
//! * [`mapping_comparison`] — §6.1's "squeeze as many YOLOv3 inferences
//!   into a single DPU as possible ... compare to the current mapping":
//!   the frame-per-DPU mapping vs the Fig. 4.6 row mapping across model
//!   scales, exposing the MRAM-capacity wall that forced the paper's
//!   choice;
//! * [`size_sweep`] — §6.1's "parametrically show when UPMEM's system
//!   starts losing performance and for what network size": frame latency
//!   and the gap to the modelled pPIM across input resolutions;
//! * [`ebnn_image_size_limits`] — §6.1's "going from small image sizes to
//!   larger sizes can determine how large of an image is supported".

use dpu_sim::cost::OpCounts;
use dpu_sim::{DpuParams, Profiler};
use ebnn::{DeepConfig, DeepEbnn, EbnnModel, EbnnPipeline};
use pim_host::KernelRun;
use pim_model::{OperandBits, Workload};
use serde::{Deserialize, Serialize};
use yolo_pim::darknet::darknet53_yolov3_scaled;
use yolo_pim::{darknet53_yolov3, GemmMapping, YoloPipeline};

/// One device-configuration ablation row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Configuration label.
    pub name: String,
    /// eBNN per-image seconds (16-tasklet batch).
    pub ebnn_per_image: f64,
    /// YOLOv3 frame seconds (total).
    pub yolo_frame: f64,
    /// YOLOv3 DPU-compute seconds (isolates on-chip effects from the host
    /// link).
    pub yolo_dpu_seconds: f64,
}

fn measure(name: &str, model: &EbnnModel, params: DpuParams) -> AblationRow {
    let images: Vec<_> = (0..16).map(|i| ebnn::mnist::synth_digit(i % 10, i as u64)).collect();
    let mut pipe = EbnnPipeline::new(model.clone());
    pipe.params = params;
    let batch = pipe.infer(&images).expect("ebnn runs");
    let mapping = GemmMapping { params, ..GemmMapping::default() };
    let yolo = YoloPipeline { network: darknet53_yolov3(), mapping, seed: 0 }.estimate();
    AblationRow {
        name: name.to_owned(),
        ebnn_per_image: batch.dpu_seconds / images.len() as f64,
        yolo_frame: yolo.total_seconds(),
        yolo_dpu_seconds: yolo.dpu_seconds(),
    }
}

/// §4.3.4's improvement proposals as what-if device configurations.
#[must_use]
pub fn improvements(model: &EbnnModel) -> Vec<AblationRow> {
    let base = DpuParams::default();
    vec![
        measure("baseline (350 MHz, 64 KiB WRAM, DMA 25cy)", model, base),
        measure("600 MHz clock (white-paper target)", model, DpuParams::announced()),
        measure("4x WRAM (256 KiB)", model, DpuParams { wram_bytes: 256 * 1024, ..base }),
        measure("DMA setup 25 -> 5 cycles", model, DpuParams { dma_setup_cycles: 5, ..base }),
        measure(
            "all three combined",
            model,
            DpuParams { freq_hz: 600_000_000, wram_bytes: 256 * 1024, dma_setup_cycles: 5, ..base },
        ),
    ]
}

/// One row of the mapping comparison (§6.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MappingRow {
    /// Network label.
    pub network: String,
    /// Weight bytes the frame-per-DPU mapping must hold per DPU.
    pub weights_bytes: u64,
    /// Whether it fits the 64 MB MRAM.
    pub fits_mram: bool,
    /// Row mapping (Fig. 4.6): seconds per frame.
    pub row_frame_seconds: f64,
    /// Frame-per-DPU: seconds per frame on one DPU (when feasible).
    pub fpd_frame_seconds: Option<f64>,
    /// Row mapping: system frames/second (one frame at a time).
    pub row_fps: f64,
    /// Frame-per-DPU: steady-state system frames/second (when feasible).
    pub fpd_fps: Option<f64>,
}

/// Compare the Fig. 4.6 row mapping against the future-work frame-per-DPU
/// mapping across model widths.
#[must_use]
pub fn mapping_comparison(width_divs: &[usize]) -> Vec<MappingRow> {
    let mapping = GemmMapping::default();
    width_divs
        .iter()
        .map(|&div| {
            let net = darknet53_yolov3_scaled(div, 416);
            let row = YoloPipeline { network: net.clone(), mapping, seed: 0 }.estimate();
            let fpd = mapping.estimate_frame_per_dpu(&net);
            MappingRow {
                network: net.name.clone(),
                weights_bytes: fpd.weights_bytes,
                fits_mram: fpd.fits_mram,
                row_frame_seconds: row.total_seconds(),
                fpd_frame_seconds: fpd.fits_mram.then_some(fpd.frame_seconds),
                row_fps: 1.0 / row.total_seconds(),
                fpd_fps: fpd.fits_mram.then_some(fpd.system_frames_per_second),
            }
        })
        .collect()
}

/// One row of the network-size sweep (§6.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SizeSweepRow {
    /// Input resolution (square).
    pub input: usize,
    /// Total MACs per frame.
    pub macs: u64,
    /// UPMEM frame seconds (row mapping, transfers included).
    pub upmem_seconds: f64,
    /// Modelled pPIM frame seconds on the same MAC count.
    pub ppim_seconds: f64,
    /// UPMEM/pPIM latency ratio — how far UPMEM trails at this size.
    pub ratio: f64,
}

/// Sweep YOLO input resolution and compare UPMEM's mapped latency against
/// the modelled pPIM on the same operation count.
#[must_use]
pub fn size_sweep(inputs: &[usize]) -> Vec<SizeSweepRow> {
    let mapping = GemmMapping::default();
    let ppim = pim_model::arch::ppim();
    inputs
        .iter()
        .map(|&input| {
            let net = darknet53_yolov3_scaled(1, input);
            let macs = net.total_macs();
            let upmem = YoloPipeline { network: net, mapping, seed: 0 }.estimate();
            let w = Workload::custom("sweep", macs as f64);
            let ppim_seconds = ppim.latency_nominal(&w, OperandBits::B8);
            let upmem_seconds = upmem.total_seconds();
            SizeSweepRow {
                input,
                macs,
                upmem_seconds,
                ppim_seconds,
                ratio: upmem_seconds / ppim_seconds,
            }
        })
        .collect()
}

/// One row of the eBNN image-size study (§6.1).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ImageSizeRow {
    /// Square image edge in pixels.
    pub dim: usize,
    /// Bit-packed bytes per image (rows padded to whole words, slot
    /// rounded to 8).
    pub slot_bytes: usize,
    /// Images per maximum 2048-byte DMA transfer.
    pub images_per_transfer: usize,
    /// Binary images that fit the per-tasklet WRAM stack at 16 tasklets.
    pub images_in_wram: usize,
    /// Whether the multi-image-per-DPU scheme still applies (≥2 images per
    /// transfer *and* in WRAM) or the network must fall back to
    /// multi-DPU-per-image.
    pub multi_image_feasible: bool,
    /// Measured single-tasklet seconds per image through the wide-image
    /// conv-pool kernel (8 filters, LUT activation).
    pub seconds_per_image: f64,
}

/// How large an input the eBNN multi-image scheme supports (§6.1), with
/// the measured per-image kernel cost at each size (wide-image datapath).
#[must_use]
pub fn ebnn_image_size_limits(dims: &[usize]) -> Vec<ImageSizeRow> {
    let params = DpuParams::default();
    dims.iter()
        .map(|&dim| {
            // 28-px rows pack into u32 words (the paper's layout); wider
            // rows use the u64-word wide datapath.
            let slot_bytes = if dim <= 32 {
                (dim * 4).div_ceil(8) * 8
            } else {
                ebnn::WideBinaryImage::from_gray(&vec![0u8; dim * dim], dim, dim, 128)
                    .packed_bytes()
            };
            let images_per_transfer = dpu_sim::params::DMA_MAX_TRANSFER_BYTES / slot_bytes;
            let images_in_wram = params.max_stack_bytes(16) / slot_bytes.max(1);

            // Measured kernel cost at this size (8 filters, 1 tasklet).
            let img = ebnn::WideBinaryImage::from_gray(&vec![128u8; dim * dim], dim, dim, 128);
            let mut run = KernelRun::new(params, pim_host::OptLevel::O0, 1);
            ebnn::wide::wide_conv_pool_tally(&img, 8, run.tally(0));
            run.charge_dma(0, slot_bytes.min(dpu_sim::params::DMA_MAX_TRANSFER_BYTES));

            ImageSizeRow {
                dim,
                slot_bytes,
                images_per_transfer,
                images_in_wram,
                multi_image_feasible: images_per_transfer.min(images_in_wram) >= 2,
                seconds_per_image: run.seconds(),
            }
        })
        .collect()
}

/// One row of the eBNN depth sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DepthSweepRow {
    /// Filters per block.
    pub filters: Vec<usize>,
    /// Final feature count.
    pub features: usize,
    /// Working-set bytes of the widest block transition (feature maps +
    /// LUT — all shared per DPU, unlike the per-tasklet stacks).
    pub working_set_bytes: usize,
    /// Whether the shared working set fits a quarter of WRAM (leaving the
    /// rest for tasklet stacks and temporaries).
    pub fits_wram: bool,
    /// DPU seconds per image (single tasklet).
    pub seconds_per_image: f64,
    /// Classification accuracy (percent) on 30 jittered synthetic digits.
    pub accuracy_pct: u32,
}

/// Sweep eBNN depth (stacked conv-pool blocks) — the "more CNNs" direction
/// of §6.1, measuring where depth stops fitting the DPU and what it costs.
#[must_use]
pub fn depth_sweep(configs: &[Vec<usize>]) -> Vec<DepthSweepRow> {
    let params = DpuParams::default();
    configs
        .iter()
        .map(|filters| {
            let model = DeepEbnn::generate(DeepConfig {
                filters: filters.clone(),
                ..DeepConfig::default()
            });
            // Cost of one image through all blocks (single tasklet).
            let mut run = KernelRun::new(params, pim_host::OptLevel::O0, 1);
            let mut profile = Profiler::new();
            let px = ebnn::mnist::synth_digit(3, 0).pixels;
            let mut tally = OpCounts::default();
            let _ = model.features(&px, &mut tally, &mut profile);
            *run.tally(0) = tally;
            let seconds = run.seconds();
            // Accuracy over 30 jittered digits.
            let mut hits = 0u32;
            for c in 0..10 {
                for i in 0..3 {
                    if model.predict(&ebnn::mnist::synth_digit(c, i).pixels) == c {
                        hits += 1;
                    }
                }
            }
            let ws = model.working_set_bytes();
            DepthSweepRow {
                filters: filters.clone(),
                features: model.feature_count(),
                working_set_bytes: ws,
                fits_wram: ws <= params.wram_bytes / 4,
                seconds_per_image: seconds,
                accuracy_pct: hits * 100 / 30,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebnn::ModelConfig;

    fn small_model() -> EbnnModel {
        EbnnModel::generate(ModelConfig { filters: 4, ..ModelConfig::default() })
    }

    #[test]
    fn higher_clock_speeds_everything_up() {
        let rows = improvements(&small_model());
        let base = &rows[0];
        let mhz600 = &rows[1];
        let expect = 350.0 / 600.0;
        assert!((mhz600.ebnn_per_image / base.ebnn_per_image - expect).abs() < 0.01);
        assert!((mhz600.yolo_dpu_seconds / base.yolo_dpu_seconds - expect).abs() < 0.01);
        // Host transfers don't speed up with the DPU clock.
        assert!(mhz600.yolo_frame > base.yolo_frame * 0.75);
    }

    #[test]
    fn bigger_wram_helps_yolo_not_ebnn() {
        let rows = improvements(&small_model());
        let base = &rows[0];
        let wram = &rows[2];
        // eBNN already fits: no change.
        assert!((wram.ebnn_per_image / base.ebnn_per_image - 1.0).abs() < 0.01);
        // YOLO's ctmp fits in more layers: DPU compute drops.
        assert!(wram.yolo_dpu_seconds < base.yolo_dpu_seconds * 0.95);
    }

    #[test]
    fn combined_improvements_are_best() {
        let rows = improvements(&small_model());
        let all = rows.last().unwrap();
        for r in &rows[..rows.len() - 1] {
            assert!(all.yolo_dpu_seconds <= r.yolo_dpu_seconds * 1.001, "vs {}", r.name);
            assert!(all.ebnn_per_image <= r.ebnn_per_image * 1.001, "vs {}", r.name);
        }
    }

    #[test]
    fn mapping_comparison_shows_the_mram_wall() {
        let rows = mapping_comparison(&[1, 2, 4]);
        assert!(!rows[0].fits_mram, "full model must not fit");
        assert!(rows[1].fits_mram && rows[2].fits_mram);
        // Where feasible, frame-per-DPU wins on throughput but loses on
        // single-frame latency.
        let r = &rows[1];
        assert!(r.fpd_fps.unwrap() > r.row_fps * 10.0);
        assert!(r.fpd_frame_seconds.unwrap() > r.row_frame_seconds / 10.0);
    }

    #[test]
    fn size_sweep_is_monotone_and_upmem_trails() {
        let rows = size_sweep(&[128, 256, 416]);
        for w in rows.windows(2) {
            assert!(w[1].macs > w[0].macs);
            assert!(w[1].upmem_seconds > w[0].upmem_seconds);
        }
        // UPMEM trails the modelled pPIM at every size (Table 5.4's story).
        assert!(rows.iter().all(|r| r.ratio > 1.0));
    }

    #[test]
    fn depth_sweep_costs_grow_with_depth() {
        let rows = depth_sweep(&[vec![8], vec![8, 16], vec![8, 16, 32]]);
        assert!(rows[1].seconds_per_image > rows[0].seconds_per_image);
        assert!(rows[2].seconds_per_image > rows[1].seconds_per_image);
        // These configs stay WRAM-feasible; feature counts shrink
        // spatially even as channels grow.
        assert!(rows.iter().all(|r| r.fits_wram), "{rows:?}");
        assert_eq!(rows[0].features, 8 * 14 * 14);
        assert_eq!(rows[2].features, 32 * 3 * 3);
    }

    #[test]
    fn depth_sweep_finds_the_wram_wall() {
        // Deep wide blocks blow up the LUT (rows scale with 18x fan-in):
        // a 64-channel fourth block needs a >70 KB LUT and stops fitting.
        let rows = depth_sweep(&[vec![8, 16], vec![8, 16, 64, 64]]);
        assert!(rows[0].fits_wram);
        assert!(!rows[1].fits_wram, "ws = {}", rows[1].working_set_bytes);
    }

    #[test]
    fn image_size_limits_match_the_papers_28px_case() {
        let rows = ebnn_image_size_limits(&[28, 56, 112, 224]);
        assert_eq!(rows[0].slot_bytes, 112);
        assert_eq!(rows[0].images_per_transfer, 18); // 16 used (slot-aligned)
        assert!(rows[0].multi_image_feasible);
        // Somewhere between 28 and 224 the scheme stops being feasible.
        assert!(!rows.last().unwrap().multi_image_feasible);
    }
}

/// AlexNet, two ways: the paper's Eq. 5.3 idealization (Table 5.1) versus
/// the *actual* Fig. 4.6 row mapping — quantifying how much the analytic
/// model flatters UPMEM by ignoring orchestration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AlexNetComparison {
    /// Eq. 5.2/5.3 compute time (paper Table 5.1: 2.54e-1 s).
    pub modeled_tcomp: f64,
    /// Eq. 5.1 total with the memory model (paper §5.3.1: 2.57e-1 s).
    pub modeled_ttot: f64,
    /// DPU compute under the row mapping (FC layers wider than the system
    /// run in serial passes).
    pub mapped_dpu_seconds: f64,
    /// Row-mapping total including host transfers.
    pub mapped_total_seconds: f64,
}

impl AlexNetComparison {
    /// How much slower the real mapping is than the analytic model.
    #[must_use]
    pub fn mapping_overhead(&self) -> f64 {
        self.mapped_total_seconds / self.modeled_ttot
    }
}

/// Run the AlexNet model-vs-mapping comparison.
#[must_use]
pub fn alexnet_under_the_mapping() -> AlexNetComparison {
    use pim_model::ModelReport;
    let modeled = ModelReport::table_5_1();
    let upmem = &modeled[2];
    let modeled_ttot =
        pim_model::arch::upmem_analytic().latency(&Workload::alexnet(), OperandBits::B8);

    let mapping = GemmMapping::default();
    let net = yolo_pim::darknet::alexnet_config();
    let mut dpu_seconds = 0.0;
    let mut total = 0.0;
    for (_, _, _, dims) in net.conv_layers() {
        // Layers wider than the system split into serial passes of at most
        // 2560 rows.
        let passes = dims.m.div_ceil(dpu_sim::params::SYSTEM_DPUS);
        let per_pass = yolo_pim::GemmDims { m: dims.m.div_ceil(passes), ..dims };
        let report = mapping.estimate_layer(per_pass);
        dpu_seconds += report.dpu_seconds * passes as f64;
        total += report.total_seconds * passes as f64;
    }
    AlexNetComparison {
        modeled_tcomp: upmem.tcomp_tops,
        modeled_ttot,
        mapped_dpu_seconds: dpu_seconds,
        mapped_total_seconds: total,
    }
}

#[cfg(test)]
mod alexnet_mapping_tests {
    use super::*;

    #[test]
    fn mapping_is_much_slower_than_the_idealization() {
        let c = alexnet_under_the_mapping();
        // Paper values reproduce on the model side.
        assert!((c.modeled_tcomp - 2.54e-1).abs() / 2.54e-1 < 0.02);
        assert!((c.modeled_ttot - 2.57e-1).abs() / 2.57e-1 < 0.02);
        // The real mapping pays host transfers and per-element MRAM access:
        // an order of magnitude or more over Eq. 5.3.
        assert!(c.mapping_overhead() > 5.0, "overhead {}", c.mapping_overhead());
        assert!(c.mapped_total_seconds > c.mapped_dpu_seconds);
    }
}
