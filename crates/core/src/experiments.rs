//! One driver per experiment of the paper.
//!
//! Each function regenerates the data behind a table or figure and returns
//! it as a structured value; the `pim-bench` crate renders them and
//! `EXPERIMENTS.md` records paper-vs-measured. The drivers accept the
//! model/size knobs they need so tests can run scaled-down instances while
//! the report binary runs the paper's configuration.

use cpu_baseline::XeonModel;
use dpu_sim::asm::{profile_harness, HarnessOp};
use dpu_sim::cost::OpCounts;
use dpu_sim::{DpuParams, Machine, Profiler};
use ebnn::mapping::BnPlacement;
use ebnn::{BnLut, EbnnModel, EbnnPipeline};
use pim_host::OptLevel;
use pim_model::report::BenchRow;
use pim_model::ModelReport;
use serde::{Deserialize, Serialize};
use yolo_pim::{darknet53_yolov3, GemmDims, GemmMapping, YoloPipeline};

/// One row of Table 3.1: paper vs simulator cycles for an operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table31Row {
    /// Operation label.
    pub op: String,
    /// The paper's measured cycles.
    pub paper_cycles: u64,
    /// Cycles measured on the simulated DPU with the Fig. 3.1 harness.
    pub measured_cycles: u64,
}

impl Table31Row {
    /// Relative error against the paper.
    #[must_use]
    pub fn rel_error(&self) -> f64 {
        (self.measured_cycles as f64 - self.paper_cycles as f64).abs() / self.paper_cycles as f64
    }
}

/// Table 3.1: run the Fig. 3.1 profiling harness for every operation on a
/// single-tasklet DPU.
#[must_use]
pub fn table_3_1() -> Vec<Table31Row> {
    HarnessOp::ALL
        .iter()
        .map(|&op| {
            let mut m = Machine::default();
            let res = m.run(&profile_harness(op), 1).expect("harness runs");
            Table31Row {
                op: op.label().to_owned(),
                paper_cycles: op.paper_cycles(),
                measured_cycles: res.perf_reads[0],
            }
        })
        .collect()
}

/// Eq. 3.4: MRAM→WRAM DMA cycle cost per transfer size, measured by
/// executing the transfer on the simulated engine.
#[must_use]
pub fn eq_3_4(byte_sizes: &[usize]) -> Vec<(usize, u64)> {
    let params = DpuParams::default();
    byte_sizes.iter().map(|&b| (b, params.dma_cycles(b))).collect()
}

/// Fig. 3.2: subroutine occurrence profile of a DPU program with
/// high-precision computations — a float harmonic-sum kernel touching the
/// same routines the paper's screenshot lists (`__ltsf2`, `__divsf3`,
/// `__floatsisf`, `__addsf3`, `__muldi3`).
#[must_use]
pub fn fig_3_2() -> Profiler {
    let src = "\
        movi r1, 1          ; i\n\
        movi r2, 0          ; sum (f32 bits)\n\
        movi r3, 1065353216 ; 1.0f\n\
        movi r4, 20         ; iterations\n\
        loop:\n\
        call __floatsisf r5, r1, r0   ; (float)i\n\
        call __divsf3 r6, r3, r5      ; 1.0 / i\n\
        call __addsf3 r2, r2, r6      ; sum += ...\n\
        call __ltsf2 r7, r6, r3       ; convergence check\n\
        call __muldi3 r8, r1, r1      ; 64-bit index square (bookkeeping)\n\
        addi r1, r1, 1\n\
        bne r1, r4, loop\n\
        sw r0, 0, r2\n\
        halt\n";
    let program = dpu_sim::asm::assemble(src).expect("fig 3.2 kernel assembles");
    let mut m = Machine::default();
    m.run(&program, 1).expect("fig 3.2 kernel runs").profile
}

/// Fig. 4.3: distinct float subroutines with and without the LUT rewrite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig43 {
    /// Profile of the float-BN kernel (11+ routines).
    pub float_profile: ProfilerSummary,
    /// Profile of the LUT kernel (2 routines).
    pub lut_profile: ProfilerSummary,
}

/// Serializable subset of a [`Profiler`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfilerSummary {
    /// `(symbol, occurrences)` pairs.
    pub occ: Vec<(String, u64)>,
    /// Number of distinct routines.
    pub distinct: usize,
}

impl From<&Profiler> for ProfilerSummary {
    fn from(p: &Profiler) -> Self {
        Self {
            occ: p.iter().map(|(s, c)| (s.to_owned(), c)).collect(),
            distinct: p.distinct_subroutines(),
        }
    }
}

/// Fig. 4.3: run one image through the eBNN conv-pool kernel under both BN
/// back-ends and compare subroutine profiles.
#[must_use]
pub fn fig_4_3(model: &EbnnModel) -> Fig43 {
    let img = model.binarize(&ebnn::mnist::synth_digit(7, 0).pixels);
    let lut = BnLut::for_conv3x3(&model.bn);
    let mut t = OpCounts::default();
    let mut float_p = Profiler::new();
    let _ = ebnn::conv_pool_block(
        &img,
        &model.filters,
        ebnn::BnMode::Float(&model.bn),
        &mut t,
        &mut float_p,
    );
    let mut t2 = OpCounts::default();
    let mut lut_p = Profiler::new();
    let _ =
        ebnn::conv_pool_block(&img, &model.filters, ebnn::BnMode::Lut(&lut), &mut t2, &mut lut_p);
    Fig43 { float_profile: (&float_p).into(), lut_profile: (&lut_p).into() }
}

/// Fig. 4.4: 16-image completion time with and without the LUT rewrite.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig44 {
    /// DPU seconds with float BN inside the DPU.
    pub float_seconds: f64,
    /// DPU seconds with the host-built LUT.
    pub lut_seconds: f64,
}

impl Fig44 {
    /// Speedup from the LUT rewrite (the paper reports ≈1.4×).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.float_seconds / self.lut_seconds
    }
}

/// Fig. 4.4 driver: 16 images, 16 tasklets, `-O0` (the paper's comparison
/// configuration).
///
/// # Panics
/// On host-runtime failures (which well-formed models never trigger).
#[must_use]
pub fn fig_4_4(model: &EbnnModel) -> Fig44 {
    let images: Vec<_> = (0..16).map(|i| ebnn::mnist::synth_digit(i % 10, i as u64)).collect();
    let lut = EbnnPipeline::new(model.clone()).infer(&images).expect("lut run");
    let float = EbnnPipeline::new(model.clone())
        .with_placement(BnPlacement::DpuFloat)
        .infer(&images)
        .expect("float run");
    Fig44 { float_seconds: float.dpu_seconds, lut_seconds: lut.dpu_seconds }
}

/// One point of Fig. 4.7(a).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TaskletPoint {
    /// Tasklets per DPU.
    pub tasklets: usize,
    /// eBNN speedup vs one tasklet (16 images per DPU).
    pub ebnn_speedup: f64,
    /// YOLOv3 speedup vs one tasklet (one GEMM row).
    pub yolo_speedup: f64,
}

/// Fig. 4.7(a): thread-level speedup for both CNNs across tasklet counts.
///
/// # Panics
/// On host-runtime failures.
#[must_use]
pub fn fig_4_7a(model: &EbnnModel, tasklet_counts: &[usize]) -> Vec<TaskletPoint> {
    let images: Vec<_> = (0..16).map(|i| ebnn::mnist::synth_digit(i % 10, i as u64)).collect();
    let ebnn_time = |t: usize| {
        EbnnPipeline::new(model.clone())
            .with_tasklets(t)
            .infer(&images)
            .expect("ebnn run")
            .dpu_seconds
    };
    // A mid-network YOLO layer: 52×52 spatial, K = 128·9.
    let dims = GemmDims { m: 1, n: 52 * 52, k: 128 * 9 };
    let yolo_time = |t: usize| {
        GemmMapping { tasklets: t, ..GemmMapping::default() }.estimate_layer(dims).dpu_seconds
    };
    let (e1, y1) = (ebnn_time(1), yolo_time(1));
    tasklet_counts
        .iter()
        .map(|&t| TaskletPoint {
            tasklets: t,
            ebnn_speedup: e1 / ebnn_time(t),
            yolo_speedup: y1 / yolo_time(t),
        })
        .collect()
}

/// One configuration of Fig. 4.7(b).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig47bRow {
    /// Optimization level.
    pub opt: String,
    /// Tasklets.
    pub tasklets: usize,
    /// Seconds for the representative layer set.
    pub seconds: f64,
}

/// Fig. 4.7(b): YOLOv3 DPU-kernel time under {O0, O3} × {no threading,
/// full threading} for a representative layer.
#[must_use]
pub fn fig_4_7b() -> Vec<Fig47bRow> {
    let dims = GemmDims { m: 64, n: 26 * 26, k: 512 * 9 };
    let mut rows = Vec::new();
    for (opt, label) in [(OptLevel::O0, "O0"), (OptLevel::O3, "O3")] {
        for tasklets in [1usize, 11] {
            let m = GemmMapping { opt, tasklets, ..GemmMapping::default() };
            rows.push(Fig47bRow {
                opt: label.to_owned(),
                tasklets,
                seconds: m.estimate_layer(dims).dpu_seconds,
            });
        }
    }
    rows
}

/// Fig. 4.7(c): eBNN speedup over one Xeon core as the DPU count grows
/// (weak scaling: each DPU carries a 16-image batch).
///
/// # Panics
/// On host-runtime failures.
#[must_use]
pub fn fig_4_7c(model: &EbnnModel, cpu: &XeonModel, dpu_counts: &[usize]) -> Vec<(usize, f64)> {
    let images: Vec<_> = (0..16).map(|i| ebnn::mnist::synth_digit(i % 10, i as u64)).collect();
    let batch = EbnnPipeline::new(model.clone()).infer(&images).expect("ebnn run");
    cpu_baseline::speedup_series(cpu, batch.dpu_seconds, images.len(), dpu_counts)
}

/// The paper's §4.3.1 headline latencies, measured on the simulator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MeasuredLatencies {
    /// eBNN: a 1-image launch on one DPU (only one tasklet busy).
    pub ebnn_single_image: f64,
    /// eBNN: 16-image batch on one DPU.
    pub ebnn_batch16: f64,
    /// eBNN: per-image time inside a full 16-tasklet batch — the quantity
    /// the paper's 1.48 ms corresponds to.
    pub ebnn_per_image: f64,
    /// YOLOv3: one 416×416 frame (paper: 65 s).
    pub yolo_frame: f64,
    /// YOLOv3: mean conv-layer seconds (paper: ≈0.9 s).
    pub yolo_mean_layer: f64,
    /// YOLOv3: slowest conv layer (paper: ≈6 s).
    pub yolo_max_layer: f64,
}

/// Measure the headline latencies (full-size eBNN model, full Darknet-53
/// table).
///
/// # Panics
/// On host-runtime failures.
#[must_use]
pub fn measured_latencies(model: &EbnnModel) -> MeasuredLatencies {
    let one = vec![ebnn::mnist::synth_digit(3, 0)];
    let single = EbnnPipeline::new(model.clone()).infer(&one).expect("single image");
    let batch: Vec<_> = (0..16).map(|i| ebnn::mnist::synth_digit(i % 10, i as u64)).collect();
    let batch16 = EbnnPipeline::new(model.clone()).infer(&batch).expect("batch");
    let yolo = YoloPipeline::new(darknet53_yolov3()).estimate();
    MeasuredLatencies {
        ebnn_single_image: single.dpu_seconds,
        ebnn_batch16: batch16.dpu_seconds,
        ebnn_per_image: batch16.dpu_seconds / batch.len() as f64,
        yolo_frame: yolo.total_seconds(),
        yolo_mean_layer: yolo.mean_layer_seconds(),
        yolo_max_layer: yolo.max_layer_seconds(),
    }
}

/// Table 5.4 with the UPMEM row replaced by latencies measured on this
/// repository's simulated implementations (closing the loop between
/// Chapters 4 and 5).
///
/// # Panics
/// On host-runtime failures.
#[must_use]
pub fn table_5_4_with_measured(model: &EbnnModel) -> Vec<BenchRow> {
    let lat = measured_latencies(model);
    ModelReport::table_5_4(Some(pim_model::arch::upmem_measured(
        lat.ebnn_per_image,
        lat.yolo_frame,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebnn::ModelConfig;

    fn small_model() -> EbnnModel {
        EbnnModel::generate(ModelConfig { filters: 4, ..ModelConfig::default() })
    }

    #[test]
    fn table_3_1_within_two_percent() {
        for row in table_3_1() {
            assert!(row.rel_error() < 0.02, "{}: {:?}", row.op, row);
        }
    }

    #[test]
    fn eq_3_4_worked_example() {
        let rows = eq_3_4(&[8, 64, 2048]);
        assert_eq!(rows[2], (2048, 1049));
        assert_eq!(rows[0], (8, 29));
    }

    #[test]
    fn fig_3_2_lists_the_papers_routines() {
        let p = fig_3_2();
        for sym in ["__ltsf2", "__divsf3", "__floatsisf", "__addsf3", "__muldi3"] {
            assert!(p.iter().any(|(s, c)| s == sym && c > 0), "missing {sym} in profile:\n{p}");
        }
    }

    #[test]
    fn fig_4_3_shows_the_reduction() {
        let f = fig_4_3(&small_model());
        assert!(f.float_profile.distinct >= 11, "float: {}", f.float_profile.distinct);
        assert_eq!(f.lut_profile.distinct, 2);
    }

    #[test]
    fn fig_4_4_speedup_in_paper_band() {
        let f = fig_4_4(&small_model());
        let s = f.speedup();
        assert!(s > 1.2 && s < 2.5, "speedup {s} out of band (paper: 1.4)");
    }

    #[test]
    fn fig_4_7a_shapes() {
        let pts = fig_4_7a(&small_model(), &[1, 2, 8, 11, 16]);
        // eBNN: 8 and 11 tasklets tie (2 waves of 16 images), 16 jumps.
        let by_t = |t: usize| pts.iter().find(|p| p.tasklets == t).unwrap();
        assert!(by_t(2).ebnn_speedup > 1.5);
        let (e8, e11, e16) = (by_t(8).ebnn_speedup, by_t(11).ebnn_speedup, by_t(16).ebnn_speedup);
        assert!((e8 - e11).abs() / e8 < 0.05, "plateau 8..11: {e8} vs {e11}");
        assert!(e16 > e11 * 1.2, "16-tasklet jump: {e16} vs {e11}");
        // YOLO: grows to 11, then flattens.
        let (y11, y16) = (by_t(11).yolo_speedup, by_t(16).yolo_speedup);
        assert!(y11 > 6.0);
        assert!(y16 < y11 * 1.3);
    }

    #[test]
    fn fig_4_7b_ordering() {
        let rows = fig_4_7b();
        let get = |opt: &str, t: usize| {
            rows.iter().find(|r| r.opt == opt && r.tasklets == t).unwrap().seconds
        };
        // Worst: O0 unthreaded; best: O3 threaded; threading is the bigger
        // lever (paper §4.3.3).
        let (worst, best) = (get("O0", 1), get("O3", 11));
        assert!(worst > 3.0 * best);
        let threading_gain = get("O0", 1) / get("O0", 11);
        let opt_gain = get("O0", 1) / get("O3", 1);
        assert!(threading_gain > opt_gain, "threading is the bigger jump");
    }

    #[test]
    fn fig_4_7c_linear() {
        let pts = fig_4_7c(&small_model(), &XeonModel::default(), &[1, 4, 16, 64]);
        let s1 = pts[0].1;
        for &(d, s) in &pts {
            assert!((s / (s1 * d as f64) - 1.0).abs() < 1e-9, "nonlinear at {d} DPUs");
        }
    }

    #[test]
    fn measured_table_5_4_keeps_other_rows() {
        let rows = table_5_4_with_measured(&small_model());
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].name, "UPMEM");
        assert!(rows[0].ebnn_latency > 0.0);
        let ppim = rows.iter().find(|r| r.name == "pPIM").unwrap();
        assert!((ppim.ebnn_latency - 3.8e-7).abs() / 3.8e-7 < 0.01);
    }
}

/// The two-tier validation summary: the generated Tier-1 eBNN program vs
/// the Tier-2 estimates for the same 16-image batch.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TierValidation {
    /// Measured cycles of the generated DPU program (interpreter).
    pub tier1_cycles: u64,
    /// Tier-2 estimate at `-O0`.
    pub tier2_o0_cycles: u64,
    /// Tier-2 estimate at `-O3`.
    pub tier2_o3_cycles: u64,
    /// Whether every feature bit matched the host reference.
    pub bit_exact: bool,
}

impl TierValidation {
    /// Tier-2 `-O3` estimate relative to the measured Tier-1 program.
    #[must_use]
    pub fn o3_ratio(&self) -> f64 {
        self.tier2_o3_cycles as f64 / self.tier1_cycles as f64
    }

    /// Tier-2 `-O0` estimate relative to the measured Tier-1 program.
    #[must_use]
    pub fn o0_ratio(&self) -> f64 {
        self.tier2_o0_cycles as f64 / self.tier1_cycles as f64
    }
}

/// Run the two-tier validation (16 images, the default 8-filter model).
///
/// # Panics
/// On host-runtime failures.
#[must_use]
pub fn tier_validation(model: &EbnnModel) -> TierValidation {
    let images: Vec<_> = (0..16).map(|i| ebnn::mnist::synth_digit(i % 10, i as u64)).collect();
    let (features, tier1) = ebnn::codegen::run_tier1_batch(model, &images).expect("tier1 run");
    let bit_exact = images
        .iter()
        .zip(&features)
        .all(|(img, f)| *f == model.features(&model.binarize(&img.pixels)));
    let o0 = EbnnPipeline::new(model.clone()).infer(&images).expect("o0").makespan_cycles;
    let o3 = EbnnPipeline::new(model.clone())
        .with_opt(OptLevel::O3)
        .infer(&images)
        .expect("o3")
        .makespan_cycles;
    TierValidation {
        tier1_cycles: tier1.makespan_cycles(),
        tier2_o0_cycles: o0,
        tier2_o3_cycles: o3,
        bit_exact,
    }
}

/// Fig. 4.7(a) at instruction level: the generated Tier-1 eBNN program
/// across tasklet counts (measured, not modelled).
///
/// # Panics
/// On host-runtime failures.
#[must_use]
pub fn fig_4_7a_tier1(model: &EbnnModel, tasklet_counts: &[usize]) -> Vec<(usize, f64)> {
    let images: Vec<_> = (0..16).map(|i| ebnn::mnist::synth_digit(i % 10, i as u64)).collect();
    let cycles = |t: usize| {
        ebnn::codegen::run_tier1_batch_with_tasklets(model, &images, t)
            .expect("tier1 run")
            .1
            .makespan_cycles()
    };
    let base = cycles(1) as f64;
    tasklet_counts.iter().map(|&t| (t, base / cycles(t) as f64)).collect()
}
