//! The standardized CNN-on-UPMEM deployment framework.
//!
//! The paper distills its two case studies into a repeatable discipline
//! (§1, §4):
//!
//! 1. **Profile** the application and separate the data-parallel portion
//!    (convolutions) from the rest; only the former is compiled for the
//!    DPUs, the host keeps quantization, softmax, routing and control.
//! 2. **Choose a mapping scheme** by footprint: if a whole inference fits
//!    comfortably in one DPU's memory, batch many inputs per DPU
//!    ([`MappingScheme::MultiImagePerDpu`], the eBNN path); if a single
//!    inference overflows a DPU, unroll the layer loop across DPUs
//!    ([`MappingScheme::MultiDpuPerImage`], the YOLOv3 path).
//! 3. **Orchestrate memory** under the 8-byte rule: pad buffers, send true
//!    lengths separately, keep hot data in WRAM where it fits.
//! 4. **Maximize throughput** with tasklet-level threading (≥11) and the
//!    highest compiler optimization (§4.3.3's takeaways).
//!
//! [`Deployment`] applies the discipline mechanically: given a workload
//! description it selects the scheme, configures tasklets/optimization, and
//! runs the corresponding pipeline.

use dpu_sim::DpuParams;
use ebnn::mapping::BnPlacement;
use pim_host::{HostError, OptLevel};
use serde::{Deserialize, Serialize};

/// How inferences map onto DPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingScheme {
    /// Many inputs per DPU, one tasklet each (paper §4.1.3).
    MultiImagePerDpu {
        /// Inputs batched per DPU (16 for eBNN — the 2048-byte DMA cap).
        images_per_dpu: usize,
    },
    /// One input spread over many DPUs, one GEMM row each (paper §4.2.3).
    MultiDpuPerImage {
        /// Peak DPUs a layer may occupy (= widest filter count).
        max_dpus: usize,
    },
}

/// Workload characteristics the scheme decision needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Bytes one complete inference needs resident in the DPU (inputs,
    /// weights, temporaries).
    pub working_set_bytes: usize,
    /// Widest layer's filter count (candidate DPU fan-out).
    pub max_filters: usize,
}

impl MappingScheme {
    /// The paper's scheme-selection rule: batch images per DPU whenever the
    /// per-inference working set fits a comfortable fraction of WRAM
    /// (leaving stack room for 11+ tasklets); otherwise unroll across DPUs.
    #[must_use]
    pub fn select(profile: WorkloadProfile, params: &DpuParams) -> Self {
        // Half of WRAM for data, the rest for stacks and temporaries.
        let budget = params.wram_bytes / 2;
        if profile.working_set_bytes <= budget / 2 {
            let images = (budget / profile.working_set_bytes)
                .min(dpu_sim::params::DMA_MAX_TRANSFER_BYTES / profile.working_set_bytes)
                .clamp(1, 16);
            MappingScheme::MultiImagePerDpu { images_per_dpu: images }
        } else {
            MappingScheme::MultiDpuPerImage { max_dpus: profile.max_filters }
        }
    }
}

/// A configured deployment front-end over both CNN pipelines.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Device parameters.
    pub params: DpuParams,
    /// Compiler optimization level (§4.3.3 recommends the highest).
    pub opt: OptLevel,
    /// Tasklets per DPU (§4.3.3 recommends ≥ pipeline depth).
    pub tasklets: usize,
}

impl Default for Deployment {
    fn default() -> Self {
        Self { params: DpuParams::default(), opt: OptLevel::O3, tasklets: 16 }
    }
}

/// Unified result of a deployment run.
#[derive(Debug, Clone)]
pub struct DeploymentReport {
    /// The scheme that was applied.
    pub scheme: MappingScheme,
    /// Inferences completed.
    pub inferences: usize,
    /// DPUs occupied (peak).
    pub dpus: usize,
    /// DPU-side completion seconds.
    pub dpu_seconds: f64,
    /// Host-side seconds (classification / transfers modelled on the host
    /// link where applicable).
    pub host_seconds: f64,
}

impl DeploymentReport {
    /// End-to-end seconds.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.dpu_seconds + self.host_seconds
    }
}

impl Deployment {
    /// Deploy an eBNN batch with the multi-image-per-DPU scheme (LUT
    /// placement, per §4.1.4's recommendation).
    ///
    /// # Errors
    /// Host-runtime failures.
    pub fn run_ebnn(
        &self,
        model: ebnn::EbnnModel,
        images: &[ebnn::mnist::GrayImage],
    ) -> Result<DeploymentReport, HostError> {
        let profile = WorkloadProfile {
            working_set_bytes: ebnn::IMAGE_SLOT_BYTES,
            max_filters: model.config.filters,
        };
        let scheme = MappingScheme::select(profile, &self.params);
        let pipeline = ebnn::EbnnPipeline {
            model,
            params: self.params,
            opt: self.opt,
            tasklets: self.tasklets,
            placement: BnPlacement::HostLut,
        };
        let rep = pipeline.infer(images)?;
        Ok(DeploymentReport {
            scheme,
            inferences: rep.predictions.len(),
            dpus: rep.dpus_used,
            dpu_seconds: rep.dpu_seconds,
            host_seconds: rep.host_seconds,
        })
    }

    /// Deploy a YOLOv3-family network with the multi-DPU-per-image scheme
    /// (timing estimate over the full layer table).
    #[must_use]
    pub fn estimate_yolo(&self, network: yolo_pim::NetworkConfig) -> DeploymentReport {
        let max_filters = network.conv_layers().iter().map(|(_, _, _, d)| d.m).max().unwrap_or(1);
        let mapping = yolo_pim::GemmMapping {
            params: self.params,
            opt: self.opt,
            tasklets: self.tasklets.min(11),
            ..yolo_pim::GemmMapping::default()
        };
        let pipe = yolo_pim::YoloPipeline { network, mapping, seed: 0x01f };
        let rep = pipe.estimate();
        DeploymentReport {
            scheme: MappingScheme::MultiDpuPerImage { max_dpus: max_filters },
            inferences: 1,
            dpus: max_filters,
            dpu_seconds: rep.dpu_seconds(),
            host_seconds: rep.host_transfer_seconds(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebnn::{EbnnModel, ModelConfig};

    #[test]
    fn scheme_selection_follows_footprint() {
        let params = DpuParams::default();
        // eBNN-sized working set → multi-image.
        let small = WorkloadProfile { working_set_bytes: 112, max_filters: 16 };
        assert!(matches!(
            MappingScheme::select(small, &params),
            MappingScheme::MultiImagePerDpu { images_per_dpu: 16 }
        ));
        // YOLO-sized working set → multi-DPU.
        let large = WorkloadProfile { working_set_bytes: 9_000_000, max_filters: 1024 };
        assert!(matches!(
            MappingScheme::select(large, &params),
            MappingScheme::MultiDpuPerImage { max_dpus: 1024 }
        ));
    }

    #[test]
    fn ebnn_deployment_runs() {
        let d = Deployment::default();
        let model = EbnnModel::generate(ModelConfig { filters: 4, ..ModelConfig::default() });
        let imgs: Vec<_> = (0..4).map(|i| ebnn::mnist::synth_digit(i, 0)).collect();
        let rep = d.run_ebnn(model, &imgs).unwrap();
        assert_eq!(rep.inferences, 4);
        assert_eq!(rep.dpus, 1);
        assert!(rep.dpu_seconds > 0.0);
        assert!(matches!(rep.scheme, MappingScheme::MultiImagePerDpu { .. }));
    }

    #[test]
    fn yolo_deployment_estimates() {
        let d = Deployment::default();
        let rep = d.estimate_yolo(yolo_pim::tiny_config());
        assert!(matches!(rep.scheme, MappingScheme::MultiDpuPerImage { max_dpus: 18 }));
        assert!(rep.total_seconds() > 0.0);
    }
}

impl Deployment {
    /// Deploy any Darknet `.cfg`-described network: parse, profile, select
    /// the mapping scheme, and estimate — the "programming
    /// standard/methodology or tool that takes care of the programming
    /// side" the paper's future work calls for (§6.1).
    ///
    /// # Errors
    /// [`CfgDeployError::Cfg`] on malformed configuration text;
    /// [`CfgDeployError::Host`] on runtime failures.
    pub fn deploy_cfg(
        &self,
        name: &str,
        cfg_text: &str,
    ) -> Result<DeploymentReport, CfgDeployError> {
        let network = yolo_pim::parse_cfg(name, cfg_text).map_err(CfgDeployError::Cfg)?;
        // Profile: the per-inference working set is the largest layer's
        // input + output tensors at i16.
        let shapes = network.shapes();
        let mut prev = network.input;
        let mut working_set = 0usize;
        for s in &shapes {
            working_set = working_set.max(2 * (prev.len() + s.len()));
            prev = *s;
        }
        let max_filters = network.conv_layers().iter().map(|(_, _, _, d)| d.m).max().unwrap_or(1);
        let profile = WorkloadProfile { working_set_bytes: working_set, max_filters };
        match MappingScheme::select(profile, &self.params) {
            MappingScheme::MultiDpuPerImage { .. } => Ok(self.estimate_yolo(network)),
            scheme @ MappingScheme::MultiImagePerDpu { .. } => {
                // Small networks: per-image batching. Estimated via the
                // same GEMM cost model on one DPU per image.
                let mapping = yolo_pim::GemmMapping {
                    params: self.params,
                    opt: self.opt,
                    tasklets: self.tasklets.min(11),
                    ..yolo_pim::GemmMapping::default()
                };
                let fpd = mapping.estimate_frame_per_dpu(&network);
                Ok(DeploymentReport {
                    scheme,
                    inferences: 1,
                    dpus: 1,
                    dpu_seconds: fpd.frame_seconds,
                    host_seconds: fpd.input_bytes_per_frame as f64 / mapping.host_bw,
                })
            }
        }
    }
}

/// Errors from [`Deployment::deploy_cfg`].
#[derive(Debug)]
pub enum CfgDeployError {
    /// The configuration text did not parse.
    Cfg(yolo_pim::CfgError),
    /// The runtime failed.
    Host(HostError),
}

impl std::fmt::Display for CfgDeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CfgDeployError::Cfg(e) => write!(f, "configuration: {e}"),
            CfgDeployError::Host(e) => write!(f, "runtime: {e}"),
        }
    }
}

impl std::error::Error for CfgDeployError {}

#[cfg(test)]
mod deploy_cfg_tests {
    use super::*;

    #[test]
    fn large_cfg_selects_multi_dpu() {
        let d = Deployment::default();
        let text = yolo_pim::to_cfg(&yolo_pim::darknet53_yolov3());
        let rep = d.deploy_cfg("yolov3", &text).unwrap();
        assert!(matches!(rep.scheme, MappingScheme::MultiDpuPerImage { max_dpus: 1024 }));
        assert!(rep.total_seconds() > 10.0);
    }

    #[test]
    fn small_cfg_selects_multi_image() {
        // A network whose tensors fit comfortably: one small conv on a
        // 16x16 input (working set ~3.5 KB against the 16 KB threshold).
        let text = "\
            [net]\nwidth=16\nheight=16\nchannels=3\n\n\
            [convolutional]\nfilters=4\nsize=3\nstride=1\npad=1\nactivation=leaky\n";
        let d = Deployment::default();
        let rep = d.deploy_cfg("small", text).unwrap();
        assert!(matches!(rep.scheme, MappingScheme::MultiImagePerDpu { .. }));
        assert!(rep.dpu_seconds > 0.0);
    }

    #[test]
    fn malformed_cfg_is_reported() {
        let d = Deployment::default();
        let err = d.deploy_cfg("bad", "[net]\nwidth=32\nheight=32\n[bogus]\n").unwrap_err();
        assert!(err.to_string().contains("configuration"));
    }
}
