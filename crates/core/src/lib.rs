//! # pim-core — CNN deployment on the (simulated) UPMEM PIM
//!
//! The paper's first contribution is "a verified methodology for supporting
//! CNN acceleration on the UPMEM PIM solution". This crate packages that
//! methodology as a library:
//!
//! * [`framework`] — the deployment discipline: pick a
//!   [`framework::MappingScheme`] (multi-image-per-DPU for small nets,
//!   multi-DPU-per-image for large ones), split the data-centric
//!   convolution kernels from the host-resident layers, enforce the 8-byte
//!   transfer rule, and synchronize host↔DPU phases. A single
//!   [`framework::Deployment`] front-end drives both CNN families.
//! * [`experiments`] — one driver per table/figure of the paper, each
//!   returning structured data (rendered by the `pim-bench` report binary
//!   and checked by the integration tests).
//! * [`ablations`] — quantitative evaluations of the paper's §4.3.4
//!   improvement proposals and §6.1 future-work studies (frame-per-DPU
//!   mapping, network-size sweep, eBNN image-size limits).
//!
//! The underlying pieces live in their own crates: `dpu-sim` (the device),
//! `pim-host` (the runtime), `ebnn` and `yolo-pim` (the two CNNs),
//! `pim-model` (the Chapter-5 analytical model) and `cpu-baseline` (the
//! Xeon comparison point).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod experiments;
pub mod framework;

pub use framework::{Deployment, DeploymentReport, MappingScheme};
