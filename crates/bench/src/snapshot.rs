//! The deterministic observability snapshot behind the perf-regression
//! gate.
//!
//! [`snapshot`] runs a fixed, fully simulated workload — interpreter
//! shapes at several tasklet counts, a skewed multi-DPU launch, and a
//! scripted fault-injection launch — through one
//! [`pim_host::LaunchObservation`], plus a cycle-attribution profile of
//! the ALU loop, and returns the whole thing as a JSON document. Every
//! number in it is *simulated* (cycles, instructions, occupancy), never
//! wall-clock, so the document is bit-stable across machines and runs:
//! any diff against a committed baseline is a real behavior change, not
//! noise. The `perfgate` binary compares snapshots; `report
//! --obs-snapshot` writes them.
//!
//! Scheduling-dependent telemetry (`obs.steal.*`) is deliberately *not*
//! recorded here — the snapshot uses [`pim_host::DpuSet::launch`], whose
//! result is scheduling-independent.

use dpu_sim::asm::assemble;
use dpu_sim::faults::{FaultConfig, FaultPlan};
use dpu_sim::{CycleAttribution, DpuId, ExecProgram, Machine, Program};
use pim_host::{DpuSet, LaunchObservation, ResilientLaunchPolicy};

/// Tight countdown/accumulate loop, one superblock of ALU work.
#[must_use]
pub fn alu_program() -> Program {
    assemble(
        "movi r1, 2000\n\
         movi r2, 0\n\
         loop: add r2, r2, r1\n\
         addi r1, r1, -1\n\
         bne r1, r0, loop\n\
         sw r0, 0, r2\n\
         halt\n",
    )
    .expect("alu program assembles")
}

/// Mutex-protected shared counter plus a barrier: scheduler-heavy.
fn sync_program() -> Program {
    assemble(
        "movi r2, 200\n\
         loop:\n\
         mutex.lock 1\n\
         lw r3, r0, 0x40\n\
         addi r3, r3, 1\n\
         sw r0, 0x40, r3\n\
         mutex.unlock 1\n\
         addi r2, r2, -1\n\
         bne r2, r0, loop\n\
         barrier\n\
         halt\n",
    )
    .expect("sync program assembles")
}

/// Per-DPU loop with the iteration count scattered through MRAM, skewed
/// so DPU 0 carries ~8x the work of the rest.
fn skewed_set(dpus: usize) -> DpuSet {
    let mut set = DpuSet::allocate(dpus).expect("alloc");
    set.define_symbol("n", 8).expect("symbol");
    for d in 0..dpus {
        let count: u64 = if d == 0 { 16_000 } else { 2_000 };
        set.copy_to_dpu(DpuId(d as u32), "n", 0, &count.to_le_bytes()).expect("scatter");
    }
    set
}

fn skewed_program() -> Program {
    assemble(
        "movi r1, 0\n\
         movi r2, 0\n\
         movi r3, 8\n\
         mram.read r1, r2, r3\n\
         lw r4, r1, 0\n\
         movi r5, 0\n\
         loop: add r5, r5, r4\n\
         addi r4, r4, -1\n\
         bne r4, r0, loop\n\
         sw r1, 0, r5\n\
         halt\n",
    )
    .expect("skewed program assembles")
}

/// Run the fixed workload and return the accumulated observation.
#[must_use]
pub fn observation() -> LaunchObservation {
    let mut obs = LaunchObservation::new();
    let alu = alu_program();

    // Interpreter shapes: the ALU loop at 1 and 11 tasklets, the
    // synchronization-heavy kernel at 16, each across two DPUs.
    let mut small = DpuSet::allocate(2).expect("alloc");
    for tasklets in [1usize, 11] {
        let r = small.launch(&alu, tasklets).expect("alu launch");
        obs.record(&r);
    }
    let r = small.launch(&sync_program(), 16).expect("sync launch");
    obs.record(&r);

    // A skewed 8-DPU launch: the load-balance picture.
    let mut skewed = skewed_set(8);
    let r = skewed.launch(&skewed_program(), 4).expect("skewed launch");
    obs.record(&r);

    // The paper's full machine: a uniform 2,560-DPU / 40-rank launch
    // through the persistent pool. Light per-DPU work — the gate watches
    // the simulated figures (instructions, cycles, DMA), which must stay
    // bit-stable at rank scale; wall-clock scaling lives in BENCH_5.json.
    let mut rank = DpuSet::allocate(2560).expect("alloc");
    rank.define_symbol("n", 8).expect("symbol");
    rank.copy_to("n", 0, &200u64.to_le_bytes()).expect("broadcast");
    let r = rank.launch(&skewed_program(), 4).expect("rank launch");
    obs.record(&r);

    // A scripted fault campaign: DPU 1 permanently offline, no retries,
    // work re-dispatched to a survivor.
    let mut faulty = skewed_set(4);
    let plan = FaultPlan::new(FaultConfig { forced_offline: vec![1], ..Default::default() });
    let policy =
        ResilientLaunchPolicy { max_retries: 0, ..ResilientLaunchPolicy::with_faults(plan) };
    let report = faulty.launch_resilient(&skewed_program(), 4, &policy).expect("resilient launch");
    obs.record_report(&report);

    // A scripted integrity campaign: seeded single-bit DMA flips under an
    // armed SEC-DED sidecar. Verify-on-read and the post-launch scrub
    // repair everything without consuming a retry, so the
    // `obs.integrity.*` counters in the snapshot are live (nonzero) and
    // any change to the repair pipeline shows up as an exact diff.
    let mut ecc = skewed_set(4);
    ecc.enable_ecc(true);
    let plan =
        FaultPlan::new(FaultConfig { seed: 7, bit_flip_prob: 0.5, ..FaultConfig::default() });
    let policy = ResilientLaunchPolicy::with_faults(plan);
    let report = ecc.launch_resilient(&skewed_program(), 4, &policy).expect("ecc launch");
    obs.record_report(&report);

    obs
}

/// Profile the ALU loop at 11 tasklets and return the attribution plus
/// the run's cycle count (which the attribution partitions exactly).
#[must_use]
pub fn attribution() -> (CycleAttribution, u64) {
    let exec = ExecProgram::compile(&alu_program()).expect("compiles");
    let mut attr = CycleAttribution::new();
    let mut machine = Machine::default();
    let result = machine.run_exec_profiled(&exec, 11, &mut attr).expect("profiled run");
    (attr, result.cycles)
}

/// A fixed serving scenario through `pim-serve`: seeded open-loop eBNN
/// traffic over 2 DPUs with a scripted always-offline DPU 1, so the
/// gate watches admission, batching, pipelining, *and* degradation
/// figures. Every number is simulated (cycles, items, counters) — the
/// run is a pure function of the constants below, so the document is
/// bit-stable like the rest of the snapshot.
#[must_use]
pub fn serve_observation() -> serde_json::Value {
    use ebnn::codegen::encode_slot;
    use ebnn::model::{EbnnModel, ModelConfig};
    use pim_serve::{serve, EbnnServeEngine, OpenLoop, PipelineMode, Rng64, ServeConfig};

    let model = EbnnModel::generate(ModelConfig { filters: 2, ..ModelConfig::default() });
    let pool: Vec<Vec<u8>> = (0..8u64)
        .map(|i| encode_slot(&model, &ebnn::mnist::synth_digit((i % 10) as usize, i)))
        .collect();
    let plan = FaultPlan::new(FaultConfig { forced_offline: vec![1], ..Default::default() });
    let policy = ResilientLaunchPolicy::with_faults(plan);
    let mut engine =
        EbnnServeEngine::new(&model, 2, PipelineMode::Double, Some(policy)).expect("serve engine");
    let gen = move |rng: &mut Rng64, _id: u64| -> Vec<Vec<u8>> {
        let n = rng.range(1, 3) as usize;
        (0..n).map(|_| pool[rng.range(0, 7) as usize].clone()).collect()
    };
    let mut traffic = OpenLoop::new(0x5EED, 48, 20_000, gen);
    let cfg = ServeConfig { queue_capacity: 4, ..ServeConfig::default() };
    let report = serve(&mut engine, &mut traffic, &cfg).expect("serve scenario");
    report.metrics.to_json()
}

/// The complete snapshot document.
#[must_use]
pub fn snapshot() -> serde_json::Value {
    let obs = observation();
    let (attr, cycles) = attribution();
    let blocks: Vec<serde_json::Value> = attr
        .top_blocks(10)
        .into_iter()
        .map(|b| {
            serde_json::json!({
                "start": b.start,
                "len": b.len,
                "entries": b.entries,
                "slots": b.slots,
                "cycles": b.cycles,
            })
        })
        .collect();
    serde_json::json!({
        "schema": "pim-obs-snapshot-v1",
        "metrics": obs.to_json(),
        "serve": serve_observation(),
        "attribution": {
            "program": "alu_loop",
            "tasklets": 11u64,
            "total_cycles": cycles,
            "top_blocks": serde_json::Value::Array(blocks),
        },
    })
}

/// Folded flamegraph stacks for the profiled ALU loop (CI artifact).
#[must_use]
pub fn folded() -> String {
    attribution().0.folded("alu_loop_11t")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_deterministic_across_runs() {
        let a = serde_json::to_string(&snapshot()).unwrap();
        let b = serde_json::to_string(&snapshot()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn serve_scenario_exercises_batching_and_degradation() {
        let doc = snapshot();
        let serve = doc.get("serve").expect("serve section");
        let counter = |k: &str| {
            serve.get("counters").and_then(|c| c.get(k)).and_then(|v| v.as_u64()).unwrap_or(0)
        };
        assert!(counter("serve.batches") > 0, "batches launched");
        assert!(counter("serve.rejected") > 0, "tight queue bound must shed");
        assert!(counter("serve.redispatched_items") > 0, "offline DPU 1 redispatches");
        let goodput = serve
            .get("gauges")
            .and_then(|g| g.get("serve.goodput_ips"))
            .and_then(serde_json::Value::as_f64)
            .expect("goodput gauge");
        assert!(goodput > 0.0);
        let lat = serve
            .get("histograms")
            .and_then(|h| h.get("serve.latency_cycles"))
            .expect("latency histogram");
        for q in ["p50", "p99", "p999"] {
            assert!(lat.get(q).is_some(), "missing {q}");
        }
    }

    #[test]
    fn snapshot_gates_live_integrity_counters() {
        let doc = snapshot();
        let counter = |k: &str| {
            doc.get("metrics")
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get(k))
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0)
        };
        assert!(
            counter("obs.integrity.dma_corrected") + counter("obs.integrity.scrub_corrected") > 0,
            "the ECC campaign must exercise the repair pipeline"
        );
        assert_eq!(
            counter("obs.integrity.scrub_uncorrectable"),
            0,
            "single-bit flips must never surface as uncorrectable"
        );
    }

    #[test]
    fn snapshot_contains_quantiles_and_hot_blocks() {
        let doc = snapshot();
        let hist = doc
            .get("metrics")
            .and_then(|m| m.get("histograms"))
            .and_then(|h| h.get("obs.launch.makespan_cycles"))
            .expect("makespan histogram");
        for q in ["p50", "p99", "p999"] {
            assert!(hist.get(q).is_some(), "missing {q}: {hist:?}");
        }
        let blocks =
            doc.get("attribution").and_then(|a| a.get("top_blocks")).and_then(|b| b.as_array());
        let blocks = blocks.expect("top_blocks array");
        assert!(!blocks.is_empty());
        let total = doc
            .get("attribution")
            .and_then(|a| a.get("total_cycles"))
            .and_then(|v| v.as_u64())
            .expect("total_cycles");
        let sum: u64 = blocks.iter().filter_map(|b| b.get("cycles").and_then(|c| c.as_u64())).sum();
        assert_eq!(sum, total, "top blocks of a single-loop program cover all cycles");
    }
}
