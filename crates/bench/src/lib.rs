//! Rendering helpers shared by the `report` binary and the benches.
//!
//! Every function takes the structured output of a `pim_core::experiments`
//! driver (or `pim_model::ModelReport`) and renders the corresponding paper
//! table as text, paper value beside measured value where applicable.

use pim_core::experiments as exp;
use pim_model::report::BenchRow;
use pim_model::ModelReport;

pub mod chaos;
pub mod snapshot;

/// Render Table 3.1 (cycles per operation) with relative errors.
#[must_use]
pub fn render_table_3_1(rows: &[exp::Table31Row]) -> String {
    let mut s = String::from(
        "Table 3.1 — cycles per operation, single DPU, -O0, max operands\n\
         operation       paper  measured  rel.err\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<14} {:>6} {:>9} {:>7.1}%\n",
            r.op,
            r.paper_cycles,
            r.measured_cycles,
            r.rel_error() * 100.0
        ));
    }
    s
}

/// Render the Eq. 3.4 DMA cost check.
#[must_use]
pub fn render_eq_3_4(rows: &[(usize, u64)]) -> String {
    let mut s = String::from("Eq. 3.4 — MRAM access cycles = 25 + bytes/2\n  bytes   cycles\n");
    for (b, c) in rows {
        s.push_str(&format!("{b:>7} {c:>8}\n"));
    }
    s
}

/// Render a Fig. 3.2 / Fig. 4.3-style `#occ` profile.
#[must_use]
pub fn render_profile(title: &str, p: &exp::ProfilerSummary) -> String {
    let mut s = format!("{title} — {} distinct subroutines\n", p.distinct);
    for (sym, occ) in &p.occ {
        s.push_str(&format!("  {sym:<14} #occ {occ}\n"));
    }
    s
}

/// Render Fig. 4.4.
#[must_use]
pub fn render_fig_4_4(f: &exp::Fig44) -> String {
    format!(
        "Fig. 4.4 — 16-image eBNN completion time\n  with float BN: {:.6} s\n  with LUT:      {:.6} s\n  speedup:       {:.2}x   (paper: 1.4x)\n",
        f.float_seconds,
        f.lut_seconds,
        f.speedup()
    )
}

/// Render Fig. 4.7(a).
#[must_use]
pub fn render_fig_4_7a(pts: &[exp::TaskletPoint]) -> String {
    let mut s =
        String::from("Fig. 4.7(a) — tasklet speedup vs 1 tasklet\ntasklets  eBNN     YOLOv3\n");
    for p in pts {
        s.push_str(&format!(
            "{:>8} {:>7.2}x {:>7.2}x\n",
            p.tasklets, p.ebnn_speedup, p.yolo_speedup
        ));
    }
    s
}

/// Render Fig. 4.7(b).
#[must_use]
pub fn render_fig_4_7b(rows: &[exp::Fig47bRow]) -> String {
    let mut s = String::from(
        "Fig. 4.7(b) — YOLOv3 layer latency: optimization x threading\n  opt  tasklets  seconds\n",
    );
    for r in rows {
        s.push_str(&format!("  {:<4} {:>8} {:>9.4}\n", r.opt, r.tasklets, r.seconds));
    }
    s
}

/// Render Fig. 4.7(c).
#[must_use]
pub fn render_fig_4_7c(pts: &[(usize, f64)]) -> String {
    let mut s = String::from(
        "Fig. 4.7(c) — eBNN speedup vs one Xeon core (weak scaling)\n  DPUs   speedup\n",
    );
    for (d, sp) in pts {
        s.push_str(&format!("{d:>6} {sp:>9.1}x\n"));
    }
    s
}

/// Render the §4.3.1 headline latencies.
#[must_use]
pub fn render_latencies(l: &exp::MeasuredLatencies) -> String {
    format!(
        "Headline latencies (§4.3.1)\n  eBNN per image (16-tasklet batch): {:.6} s   (paper 1.48e-3)\n  eBNN 1-image launch:               {:.6} s\n  eBNN 16-image batch:               {:.6} s\n  YOLOv3 frame:                      {:.1} s       (paper 65)\n  YOLOv3 mean layer:                 {:.2} s       (paper ~0.9)\n  YOLOv3 max layer:                  {:.2} s       (paper ~6)\n",
        l.ebnn_per_image, l.ebnn_single_image, l.ebnn_batch16, l.yolo_frame, l.yolo_mean_layer,
        l.yolo_max_layer
    )
}

/// Render Table 5.1.
#[must_use]
pub fn render_table_5_1() -> String {
    let mut s = String::from(
        "Table 5.1 — computational model walkthrough (8-bit AlexNet)\n\
         device        Dp  acc-f  mult-f   Cop      PEs     freq        Ccomp(TOPs)  Tcomp(TOPs)\n",
    );
    for c in ModelReport::table_5_1() {
        s.push_str(&format!(
            "{:<12} {:>3} {:>6} {:>7} {:>5} {:>8} {:>11.3e} {:>12.4e} {:>11.3e}\n",
            c.name, c.dp, c.acc_fx, c.mult_fx, c.cop, c.pes, c.freq, c.ccomp_tops, c.tcomp_tops
        ));
    }
    s
}

/// Render Table 5.2.
#[must_use]
pub fn render_table_5_2() -> String {
    let mut s = String::from(
        "Table 5.2 — multiplication Cop per operand size\n\
         device          4-bit   8-bit  16-bit  32-bit\n",
    );
    for (name, row) in ModelReport::table_5_2() {
        s.push_str(&format!(
            "{:<14} {:>6} {:>7} {:>7} {:>7}\n",
            name, row[0], row[1], row[2], row[3]
        ));
    }
    s.push_str("(paper's starred estimates: pPIM 124/1016, DRISA 740, UPMEM 370/570)\n");
    s
}

/// Render Fig. 5.4.
#[must_use]
pub fn render_fig_5_4() -> String {
    let mut s = String::from("Fig. 5.4 — pPIM adds-without-carry pattern per column\n");
    for (x, pattern) in ModelReport::fig_5_4(&[8, 16, 32]) {
        s.push_str(&format!("  {x:>2}-bit: {pattern:?}\n"));
    }
    s
}

/// Render Fig. 5.6.
#[must_use]
pub fn render_fig_5_6() -> String {
    let mut s = String::from(
        "Fig. 5.6 — multiplication cycles, PEs = 2560, TOPs = 100000\n\
         device           4-bit    8-bit   16-bit   32-bit\n",
    );
    for (name, row) in ModelReport::fig_5_6() {
        s.push_str(&format!(
            "{:<14} {:>8.0} {:>8.0} {:>8.0} {:>8.0}\n",
            name, row[0], row[1], row[2], row[3]
        ));
    }
    s
}

/// Render Table 5.3 and the §5.3.1 totals.
#[must_use]
pub fn render_table_5_3() -> String {
    let mut s = String::from(
        "Table 5.3 — memory model (8-bit AlexNet)\n\
         device        Ttransfer    ops/PE     local ops      Tmem\n",
    );
    for (name, tt, opp, local, tmem) in ModelReport::table_5_3() {
        s.push_str(&format!(
            "{:<12} {:>10.2e} {:>9} {:>13} {:>10.3e}\n",
            name, tt, opp, local, tmem
        ));
    }
    s.push_str("\nTtot = Tmem + Tcomp (§5.3.1)\n");
    for (name, t) in ModelReport::alexnet_totals() {
        s.push_str(&format!("  {name:<12} {t:.3e} s\n"));
    }
    s
}

/// Render Table 5.4 / Fig. 5.7.
#[must_use]
pub fn render_table_5_4(rows: &[BenchRow], upmem_label: &str) -> String {
    let mut s = format!(
        "Table 5.4 / Fig. 5.7 — 8-bit CNN inference benchmarking ({upmem_label})\n\
         device           power(W) area(mm2) eBNN lat   eBNN f/sW  eBNN f/smm yolo lat   yolo f/sW  yolo f/smm\n"
    );
    for r in rows {
        s.push_str(&format!("{r}\n"));
    }
    s
}

/// Render the §4.3.4 improvements ablation.
#[must_use]
pub fn render_improvements(rows: &[pim_core::ablations::AblationRow]) -> String {
    let mut s = String::from(
        "Improvements ablation (§4.3.4 proposals)\n\
         configuration                             eBNN/img    YOLO frame  YOLO DPU-compute\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<41} {:>8.3} ms {:>9.1} s {:>12.1} s\n",
            r.name,
            r.ebnn_per_image * 1e3,
            r.yolo_frame,
            r.yolo_dpu_seconds
        ));
    }
    s
}

/// Render the §6.1 mapping comparison.
#[must_use]
pub fn render_mapping_comparison(rows: &[pim_core::ablations::MappingRow]) -> String {
    let mut s = String::from(
        "Mapping comparison (§6.1 future work): Fig. 4.6 row mapping vs frame-per-DPU\n\
         network              weights     fits?  row s/frame  fpd s/frame   row fps    fpd fps\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<20} {:>8.1} MB {:>6} {:>11.2} {:>12} {:>9.4} {:>10}\n",
            r.network,
            r.weights_bytes as f64 / 1e6,
            if r.fits_mram { "yes" } else { "NO" },
            r.row_frame_seconds,
            r.fpd_frame_seconds.map_or("-".into(), |v| format!("{v:.2}")),
            r.row_fps,
            r.fpd_fps.map_or("-".into(), |v| format!("{v:.1}")),
        ));
    }
    s
}

/// Render the §6.1 network-size sweep.
#[must_use]
pub fn render_size_sweep(rows: &[pim_core::ablations::SizeSweepRow]) -> String {
    let mut s = String::from(
        "Network-size sweep (§6.1): where does UPMEM start losing?\n\
         input     MACs        UPMEM s/frame  pPIM s/frame   ratio\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:>5} {:>11.3e} {:>13.2} {:>13.4} {:>9.0}x\n",
            r.input, r.macs as f64, r.upmem_seconds, r.ppim_seconds, r.ratio
        ));
    }
    s
}

/// Render the §6.1 eBNN image-size limits.
#[must_use]
pub fn render_image_limits(rows: &[pim_core::ablations::ImageSizeRow]) -> String {
    let mut s = String::from(
        "eBNN image-size limits (§6.1)\n\
         dim   slot bytes  imgs/transfer  imgs in WRAM  multi-image?   s/image\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:>4} {:>11} {:>14} {:>13} {:>13} {:>9.4}\n",
            r.dim,
            r.slot_bytes,
            r.images_per_transfer,
            r.images_in_wram,
            if r.multi_image_feasible { "yes" } else { "no" },
            r.seconds_per_image
        ));
    }
    s
}

/// Render the eBNN depth sweep.
#[must_use]
pub fn render_depth_sweep(rows: &[pim_core::ablations::DepthSweepRow]) -> String {
    let mut s = String::from(
        "eBNN depth sweep (stacked conv-pool blocks)\n\
         blocks               features  working set  fits?   s/image   accuracy\n",
    );
    for r in rows {
        s.push_str(&format!(
            "{:<20} {:>8} {:>10} B {:>6} {:>9.4} {:>8}%\n",
            format!("{:?}", r.filters),
            r.features,
            r.working_set_bytes,
            if r.fits_wram { "yes" } else { "NO" },
            r.seconds_per_image,
            r.accuracy_pct
        ));
    }
    s
}

/// Render the two-tier validation summary.
#[must_use]
pub fn render_tier_validation(v: &exp::TierValidation) -> String {
    format!(
        "Two-tier validation (16-image eBNN batch)\n\
         \x20 tier-1 generated program: {} cycles (features bit-exact: {})\n\
         \x20 tier-2 -O3 estimate:      {} cycles ({:.2}x of tier-1)\n\
         \x20 tier-2 -O0 estimate:      {} cycles ({:.2}x of tier-1)\n",
        v.tier1_cycles,
        v.bit_exact,
        v.tier2_o3_cycles,
        v.o3_ratio(),
        v.tier2_o0_cycles,
        v.o0_ratio()
    )
}

/// Log-scale ASCII bar chart: one row per `(label, value)`, 40 columns
/// spanning the data's decade range. Used to render the Fig. 5.7 panels.
#[must_use]
pub fn render_log_bars(title: &str, unit: &str, rows: &[(String, f64)]) -> String {
    let mut s = format!("{title} ({unit}, log scale)\n");
    let positives: Vec<f64> = rows.iter().map(|r| r.1).filter(|&v| v > 0.0).collect();
    if positives.is_empty() {
        s.push_str("  (no data)\n");
        return s;
    }
    let lo = positives.iter().copied().fold(f64::INFINITY, f64::min).log10().floor();
    let hi = positives.iter().copied().fold(0.0f64, f64::max).log10().ceil();
    let span = (hi - lo).max(1.0);
    for (label, v) in rows {
        let width =
            if *v > 0.0 { (((v.log10() - lo) / span) * 40.0).round().max(1.0) as usize } else { 0 };
        s.push_str(&format!("  {:<16} {:<40} {:.3e}\n", label, "#".repeat(width), v));
    }
    s
}

/// Render the Fig. 5.7 panels from Table 5.4 rows.
#[must_use]
pub fn render_fig_5_7(rows: &[BenchRow]) -> String {
    let mut s = String::new();
    let col = |f: fn(&BenchRow) -> f64| -> Vec<(String, f64)> {
        rows.iter().map(|r| (r.name.clone(), f(r))).collect()
    };
    s.push_str(&render_log_bars("Fig. 5.7(a) eBNN latency/frame", "s", &col(|r| r.ebnn_latency)));
    s.push('\n');
    s.push_str(&render_log_bars("Fig. 5.7(a) YOLOv3 latency/frame", "s", &col(|r| r.yolo_latency)));
    s.push('\n');
    s.push_str(&render_log_bars(
        "Fig. 5.7(c) eBNN throughput/power",
        "frames/s-W",
        &col(|r| r.ebnn_tp_power),
    ));
    s.push('\n');
    s.push_str(&render_log_bars(
        "Fig. 5.7(c) eBNN throughput/area",
        "frames/s-mm2",
        &col(|r| r.ebnn_tp_area),
    ));
    s.push('\n');
    s.push_str(&render_log_bars(
        "Fig. 5.7(d) YOLOv3 throughput/power",
        "frames/s-W",
        &col(|r| r.yolo_tp_power),
    ));
    s.push('\n');
    s.push_str(&render_log_bars(
        "Fig. 5.7(d) YOLOv3 throughput/area",
        "frames/s-mm2",
        &col(|r| r.yolo_tp_area),
    ));
    s
}
