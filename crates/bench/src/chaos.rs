//! Chaos-soak campaign: thousands of seeded faulted launches with a
//! golden-output check after every one.
//!
//! Each launch draws a fault scenario (single-bit flips, SEC-DED-breaking
//! double flips, DMA aborts, tasklet hangs, offline DPUs, a mixed storm,
//! or nothing) from a seeded stream, arms it on an ECC-enabled
//! [`DpuSet`], runs the resilient launch path, and then compares every
//! served DPU's output against the host-computed golden value. The
//! contract under test is **zero silent corruption**: every injected
//! fault must end as a correction (ECC scrub / DMA verify-on-read), a
//! successful retry, or an *explicitly surfaced* quarantine — never as a
//! wrong answer reported healthy. Flip-only launches additionally must
//! consume **zero retries** (single-bit errors are scrubbed, not
//! relaunched).
//!
//! The campaign is deterministic: same [`ChaosConfig`], same
//! [`ChaosReport`]. The `chaos_soak` binary runs the full ≥10k-launch
//! soak in CI; `tests/chaos_soak.rs` runs a shorter slice on every
//! `cargo test`.

use dpu_sim::faults::{FaultConfig, FaultPlan};
use dpu_sim::DpuId;
use pim_host::{DpuSet, ResilientLaunchPolicy};
use pim_serve::Rng64;
use serde::Serialize;

/// Campaign shape: how many launches, how wide a set, how the retry
/// policy is tuned.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Launches in the campaign (each with freshly drawn faults).
    pub launches: u64,
    /// Seed driving scenario and fault draws; same seed, same campaign.
    pub seed: u64,
    /// DPUs in the set.
    pub dpus: usize,
    /// Tasklets per launch.
    pub tasklets: usize,
    /// Retry budget per DPU per launch.
    pub max_retries: u32,
    /// Base backoff charged per retry (doubles per retry — the campaign
    /// runs the exponential-backoff policy).
    pub backoff_cycles: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            launches: 10_000,
            seed: 0xC4A0_5EED,
            dpus: 8,
            tasklets: 2,
            max_retries: 3,
            backoff_cycles: 200,
        }
    }
}

/// The fault scenarios a launch can draw, with their arming rates.
const SCENARIOS: [&str; 7] =
    ["clean", "bit_flip", "double_flip", "dma_fail", "hang", "offline", "mixed"];

fn scenario_config(scenario: usize, seed: u64) -> FaultConfig {
    let base = FaultConfig { seed, ..FaultConfig::default() };
    match SCENARIOS[scenario] {
        "clean" => base,
        "bit_flip" => FaultConfig { bit_flip_prob: 0.5, ..base },
        "double_flip" => FaultConfig { double_flip_prob: 0.3, ..base },
        "dma_fail" => FaultConfig { dma_fail_prob: 0.3, ..base },
        "hang" => FaultConfig { hang_prob: 0.3, ..base },
        "offline" => FaultConfig { dpu_offline_prob: 0.25, ..base },
        _ => FaultConfig {
            bit_flip_prob: 0.15,
            double_flip_prob: 0.1,
            dma_fail_prob: 0.15,
            hang_prob: 0.1,
            dpu_offline_prob: 0.1,
            ..base
        },
    }
}

/// Outcome of a campaign. The two `violations_*` fields are the
/// acceptance gates: both must be zero.
#[derive(Debug, Clone, Default, Serialize, PartialEq, Eq)]
pub struct ChaosReport {
    /// Launches executed.
    pub launches: u64,
    /// Launches in which at least one fault actually fired.
    pub faulted_launches: u64,
    /// Launches per scenario, in [`SCENARIOS`] order.
    pub per_scenario: Vec<(String, u64)>,
    /// Faults injected across the campaign.
    pub faults_injected: u64,
    /// Single-bit errors repaired by the between-attempt ECC scrub.
    pub scrub_corrected: u64,
    /// Single-bit errors repaired inline by DMA verify-on-read.
    pub dma_corrected: u64,
    /// Multi-bit words surfaced as uncorrectable (each fails its
    /// attempt; never silently fixed).
    pub uncorrectable_words: u64,
    /// Retries consumed across the campaign.
    pub retries: u64,
    /// DPU-launches that exhausted retries and were quarantined.
    pub quarantined: u64,
    /// Quarantined work items served by a survivor.
    pub redispatched: u64,
    /// DPU-launches that could not be served at all (explicitly
    /// surfaced as unserved, with a recorded error).
    pub unserved: u64,
    /// DPU-launches served in place after repairs (scrub/DMA fixes or
    /// retries) — the self-healing count.
    pub healthy_after_repair: u64,
    /// Served outputs that did not match the host golden value. MUST
    /// be zero: a wrong answer reported healthy is silent corruption.
    pub violations_silent_corruption: u64,
    /// Retries consumed by launches whose only armed fault class was
    /// single-bit flips. MUST be zero: SEC-DED repairs flips between
    /// attempts without relaunching.
    pub violations_flip_retry: u64,
    /// Unserved DPU-launches missing a recorded error (a quarantine
    /// that surfaced nothing). MUST be zero.
    pub violations_unexplained_unserved: u64,
}

impl ChaosReport {
    /// Whether the campaign met the integrity contract.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.violations_silent_corruption == 0
            && self.violations_flip_retry == 0
            && self.violations_unexplained_unserved == 0
    }

    /// Human-readable summary table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = format!(
            "chaos soak — {} launches ({} faulted), {} faults injected\n",
            self.launches, self.faulted_launches, self.faults_injected
        );
        for (name, n) in &self.per_scenario {
            s.push_str(&format!("  scenario {name:<12} {n:>7} launches\n"));
        }
        s.push_str(&format!(
            "  corrected: {} scrub + {} dma | uncorrectable words: {}\n\
             \x20 retries: {} | quarantined: {} | redispatched: {} | unserved: {}\n\
             \x20 healthy-after-repair: {}\n\
             \x20 violations: {} silent-corruption, {} flip-retry, {} unexplained-unserved\n\
             \x20 verdict: {}\n",
            self.scrub_corrected,
            self.dma_corrected,
            self.uncorrectable_words,
            self.retries,
            self.quarantined,
            self.redispatched,
            self.unserved,
            self.healthy_after_repair,
            self.violations_silent_corruption,
            self.violations_flip_retry,
            self.violations_unexplained_unserved,
            if self.clean() { "CLEAN" } else { "CORRUPTED" }
        ));
        s
    }
}

/// The soak kernel: DMA the counter in, spin it down (so hangs have a
/// window to fire), double it, DMA it out. Golden output = `2 * input`.
fn soak_program() -> dpu_sim::Program {
    dpu_sim::asm::assemble(
        "movi r1, 0\n\
         movi r2, 0\n\
         movi r3, 8\n\
         mram.read r1, r2, r3\n\
         lw r4, r1, 0\n\
         top:\n\
         addi r4, r4, -1\n\
         bne r4, r0, top\n\
         lw r4, r1, 0\n\
         add r4, r4, r4\n\
         sw r1, 0, r4\n\
         mram.write r1, r2, r3\n\
         halt\n",
    )
    .expect("soak kernel assembles")
}

/// Run a chaos campaign and report. Deterministic in `cfg`.
///
/// # Panics
/// On harness setup failures (allocation, symbol definition, transfer)
/// — never on injected faults; those land in the report.
#[must_use]
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let mut set = DpuSet::allocate(cfg.dpus).expect("allocate soak set");
    set.define_symbol("x", 8).expect("define soak symbol");
    set.load(&soak_program()).expect("load soak kernel");
    set.enable_ecc(true);
    // Pristine image (COW page-table clone): restored before every
    // launch so one campaign's uncorrectable leftovers cannot leak into
    // the next launch's golden check.
    let pristine = set.snapshot();

    let mut rng = Rng64::new(cfg.seed);
    let mut rep = ChaosReport {
        per_scenario: SCENARIOS.iter().map(|s| ((*s).to_owned(), 0)).collect(),
        ..ChaosReport::default()
    };

    for launch in 0..cfg.launches {
        set.restore(&pristine).expect("pristine image restores");
        let mut inputs = Vec::with_capacity(cfg.dpus);
        for d in 0..cfg.dpus {
            let input = 200 + rng.next_u64() % 1800;
            set.copy_to_dpu(DpuId(d as u32), "x", 0, &input.to_le_bytes())
                .expect("stage soak input");
            inputs.push(input);
        }

        let scenario = (rng.next_u64() % SCENARIOS.len() as u64) as usize;
        rep.per_scenario[scenario].1 += 1;
        let fault_seed = pim_serve::splitmix64(cfg.seed ^ launch);
        let plan = FaultPlan::new(scenario_config(scenario, fault_seed));
        let policy = ResilientLaunchPolicy {
            max_retries: cfg.max_retries,
            backoff_cycles: cfg.backoff_cycles,
            exponential_backoff: true,
            watchdog_budget: 5_000_000,
            ..ResilientLaunchPolicy::with_faults(plan)
        };
        let report =
            set.launch_loaded_resilient(cfg.tasklets, &policy).expect("launch never errors");

        if report.faults_injected() > 0 {
            rep.faulted_launches += 1;
        }
        rep.faults_injected += report.faults_injected() as u64;
        rep.retries += report.retries();
        rep.quarantined += report.quarantined.len() as u64;
        rep.redispatched += report.degraded.len() as u64;
        rep.healthy_after_repair +=
            report.count_health(pim_host::ServeHealth::HealthyAfterRepair) as u64;
        for r in &report.per_dpu {
            rep.scrub_corrected += r.scrub.corrected();
            rep.dma_corrected += r.dma_corrected;
            rep.uncorrectable_words += r.scrub.uncorrectable.len() as u64;
        }
        if SCENARIOS[scenario] == "bit_flip" {
            rep.violations_flip_retry += report.retries();
        }

        // The golden check: every DPU either serves the exact
        // host-computed answer or is explicitly unserved with an error.
        for (d, r) in report.per_dpu.iter().enumerate() {
            if r.result.is_some() {
                let got = set.copy_scalar_from(DpuId(d as u32), "x").expect("read soak output");
                if got != inputs[d] * 2 {
                    rep.violations_silent_corruption += 1;
                }
            } else {
                rep.unserved += 1;
                if r.last_error.is_none() {
                    rep.violations_unexplained_unserved += 1;
                }
            }
        }
        rep.launches += 1;
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic_for_a_seed() {
        let cfg = ChaosConfig { launches: 40, ..ChaosConfig::default() };
        let a = run_chaos(&cfg);
        let b = run_chaos(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.launches, 40);
    }

    #[test]
    fn scenarios_actually_fire_and_render_summarizes() {
        let cfg = ChaosConfig { launches: 60, seed: 7, ..ChaosConfig::default() };
        let rep = run_chaos(&cfg);
        assert!(rep.faulted_launches > 0, "60 launches must draw some faults: {rep:?}");
        assert!(rep.faults_injected > 0);
        let text = rep.render();
        assert!(text.contains("chaos soak — 60 launches"));
        assert!(text.contains("verdict"));
    }
}
