//! Chaos-soak driver: run a seeded multi-fault campaign over thousands
//! of launches and fail loudly on any integrity violation.
//!
//! ```text
//! cargo run --release -p pim-bench --bin chaos_soak -- --launches 10000
//! ```
//!
//! Exits 0 only when the campaign is clean: zero silent corruption,
//! zero retries consumed by flip-only launches, zero unexplained
//! unserved items. `--json` emits the machine-readable report (the CI
//! `chaos-soak` job archives it).

use pim_bench::chaos::{run_chaos, ChaosConfig};

fn usage() -> ! {
    eprintln!(
        "usage: chaos_soak [--launches N] [--seed S] [--dpus D] [--tasklets T] [--json]\n\
         defaults: --launches 10000 --seed {} --dpus 8 --tasklets 2",
        ChaosConfig::default().seed
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ChaosConfig::default();
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |what: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--{what} needs a number");
                usage()
            })
        };
        match arg.as_str() {
            "--launches" => cfg.launches = num("launches"),
            "--seed" => cfg.seed = num("seed"),
            "--dpus" => cfg.dpus = num("dpus").max(2) as usize,
            "--tasklets" => cfg.tasklets = num("tasklets").max(1) as usize,
            "--json" => json = true,
            _ => usage(),
        }
    }

    let report = run_chaos(&cfg);
    if json {
        println!("{}", serde_json::to_string_pretty(&report).expect("report serializes"));
    } else {
        print!("{}", report.render());
    }
    if !report.clean() {
        eprintln!("chaos soak FAILED: integrity violations detected");
        std::process::exit(1);
    }
}
