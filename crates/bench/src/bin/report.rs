//! Regenerate every table and figure of the paper.
//!
//! ```text
//! report [--exp <id>] [--json]
//! report --bench-json <path> [--samples <n>]
//! report --obs-snapshot <path>
//! report --folded <path>
//! ```
//!
//! With no arguments all experiments run (the YOLO/CPU ones take a few
//! seconds). Experiment ids: `eq3_4 table3_1 fig3_2 fig4_3 fig4_4 fig4_7a
//! fig4_7b fig4_7c latencies table5_1 table5_2 fig5_4 fig5_6 table5_3
//! table5_4 fig5_5 fig5_7 improvements mapping_comparison size_sweep image_limits depth_sweep tier_validation fig4_7a_tier1 alexnet_mapping
//! table5_4_measured trace_metrics launch_quantiles hot_blocks`.
//!
//! `--bench-json` instead runs the simulator hot-path scenarios with a
//! wall-clock harness and writes a machine-readable perf snapshot
//! (per-bench median ns and simulated instructions per host second) so
//! successive PRs have a throughput trajectory to compare against.
//!
//! `--obs-snapshot` writes the deterministic observability snapshot the
//! `perfgate` binary diffs against its committed baseline; `--folded`
//! writes flamegraph-folded cycle-attribution stacks
//! (`inferno-flamegraph`/`flamegraph.pl` input) for the profiled ALU
//! loop. See `docs/OBSERVABILITY.md`.

use cpu_baseline::XeonModel;
use ebnn::{EbnnModel, ModelConfig};
use pim_bench as render;
use pim_core::experiments as exp;
use pim_model::ModelReport;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted: Option<String> = None;
    let mut json = false;
    let mut bench_json: Option<String> = None;
    let mut obs_snapshot: Option<String> = None;
    let mut folded: Option<String> = None;
    let mut samples = 7usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                wanted = args.get(i).cloned();
            }
            "--json" => json = true,
            "--bench-json" => {
                i += 1;
                bench_json = args.get(i).cloned();
                if bench_json.is_none() {
                    eprintln!("--bench-json needs a path");
                    std::process::exit(2);
                }
            }
            "--obs-snapshot" => {
                i += 1;
                obs_snapshot = args.get(i).cloned();
                if obs_snapshot.is_none() {
                    eprintln!("--obs-snapshot needs a path");
                    std::process::exit(2);
                }
            }
            "--folded" => {
                i += 1;
                folded = args.get(i).cloned();
                if folded.is_none() {
                    eprintln!("--folded needs a path");
                    std::process::exit(2);
                }
            }
            "--samples" => {
                i += 1;
                samples = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--samples needs a positive integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(path) = bench_json {
        perf_snapshot::run(&path, samples.max(1));
        return;
    }
    if let Some(path) = obs_snapshot {
        let text =
            serde_json::to_string_pretty(&render::snapshot::snapshot()).expect("serializable");
        std::fs::write(&path, text + "\n").expect("write observability snapshot");
        eprintln!("wrote {path}");
        return;
    }
    if let Some(path) = folded {
        std::fs::write(&path, render::snapshot::folded()).expect("write folded stacks");
        eprintln!("wrote {path}");
        return;
    }

    let all = wanted.is_none();
    let want = |id: &str| all || wanted.as_deref() == Some(id);
    let model = EbnnModel::generate(ModelConfig::default());

    if want("eq3_4") {
        let rows = exp::eq_3_4(&[8, 16, 64, 256, 1024, 2048]);
        emit(json, "eq3_4", &rows, || render::render_eq_3_4(&rows));
    }
    if want("table3_1") {
        let rows = exp::table_3_1();
        emit(json, "table3_1", &rows, || render::render_table_3_1(&rows));
    }
    if want("fig3_2") {
        let p = exp::fig_3_2();
        let summary: exp::ProfilerSummary = (&p).into();
        emit(json, "fig3_2", &summary, || {
            render::render_profile("Fig. 3.2 — high-precision DPU program profile", &summary)
        });
    }
    if want("fig4_3") {
        let f = exp::fig_4_3(&model);
        emit(json, "fig4_3", &f, || {
            format!(
                "{}\n{}",
                render::render_profile("Fig. 4.3(a) — float BN in the DPU", &f.float_profile),
                render::render_profile("Fig. 4.3(b) — LUT rewrite", &f.lut_profile)
            )
        });
    }
    if want("fig4_4") {
        let f = exp::fig_4_4(&model);
        emit(json, "fig4_4", &f, || render::render_fig_4_4(&f));
    }
    if want("fig4_7a") {
        let pts = exp::fig_4_7a(&model, &[1, 2, 4, 6, 8, 10, 11, 12, 14, 16, 20, 24]);
        emit(json, "fig4_7a", &pts, || render::render_fig_4_7a(&pts));
    }
    if want("fig4_7b") {
        let rows = exp::fig_4_7b();
        emit(json, "fig4_7b", &rows, || render::render_fig_4_7b(&rows));
    }
    if want("fig4_7c") {
        let pts = exp::fig_4_7c(&model, &XeonModel::default(), &[1, 16, 64, 256, 1024, 2560]);
        emit(json, "fig4_7c", &pts, || render::render_fig_4_7c(&pts));
    }
    if want("latencies") {
        let l = exp::measured_latencies(&model);
        emit(json, "latencies", &l, || render::render_latencies(&l));
    }
    if want("table5_1") {
        let t = ModelReport::table_5_1();
        emit(json, "table5_1", &t, render::render_table_5_1);
    }
    if want("table5_2") {
        let t = ModelReport::table_5_2();
        emit(json, "table5_2", &t, render::render_table_5_2);
    }
    if want("fig5_4") {
        let t = ModelReport::fig_5_4(&[8, 16, 32]);
        emit(json, "fig5_4", &t, render::render_fig_5_4);
    }
    if want("fig5_5") {
        let tops: Vec<f64> = (1..=100).map(|i| i as f64 * 1000.0).collect();
        let pes: Vec<u64> = (1..=64).map(|i| i * 64).collect();
        let mut out = String::from("Fig. 5.5 — Ccomp sweeps (multiplication)\n");
        for (dev, fixed_tops) in [
            (pim_model::arch::drisa_3t1c(), 10_000.0),
            (pim_model::arch::ppim(), 100_000.0),
            (pim_model::arch::upmem_analytic(), 100_000.0),
        ] {
            let data = ModelReport::fig_5_5(&dev, &tops, &pes, fixed_tops);
            out.push_str(&format!("  {}:\n", dev.name));
            for (bits, t_sweep, p_sweep) in &data {
                out.push_str(&format!(
                    "    {:>2}-bit: TOPs sweep {:.0}..{:.0} cycles ({} steps), PE sweep {:.0}..{:.0} cycles\n",
                    bits.bits(),
                    t_sweep.first().unwrap(),
                    t_sweep.last().unwrap(),
                    t_sweep.windows(2).filter(|w| w[1] > w[0]).count() + 1,
                    p_sweep.first().unwrap(),
                    p_sweep.last().unwrap(),
                ));
            }
        }
        let rows: Vec<(String, f64)> = Vec::new();
        let _ = rows;
        emit(json, "fig5_5", &"see text rendering", || out.clone());
    }
    if want("fig5_6") {
        let t = ModelReport::fig_5_6();
        emit(json, "fig5_6", &t, render::render_fig_5_6);
    }
    if want("table5_3") {
        let t = ModelReport::table_5_3();
        emit(json, "table5_3", &t, render::render_table_5_3);
    }
    if want("table5_4") {
        let rows = ModelReport::table_5_4(None);
        emit(json, "table5_4", &rows, || {
            render::render_table_5_4(&rows, "UPMEM row: paper's measurements")
        });
    }
    if want("fig5_7") {
        let rows = ModelReport::table_5_4(None);
        emit(json, "fig5_7", &rows, || render::render_fig_5_7(&rows));
    }
    if want("improvements") {
        let rows = pim_core::ablations::improvements(&model);
        emit(json, "improvements", &rows, || render::render_improvements(&rows));
    }
    if want("mapping_comparison") {
        let rows = pim_core::ablations::mapping_comparison(&[1, 2, 4, 8]);
        emit(json, "mapping_comparison", &rows, || render::render_mapping_comparison(&rows));
    }
    if want("size_sweep") {
        let rows = pim_core::ablations::size_sweep(&[96, 160, 224, 320, 416]);
        emit(json, "size_sweep", &rows, || render::render_size_sweep(&rows));
    }
    if want("image_limits") {
        let rows = pim_core::ablations::ebnn_image_size_limits(&[28, 32, 56, 64, 112, 224]);
        emit(json, "image_limits", &rows, || render::render_image_limits(&rows));
    }
    if want("fig4_7a_tier1") {
        use ebnn::{EbnnModel as M, ModelConfig as C};
        let small = M::generate(C { filters: 2, ..C::default() });
        let pts = exp::fig_4_7a_tier1(&small, &[1, 2, 4, 8, 11, 12, 16, 24]);
        emit(json, "fig4_7a_tier1", &pts, || {
            let mut s = String::from(
                "Fig. 4.7(a), instruction-level (generated Tier-1 eBNN program)\ntasklets  speedup\n",
            );
            for (t, sp) in &pts {
                s.push_str(&format!("{t:>8} {sp:>8.2}x\n"));
            }
            s
        });
    }
    if want("alexnet_mapping") {
        let c = pim_core::ablations::alexnet_under_the_mapping();
        emit(json, "alexnet_mapping", &c, || {
            format!(
                "AlexNet: Eq. 5.3 idealization vs the Fig. 4.6 mapping\n\
                 \x20 modeled Tcomp (Table 5.1):   {:.3e} s\n\
                 \x20 modeled Ttot  (§5.3.1):      {:.3e} s\n\
                 \x20 mapped DPU compute:          {:.3e} s\n\
                 \x20 mapped total (with host):    {:.3e} s\n\
                 \x20 mapping overhead:            {:.0}x\n",
                c.modeled_tcomp,
                c.modeled_ttot,
                c.mapped_dpu_seconds,
                c.mapped_total_seconds,
                c.mapping_overhead()
            )
        });
    }
    if want("tier_validation") {
        let v = exp::tier_validation(&model);
        emit(json, "tier_validation", &v, || render::render_tier_validation(&v));
    }
    if want("depth_sweep") {
        let rows = pim_core::ablations::depth_sweep(&[
            vec![8],
            vec![8, 16],
            vec![8, 16, 32],
            vec![8, 16, 64, 64],
        ]);
        emit(json, "depth_sweep", &rows, || render::render_depth_sweep(&rows));
    }
    if want("table5_4_measured") {
        let rows = exp::table_5_4_with_measured(&model);
        emit(json, "table5_4_measured", &rows, || {
            render::render_table_5_4(&rows, "UPMEM row: this repository's simulator")
        });
    }
    if want("launch_quantiles") {
        // The fixed observability workload: makespan/per-DPU quantiles
        // (p50/p90/p99/p999) over several launches, as `obs.*` metrics.
        let obs = render::snapshot::observation();
        emit(json, "launch_quantiles", &obs.to_json(), || {
            let mut s = String::from("Launch quantiles over the fixed observability workload\n");
            for (name, h) in obs.metrics().histograms() {
                s.push_str(&format!(
                    "  {name:<28} n={:<4} p50={:<12.1} p99={:<12.1} p999={:<12.1}\n",
                    h.count(),
                    h.p50().unwrap_or(f64::NAN),
                    h.p99().unwrap_or(f64::NAN),
                    h.p999().unwrap_or(f64::NAN),
                ));
            }
            s.push_str("\nPrometheus exposition:\n");
            s.push_str(&obs.prometheus());
            s
        });
    }
    if want("hot_blocks") {
        // Per-superblock cycle attribution of the profiled ALU loop:
        // the top-10 hot blocks and the folded flamegraph stacks.
        let (attr, cycles) = render::snapshot::attribution();
        let blocks: Vec<serde_json::Value> = attr
            .top_blocks(10)
            .into_iter()
            .map(|b| {
                serde_json::json!({
                    "start": b.start, "len": b.len, "entries": b.entries,
                    "slots": b.slots, "cycles": b.cycles,
                })
            })
            .collect();
        let payload = serde_json::json!({
            "total_cycles": cycles,
            "top_blocks": serde_json::Value::Array(blocks),
        });
        emit(json, "hot_blocks", &payload, || {
            let mut s = format!("Hot superblocks (profiled ALU loop, {cycles} cycles)\n  start  len  entries      slots     cycles\n");
            for b in attr.top_blocks(10) {
                s.push_str(&format!(
                    "{:>7} {:>4} {:>8} {:>10} {:>10}\n",
                    b.start, b.len, b.entries, b.slots, b.cycles
                ));
            }
            s.push_str("\nFolded stacks (flamegraph input):\n");
            s.push_str(&attr.folded("alu_loop_11t"));
            s
        });
    }
    if want("trace_metrics") {
        emit_trace_metrics(json);
    }
}

fn emit_trace_metrics(json: bool) {
    // A traced Tier-1 eBNN batch over two DPUs: the metrics-registry
    // snapshot (JSON mode) or the per-phase cycle breakdown plus the
    // Fig. 3.2-format merged subroutine profile (text mode).
    use ebnn::{EbnnModel as M, ModelConfig as C};
    let small = M::generate(C { filters: 2, ..C::default() });
    let imgs: Vec<_> = (0..24).map(|i| ebnn::mnist::synth_digit(i % 10, (i / 10) as u64)).collect();
    let traced =
        ebnn::codegen::run_tier1_batch_multi_dpu_traced(&small, &imgs).expect("traced run");
    let mut metrics = traced.launch.metrics();
    metrics.counter_add("host.transfer.events", traced.host_trace.len() as u64);
    emit(json, "trace_metrics", &metrics.to_json(), || {
        let profile: exp::ProfilerSummary = (&traced.launch.merged_profile()).into();
        format!(
            "Traced Tier-1 eBNN batch ({} images, {} DPUs)\n\n{}\n{}",
            imgs.len(),
            traced.launch.per_dpu.len(),
            pim_trace::cycle_breakdown(&traced.dpu_traces),
            render::render_profile("Merged subroutine profile (Fig. 3.2 format)", &profile)
        )
    });
}

fn emit<T: serde::Serialize>(json: bool, id: &str, value: &T, text: impl FnOnce() -> String) {
    if json {
        let payload = serde_json::json!({ "experiment": id, "data": value });
        println!("{}", serde_json::to_string(&payload).expect("serializable"));
    } else {
        println!("{}", text());
    }
}

/// Wall-clock hot-path scenarios behind `--bench-json`: the interpreter
/// issue loop (1 / 11 tasklets and a synchronization-heavy shape) and a
/// skewed multi-DPU launch. Each scenario reports the median wall time of
/// N samples plus simulated instructions per host second — the simulator
/// throughput figure that bounds how far the Fig. 4.7 sweeps can go.
mod perf_snapshot {
    use dpu_sim::asm::assemble;
    use dpu_sim::Machine;
    use pim_host::DpuSet;
    use std::time::Instant;

    /// Tight countdown loop: ~3 instructions per iteration, no memory.
    fn alu_loop_program() -> dpu_sim::Program {
        assemble(
            "movi r1, 200000\n\
             movi r2, 0\n\
             loop: add r2, r2, r1\n\
             addi r1, r1, -1\n\
             bne r1, r0, loop\n\
             sw r0, 0, r2\n\
             halt\n",
        )
        .expect("alu loop assembles")
    }

    /// Mutex-protected shared counter plus barriers: stresses the
    /// scheduler bookkeeping rather than the ALU arms.
    fn sync_heavy_program() -> dpu_sim::Program {
        assemble(
            "movi r2, 2000\n\
             loop:\n\
             mutex.lock 1\n\
             lw r3, r0, 0x40\n\
             addi r3, r3, 1\n\
             sw r0, 0x40, r3\n\
             mutex.unlock 1\n\
             addi r2, r2, -1\n\
             bne r2, r0, loop\n\
             barrier\n\
             halt\n",
        )
        .expect("sync program assembles")
    }

    /// Per-DPU loop with the count read from MRAM — the host skews the
    /// counts so per-DPU cost is unbalanced (the YOLO one-DPU-per-row
    /// shape of Fig. 4.6).
    fn skewed_program() -> dpu_sim::Program {
        assemble(
            "movi r1, 0\n\
             movi r2, 0\n\
             movi r3, 8\n\
             mram.read r1, r2, r3\n\
             lw r4, r1, 0\n\
             movi r5, 0\n\
             loop: add r5, r5, r4\n\
             addi r4, r4, -1\n\
             bne r4, r0, loop\n\
             sw r1, 0, r5\n\
             halt\n",
        )
        .expect("skewed program assembles")
    }

    struct Sample {
        wall_ns: u128,
        instructions: u64,
    }

    fn median(samples: &mut [Sample]) -> (u128, u64) {
        samples.sort_by_key(|s| s.wall_ns);
        let mid = &samples[samples.len() / 2];
        (mid.wall_ns, mid.instructions)
    }

    fn bench_interpreter(program: &dpu_sim::Program, tasklets: usize, n: usize) -> (u128, u64) {
        let mut samples: Vec<Sample> = (0..n)
            .map(|_| {
                let mut m = Machine::default();
                let start = Instant::now();
                let res = m.run(program, tasklets).expect("bench program runs");
                Sample { wall_ns: start.elapsed().as_nanos(), instructions: res.instructions }
            })
            .collect();
        median(&mut samples)
    }

    /// Like `bench_interpreter` with a pinned engine tier (and the decode
    /// hoisted out of the timed region, as every launch path does), so the
    /// snapshot records the tier ladder, not just the ambient default.
    fn bench_engine(
        program: &dpu_sim::Program,
        tasklets: usize,
        engine: dpu_sim::Engine,
        n: usize,
    ) -> (u128, u64) {
        let exec = dpu_sim::ExecProgram::compile(program).expect("bench program compiles");
        let mut samples: Vec<Sample> = (0..n)
            .map(|_| {
                let mut m = Machine::default();
                let start = Instant::now();
                let res = m.run_exec_engine(&exec, tasklets, engine).expect("bench program runs");
                Sample { wall_ns: start.elapsed().as_nanos(), instructions: res.instructions }
            })
            .collect();
        median(&mut samples)
    }

    /// Uniform per-DPU work at arbitrary scale: every DPU runs the same
    /// count, so instructions-per-host-second at 32 vs 2,560 DPUs measures
    /// how close the persistent rank-sharded pool stays to linear scaling
    /// (the launch overhead and the COW arena are what could break it).
    fn bench_uniform_launch(dpus: usize, n: usize) -> (u128, u64) {
        let program = skewed_program();
        let count: u64 = 4_000;
        let mut samples: Vec<Sample> = (0..n)
            .map(|_| {
                let mut set = DpuSet::allocate(dpus).expect("alloc");
                set.define_symbol("n", 8).expect("symbol");
                set.copy_to("n", 0, &count.to_le_bytes()).expect("broadcast");
                let start = Instant::now();
                let res = set.launch(&program, 1).expect("launch");
                Sample {
                    wall_ns: start.elapsed().as_nanos(),
                    instructions: res.total_instructions(),
                }
            })
            .collect();
        median(&mut samples)
    }

    fn bench_skewed_launch(dpus: usize, n: usize) -> (u128, u64) {
        let program = skewed_program();
        let mut samples: Vec<Sample> = (0..n)
            .map(|_| {
                let mut set = DpuSet::allocate(dpus).expect("alloc");
                set.define_symbol("n", 8).expect("symbol");
                for d in 0..dpus {
                    // Heavy head, light tail: DPU 0 does ~32x the work of
                    // the rest, the worst case for static chunking.
                    let count: u64 = if d == 0 { 64_000 } else { 2_000 };
                    set.copy_to_dpu(dpu_sim::DpuId(d as u32), "n", 0, &count.to_le_bytes())
                        .expect("scatter");
                }
                let start = Instant::now();
                let res = set.launch(&program, 1).expect("launch");
                Sample {
                    wall_ns: start.elapsed().as_nanos(),
                    instructions: res.total_instructions(),
                }
            })
            .collect();
        median(&mut samples)
    }

    /// The commit the snapshot was recorded at, so BENCH_*.json files are
    /// self-describing in the perf trajectory ("unknown" outside a git
    /// checkout).
    fn git_sha() -> String {
        std::process::Command::new("git")
            .args(["rev-parse", "HEAD"])
            .output()
            .ok()
            .filter(|out| out.status.success())
            .and_then(|out| String::from_utf8(out.stdout).ok())
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_owned())
    }

    #[allow(clippy::cast_precision_loss)]
    pub fn run(path: &str, samples: usize) {
        use dpu_sim::Engine;
        let alu = alu_loop_program();
        let scenarios: Vec<(&str, (u128, u64))> = vec![
            ("interpreter/alu_loop_1t", bench_interpreter(&alu, 1, samples)),
            ("interpreter/alu_loop_11t", bench_interpreter(&alu, 11, samples)),
            // The tier ladder on the headline scenario: the same kernel
            // pinned to each engine, so BENCH_*.json records how much each
            // tier buys (reference → superblock → compiled).
            (
                "interpreter/alu_loop_11t_reference",
                bench_engine(&alu, 11, Engine::Reference, samples),
            ),
            (
                "interpreter/alu_loop_11t_superblock",
                bench_engine(&alu, 11, Engine::Superblock, samples),
            ),
            (
                "interpreter/alu_loop_11t_compiled",
                bench_engine(&alu, 11, Engine::Compiled, samples),
            ),
            ("interpreter/sync_heavy_16t", bench_interpreter(&sync_heavy_program(), 16, samples)),
            ("multi_dpu/skewed_32", bench_skewed_launch(32, samples)),
            ("multi_dpu/uniform_32", bench_uniform_launch(32, samples)),
            // The paper's full machine: 40 ranks of 64 DPUs through the
            // persistent pool. Compare instructions_per_sec against
            // uniform_32 for the scaling ratio (target ≥ 0.8× ideal).
            ("multi_dpu/rank_2560", bench_uniform_launch(2560, samples)),
        ];
        let mut benches: Vec<(String, serde_json::Value)> = Vec::new();
        for (name, (ns, instructions)) in &scenarios {
            let ips = *instructions as f64 / (*ns as f64 / 1e9);
            eprintln!("{name}: {instructions} instrs, median {ns} ns, {ips:.3e} instr/s");
            benches.push((
                (*name).to_owned(),
                serde_json::json!({
                    "median_ns": *ns as u64,
                    "instructions": *instructions,
                    "instructions_per_sec": ips,
                }),
            ));
        }
        let doc = serde_json::json!({
            "schema": "pim-bench-snapshot-v2",
            "samples": samples as u64,
            "git_sha": git_sha(),
            "build_profile": if cfg!(debug_assertions) { "debug" } else { "release" },
            "benches": serde_json::Value::Object(benches.into_iter().collect()),
        });
        let text = serde_json::to_string_pretty(&doc).expect("serializable");
        std::fs::write(path, text + "\n").expect("write bench snapshot");
        eprintln!("wrote {path}");
    }
}
