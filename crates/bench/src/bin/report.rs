//! Regenerate every table and figure of the paper.
//!
//! ```text
//! report [--exp <id>] [--json]
//! ```
//!
//! With no arguments all experiments run (the YOLO/CPU ones take a few
//! seconds). Experiment ids: `eq3_4 table3_1 fig3_2 fig4_3 fig4_4 fig4_7a
//! fig4_7b fig4_7c latencies table5_1 table5_2 fig5_4 fig5_6 table5_3
//! table5_4 fig5_5 fig5_7 improvements mapping_comparison size_sweep image_limits depth_sweep tier_validation fig4_7a_tier1 alexnet_mapping
//! table5_4_measured trace_metrics`.

use cpu_baseline::XeonModel;
use ebnn::{EbnnModel, ModelConfig};
use pim_bench as render;
use pim_core::experiments as exp;
use pim_model::ModelReport;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted: Option<String> = None;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                i += 1;
                wanted = args.get(i).cloned();
            }
            "--json" => json = true,
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let all = wanted.is_none();
    let want = |id: &str| all || wanted.as_deref() == Some(id);
    let model = EbnnModel::generate(ModelConfig::default());

    if want("eq3_4") {
        let rows = exp::eq_3_4(&[8, 16, 64, 256, 1024, 2048]);
        emit(json, "eq3_4", &rows, || render::render_eq_3_4(&rows));
    }
    if want("table3_1") {
        let rows = exp::table_3_1();
        emit(json, "table3_1", &rows, || render::render_table_3_1(&rows));
    }
    if want("fig3_2") {
        let p = exp::fig_3_2();
        let summary: exp::ProfilerSummary = (&p).into();
        emit(json, "fig3_2", &summary, || {
            render::render_profile("Fig. 3.2 — high-precision DPU program profile", &summary)
        });
    }
    if want("fig4_3") {
        let f = exp::fig_4_3(&model);
        emit(json, "fig4_3", &f, || {
            format!(
                "{}\n{}",
                render::render_profile("Fig. 4.3(a) — float BN in the DPU", &f.float_profile),
                render::render_profile("Fig. 4.3(b) — LUT rewrite", &f.lut_profile)
            )
        });
    }
    if want("fig4_4") {
        let f = exp::fig_4_4(&model);
        emit(json, "fig4_4", &f, || render::render_fig_4_4(&f));
    }
    if want("fig4_7a") {
        let pts = exp::fig_4_7a(&model, &[1, 2, 4, 6, 8, 10, 11, 12, 14, 16, 20, 24]);
        emit(json, "fig4_7a", &pts, || render::render_fig_4_7a(&pts));
    }
    if want("fig4_7b") {
        let rows = exp::fig_4_7b();
        emit(json, "fig4_7b", &rows, || render::render_fig_4_7b(&rows));
    }
    if want("fig4_7c") {
        let pts = exp::fig_4_7c(&model, &XeonModel::default(), &[1, 16, 64, 256, 1024, 2560]);
        emit(json, "fig4_7c", &pts, || render::render_fig_4_7c(&pts));
    }
    if want("latencies") {
        let l = exp::measured_latencies(&model);
        emit(json, "latencies", &l, || render::render_latencies(&l));
    }
    if want("table5_1") {
        let t = ModelReport::table_5_1();
        emit(json, "table5_1", &t, render::render_table_5_1);
    }
    if want("table5_2") {
        let t = ModelReport::table_5_2();
        emit(json, "table5_2", &t, render::render_table_5_2);
    }
    if want("fig5_4") {
        let t = ModelReport::fig_5_4(&[8, 16, 32]);
        emit(json, "fig5_4", &t, render::render_fig_5_4);
    }
    if want("fig5_5") {
        let tops: Vec<f64> = (1..=100).map(|i| i as f64 * 1000.0).collect();
        let pes: Vec<u64> = (1..=64).map(|i| i * 64).collect();
        let mut out = String::from("Fig. 5.5 — Ccomp sweeps (multiplication)\n");
        for (dev, fixed_tops) in [
            (pim_model::arch::drisa_3t1c(), 10_000.0),
            (pim_model::arch::ppim(), 100_000.0),
            (pim_model::arch::upmem_analytic(), 100_000.0),
        ] {
            let data = ModelReport::fig_5_5(&dev, &tops, &pes, fixed_tops);
            out.push_str(&format!("  {}:\n", dev.name));
            for (bits, t_sweep, p_sweep) in &data {
                out.push_str(&format!(
                    "    {:>2}-bit: TOPs sweep {:.0}..{:.0} cycles ({} steps), PE sweep {:.0}..{:.0} cycles\n",
                    bits.bits(),
                    t_sweep.first().unwrap(),
                    t_sweep.last().unwrap(),
                    t_sweep.windows(2).filter(|w| w[1] > w[0]).count() + 1,
                    p_sweep.first().unwrap(),
                    p_sweep.last().unwrap(),
                ));
            }
        }
        let rows: Vec<(String, f64)> = Vec::new();
        let _ = rows;
        emit(json, "fig5_5", &"see text rendering", || out.clone());
    }
    if want("fig5_6") {
        let t = ModelReport::fig_5_6();
        emit(json, "fig5_6", &t, render::render_fig_5_6);
    }
    if want("table5_3") {
        let t = ModelReport::table_5_3();
        emit(json, "table5_3", &t, render::render_table_5_3);
    }
    if want("table5_4") {
        let rows = ModelReport::table_5_4(None);
        emit(json, "table5_4", &rows, || {
            render::render_table_5_4(&rows, "UPMEM row: paper's measurements")
        });
    }
    if want("fig5_7") {
        let rows = ModelReport::table_5_4(None);
        emit(json, "fig5_7", &rows, || render::render_fig_5_7(&rows));
    }
    if want("improvements") {
        let rows = pim_core::ablations::improvements(&model);
        emit(json, "improvements", &rows, || render::render_improvements(&rows));
    }
    if want("mapping_comparison") {
        let rows = pim_core::ablations::mapping_comparison(&[1, 2, 4, 8]);
        emit(json, "mapping_comparison", &rows, || render::render_mapping_comparison(&rows));
    }
    if want("size_sweep") {
        let rows = pim_core::ablations::size_sweep(&[96, 160, 224, 320, 416]);
        emit(json, "size_sweep", &rows, || render::render_size_sweep(&rows));
    }
    if want("image_limits") {
        let rows = pim_core::ablations::ebnn_image_size_limits(&[28, 32, 56, 64, 112, 224]);
        emit(json, "image_limits", &rows, || render::render_image_limits(&rows));
    }
    if want("fig4_7a_tier1") {
        use ebnn::{EbnnModel as M, ModelConfig as C};
        let small = M::generate(C { filters: 2, ..C::default() });
        let pts = exp::fig_4_7a_tier1(&small, &[1, 2, 4, 8, 11, 12, 16, 24]);
        emit(json, "fig4_7a_tier1", &pts, || {
            let mut s = String::from(
                "Fig. 4.7(a), instruction-level (generated Tier-1 eBNN program)\ntasklets  speedup\n",
            );
            for (t, sp) in &pts {
                s.push_str(&format!("{t:>8} {sp:>8.2}x\n"));
            }
            s
        });
    }
    if want("alexnet_mapping") {
        let c = pim_core::ablations::alexnet_under_the_mapping();
        emit(json, "alexnet_mapping", &c, || {
            format!(
                "AlexNet: Eq. 5.3 idealization vs the Fig. 4.6 mapping\n\
                 \x20 modeled Tcomp (Table 5.1):   {:.3e} s\n\
                 \x20 modeled Ttot  (§5.3.1):      {:.3e} s\n\
                 \x20 mapped DPU compute:          {:.3e} s\n\
                 \x20 mapped total (with host):    {:.3e} s\n\
                 \x20 mapping overhead:            {:.0}x\n",
                c.modeled_tcomp,
                c.modeled_ttot,
                c.mapped_dpu_seconds,
                c.mapped_total_seconds,
                c.mapping_overhead()
            )
        });
    }
    if want("tier_validation") {
        let v = exp::tier_validation(&model);
        emit(json, "tier_validation", &v, || render::render_tier_validation(&v));
    }
    if want("depth_sweep") {
        let rows = pim_core::ablations::depth_sweep(&[
            vec![8],
            vec![8, 16],
            vec![8, 16, 32],
            vec![8, 16, 64, 64],
        ]);
        emit(json, "depth_sweep", &rows, || render::render_depth_sweep(&rows));
    }
    if want("table5_4_measured") {
        let rows = exp::table_5_4_with_measured(&model);
        emit(json, "table5_4_measured", &rows, || {
            render::render_table_5_4(&rows, "UPMEM row: this repository's simulator")
        });
    }
    if want("trace_metrics") {
        // A traced Tier-1 eBNN batch over two DPUs: the metrics-registry
        // snapshot (JSON mode) or the per-phase cycle breakdown plus the
        // Fig. 3.2-format merged subroutine profile (text mode).
        use ebnn::{EbnnModel as M, ModelConfig as C};
        let small = M::generate(C { filters: 2, ..C::default() });
        let imgs: Vec<_> =
            (0..24).map(|i| ebnn::mnist::synth_digit(i % 10, (i / 10) as u64)).collect();
        let traced =
            ebnn::codegen::run_tier1_batch_multi_dpu_traced(&small, &imgs).expect("traced run");
        let mut metrics = traced.launch.metrics();
        metrics.counter_add("host.transfer.events", traced.host_trace.len() as u64);
        emit(json, "trace_metrics", &metrics.to_json(), || {
            let profile: exp::ProfilerSummary = (&traced.launch.merged_profile()).into();
            format!(
                "Traced Tier-1 eBNN batch ({} images, {} DPUs)\n\n{}\n{}",
                imgs.len(),
                traced.launch.per_dpu.len(),
                pim_trace::cycle_breakdown(&traced.dpu_traces),
                render::render_profile("Merged subroutine profile (Fig. 3.2 format)", &profile)
            )
        });
    }
}

fn emit<T: serde::Serialize>(json: bool, id: &str, value: &T, text: impl FnOnce() -> String) {
    if json {
        let payload = serde_json::json!({ "experiment": id, "data": value });
        println!("{}", serde_json::to_string(&payload).expect("serializable"));
    } else {
        println!("{}", text());
    }
}
