//! Perf-regression gate over the deterministic observability snapshot.
//!
//! ```text
//! perfgate [--baseline <path>] [--tolerance <rel>] [--current <path>]
//! perfgate --write-baseline [--baseline <path>]
//! ```
//!
//! Regenerates the snapshot (`pim_bench::snapshot::snapshot`, simulated
//! figures only — no wall clock) and diffs it against the committed
//! baseline:
//!
//! * integer leaves (counters, cycle counts, instruction counts) must
//!   match **exactly** — the workload is deterministic, so any drift is
//!   a real behavior change;
//! * float leaves (gauges, histogram sums/quantiles) must stay within
//!   `--tolerance` relative error (default 2%), absorbing benign
//!   float-summation reassociation;
//! * keys under `obs.steal.` and `obs.pool.` are ignored
//!   (host-scheduling dependent);
//! * added or removed keys fail the gate, so intentional metric changes
//!   are re-blessed explicitly with `--write-baseline`.
//!
//! Exit status: 0 clean, 1 regression (differences listed on stderr),
//! 2 usage error.

use serde_json::Value;

const DEFAULT_BASELINE: &str = "baselines/metrics_baseline.json";
const DEFAULT_TOLERANCE: f64 = 0.02;

/// Key fragments whose leaves are host-scheduling dependent and never
/// gated.
const IGNORED_FRAGMENTS: &[&str] = &["obs.steal.", "obs.pool."];

#[derive(Debug, PartialEq)]
enum Leaf {
    Int(i128),
    Float(f64),
    Text(String),
    Bool(bool),
    Null,
}

/// Flatten a JSON tree into `path -> leaf` pairs, path segments joined
/// with `/` (metric names already contain dots).
fn flatten(value: &Value, path: &str, out: &mut Vec<(String, Leaf)>) {
    match value {
        Value::Object(fields) => {
            for (k, v) in fields {
                let sub = if path.is_empty() { k.clone() } else { format!("{path}/{k}") };
                flatten(v, &sub, out);
            }
        }
        Value::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten(v, &format!("{path}/{i}"), out);
            }
        }
        Value::Null => out.push((path.to_owned(), Leaf::Null)),
        Value::Bool(b) => out.push((path.to_owned(), Leaf::Bool(*b))),
        Value::String(s) => out.push((path.to_owned(), Leaf::Text(s.clone()))),
        Value::Number(n) => {
            let leaf = match n {
                serde_json::Number::U64(u) => Leaf::Int(i128::from(*u)),
                serde_json::Number::I64(i) => Leaf::Int(i128::from(*i)),
                serde_json::Number::F64(f) => Leaf::Float(*f),
            };
            out.push((path.to_owned(), leaf));
        }
    }
}

fn ignored(path: &str) -> bool {
    IGNORED_FRAGMENTS.iter().any(|frag| path.contains(frag))
}

/// Compare two leaves under the gate's rules; `None` means acceptable,
/// `Some(reason)` is a violation.
#[allow(clippy::cast_precision_loss)]
fn violation(baseline: &Leaf, current: &Leaf, tolerance: f64) -> Option<String> {
    match (baseline, current) {
        (Leaf::Int(b), Leaf::Int(c)) => {
            (b != c).then(|| format!("expected {b}, got {c} (integers gate exactly)"))
        }
        (Leaf::Int(b), Leaf::Float(c)) => relative_violation(*b as f64, *c, tolerance),
        (Leaf::Float(b), Leaf::Float(c)) => relative_violation(*b, *c, tolerance),
        (Leaf::Float(b), Leaf::Int(c)) => relative_violation(*b, *c as f64, tolerance),
        (Leaf::Text(b), Leaf::Text(c)) => (b != c).then(|| format!("expected {b:?}, got {c:?}")),
        (Leaf::Bool(b), Leaf::Bool(c)) => (b != c).then(|| format!("expected {b}, got {c}")),
        (Leaf::Null, Leaf::Null) => None,
        (b, c) => Some(format!("type changed: {b:?} -> {c:?}")),
    }
}

fn relative_violation(b: f64, c: f64, tolerance: f64) -> Option<String> {
    let scale = b.abs().max(1e-12);
    let rel = (c - b).abs() / scale;
    (rel > tolerance).then(|| {
        format!("expected {b}, got {c} ({:.2}% > {:.2}% tolerance)", rel * 100.0, tolerance * 100.0)
    })
}

fn gate(baseline: &Value, current: &Value, tolerance: f64) -> Vec<String> {
    let mut base_leaves = Vec::new();
    let mut cur_leaves = Vec::new();
    flatten(baseline, "", &mut base_leaves);
    flatten(current, "", &mut cur_leaves);
    let mut failures = Vec::new();
    let cur_map: std::collections::BTreeMap<&str, &Leaf> =
        cur_leaves.iter().map(|(k, v)| (k.as_str(), v)).collect();
    let base_keys: std::collections::BTreeSet<&str> =
        base_leaves.iter().map(|(k, _)| k.as_str()).collect();
    for (path, base) in &base_leaves {
        if ignored(path) {
            continue;
        }
        match cur_map.get(path.as_str()) {
            None => failures.push(format!("{path}: removed from snapshot")),
            Some(cur) => {
                if let Some(reason) = violation(base, cur, tolerance) {
                    failures.push(format!("{path}: {reason}"));
                }
            }
        }
    }
    for (path, _) in &cur_leaves {
        if !ignored(path) && !base_keys.contains(path.as_str()) {
            failures
                .push(format!("{path}: new key not in baseline (re-bless with --write-baseline)"));
        }
    }
    failures
}

fn read_json(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perfgate: cannot read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("perfgate: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = DEFAULT_BASELINE.to_owned();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut write_baseline = false;
    let mut current_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                i += 1;
                baseline_path = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--baseline needs a path");
                    std::process::exit(2);
                });
            }
            "--tolerance" => {
                i += 1;
                tolerance = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--tolerance needs a number (relative, e.g. 0.02)");
                    std::process::exit(2);
                });
            }
            "--current" => {
                i += 1;
                current_path = args.get(i).cloned();
                if current_path.is_none() {
                    eprintln!("--current needs a path");
                    std::process::exit(2);
                }
            }
            "--write-baseline" => write_baseline = true,
            other => {
                eprintln!("perfgate: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let current = match &current_path {
        Some(path) => read_json(path),
        None => pim_bench::snapshot::snapshot(),
    };

    if write_baseline {
        if let Some(dir) = std::path::Path::new(&baseline_path).parent() {
            std::fs::create_dir_all(dir).expect("create baseline directory");
        }
        let text = serde_json::to_string_pretty(&current).expect("serializable");
        std::fs::write(&baseline_path, text + "\n").expect("write baseline");
        eprintln!("perfgate: wrote {baseline_path}");
        return;
    }

    let baseline = read_json(&baseline_path);
    let failures = gate(&baseline, &current, tolerance);
    if failures.is_empty() {
        eprintln!("perfgate: OK ({baseline_path}, tolerance {:.2}%)", tolerance * 100.0);
    } else {
        eprintln!(
            "perfgate: {} regression(s) vs {baseline_path} (tolerance {:.2}%):",
            failures.len(),
            tolerance * 100.0
        );
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
