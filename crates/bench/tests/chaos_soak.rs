//! A short slice of the chaos-soak campaign on every `cargo test`. The
//! full ≥10k-launch soak runs in CI via the `chaos_soak` binary
//! (release build); this keeps a few hundred faulted launches in the
//! default test sweep so integrity regressions surface immediately.

use pim_bench::chaos::{run_chaos, ChaosConfig};

/// Launch count for the in-tree slice; `CHAOS_SOAK_LAUNCHES` scales it
/// up (the CI job exercises the full campaign through the binary).
fn launches() -> u64 {
    std::env::var("CHAOS_SOAK_LAUNCHES").ok().and_then(|v| v.parse().ok()).unwrap_or(250)
}

#[test]
fn chaos_slice_has_zero_silent_corruption() {
    let cfg = ChaosConfig { launches: launches(), ..ChaosConfig::default() };
    let rep = run_chaos(&cfg);

    // The campaign must have actually exercised the machinery…
    assert_eq!(rep.launches, cfg.launches);
    assert!(rep.faulted_launches > 0, "no faults drawn: {rep:?}");
    assert!(rep.faults_injected > 0);
    assert!(
        rep.scrub_corrected + rep.dma_corrected > 0,
        "no single-bit error was ever corrected: {rep:?}"
    );
    for (name, n) in &rep.per_scenario {
        assert!(*n > 0, "scenario {name} never drawn in {} launches", rep.launches);
    }

    // …and met the integrity contract while doing so.
    assert_eq!(rep.violations_silent_corruption, 0, "SILENT CORRUPTION: {rep:?}");
    assert_eq!(rep.violations_flip_retry, 0, "flip-only launches consumed retries: {rep:?}");
    assert_eq!(rep.violations_unexplained_unserved, 0, "unexplained unserved: {rep:?}");
    assert!(rep.clean());
}

#[test]
fn double_flip_storms_surface_uncorrectable_words_not_corruption() {
    // A concentrated double-flip campaign: SEC-DED must *detect* every
    // event (failing attempts, consuming retries, quarantining in the
    // limit) and never pass a corrupted word through as served-healthy.
    let mut any_uncorrectable = false;
    for seed in [3u64, 0xD0B1, 0xFEED_F00D] {
        let cfg = ChaosConfig { launches: 30, seed, ..ChaosConfig::default() };
        let rep = run_chaos(&cfg);
        assert!(rep.clean(), "seed {seed}: {rep:?}");
        any_uncorrectable |= rep.uncorrectable_words > 0;
    }
    assert!(any_uncorrectable, "no campaign ever hit an uncorrectable word");
}
