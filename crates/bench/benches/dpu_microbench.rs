//! Bench for Table 3.1 / Eq. 3.4: the ISA-level microbenchmark harness.
//!
//! Measures host-side simulation throughput of the Fig. 3.1 profiling
//! programs and DMA transfers, and prints the reproduced Table 3.1 rows.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dpu_sim::asm::{profile_harness, HarnessOp};
use dpu_sim::{Machine, Mram, Wram};
use std::hint::black_box;

fn bench_table_3_1(c: &mut Criterion) {
    // Print the reproduced table once.
    println!("{}", pim_bench::render_table_3_1(&pim_core::experiments::table_3_1()));

    let mut g = c.benchmark_group("table3_1_harness");
    for op in [HarnessOp::Add, HarnessOp::Mul32, HarnessOp::FMul, HarnessOp::FDiv] {
        let program = profile_harness(op);
        g.bench_function(format!("{op:?}"), |b| {
            b.iter_batched(
                Machine::default,
                |mut m| {
                    let r = m.run(&program, 1).expect("harness runs");
                    black_box(r.perf_reads[0])
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_eq_3_4(c: &mut Criterion) {
    println!("{}", pim_bench::render_eq_3_4(&pim_core::experiments::eq_3_4(&[8, 256, 2048])));
    let mut g = c.benchmark_group("eq3_4_dma");
    for bytes in [8usize, 256, 2048] {
        g.bench_function(format!("{bytes}B"), |b| {
            let mram = Mram::new(4096);
            let mut wram = Wram::new(4096);
            let mut dma = dpu_sim::DmaEngine::default();
            b.iter(|| {
                let cycles = dma.read(&mram, &mut wram, 0, 0, bytes).expect("dma ok");
                black_box(cycles)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table_3_1, bench_eq_3_4);
criterion_main!(benches);
