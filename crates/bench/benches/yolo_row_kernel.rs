//! Criterion bench for the Algorithm-2 GEMM row kernel — the paper's
//! headline YOLO workload on the perf dashboard alongside the synthetic
//! interpreter loops.
//!
//! Two shapes bracket the mapping: a single DPU computing one output row
//! (the per-row inner loop in isolation — tasklet-strided columns, one
//! 2-byte `B`-element DMA per multiply, the §4.3.3 memory-bound pattern)
//! and a small multi-row layer under the full Fig. 4.6 orchestration
//! (`A`-row scatter, `B` broadcast, `C`-row gather).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use yolo_pim::codegen::run_tier1_layer;
use yolo_pim::gemm::GemmDims;

/// Deterministic small-magnitude test matrices (values in -8..8 keep the
/// i16 accumulator comfortably in range at these shapes).
fn matrix(len: usize, seed: u32) -> Vec<i16> {
    let mut state = seed.wrapping_mul(2_654_435_761).max(1);
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            (state % 16) as i16 - 8
        })
        .collect()
}

fn bench_yolo_row_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("yolo_row_kernel");
    g.sample_size(10);

    for (name, dims, tasklets) in [
        // One DPU = one output row: the Algorithm-2 inner loop alone.
        ("single_row/n64_k32_8t", GemmDims { m: 1, n: 64, k: 32 }, 8usize),
        // A small layer across 8 DPUs under the full mapping.
        ("layer/m8_n32_k32_8t", GemmDims { m: 8, n: 32, k: 32 }, 8),
    ] {
        let a = matrix(dims.m * dims.k, 7);
        let b = matrix(dims.k * dims.n, 11);
        let (_, launch) = run_tier1_layer(dims, 1, &a, &b, tasklets).expect("row kernel runs");
        println!(
            "{name}: {} instructions, {} cycles (max DPU) per run",
            launch.total_instructions(),
            launch.makespan_cycles()
        );
        g.bench_function(name, |bench| {
            bench.iter(|| {
                let (c_row, launch) =
                    run_tier1_layer(dims, 1, &a, &b, tasklets).expect("row kernel runs");
                black_box((c_row, launch.makespan_cycles()))
            });
        });
    }

    g.finish();
}

criterion_group!(benches, bench_yolo_row_kernel);
criterion_main!(benches);
