//! Bench for Fig. 4.6 / Fig. 4.7(b) and the §4.3.1 YOLOv3 latency: the
//! row-per-DPU GEMM mapping.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use yolo_pim::{darknet53_yolov3, GemmDims, GemmMapping, YoloPipeline};

fn bench_gemm_mapping(c: &mut Criterion) {
    println!("{}", pim_bench::render_fig_4_7b(&pim_core::experiments::fig_4_7b()));
    let report = YoloPipeline::new(darknet53_yolov3()).estimate();
    println!(
        "YOLOv3-416 frame estimate: total {:.1} s (paper 65), mean layer {:.2} s (paper ~0.9), max layer {:.2} s (paper ~6)\n",
        report.total_seconds(),
        report.mean_layer_seconds(),
        report.max_layer_seconds()
    );

    let mut g = c.benchmark_group("gemm_mapping");
    // Functional GEMM through simulated MRAM on a small layer.
    let dims = GemmDims { m: 8, n: 26 * 26, k: 16 * 9 };
    let a: Vec<i16> = (0..dims.m * dims.k).map(|i| (i % 61) as i16 - 30).collect();
    let b_mat: Vec<i16> = (0..dims.k * dims.n).map(|i| (i % 53) as i16 - 26).collect();
    g.sample_size(10);
    g.bench_function("run_layer_functional", |bch| {
        let m = GemmMapping::default();
        bch.iter(|| {
            let (c_out, _) = m.run_layer(dims, 1, &a, &b_mat).expect("layer runs");
            black_box(c_out[0])
        });
    });
    // Timing-only estimate over the full 75-layer table.
    g.bench_function("estimate_full_network", |bch| {
        let pipe = YoloPipeline::new(darknet53_yolov3());
        bch.iter(|| black_box(pipe.estimate().total_seconds()));
    });
    g.finish();
}

criterion_group!(benches, bench_gemm_mapping);
criterion_main!(benches);
