//! Bench for Fig. 4.7(a): tasklet-level speedup of both CNNs.

use criterion::{criterion_group, criterion_main, Criterion};
use ebnn::{EbnnModel, EbnnPipeline, ModelConfig};
use std::hint::black_box;

fn bench_fig_4_7a(c: &mut Criterion) {
    let model = EbnnModel::generate(ModelConfig::default());
    let pts = pim_core::experiments::fig_4_7a(&model, &[1, 2, 4, 6, 8, 10, 11, 12, 14, 16, 20, 24]);
    println!("{}", pim_bench::render_fig_4_7a(&pts));

    let images: Vec<_> = (0..16).map(|i| ebnn::mnist::synth_digit(i % 10, i as u64)).collect();
    let mut g = c.benchmark_group("fig4_7a_tasklets");
    g.sample_size(20);
    for t in [1usize, 11, 16] {
        g.bench_function(format!("ebnn_t{t}"), |b| {
            let p = EbnnPipeline::new(model.clone()).with_tasklets(t);
            b.iter(|| black_box(p.infer(&images).expect("run").makespan_cycles));
        });
    }
    for t in [1usize, 11] {
        g.bench_function(format!("yolo_t{t}"), |b| {
            let m = yolo_pim::GemmMapping { tasklets: t, ..yolo_pim::GemmMapping::default() };
            let dims = yolo_pim::GemmDims { m: 1, n: 52 * 52, k: 128 * 9 };
            b.iter(|| black_box(m.estimate_layer(dims).kernel.cycles));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig_4_7a);
criterion_main!(benches);
