//! Bench for Chapter 5: Tables 5.1–5.4 and Figs. 5.4–5.6 from the
//! analytical model.

use criterion::{criterion_group, criterion_main, Criterion};
use pim_model::ModelReport;
use std::hint::black_box;

fn bench_model(c: &mut Criterion) {
    println!("{}", pim_bench::render_table_5_1());
    println!("{}", pim_bench::render_table_5_2());
    println!("{}", pim_bench::render_fig_5_4());
    println!("{}", pim_bench::render_fig_5_6());
    println!("{}", pim_bench::render_table_5_3());
    println!("{}", pim_bench::render_table_5_4(&ModelReport::table_5_4(None), "paper UPMEM row"));

    let mut g = c.benchmark_group("pim_model");
    g.bench_function("table_5_4", |b| {
        b.iter(|| black_box(ModelReport::table_5_4(None).len()));
    });
    g.bench_function("algorithm3_32bit", |b| {
        b.iter(|| black_box(pim_model::ppim::cop_mult(32)));
    });
    g.bench_function("fig_5_5_sweeps", |b| {
        let tops: Vec<f64> = (1..=1000).map(|i| i as f64 * 100.0).collect();
        let pes: Vec<u64> = (1..=500).map(|i| i * 8).collect();
        let dev = pim_model::arch::upmem_analytic();
        b.iter(|| black_box(ModelReport::fig_5_5(&dev, &tops, &pes, 1e5).len()));
    });
    g.finish();
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
