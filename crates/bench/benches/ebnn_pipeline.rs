//! Bench for Fig. 4.3 / Fig. 4.4: eBNN with and without the LUT rewrite.

use criterion::{criterion_group, criterion_main, Criterion};
use ebnn::mapping::BnPlacement;
use ebnn::{EbnnModel, EbnnPipeline, ModelConfig};
use std::hint::black_box;

fn bench_fig_4_4(c: &mut Criterion) {
    let model = EbnnModel::generate(ModelConfig::default());
    println!("{}", pim_bench::render_fig_4_4(&pim_core::experiments::fig_4_4(&model)));
    let f43 = pim_core::experiments::fig_4_3(&model);
    println!("{}", pim_bench::render_profile("Fig. 4.3(a) float profile", &f43.float_profile));
    println!("{}", pim_bench::render_profile("Fig. 4.3(b) LUT profile", &f43.lut_profile));

    let images: Vec<_> = (0..16).map(|i| ebnn::mnist::synth_digit(i % 10, i as u64)).collect();
    let mut g = c.benchmark_group("fig4_4_ebnn_16_images");
    g.sample_size(20);
    g.bench_function("lut", |b| {
        let p = EbnnPipeline::new(model.clone());
        b.iter(|| black_box(p.infer(&images).expect("run").dpu_seconds));
    });
    g.bench_function("float_bn", |b| {
        let p = EbnnPipeline::new(model.clone()).with_placement(BnPlacement::DpuFloat);
        b.iter(|| black_box(p.infer(&images).expect("run").dpu_seconds));
    });
    g.sample_size(10);
    g.bench_function("tier1_generated_program", |b| {
        b.iter(|| {
            let (_, res) = ebnn::codegen::run_tier1_batch(&model, &images).expect("tier1");
            black_box(res.makespan_cycles())
        });
    });
    g.finish();
    println!(
        "{}",
        pim_bench::render_tier_validation(&pim_core::experiments::tier_validation(&model))
    );
}

criterion_group!(benches, bench_fig_4_4);
criterion_main!(benches);
