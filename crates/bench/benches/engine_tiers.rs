//! The execution-tier ladder, measured side by side: the per-instruction
//! reference loop, the superblock engine, and the compiled threaded-code
//! tier all run the same kernels from identical machines, so one criterion
//! report shows what each tier buys on each shape.
//!
//! Three shapes bracket the tier's reach:
//!
//! * `alu_loop` — the headline kernel (one self-chaining branch block):
//!   the compiled tier should win by a wide margin, and with 11 lockstep
//!   tasklets the chain replicates whole rounds at once;
//! * `sync_heavy` — mutex/barrier bound: every lock is a deopt boundary,
//!   so the tiers should be close (the gate in `profiler_overhead.rs`
//!   bounds the allowed gap);
//! * `divergent` — a `tasklet_id`-seeded loop where register files differ
//!   per tasklet: replication is off, but per-tasklet chains still run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpu_sim::asm::assemble;
use dpu_sim::{Engine, ExecProgram, Machine, Program};
use pim_bench::snapshot::alu_program;

fn sync_heavy_program() -> Program {
    assemble(
        "movi r2, 500\n\
         loop:\n\
         mutex.lock 1\n\
         lw r3, r0, 0x40\n\
         addi r3, r3, 1\n\
         sw r0, 0x40, r3\n\
         mutex.unlock 1\n\
         addi r2, r2, -1\n\
         bne r2, r0, loop\n\
         barrier\n\
         halt\n",
    )
    .expect("sync program assembles")
}

fn divergent_program() -> Program {
    assemble(
        "movi r1, 2000\n\
         me r3\n\
         addi r3, r3, 1\n\
         loop: add r2, r2, r3\n\
         addi r1, r1, -1\n\
         bne r1, r0, loop\n\
         sw r0, 0, r2\n\
         halt\n",
    )
    .expect("divergent program assembles")
}

fn bench_tiers(c: &mut Criterion) {
    let shapes: [(&str, Program, usize); 4] = [
        ("alu_loop_1t", alu_program(), 1),
        ("alu_loop_11t", alu_program(), 11),
        ("sync_heavy_16t", sync_heavy_program(), 16),
        ("divergent_11t", divergent_program(), 11),
    ];
    for (name, program, tasklets) in shapes {
        let exec = ExecProgram::compile(&program).expect("bench program compiles");
        let mut g = c.benchmark_group(format!("engine_tiers/{name}"));
        g.sample_size(10);
        for engine in [Engine::Reference, Engine::Superblock, Engine::Compiled] {
            g.bench_function(engine.name(), |b| {
                let mut m = Machine::default();
                b.iter(|| black_box(m.run_exec_engine(&exec, tasklets, engine).unwrap().cycles));
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_tiers);
criterion_main!(benches);
