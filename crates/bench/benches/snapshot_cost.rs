//! Snapshot cost: COW page-table capture/restore vs the deep 64 MiB copy
//! the resilient retry path used to pay.
//!
//! A resilient launch snapshots every DPU's MRAM before the first faulty
//! attempt. Pre-arena that was a 64 MiB `Vec` clone per DPU per launch;
//! with the COW arena it is O(resident pages) — cloning a page table of
//! `Arc`s. This bench records both and asserts the COW path is at least
//! 100x faster on a typically-sparse image (a few dirty pages out of
//! 1,024), making the satellite's "drops measurably" claim a gate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpu_sim::{CowMemory, MRAM_PAGE_BYTES};
use std::time::Instant;

const MRAM_BYTES: usize = 64 * 1024 * 1024;

/// An MRAM image with `dirty` touched pages — the shape a real kernel
/// leaves behind (inputs + outputs, not the whole 64 MiB).
fn sparse_mram(dirty: usize) -> CowMemory {
    let mut m = CowMemory::new("MRAM", MRAM_BYTES);
    let page = vec![0xA5u8; 64];
    for p in 0..dirty {
        m.write(p * MRAM_PAGE_BYTES, &page).expect("write");
    }
    m
}

fn min_time(n: usize, mut f: impl FnMut()) -> std::time::Duration {
    let mut best = std::time::Duration::MAX;
    for _ in 0..n {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

fn bench_snapshot_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("snapshot_cost");
    g.sample_size(10);

    let m = sparse_mram(8);
    g.bench_function("cow_snapshot_8_dirty_pages", |b| {
        b.iter(|| black_box(m.snapshot()));
    });
    g.bench_function("cow_snapshot_restore_round_trip", |b| {
        let mut live = sparse_mram(8);
        let snap = live.snapshot();
        b.iter(|| {
            live.write(0, &[1u8; 64]).expect("dirty");
            live.restore(black_box(&snap)).expect("restore");
        });
    });
    g.bench_function("deep_copy_64mib_baseline", |b| {
        let dense = vec![0xA5u8; MRAM_BYTES];
        b.iter(|| black_box(dense.clone()));
    });
    g.finish();

    // The gate: COW capture must beat the deep copy by >= 100x on a
    // sparse image. (In practice it is thousands of times faster — a
    // page-table clone vs a 64 MiB memcpy + allocation.)
    let cow = min_time(50, || {
        black_box(m.snapshot());
    });
    let dense_src = vec![0xA5u8; MRAM_BYTES];
    let deep = min_time(10, || {
        black_box(dense_src.clone());
    });
    eprintln!(
        "snapshot_cost: cow {cow:?} vs deep-copy {deep:?} ({:.0}x)",
        deep.as_secs_f64() / cow.as_secs_f64().max(1e-9)
    );
    assert!(
        cow.as_secs_f64() * 100.0 <= deep.as_secs_f64(),
        "COW snapshot ({cow:?}) must be >= 100x faster than a 64 MiB deep copy ({deep:?})"
    );
}

criterion_group!(benches, bench_snapshot_cost);
criterion_main!(benches);
