//! Bench for the §4.3.4 improvement ablations and §6.1 future-work
//! studies.

use criterion::{criterion_group, criterion_main, Criterion};
use ebnn::{EbnnModel, ModelConfig};
use pim_core::ablations;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let model = EbnnModel::generate(ModelConfig::default());
    println!("{}", pim_bench::render_improvements(&ablations::improvements(&model)));
    println!(
        "{}",
        pim_bench::render_mapping_comparison(&ablations::mapping_comparison(&[1, 2, 4, 8]))
    );
    println!("{}", pim_bench::render_size_sweep(&ablations::size_sweep(&[96, 160, 224, 320, 416])));
    println!(
        "{}",
        pim_bench::render_image_limits(&ablations::ebnn_image_size_limits(&[
            28, 32, 56, 64, 112, 224
        ]))
    );

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("improvements_sweep", |b| {
        b.iter(|| black_box(ablations::improvements(&model).len()));
    });
    g.bench_function("size_sweep", |b| {
        b.iter(|| black_box(ablations::size_sweep(&[96, 224, 416]).len()));
    });
    g.bench_function("frame_per_dpu_estimate", |b| {
        let net = yolo_pim::darknet::darknet53_yolov3_scaled(2, 416);
        let mapping = yolo_pim::GemmMapping::default();
        b.iter(|| black_box(mapping.estimate_frame_per_dpu(&net).frame_cycles));
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
