//! Profiler cost: the pay-for-what-you-use gate, plus the attribution
//! tax on the path profiling rides.
//!
//! Profiling promises two things. First — and what the gate enforces —
//! unprofiled runs pay nothing for the profiler's existence: they keep
//! the superblock fast path and share none of the attribution
//! bookkeeping (`run_reference` and `run_reference_profiled` are
//! separate loops; the identity tests pin bit-identical results). The
//! gate runs the ALU loop at 11 tasklets profiler-off (`run_exec`, the
//! path every normal launch takes) paired against the profiler-free
//! reference interpreter (`run_exec_reference_with_budget`) and asserts
//! the profiler-off time stays within 3% of that floor. In practice it
//! sits far *below* the floor (the superblock engine is ~2.5x faster),
//! so the gate trips exactly when profiling support leaks cost into —
//! or reroutes — the unprofiled path.
//!
//! Second, when profiling is on it forces the reference path and adds a
//! per-issue-slot delta record. That tax is real (~25-30% on this
//! worst-case two-instruction loop body, where there is no work to
//! amortize it against) and is *contained*, not hidden: a second
//! assertion bounds profiled time at 1.5x the unprofiled reference so a
//! pathological regression in the profiled loop still fails the bench.
//!
//! `cargo bench --bench profiler_overhead` is therefore a pass/fail
//! gate; the criterion group reports all three timings for context.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpu_sim::{CycleAttribution, ExecProgram, Machine};
use pim_bench::snapshot::alu_program;
use std::time::{Duration, Instant};

const TASKLETS: usize = 11;

fn exec() -> ExecProgram {
    ExecProgram::compile(&alu_program()).expect("alu program compiles")
}

/// Minimum wall-clock of two alternately-run workloads (see
/// `resilient_launch.rs` for the rationale: interleaving and swapping
/// order each round cancels slow machine-load drift).
fn paired_min_time(n: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (Duration, Duration) {
    let time = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        start.elapsed()
    };
    a(); // warm-up
    b();
    let (mut min_a, mut min_b) = (Duration::MAX, Duration::MAX);
    for round in 0..n {
        if round % 2 == 0 {
            min_a = min_a.min(time(&mut a));
            min_b = min_b.min(time(&mut b));
        } else {
            min_b = min_b.min(time(&mut b));
            min_a = min_a.min(time(&mut a));
        }
    }
    (min_a, min_b)
}

fn bench_profiler_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("profiler_overhead");
    g.sample_size(10);

    g.bench_function("alu_loop_11t_plain", |b| {
        let exec = exec();
        let mut m = Machine::default();
        b.iter(|| black_box(m.run_exec(&exec, TASKLETS).unwrap().cycles));
    });
    g.bench_function("alu_loop_11t_reference", |b| {
        let exec = exec();
        let mut m = Machine::default();
        b.iter(|| {
            black_box(m.run_exec_reference_with_budget(&exec, TASKLETS, BUDGET).unwrap().cycles)
        });
    });
    g.bench_function("alu_loop_11t_superblock", |b| {
        let exec = exec();
        let mut m = Machine::default();
        b.iter(|| {
            black_box(
                m.run_exec_engine(&exec, TASKLETS, dpu_sim::Engine::Superblock).unwrap().cycles,
            )
        });
    });
    g.bench_function("alu_loop_11t_compiled", |b| {
        let exec = exec();
        let mut m = Machine::default();
        b.iter(|| {
            black_box(m.run_exec_engine(&exec, TASKLETS, dpu_sim::Engine::Compiled).unwrap().cycles)
        });
    });
    g.bench_function("alu_loop_11t_profiled", |b| {
        let exec = exec();
        let mut m = Machine::default();
        let mut attr = CycleAttribution::new();
        b.iter(|| black_box(m.run_exec_profiled(&exec, TASKLETS, &mut attr).unwrap().cycles));
    });
    g.finish();

    const RUNS: usize = 14;
    let exec_off = exec();
    let exec_ref = exec();
    let mut off = Machine::default();
    let mut reference = Machine::default();

    // --- Gate 1: profiler-off tax --------------------------------------
    // Unprofiled `run_exec` (profiler-aware dispatch, superblock engine)
    // vs the profiler-free reference loop. Profiler-off runs must stay
    // within 3% of the reference floor; they normally sit far below it.
    let (min_off, min_reference) = paired_min_time(
        RUNS,
        || {
            black_box(off.run_exec(&exec_off, TASKLETS).unwrap().cycles);
        },
        || {
            black_box(
                reference
                    .run_exec_reference_with_budget(&exec_ref, TASKLETS, BUDGET)
                    .unwrap()
                    .cycles,
            );
        },
    );
    let off_tax = min_off.as_secs_f64() / min_reference.as_secs_f64() - 1.0;
    let off_budget = min_reference.mul_f64(1.03) + Duration::from_micros(50);
    println!(
        "profiler-off tax on alu_loop_11t: {:.1}% (gate <3%): off {min_off:?}, reference floor {min_reference:?}",
        off_tax * 100.0
    );
    assert!(
        min_off <= off_budget,
        "profiler-off alu_loop_11t exceeded the 3% budget over the reference floor: \
         off {min_off:?} vs reference {min_reference:?} — profiling support leaked \
         cost into (or rerouted) the unprofiled path"
    );

    // --- Gate 2: attribution tax is contained --------------------------
    // Profiled runs ride the reference path plus a per-slot record; keep
    // that within 1.5x the unprofiled reference so regressions in the
    // profiled loop cannot hide behind "profiling is expected to cost".
    let exec_ref2 = exec();
    let exec_prof = exec();
    let mut reference2 = Machine::default();
    let mut profiled = Machine::default();
    let mut attr = CycleAttribution::new();
    let (min_reference2, min_profiled) = paired_min_time(
        RUNS,
        || {
            black_box(
                reference2
                    .run_exec_reference_with_budget(&exec_ref2, TASKLETS, BUDGET)
                    .unwrap()
                    .cycles,
            );
        },
        || {
            black_box(profiled.run_exec_profiled(&exec_prof, TASKLETS, &mut attr).unwrap().cycles);
        },
    );
    let on_budget = min_reference2.mul_f64(1.5) + Duration::from_micros(50);
    println!(
        "attribution tax: reference min {min_reference2:?}, profiled min {min_profiled:?}, budget {on_budget:?}"
    );
    assert!(
        min_profiled <= on_budget,
        "profiled alu_loop_11t exceeded the 1.5x attribution containment budget: \
         reference {min_reference2:?} vs profiled {min_profiled:?}"
    );
    // Note on profiled-compiled containment: `run_exec_profiled` forces
    // the reference loop regardless of the ambient engine (attribution
    // needs per-slot dispatch), so Gate 2's bound *is* the profiled
    // containment guarantee under the compiled default — there is no
    // separate profiled-compiled path to gate.

    // --- Gate 3: compiled-off tax on the superblock floor ---------------
    // The compiled tier with *nothing* compiled (every block filtered out,
    // so every dispatch probes the compiled program and deopts) must stay
    // within 3% of the plain superblock engine: the tier's existence may
    // not tax runs it cannot accelerate.
    let exec_sb = exec();
    let mut exec_deopt = exec();
    exec_deopt.recompile_filtered(|_| false);
    let mut sb = Machine::default();
    let mut deopt = Machine::default();
    let (min_sb, min_deopt) = paired_min_time(
        RUNS,
        || {
            black_box(
                sb.run_exec_engine(&exec_sb, TASKLETS, dpu_sim::Engine::Superblock).unwrap().cycles,
            );
        },
        || {
            black_box(
                deopt
                    .run_exec_engine(&exec_deopt, TASKLETS, dpu_sim::Engine::Compiled)
                    .unwrap()
                    .cycles,
            );
        },
    );
    let deopt_tax = min_deopt.as_secs_f64() / min_sb.as_secs_f64() - 1.0;
    let deopt_budget = min_sb.mul_f64(1.03) + Duration::from_micros(50);
    println!(
        "compiled-off tax on alu_loop_11t: {:.1}% (gate <3%): deopt {min_deopt:?}, superblock floor {min_sb:?}",
        deopt_tax * 100.0
    );
    assert!(
        min_deopt <= deopt_budget,
        "compiled tier with an empty compilation exceeded the 3% budget over the \
         superblock floor: deopt {min_deopt:?} vs superblock {min_sb:?} — the deopt \
         probe leaked cost into uncompilable runs"
    );

    // --- Gate 4: the compiled tier pays for itself ----------------------
    // With the loop compiled (the default full compilation), the compiled
    // tier must never be slower than the superblock floor it replaces.
    let exec_sb2 = exec();
    let exec_jit = exec();
    let mut sb2 = Machine::default();
    let mut jit = Machine::default();
    let (min_sb2, min_jit) = paired_min_time(
        RUNS,
        || {
            black_box(
                sb2.run_exec_engine(&exec_sb2, TASKLETS, dpu_sim::Engine::Superblock)
                    .unwrap()
                    .cycles,
            );
        },
        || {
            black_box(
                jit.run_exec_engine(&exec_jit, TASKLETS, dpu_sim::Engine::Compiled).unwrap().cycles,
            );
        },
    );
    let jit_budget = min_sb2.mul_f64(1.03) + Duration::from_micros(50);
    println!("compiled tier: superblock min {min_sb2:?}, compiled min {min_jit:?}");
    assert!(
        min_jit <= jit_budget,
        "the compiled tier ran slower than the superblock engine on its headline \
         kernel: compiled {min_jit:?} vs superblock {min_sb2:?}"
    );
}

const BUDGET: u64 = dpu_sim::machine::DEFAULT_CYCLE_BUDGET;

criterion_group!(benches, bench_profiler_overhead);
criterion_main!(benches);
