//! Bench for Fig. 4.7(c): multi-DPU scaling against the CPU baseline,
//! plus the host-thread-parallel Tier-1 launch path.

use cpu_baseline::XeonModel;
use criterion::{criterion_group, criterion_main, Criterion};
use dpu_sim::asm::assemble;
use ebnn::{EbnnModel, ModelConfig};
use pim_host::DpuSet;
use std::hint::black_box;

fn bench_fig_4_7c(c: &mut Criterion) {
    let model = EbnnModel::generate(ModelConfig::default());
    let pts = pim_core::experiments::fig_4_7c(
        &model,
        &XeonModel::default(),
        &[1, 16, 64, 256, 1024, 2560],
    );
    println!("{}", pim_bench::render_fig_4_7c(&pts));

    // Tier-1 multi-DPU launch throughput: the same program on n DPUs.
    let program = assemble(
        "movi r1, 1000\n\
         movi r2, 0\n\
         loop: add r2, r2, r1\n\
         addi r1, r1, -1\n\
         bne r1, r0, loop\n\
         sw r0, 0, r2\n\
         halt\n",
    )
    .expect("program assembles");
    let mut g = c.benchmark_group("multi_dpu_launch");
    g.sample_size(10);
    for n in [1usize, 16, 64] {
        g.bench_function(format!("{n}_dpus"), |b| {
            b.iter(|| {
                let mut set = DpuSet::allocate(n).expect("alloc");
                let res = set.launch(&program, 11).expect("launch");
                black_box(res.makespan_cycles())
            });
        });
    }
    g.finish();
}

/// A heavily skewed 32-DPU launch: DPU 0 runs 20× the work of the rest
/// (the YOLO one-DPU-per-output-row shape, Fig. 4.6). Static chunking
/// strands the expensive DPU on one thread while its chunk-mates wait;
/// work-stealing keeps every host thread busy until the tail.
fn bench_skewed_launch(c: &mut Criterion) {
    let program = assemble(
        "movi r1, 0\n\
         movi r2, 0\n\
         movi r3, 8\n\
         mram.read r1, r2, r3\n\
         lw r4, r1, 0\n\
         loop: addi r4, r4, -1\n\
         bne r4, r0, loop\n\
         halt\n",
    )
    .expect("program assembles");
    let dpus = 32usize;
    let mut set = DpuSet::allocate(dpus).expect("alloc");
    set.define_symbol("count", 8).expect("symbol");
    for i in 0..dpus {
        let work: u64 = if i == 0 { 40_000 } else { 2_000 };
        set.copy_to_dpu(dpu_sim::DpuId(i as u32), "count", 0, &work.to_le_bytes()).expect("copy");
    }
    set.load(&program).expect("load");
    let mut g = c.benchmark_group("multi_dpu_launch");
    g.sample_size(10);
    g.bench_function("skewed_32_dpus", |b| {
        b.iter(|| black_box(set.launch_loaded(11).expect("launch").makespan_cycles()));
    });
    g.finish();
}

criterion_group!(benches, bench_fig_4_7c, bench_skewed_launch);
criterion_main!(benches);
