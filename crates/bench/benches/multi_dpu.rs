//! Bench for Fig. 4.7(c): multi-DPU scaling against the CPU baseline,
//! plus the host-thread-parallel Tier-1 launch path.

use cpu_baseline::XeonModel;
use criterion::{criterion_group, criterion_main, Criterion};
use dpu_sim::asm::assemble;
use ebnn::{EbnnModel, ModelConfig};
use pim_host::DpuSet;
use std::hint::black_box;

fn bench_fig_4_7c(c: &mut Criterion) {
    let model = EbnnModel::generate(ModelConfig::default());
    let pts = pim_core::experiments::fig_4_7c(
        &model,
        &XeonModel::default(),
        &[1, 16, 64, 256, 1024, 2560],
    );
    println!("{}", pim_bench::render_fig_4_7c(&pts));

    // Tier-1 multi-DPU launch throughput: the same program on n DPUs.
    let program = assemble(
        "movi r1, 1000\n\
         movi r2, 0\n\
         loop: add r2, r2, r1\n\
         addi r1, r1, -1\n\
         bne r1, r0, loop\n\
         sw r0, 0, r2\n\
         halt\n",
    )
    .expect("program assembles");
    let mut g = c.benchmark_group("multi_dpu_launch");
    g.sample_size(10);
    for n in [1usize, 16, 64] {
        g.bench_function(format!("{n}_dpus"), |b| {
            b.iter(|| {
                let mut set = DpuSet::allocate(n).expect("alloc");
                let res = set.launch(&program, 11).expect("launch");
                black_box(res.makespan_cycles())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig_4_7c);
criterion_main!(benches);
