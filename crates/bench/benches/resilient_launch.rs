//! Fault-tolerance cost: zero-fault resilient launch vs the plain launch
//! path, plus a seeded campaign for context.
//!
//! The key contract here is the **zero-fault tax guard**: with no fault
//! plan the resilient path takes no MRAM snapshots, arms nothing, and runs
//! the same interpreter under the same default budget — so its wall-clock
//! must stay within 2% (plus scheduling noise) of `launch_loaded`. The
//! guard is asserted at the end of the run, making `cargo bench
//! --bench resilient_launch` a pass/fail gate, not just a report.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpu_sim::faults::{FaultConfig, FaultPlan};
use dpu_sim::DpuId;
use pim_host::{DpuSet, ResilientLaunchPolicy};
use std::time::{Duration, Instant};

const DPUS: usize = 8;
const TASKLETS: usize = 4;

/// An eBNN-scale per-DPU kernel: DMA in, ~100k-cycle compute loop per
/// tasklet, DMA out. Heavy enough that per-launch fixed costs are honest
/// noise, light enough to iterate.
fn staged_set() -> DpuSet {
    let program = dpu_sim::asm::assemble(
        "movi r1, 0\n\
         movi r2, 0\n\
         movi r3, 8\n\
         mram.read r1, r2, r3\n\
         lw r4, r1, 0\n\
         top:\n\
         addi r4, r4, -1\n\
         bne r4, r0, top\n\
         barrier\n\
         mram.write r1, r2, r3\n\
         halt\n",
    )
    .unwrap();
    let mut set = DpuSet::allocate(DPUS).unwrap();
    set.define_symbol("n", 8).unwrap();
    for i in 0..DPUS {
        set.copy_to_dpu(DpuId(i as u32), "n", 0, &(100_000 + i as u64 * 1_000).to_le_bytes())
            .unwrap();
    }
    set.load(&program).unwrap();
    set
}

/// Minimum wall-clock of two alternately-run workloads. Interleaving the
/// pairs (and swapping which goes first each round) means slow drift in
/// machine load hits both mins equally instead of biasing whichever loop
/// happened to run during the noisy stretch.
fn paired_min_time(n: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (Duration, Duration) {
    let time = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        start.elapsed()
    };
    a(); // warm-up
    b();
    let (mut min_a, mut min_b) = (Duration::MAX, Duration::MAX);
    for round in 0..n {
        if round % 2 == 0 {
            min_a = min_a.min(time(&mut a));
            min_b = min_b.min(time(&mut b));
        } else {
            min_b = min_b.min(time(&mut b));
            min_a = min_a.min(time(&mut a));
        }
    }
    (min_a, min_b)
}

fn bench_resilient_launch(c: &mut Criterion) {
    let mut g = c.benchmark_group("resilient_launch");
    g.sample_size(10);

    g.bench_function("plain_launch_loaded", |b| {
        let mut set = staged_set();
        b.iter(|| black_box(set.launch_loaded(TASKLETS).unwrap().makespan_cycles()));
    });
    g.bench_function("zero_fault_resilient", |b| {
        let mut set = staged_set();
        let policy = ResilientLaunchPolicy::default();
        b.iter(|| {
            black_box(set.launch_loaded_resilient(TASKLETS, &policy).unwrap().makespan_cycles())
        });
    });
    g.bench_function("campaign_dma_fail_10pct", |b| {
        let mut set = staged_set();
        let policy = ResilientLaunchPolicy::with_faults(FaultPlan::new(FaultConfig {
            seed: 42,
            dma_fail_prob: 0.10,
            ..FaultConfig::default()
        }));
        b.iter(|| {
            black_box(set.launch_loaded_resilient(TASKLETS, &policy).unwrap().makespan_cycles())
        });
    });
    g.bench_function("campaign_one_dpu_offline", |b| {
        let mut set = staged_set();
        let policy = ResilientLaunchPolicy {
            max_retries: 0,
            ..ResilientLaunchPolicy::with_faults(FaultPlan::new(FaultConfig {
                forced_offline: vec![3],
                ..FaultConfig::default()
            }))
        };
        b.iter(|| {
            black_box(set.launch_loaded_resilient(TASKLETS, &policy).unwrap().makespan_cycles())
        });
    });
    g.finish();

    // --- The zero-fault tax guard -------------------------------------
    // Paired, interleaved min-of-N; 2% relative budget plus a small
    // absolute epsilon so scheduler jitter can't flake the gate.
    const RUNS: usize = 12;
    let mut plain_set = staged_set();
    let mut res_set = staged_set();
    let policy = ResilientLaunchPolicy::default();
    let (min_plain, min_resilient) = paired_min_time(
        RUNS,
        || {
            black_box(plain_set.launch_loaded(TASKLETS).unwrap().makespan_cycles());
        },
        || {
            black_box(
                res_set.launch_loaded_resilient(TASKLETS, &policy).unwrap().makespan_cycles(),
            );
        },
    );
    let budget = min_plain.mul_f64(1.02) + Duration::from_micros(500);
    println!(
        "zero-fault tax: plain min {min_plain:?}, resilient min {min_resilient:?}, budget {budget:?}"
    );
    assert!(
        min_resilient <= budget,
        "zero-fault resilient launch exceeded the 2% overhead budget: \
         plain {min_plain:?} vs resilient {min_resilient:?}"
    );

    // --- The ECC tax guard --------------------------------------------
    // Arming the SEC-DED sidecar on a zero-fault run touches only the
    // DMA edges (encode-on-write, verify-on-read) plus one lazy page
    // encode per first touch; the interpreter itself is untouched. So
    // ECC-on must stay within 2% of ECC-off wall-clock — and produce
    // bit-identical results, checked first so a correctness bug can't
    // hide behind a perf assertion.
    let mut off_set = staged_set();
    let mut on_set = staged_set();
    on_set.enable_ecc(true);
    let off_res = off_set.launch_loaded_resilient(TASKLETS, &policy).unwrap();
    let on_res = on_set.launch_loaded_resilient(TASKLETS, &policy).unwrap();
    assert_eq!(
        off_res.makespan_cycles(),
        on_res.makespan_cycles(),
        "ECC must be invisible to simulated time on a clean run"
    );
    for i in 0..DPUS {
        let d = DpuId(i as u32);
        let off_out: u64 = off_set.copy_scalar_from(d, "n").unwrap();
        let on_out: u64 = on_set.copy_scalar_from(d, "n").unwrap();
        assert_eq!(off_out, on_out, "DPU {i}: ECC-on output diverged from ECC-off");
    }
    let (min_off, min_on) = paired_min_time(
        RUNS,
        || {
            black_box(
                off_set.launch_loaded_resilient(TASKLETS, &policy).unwrap().makespan_cycles(),
            );
        },
        || {
            black_box(on_set.launch_loaded_resilient(TASKLETS, &policy).unwrap().makespan_cycles());
        },
    );
    let budget = min_off.mul_f64(1.02) + Duration::from_micros(500);
    println!("ecc tax: off min {min_off:?}, on min {min_on:?}, budget {budget:?}");
    assert!(
        min_on <= budget,
        "ECC-on zero-fault launch exceeded the 2% overhead budget: \
         off {min_off:?} vs on {min_on:?}"
    );
}

criterion_group!(benches, bench_resilient_launch);
criterion_main!(benches);
