//! Criterion bench for the interpreter's issue-slot hot path.
//!
//! Three workloads bracket the overhauled costs: a pure ALU countdown at 1
//! tasklet (single-tasklet fast path + opcode-array histogram), the same
//! loop at 11 tasklets (incremental barrier/live accounting replacing the
//! per-slot scans), and a mutex+barrier ping at 16 tasklets (the sync
//! machinery itself). Throughput is reported in instructions per second —
//! the figure BENCH_2.json tracks across PRs.

use criterion::{criterion_group, criterion_main, Criterion};
use dpu_sim::asm::assemble;
use dpu_sim::{ExecProgram, Machine, Program};
use std::hint::black_box;

fn alu_loop(count: u32) -> Program {
    assemble(&format!(
        "movi r1, {count}\n\
         movi r2, 0\n\
         loop: add r2, r2, r1\n\
         addi r1, r1, -1\n\
         bne r1, r0, loop\n\
         halt\n"
    ))
    .expect("program assembles")
}

fn sync_heavy(iters: u32) -> Program {
    assemble(&format!(
        "movi r2, {iters}\n\
         loop: mutex.lock 0\n\
         lw r3, r0, 0x40\n\
         addi r3, r3, 1\n\
         sw r0, 0x40, r3\n\
         mutex.unlock 0\n\
         barrier\n\
         addi r2, r2, -1\n\
         bne r2, r0, loop\n\
         halt\n"
    ))
    .expect("program assembles")
}

fn bench_interpreter_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpreter_hot_path");
    g.sample_size(10);

    for (name, program, tasklets) in [
        ("alu_loop/1_tasklet", alu_loop(20_000), 1usize),
        ("alu_loop/11_tasklets", alu_loop(20_000), 11),
        ("sync_heavy/16_tasklets", sync_heavy(200), 16),
    ] {
        let instructions = Machine::default().run(&program, tasklets).expect("runs").instructions;
        println!("{name}: {instructions} instructions per run");
        g.bench_function(name, |b| {
            let mut m = Machine::default();
            b.iter(|| black_box(m.run(&program, tasklets).expect("runs").cycles));
        });
    }

    // The load-once/launch-many path: decoding amortized away entirely.
    let program = alu_loop(20_000);
    let exec = ExecProgram::compile(&program).expect("valid program");
    g.bench_function("alu_loop_predecoded/1_tasklet", |b| {
        let mut m = Machine::default();
        b.iter(|| black_box(m.run_exec(&exec, 1).expect("runs").cycles));
    });

    g.finish();
}

criterion_group!(benches, bench_interpreter_hot_path);
criterion_main!(benches);
