//! Host-built look-up table replacing BatchNorm + BinaryActivation
//! (Algorithm 1 of the paper, §4.1.4).
//!
//! The host enumerates every possible Convolution-Pool result — the range
//! depends only on the filter size: `[-9, 9]` for 3×3 — runs each through
//! the BN-BinAct block for every filter, and stores the binary outputs in a
//! 2-D table indexed by `(value − min) * filters + filter`. Negative inputs
//! are handled by the `− min` offset, exactly as the paper describes. The
//! DPU then replaces two floating-point blocks with one WRAM load.
//!
//! Note: Algorithm 1's line 18 writes `LUT[(i−x)·z + y]`; the `y` is a typo
//! for the filter index `j` (the loop variable of line 7) — with `y` the
//! table would be written out of bounds and every filter would share one
//! cell. This implementation uses `j`.

use crate::bnorm::BatchNorm;
use serde::{Deserialize, Serialize};

/// The BN-BinAct look-up table (one byte per entry, values 0/1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BnLut {
    /// Smallest representable conv-pool result (the paper's `x`).
    pub min: i32,
    /// Largest representable conv-pool result (the paper's `y`).
    pub max: i32,
    /// Number of filters (the paper's `z`).
    pub filters: usize,
    table: Vec<u8>,
}

impl BnLut {
    /// Build the LUT for pre-activation range `[min, max]` over all filters
    /// of `bn` — Algorithm 1.
    ///
    /// # Panics
    /// When `min > max` or `bn` has no filters.
    #[must_use]
    pub fn build(bn: &BatchNorm, min: i32, max: i32) -> Self {
        assert!(min <= max, "empty pre-activation range");
        let filters = bn.filters();
        assert!(filters > 0, "LUT needs at least one filter");
        let rows = (max - min + 1) as usize;
        let mut table = vec![0u8; rows * filters];
        for i in min..=max {
            for j in 0..filters {
                table[((i - min) as usize) * filters + j] = bn.bn_binact(i, j);
            }
        }
        Self { min, max, filters, table }
    }

    /// LUT for the 3×3 conv-pool range `[-9, 9]`.
    #[must_use]
    pub fn for_conv3x3(bn: &BatchNorm) -> Self {
        Self::build(bn, -crate::bconv::BinaryFilter::AREA, crate::bconv::BinaryFilter::AREA)
    }

    /// Look up the activation for pre-activation `x` under filter `j` —
    /// the single WRAM access the DPU performs instead of the BN block.
    ///
    /// # Panics
    /// When `x` is outside `[min, max]` or `j` out of range.
    #[must_use]
    pub fn lookup(&self, x: i32, j: usize) -> u8 {
        assert!((self.min..=self.max).contains(&x), "pre-activation {x} outside LUT range");
        assert!(j < self.filters, "filter index out of range");
        self.table[((x - self.min) as usize) * self.filters + j]
    }

    /// Number of table entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when the table is empty (never after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Serialize to the MRAM wire format (row-major bytes, padded to 8 by
    /// the transfer layer).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.table.clone()
    }

    /// Reconstruct from the wire format.
    ///
    /// # Panics
    /// When `bytes` has the wrong length for the given shape.
    #[must_use]
    pub fn from_bytes(bytes: &[u8], min: i32, max: i32, filters: usize) -> Self {
        let rows = (max - min + 1) as usize;
        assert_eq!(bytes.len(), rows * filters, "LUT wire size mismatch");
        Self { min, max, filters, table: bytes.to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bn2() -> BatchNorm {
        BatchNorm::new(
            vec![0.5, -1.0],
            vec![0.0, 2.0],
            vec![1.0, 4.0],
            vec![1.0, -1.0],
            vec![0.0, 0.25],
        )
    }

    #[test]
    fn lut_matches_direct_bn_binact_everywhere() {
        let bn = bn2();
        let lut = BnLut::for_conv3x3(&bn);
        for x in -9..=9 {
            for j in 0..2 {
                assert_eq!(lut.lookup(x, j), bn.bn_binact(x, j), "x={x} j={j}");
            }
        }
    }

    #[test]
    fn shape_is_range_times_filters() {
        let lut = BnLut::for_conv3x3(&bn2());
        assert_eq!(lut.len(), 19 * 2);
        assert_eq!(lut.min, -9);
        assert_eq!(lut.max, 9);
    }

    #[test]
    fn wire_round_trip() {
        let lut = BnLut::for_conv3x3(&bn2());
        let bytes = lut.to_bytes();
        let back = BnLut::from_bytes(&bytes, lut.min, lut.max, lut.filters);
        assert_eq!(back, lut);
    }

    #[test]
    #[should_panic(expected = "outside LUT range")]
    fn out_of_range_lookup_panics() {
        let lut = BnLut::for_conv3x3(&bn2());
        let _ = lut.lookup(10, 0);
    }

    proptest! {
        /// For arbitrary BN parameters the LUT and the float block agree on
        /// the whole domain — the core correctness claim of §4.1.4 (the LUT
        /// rewrite changes cost, not semantics).
        #[test]
        fn lut_equals_float_block(
            w0 in proptest::collection::vec(-8.0f32..8.0, 1..6),
            seed in 0u64..1000,
        ) {
            let n = w0.len();
            let mk = |off: f32| -> Vec<f32> {
                (0..n).map(|i| ((seed as f32) * 0.37 + i as f32 + off).sin() * 4.0).collect()
            };
            let w2: Vec<f32> = mk(1.0).iter().map(|v| v.abs() + 0.25).collect();
            let bn = BatchNorm::new(w0, mk(0.5), w2, mk(2.0), mk(3.0));
            let lut = BnLut::for_conv3x3(&bn);
            for x in -9..=9 {
                for j in 0..n {
                    prop_assert_eq!(lut.lookup(x, j), bn.bn_binact(x, j));
                }
            }
        }
    }
}
