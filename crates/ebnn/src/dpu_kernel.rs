//! The Tier-2 DPU kernel for the eBNN Convolution-Pool block.
//!
//! The kernel computes exactly what [`crate::model::EbnnModel::features`]
//! computes, but as the DPU would: over bit-packed rows with
//! shift/XNOR/popcount, charging every operation to a
//! [`dpu_sim::cost::OpCounts`] tally and recording runtime-subroutine
//! entries in a [`dpu_sim::Profiler`]. Two BN back-ends reproduce the
//! paper's §4.1.4 comparison:
//!
//! * [`BnMode::Float`] — BatchNorm + BinaryActivation inside the DPU. The
//!   arithmetic is promoted to `f64` exactly as unoptimized C with `double`
//!   BN parameters does, so the profile shows the paper's Fig. 4.3(a)
//!   picture: 11 distinct runtime subroutines
//!   (`__floatsidf __adddf3 __subdf3 __divdf3 __muldf3 __ltdf2
//!   __truncdfsf2 __ltsf2 __fixsfsi` plus `__mulsi3`/`__divsi3` from index
//!   arithmetic);
//! * [`BnMode::Lut`] — the host-built LUT replaces the float block with one
//!   WRAM load; only `__mulsi3` (index arithmetic — the routine the paper
//!   says "could not be removed") and `__divsi3` remain: Fig. 4.3(b)'s 2
//!   subroutines.

use crate::bconv::{BinaryFilter, BinaryImage};
use crate::bnorm::BatchNorm;
use crate::lut::BnLut;
use crate::POOLED_DIM;
use dpu_sim::cost::OpCounts;
use dpu_sim::{Profiler, Subroutine};

/// Which BatchNorm back-end the kernel uses.
#[derive(Debug, Clone, Copy)]
pub enum BnMode<'a> {
    /// Floating-point BN-BinAct inside the DPU (Fig. 4.2(a)).
    Float(&'a BatchNorm),
    /// Host-built LUT in WRAM (Fig. 4.2(b)).
    Lut(&'a BnLut),
}

impl BnMode<'_> {
    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            BnMode::Float(_) => "float-bn",
            BnMode::Lut(_) => "lut",
        }
    }
}

/// Output of one image through the kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelOutput {
    /// Flat binary features, `[filter][row][col]`, values 0/1.
    pub features: Vec<u8>,
}

impl KernelOutput {
    /// Bit-pack to the MRAM wire format (LSB-first within each byte,
    /// zero-padded to a multiple of 8 bytes).
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut bytes = vec![0u8; self.features.len().div_ceil(8)];
        for (i, &b) in self.features.iter().enumerate() {
            if b != 0 {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        let padded = bytes.len().div_ceil(8) * 8;
        bytes.resize(padded, 0);
        bytes
    }

    /// Unpack the wire format back to flat 0/1 features.
    #[must_use]
    pub fn from_wire(bytes: &[u8], features: usize) -> Self {
        let f = (0..features).map(|i| (bytes[i / 8] >> (i % 8)) & 1).collect();
        Self { features: f }
    }

    /// Wire bytes for a model with `features` binary outputs.
    #[must_use]
    pub fn wire_bytes(features: usize) -> usize {
        features.div_ceil(8).div_ceil(8) * 8
    }
}

/// Charge one runtime-subroutine entry to both the tally (for cycles) and
/// the profiler (for `#occ` reports). `f64` routines are charged as two
/// `f32`-lane operations, matching their ~2× calibrated instruction counts.
fn charge(sub: Subroutine, tally: &mut OpCounts, profile: &mut Profiler) {
    profile.record(sub);
    match sub {
        Subroutine::Mulsi3 => tally.mul32 += 1,
        Subroutine::Mulsi3Short => tally.mul16 += 1,
        Subroutine::Muldi3 => tally.mul32 += 2,
        Subroutine::Divsi3 => tally.div32 += 1,
        Subroutine::Modsi3 => tally.div32 += 1,
        Subroutine::Addsf3 => tally.fadd += 1,
        Subroutine::Subsf3 => tally.fsub += 1,
        Subroutine::Mulsf3 => tally.fmul += 1,
        Subroutine::Divsf3 => tally.fdiv += 1,
        Subroutine::Ltsf2 | Subroutine::Gtsf2 => tally.fcmp += 1,
        Subroutine::Floatsisf => tally.i2f += 1,
        Subroutine::Fixsfsi => tally.f2i += 1,
        Subroutine::Adddf3 => tally.fadd += 2,
        Subroutine::Subdf3 => tally.fsub += 2,
        Subroutine::Muldf3 => tally.fmul += 2,
        Subroutine::Divdf3 => tally.fdiv += 2,
        Subroutine::Ltdf2 => tally.fcmp += 2,
        Subroutine::Floatsidf => tally.i2f += 2,
        Subroutine::Fixdfsi => tally.f2i += 2,
        Subroutine::Truncdfsf2 => tally.alu += 16,
        Subroutine::Extendsfdf2 => tally.alu += 14,
        _ => tally.alu += 8,
    }
}

/// Run the Convolution-Pool(-BN-BinAct) block for one image.
///
/// Functionally identical to the host reference; as a side effect the
/// per-operation costs of the DPU program are accumulated into `tally` and
/// subroutine entries into `profile`.
#[must_use]
pub fn conv_pool_block(
    img: &BinaryImage,
    filters: &[BinaryFilter],
    mode: BnMode<'_>,
    tally: &mut OpCounts,
    profile: &mut Profiler,
) -> KernelOutput {
    let height = img.height();
    let mut features = Vec::with_capacity(filters.len() * POOLED_DIM * POOLED_DIM);

    // Per-image setup: the tasklet locates its image slot in the WRAM batch
    // buffer (one division by the image stride — the `__divsi3` of
    // Fig. 4.3(b)) and loads loop bounds.
    charge(Subroutine::Divsi3, tally, profile);
    tally.alu += 6;
    tally.load += 2;

    for (j, f) in filters.iter().enumerate() {
        // Filter fetch: three packed rows from WRAM.
        tally.load += 3;
        if let BnMode::Float(_) = mode {
            // Per-filter BN threshold precomputation, promoted to `f64` as
            // unoptimized C with double BN parameters does: solve
            // BN(x) >= 0 for x once per filter. This is where eBNN's float
            // subroutines live — a handful of calls per filter, which is
            // why removing them buys ~1.4x, not orders of magnitude
            // (Fig. 4.4).
            charge(Subroutine::Extendsfdf2, tally, profile);
            charge(Subroutine::Adddf3, tally, profile);
            charge(Subroutine::Subdf3, tally, profile);
            charge(Subroutine::Subdf3, tally, profile);
            charge(Subroutine::Divdf3, tally, profile);
            charge(Subroutine::Muldf3, tally, profile);
            charge(Subroutine::Ltdf2, tally, profile); // gain-sign test
            charge(Subroutine::Truncdfsf2, tally, profile);
            tally.store += 1;
        }
        for pr in 0..POOLED_DIM {
            for pc in 0..POOLED_DIM {
                tally.loops += 1;
                let mut best = i8::MIN;
                for dr in 0..2 {
                    for dc in 0..2 {
                        let (row, col) = (2 * pr + dr, 2 * pc + dc);
                        // One conv output pixel, as the DPU computes it:
                        // three row loads, shift-mask window extraction,
                        // XNOR against the filter row, popcount, combine.
                        let mut matches = 0u32;
                        for fr in 0..3 {
                            let ir = row as isize + fr as isize - 1;
                            let packed = if ir < 0 || ir >= height as isize {
                                0u32
                            } else {
                                img.rows[ir as usize]
                            };
                            let window = ((u64::from(packed) << 1) >> col) as u32 & 0b111;
                            let xnor = !(window ^ u32::from(f.rows[fr])) & 0b111;
                            matches += xnor.count_ones();
                            tally.load += 1; // packed row
                            tally.alu += 4; // shift, mask, xnor, popcount
                        }
                        let v = (2 * matches as i32 - BinaryFilter::AREA) as i8;
                        tally.alu += 3; // 2*m - 9 and accumulate
                        if let BnMode::Float(_) = mode {
                            // The float implementation carries the conv sum
                            // into `f32` immediately (one __floatsisf per
                            // window) and max-pools in float.
                            charge(Subroutine::Floatsisf, tally, profile);
                            charge(Subroutine::Ltsf2, tally, profile);
                        } else {
                            tally.alu += 1; // integer pool max compare
                        }
                        if i32::from(v) > i32::from(best) {
                            best = v;
                        }
                    }
                }
                let x = i32::from(best);

                // BN + BinAct: the block the LUT rewrite replaces.
                // Output-buffer indexing: feature (j, pr, pc) lands at
                // j * 196 + pr * 14 + pc — a 16-bit multiply in both modes
                // (the `__mulsi3` the paper says "could not be removed").
                charge(Subroutine::Mulsi3, tally, profile);
                tally.alu += 2;

                let bit = match mode {
                    BnMode::Float(bn) => {
                        // BinaryActivation: compare the pooled float value
                        // against the per-filter threshold, then narrow the
                        // bit to an integer. (Functionally evaluated via
                        // the exact Algorithm-1 chain so both modes agree
                        // bit-for-bit; the charges model eBNN's
                        // threshold-comparison C code.)
                        charge(Subroutine::Ltsf2, tally, profile);
                        charge(Subroutine::Fixsfsi, tally, profile);
                        bn.bn_binact(x, j)
                    }
                    BnMode::Lut(lut) => {
                        // index = (x - min) * filters + j: adds on top of
                        // the shared multiply above, then one WRAM load.
                        tally.alu += 2;
                        tally.load += 1;
                        lut.lookup(x, j)
                    }
                };
                tally.store += 1; // feature bit into the output buffer
                features.push(bit);
            }
        }
    }
    KernelOutput { features }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnist::synth_digit;
    use crate::model::{EbnnModel, ModelConfig};

    fn setup() -> (EbnnModel, BinaryImage, BnLut) {
        let m = EbnnModel::generate(ModelConfig::default());
        let img = m.binarize(&synth_digit(7, 3).pixels);
        let lut = BnLut::for_conv3x3(&m.bn);
        (m, img, lut)
    }

    #[test]
    fn kernel_matches_host_reference_in_both_modes() {
        let (m, img, lut) = setup();
        let expected = m.features(&img);
        let mut t = OpCounts::default();
        let mut p = Profiler::new();
        let float_out = conv_pool_block(&img, &m.filters, BnMode::Float(&m.bn), &mut t, &mut p);
        assert_eq!(float_out.features, expected);
        let mut t2 = OpCounts::default();
        let mut p2 = Profiler::new();
        let lut_out = conv_pool_block(&img, &m.filters, BnMode::Lut(&lut), &mut t2, &mut p2);
        assert_eq!(lut_out.features, expected);
    }

    #[test]
    fn float_mode_profile_shows_11_distinct_subroutines() {
        let (m, img, _) = setup();
        let mut t = OpCounts::default();
        let mut p = Profiler::new();
        let _ = conv_pool_block(&img, &m.filters, BnMode::Float(&m.bn), &mut t, &mut p);
        assert!(
            p.distinct_subroutines() >= 11,
            "expected 11+ distinct routines, got {}:\n{p}",
            p.distinct_subroutines()
        );
        assert!(p.occurrences(Subroutine::Divdf3) > 0);
    }

    #[test]
    fn lut_mode_profile_shows_2_distinct_subroutines() {
        let (m, img, lut) = setup();
        let mut t = OpCounts::default();
        let mut p = Profiler::new();
        let _ = conv_pool_block(&img, &m.filters, BnMode::Lut(&lut), &mut t, &mut p);
        assert_eq!(p.distinct_subroutines(), 2, "profile:\n{p}");
        assert!(p.occurrences(Subroutine::Mulsi3) > 0, "mulsi3 must remain");
        assert_eq!(p.distinct_float_subroutines(), 0);
    }

    #[test]
    fn lut_mode_is_cheaper() {
        let (m, img, lut) = setup();
        let mut tf = OpCounts::default();
        let mut tf_p = Profiler::new();
        let _ = conv_pool_block(&img, &m.filters, BnMode::Float(&m.bn), &mut tf, &mut tf_p);
        let mut tl = OpCounts::default();
        let mut tl_p = Profiler::new();
        let _ = conv_pool_block(&img, &m.filters, BnMode::Lut(&lut), &mut tl, &mut tl_p);
        use dpu_sim::cost::OptLevel;
        let slots_f = tf.issue_slots(OptLevel::O0);
        let slots_l = tl.issue_slots(OptLevel::O0);
        assert!(slots_f > slots_l, "float {slots_f} must exceed lut {slots_l}");
    }

    #[test]
    fn wire_round_trip() {
        let (m, img, lut) = setup();
        let mut t = OpCounts::default();
        let mut p = Profiler::new();
        let out = conv_pool_block(&img, &m.filters, BnMode::Lut(&lut), &mut t, &mut p);
        let wire = out.to_wire();
        assert_eq!(wire.len() % 8, 0);
        let back = KernelOutput::from_wire(&wire, out.features.len());
        assert_eq!(back, out);
    }
}
